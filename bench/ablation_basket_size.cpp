// §5.3.4 ablation: SBQ enqueue latency vs basket size B and enqueuer count T.
//
// The paper's analysis: enqueue latency is dominated by amortized basket
// initialization O(B/T) — for fixed B it decreases monotonically with T;
// sizing B = T gives O(1). We sweep B for several T (B >= T) and also show
// the B = T diagonal.
#include <iostream>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const simq::Value ops = opts.ops_or(200);
  const int repeats = opts.repeats_or(3);

  std::cout << "# 5.3.4 ablation: SBQ-HTM enqueue latency vs basket size B "
               "and enqueuers T (" << ops << " ops/thread)\n";
  Table table({"B", "T=2", "T=8", "T=22", "T=44"});
  if (!opts.csv) table.stream_to(std::cout);
  const std::vector<int> thread_counts{2, 8, 22, 44};
  const std::vector<int> basket_sizes{2, 8, 22, 44, 88};
  BenchReport report("ablation_basket_size");
  report.set_sweep_config(opts, thread_counts, ops, repeats);
  report.set("ns_per_cycle", Json(ns_per_cycle()));
  {
    Json jb = Json::array();
    for (int b : basket_sizes) jb.push_back(Json(b));
    report.set_config("basket_sizes", std::move(jb));
  }
  const std::size_t nrep = static_cast<std::size_t>(repeats);
  const std::size_t cells_per_row = thread_counts.size() * nrep;
  auto make = [&](int t, int b, int r) {
    sim::MachineConfig mcfg;
    mcfg.cores = t;
    apply_machine_options(mcfg, opts);
    apply_cas_policy_options(mcfg, opts);
    WorkloadSpec spec;
    spec.kind = Workload::kProducerOnly;
    spec.producers = t;
    spec.ops_per_thread = ops;
    spec.basket_capacity = b;
    spec.seed = opts.seed + static_cast<std::uint64_t>(r) * 7919;
    return std::pair(mcfg, spec);
  };
  std::vector<SimRunResult> results(basket_sizes.size() * cells_per_row);
  run_sweep_cells(
      basket_sizes.size(), cells_per_row, opts.effective_jobs(),
      [&](std::size_t i) {
        const int b = basket_sizes[i / cells_per_row];
        const int t = thread_counts[(i % cells_per_row) / nrep];
        const int r = static_cast<int>(i % nrep);
        if (b < t) return;  // infeasible cell: B must cover the enqueuers
        const auto [mcfg, spec] = make(t, b, r);
        results[i] = run_queue_workload(QueueKind::kSbqHtm, mcfg, spec,
                                        {}, snapshot_cache_policy(opts));
      },
      [&](std::size_t row) {
        const int b = basket_sizes[row];
        if (!opts.json_path.empty()) {
          for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
            if (b < thread_counts[ti]) continue;
            for (std::size_t r = 0; r < nrep; ++r) {
              const SimRunResult& res =
                  results[row * cells_per_row + ti * nrep + r];
              Json cj = Json::object();
              cj.set("basket_capacity", Json(b));
              cj.set("threads", Json(thread_counts[ti]));
              cj.set("repeat", Json(static_cast<int>(r)));
              cj.set("enq_ops", Json(res.enq_ops));
              cj.set("enq_latency_ns", Json(res.enq_latency_ns(ns_per_cycle())));
              cj.set("duration_cycles",
                     Json(static_cast<std::uint64_t>(res.duration_cycles)));
              cj.set("counters", metrics_to_json(res.metrics));
              report.add_cell(std::move(cj));
            }
          }
        }
        std::vector<std::string> out{std::to_string(b)};
        for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
          if (b < thread_counts[ti]) {
            out.push_back("-");
            continue;
          }
          Summary lat;
          for (std::size_t r = 0; r < nrep; ++r) {
            lat.add(results[row * cells_per_row + ti * nrep + r]
                        .enq_latency_ns(ns_per_cycle()));
          }
          char buf[32];
          std::snprintf(buf, sizeof buf, "%.1f", lat.mean());
          out.push_back(buf);
        }
        table.add_row(out);
      });
  table.print(std::cout, opts.csv);
  std::cout << "\n(For fixed B, latency improves as T grows — O(B/T) "
               "amortized init; the B=T\n diagonal stays flat.)\n";
  if (!opts.json_path.empty()) {
    report.add_table("enq_latency_ns", table);
    if (!opts.snapshot_cache.empty()) {
      report.set_snapshot_cache(
          cache_mode_name(snapshot_cache_policy(opts).mode));
    }
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    // Traced cell: the B = T diagonal at the smallest thread count.
    const auto [mcfg, spec] =
        make(thread_counts.front(), basket_sizes.front(), 0);
    if (!write_traced_cell(opts.trace_path, QueueKind::kSbqHtm, mcfg, spec)) {
      return 1;
    }
  }
  return 0;
}
