// §5.3.4 ablation: SBQ enqueue latency vs basket size B and enqueuer count T.
//
// The paper's analysis: enqueue latency is dominated by amortized basket
// initialization O(B/T) — for fixed B it decreases monotonically with T;
// sizing B = T gives O(1). We sweep B for several T (B >= T) and also show
// the B = T diagonal.
#include <iostream>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const simq::Value ops = opts.ops == 0 ? 200 : opts.ops;
  const int repeats = opts.repeats == 0 ? 3 : opts.repeats;

  std::cout << "# 5.3.4 ablation: SBQ-HTM enqueue latency vs basket size B "
               "and enqueuers T (" << ops << " ops/thread)\n";
  Table table({"B", "T=2", "T=8", "T=22", "T=44"});
  if (!opts.csv) table.stream_to(std::cout);
  const std::vector<int> thread_counts{2, 8, 22, 44};
  const std::vector<int> basket_sizes{2, 8, 22, 44, 88};
  const std::size_t nrep = static_cast<std::size_t>(repeats);
  const std::size_t cells_per_row = thread_counts.size() * nrep;
  std::vector<double> lat_ns(basket_sizes.size() * cells_per_row, -1.0);
  run_sweep_cells(
      basket_sizes.size(), cells_per_row, opts.effective_jobs(),
      [&](std::size_t i) {
        const int b = basket_sizes[i / cells_per_row];
        const int t = thread_counts[(i % cells_per_row) / nrep];
        const int r = static_cast<int>(i % nrep);
        if (b < t) return;  // infeasible cell: B must cover the enqueuers
        sim::MachineConfig mcfg;
        mcfg.cores = t;
        WorkloadSpec spec;
        spec.kind = Workload::kProducerOnly;
        spec.producers = t;
        spec.ops_per_thread = ops;
        spec.basket_capacity = b;
        spec.seed = opts.seed + static_cast<std::uint64_t>(r) * 7919;
        lat_ns[i] = run_queue_workload(QueueKind::kSbqHtm, mcfg, spec)
                        .enq_latency_ns(ns_per_cycle());
      },
      [&](std::size_t row) {
        std::vector<std::string> out{std::to_string(basket_sizes[row])};
        for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
          if (basket_sizes[row] < thread_counts[ti]) {
            out.push_back("-");
            continue;
          }
          Summary lat;
          for (std::size_t r = 0; r < nrep; ++r) {
            lat.add(lat_ns[row * cells_per_row + ti * nrep + r]);
          }
          char buf[32];
          std::snprintf(buf, sizeof buf, "%.1f", lat.mean());
          out.push_back(buf);
        }
        table.add_row(out);
      });
  table.print(std::cout, opts.csv);
  std::cout << "\n(For fixed B, latency improves as T grows — O(B/T) "
               "amortized init; the B=T\n diagonal stays flat.)\n";
  return 0;
}
