// §5.3.4 ablation: SBQ enqueue latency vs basket size B and enqueuer count T.
//
// The paper's analysis: enqueue latency is dominated by amortized basket
// initialization O(B/T) — for fixed B it decreases monotonically with T;
// sizing B = T gives O(1). We sweep B for several T (B >= T) and also show
// the B = T diagonal.
#include <iostream>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const simq::Value ops = opts.ops == 0 ? 200 : opts.ops;
  const int repeats = opts.repeats == 0 ? 3 : opts.repeats;

  std::cout << "# 5.3.4 ablation: SBQ-HTM enqueue latency vs basket size B "
               "and enqueuers T (" << ops << " ops/thread)\n";
  Table table({"B", "T=2", "T=8", "T=22", "T=44"});
  const std::vector<int> thread_counts{2, 8, 22, 44};
  for (int b : {2, 8, 22, 44, 88}) {
    std::vector<std::string> row{std::to_string(b)};
    for (int t : thread_counts) {
      if (b < t) {
        row.push_back("-");
        continue;
      }
      Summary lat;
      for (int r = 0; r < repeats; ++r) {
        sim::MachineConfig mcfg;
        mcfg.cores = t;
        WorkloadSpec spec;
        spec.kind = Workload::kProducerOnly;
        spec.producers = t;
        spec.ops_per_thread = ops;
        spec.basket_capacity = b;
        spec.seed = opts.seed + static_cast<std::uint64_t>(r) * 7919;
        lat.add(run_queue_workload("SBQ-HTM", mcfg, spec)
                    .enq_latency_ns(ns_per_cycle()));
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f", lat.mean());
      row.push_back(buf);
    }
    table.add_row(row);
  }
  table.print(std::cout, opts.csv);
  std::cout << "\n(For fixed B, latency improves as T grows — O(B/T) "
               "amortized init; the B=T\n diagonal stays flat.)\n";
  return 0;
}
