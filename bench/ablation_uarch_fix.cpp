// §3.4.1 ablation: what the proposed microarchitectural fix buys at the
// queue level. SBQ-HTM on the mixed two-socket workload (where consumer
// reads of the tail cross sockets and can trip enqueuers' TxCAS commits),
// with the fix off and on.
#include <iostream>
#include <vector>

#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const simq::Value ops = opts.ops == 0 ? 200 : opts.ops;
  const int repeats = opts.repeats == 0 ? 2 : opts.repeats;
  const std::vector<int> totals =
      opts.threads.empty() ? std::vector<int>{8, 16, 32, 64, 88} : opts.threads;

  std::cout << "# 3.4.1 ablation: SBQ-HTM mixed workload, uarch fix off/on ("
            << ops << " ops/thread)\n";
  Table table({"threads", "enq_ns(nofix)", "enq_ns(fix)", "dur_ns(nofix)",
               "dur_ns(fix)"});
  if (!opts.csv) table.stream_to(std::cout);
  std::vector<int> rows;
  for (int total : totals) {
    if (total / 2 >= 1) rows.push_back(total);
  }
  const std::size_t nrep = static_cast<std::size_t>(repeats);
  const std::size_t cells_per_row = nrep * 2;  // (repeat, fix off/on)
  std::vector<SimRunResult> results(rows.size() * cells_per_row);
  run_sweep_cells(
      rows.size(), cells_per_row, opts.effective_jobs(),
      [&](std::size_t i) {
        const int total = rows[i / cells_per_row];
        const int half = total / 2;
        const std::uint64_t r = (i % cells_per_row) / 2;
        const bool fix = (i % 2) != 0;
        sim::MachineConfig mcfg;
        mcfg.cores = total;
        mcfg.sockets = 2;
        mcfg.uarch_fix = fix;
        WorkloadSpec spec;
        spec.kind = Workload::kMixed;
        spec.producers = half;
        spec.consumers = half;
        spec.ops_per_thread = ops;
        spec.prefill = static_cast<simq::Value>(half) * ops / 2;
        spec.seed = opts.seed + r * 7919;
        results[i] = run_queue_workload(QueueKind::kSbqHtm, mcfg, spec);
      },
      [&](std::size_t row) {
        const int total = rows[row];
        Summary enq_off, enq_on, dur_off, dur_on;
        for (std::size_t c = 0; c < cells_per_row; ++c) {
          const SimRunResult& res = results[row * cells_per_row + c];
          const double total_ops =
              static_cast<double>(res.enq_ops + res.deq_ops);
          const double dur = res.duration_cycles * ns_per_cycle() / total_ops *
                             static_cast<double>(total);
          if ((c % 2) != 0) {
            enq_on.add(res.enq_latency_ns(ns_per_cycle()));
            dur_on.add(dur);
          } else {
            enq_off.add(res.enq_latency_ns(ns_per_cycle()));
            dur_off.add(dur);
          }
        }
        table.add_row({static_cast<double>(total), enq_off.mean(),
                       enq_on.mean(), dur_off.mean(), dur_on.mean()});
      });
  table.print(std::cout, opts.csv);
  return 0;
}
