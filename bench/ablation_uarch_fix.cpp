// §3.4.1 ablation: what the proposed microarchitectural fix buys at the
// queue level. SBQ-HTM on the mixed two-socket workload (where consumer
// reads of the tail cross sockets and can trip enqueuers' TxCAS commits),
// with the fix off and on.
#include <iostream>
#include <vector>

#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const simq::Value ops = opts.ops_or(200);
  const int repeats = opts.repeats_or(2);
  const std::vector<int> totals = opts.threads_or({8, 16, 32, 64, 88});

  std::cout << "# 3.4.1 ablation: SBQ-HTM mixed workload, uarch fix off/on ("
            << ops << " ops/thread)\n";
  Table table({"threads", "enq_ns(nofix)", "enq_ns(fix)", "dur_ns(nofix)",
               "dur_ns(fix)"});
  if (!opts.csv) table.stream_to(std::cout);
  std::vector<int> rows;
  for (int total : totals) {
    if (total / 2 >= 1) rows.push_back(total);
  }
  BenchReport report("ablation_uarch_fix");
  report.set_sweep_config(opts, rows, ops, repeats);
  report.set("ns_per_cycle", Json(ns_per_cycle()));
  const std::size_t nrep = static_cast<std::size_t>(repeats);
  const std::size_t cells_per_row = nrep * 2;  // (repeat, fix off/on)
  auto make = [&](int total, int repeat, bool fix) {
    const int half = total / 2;
    sim::MachineConfig mcfg;
    mcfg.cores = total;
    mcfg.sockets = 2;
    mcfg.uarch_fix = fix;
    apply_machine_options(mcfg, opts);
    apply_cas_policy_options(mcfg, opts);
    WorkloadSpec spec;
    spec.kind = Workload::kMixed;
    spec.producers = half;
    spec.consumers = half;
    spec.ops_per_thread = ops;
    spec.prefill = static_cast<simq::Value>(half) * ops / 2;
    spec.seed = opts.seed + static_cast<std::uint64_t>(repeat) * 7919;
    return std::pair(mcfg, spec);
  };
  std::vector<SimRunResult> results(rows.size() * cells_per_row);
  run_sweep_cells(
      rows.size(), cells_per_row, opts.effective_jobs(),
      [&](std::size_t i) {
        const int total = rows[i / cells_per_row];
        const int r = static_cast<int>((i % cells_per_row) / 2);
        const bool fix = (i % 2) != 0;
        const auto [mcfg, spec] = make(total, r, fix);
        results[i] = run_queue_workload(QueueKind::kSbqHtm, mcfg, spec,
                                        {}, snapshot_cache_policy(opts));
      },
      [&](std::size_t row) {
        const int total = rows[row];
        if (!opts.json_path.empty()) {
          for (std::size_t c = 0; c < cells_per_row; ++c) {
            const SimRunResult& res = results[row * cells_per_row + c];
            Json cj = Json::object();
            cj.set("threads", Json(total));
            cj.set("uarch_fix", Json((c % 2) != 0));
            cj.set("repeat", Json(static_cast<int>(c / 2)));
            cj.set("enq_ops", Json(res.enq_ops));
            cj.set("deq_ops", Json(res.deq_ops));
            cj.set("enq_latency_ns", Json(res.enq_latency_ns(ns_per_cycle())));
            cj.set("duration_cycles",
                   Json(static_cast<std::uint64_t>(res.duration_cycles)));
            cj.set("counters", metrics_to_json(res.metrics));
            report.add_cell(std::move(cj));
          }
        }
        Summary enq_off, enq_on, dur_off, dur_on;
        for (std::size_t c = 0; c < cells_per_row; ++c) {
          const SimRunResult& res = results[row * cells_per_row + c];
          const double total_ops =
              static_cast<double>(res.enq_ops + res.deq_ops);
          const double dur = res.duration_cycles * ns_per_cycle() / total_ops *
                             static_cast<double>(total);
          if ((c % 2) != 0) {
            enq_on.add(res.enq_latency_ns(ns_per_cycle()));
            dur_on.add(dur);
          } else {
            enq_off.add(res.enq_latency_ns(ns_per_cycle()));
            dur_off.add(dur);
          }
        }
        table.add_row({static_cast<double>(total), enq_off.mean(),
                       enq_on.mean(), dur_off.mean(), dur_on.mean()});
      });
  table.print(std::cout, opts.csv);
  if (!opts.json_path.empty()) {
    report.add_table("uarch_fix_ablation", table);
    if (!opts.snapshot_cache.empty()) {
      report.set_snapshot_cache(
          cache_mode_name(snapshot_cache_policy(opts).mode));
    }
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty() && !rows.empty()) {
    // Traced cell: smallest mixed workload with the fix off.
    const auto [mcfg, spec] = make(rows.front(), 0, /*fix=*/false);
    if (!write_traced_cell(opts.trace_path, QueueKind::kSbqHtm, mcfg, spec)) {
      return 1;
    }
  }
  return 0;
}
