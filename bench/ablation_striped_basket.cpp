// §8 future-work extension: the striped scalable-dequeue basket.
//
// The paper's conclusion names "designing a basket with scalable dequeue
// operations" as future work. This bench measures our striped-counter
// basket against the paper's single-counter basket on the consumer-only
// workload (Figure 6's regime, where the single FAA is the bottleneck),
// sweeping the stripe count.
#include <iostream>

#include "benchsupport/sim_workload.hpp"
#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "simqueue/sim_sbq.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::simq;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const Value ops = opts.ops == 0 ? 200 : opts.ops;
  const int repeats = opts.repeats == 0 ? 2 : opts.repeats;
  const std::vector<int> threads =
      opts.threads.empty() ? std::vector<int>{4, 8, 16, 24, 32, 44}
                           : opts.threads;

  std::cout << "# 8 (future work): striped scalable-dequeue basket — "
               "consumer-only dequeue latency [ns/op]\n"
            << "# S=1 is the paper's basket; larger S shards the extraction "
               "FAA (" << ops << " ops/thread)\n";
  Table table({"threads", "S=1 (paper)", "S=2", "S=4", "S=8"});
  for (int t : threads) {
    std::vector<double> row{static_cast<double>(t)};
    for (int stripes : {1, 2, 4, 8}) {
      Summary lat;
      for (int r = 0; r < repeats; ++r) {
        sim::MachineConfig mcfg;
        mcfg.cores = t;
        sim::Machine m(mcfg);
        SimSbq::Config qc;
        qc.enqueuers = t;
        qc.dequeuers = t;
        qc.basket_capacity = std::max(44, t);
        qc.extraction_stripes = stripes;
        SimSbq q(m, qc);
        const SimRunResult res = run_consumer_only(
            m, q, /*prefill_producers=*/t, /*consumers=*/t, ops,
            opts.seed + static_cast<std::uint64_t>(r) * 7919);
        lat.add(res.deq_latency_ns(ns_per_cycle()));
      }
      row.push_back(lat.mean());
    }
    table.add_row(row);
  }
  table.print(std::cout, opts.csv);
  std::cout << "\n(Striping shards the per-basket FAA chain across S "
               "counters; dequeue latency\n drops accordingly until stripe "
               "fall-over and the remaining shared lines\n dominate.)\n";
  return 0;
}
