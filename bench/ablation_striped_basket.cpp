// §8 future-work extension: the striped scalable-dequeue basket.
//
// The paper's conclusion names "designing a basket with scalable dequeue
// operations" as future work. This bench measures our striped-counter
// basket against the paper's single-counter basket on the consumer-only
// workload (Figure 6's regime, where the single FAA is the bottleneck),
// sweeping the stripe count.
#include <iostream>
#include <vector>

#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sim_workload.hpp"
#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "simqueue/sim_sbq.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::simq;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const Value ops = opts.ops == 0 ? 200 : opts.ops;
  const int repeats = opts.repeats == 0 ? 2 : opts.repeats;
  const std::vector<int> threads =
      opts.threads.empty() ? std::vector<int>{4, 8, 16, 24, 32, 44}
                           : opts.threads;

  std::cout << "# 8 (future work): striped scalable-dequeue basket — "
               "consumer-only dequeue latency [ns/op]\n"
            << "# S=1 is the paper's basket; larger S shards the extraction "
               "FAA (" << ops << " ops/thread)\n";
  Table table({"threads", "S=1 (paper)", "S=2", "S=4", "S=8"});
  if (!opts.csv) table.stream_to(std::cout);
  const std::vector<int> stripe_counts{1, 2, 4, 8};
  const std::size_t nrep = static_cast<std::size_t>(repeats);
  const std::size_t cells_per_row = stripe_counts.size() * nrep;
  std::vector<SimRunResult> results(threads.size() * cells_per_row);
  run_sweep_cells(
      threads.size(), cells_per_row, opts.effective_jobs(),
      [&](std::size_t i) {
        const int t = threads[i / cells_per_row];
        const int stripes = stripe_counts[(i % cells_per_row) / nrep];
        const std::uint64_t r = i % nrep;
        sim::MachineConfig mcfg;
        mcfg.cores = t;
        sim::Machine m(mcfg);
        SimSbq::Config qc;
        qc.enqueuers = t;
        qc.dequeuers = t;
        qc.basket_capacity = std::max(44, t);
        qc.extraction_stripes = stripes;
        SimSbq q(m, qc);
        results[i] = run_consumer_only(m, q, /*prefill_producers=*/t,
                                       /*consumers=*/t, ops,
                                       opts.seed + r * 7919);
      },
      [&](std::size_t row) {
        std::vector<double> out{static_cast<double>(threads[row])};
        for (std::size_t si = 0; si < stripe_counts.size(); ++si) {
          Summary lat;
          for (std::size_t r = 0; r < nrep; ++r) {
            lat.add(results[row * cells_per_row + si * nrep + r]
                        .deq_latency_ns(ns_per_cycle()));
          }
          out.push_back(lat.mean());
        }
        table.add_row(out);
      });
  table.print(std::cout, opts.csv);
  std::cout << "\n(Striping shards the per-basket FAA chain across S "
               "counters; dequeue latency\n drops accordingly until stripe "
               "fall-over and the remaining shared lines\n dominate.)\n";
  return 0;
}
