// §8 future-work extension: the striped scalable-dequeue basket.
//
// The paper's conclusion names "designing a basket with scalable dequeue
// operations" as future work. This bench measures our striped-counter
// basket against the paper's single-counter basket on the consumer-only
// workload (Figure 6's regime, where the single FAA is the bottleneck),
// sweeping the stripe count.
#include <fstream>
#include <iostream>
#include <vector>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/metrics_json.hpp"
#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sim_workload.hpp"
#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"
#include "simqueue/sim_sbq.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::simq;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const Value ops = opts.ops_or(200);
  const int repeats = opts.repeats_or(2);
  const std::vector<int> threads = opts.threads_or({4, 8, 16, 24, 32, 44});

  std::cout << "# 8 (future work): striped scalable-dequeue basket — "
               "consumer-only dequeue latency [ns/op]\n"
            << "# S=1 is the paper's basket; larger S shards the extraction "
               "FAA (" << ops << " ops/thread)\n";
  Table table({"threads", "S=1 (paper)", "S=2", "S=4", "S=8"});
  if (!opts.csv) table.stream_to(std::cout);
  const std::vector<int> stripe_counts{1, 2, 4, 8};
  BenchReport report("ablation_striped_basket");
  report.set_sweep_config(opts, threads, ops, repeats);
  report.set("ns_per_cycle", Json(ns_per_cycle()));
  {
    Json js = Json::array();
    for (int s : stripe_counts) js.push_back(Json(s));
    report.set_config("stripe_counts", std::move(js));
  }
  const std::size_t nrep = static_cast<std::size_t>(repeats);
  const std::size_t cells_per_row = stripe_counts.size() * nrep;
  auto run_cell = [&](int t, int stripes, std::uint64_t r,
                      const std::string& trace_path = {}) {
    sim::MachineConfig mcfg;
    mcfg.cores = t;
    mcfg.record_trace = !trace_path.empty();
    bench::apply_machine_options(mcfg, opts);
    bench::apply_cas_policy_options(mcfg, opts);
    if (mcfg.record_trace) mcfg.machine_threads = 1;  // tracing is serial-only
    sim::Machine m(mcfg);
    SimSbq::Config qc;
    qc.enqueuers = t;
    qc.dequeuers = t;
    qc.basket_capacity = std::max(44, t);
    qc.extraction_stripes = stripes;
    SimSbq q(m, qc);
    SimRunResult res = run_consumer_only(m, q, /*prefill_producers=*/t,
                                         /*consumers=*/t, ops,
                                         opts.seed + r * 7919);
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (out) {
        m.trace().write_jsonl(out);
      } else {
        std::cerr << "--trace: cannot open " << trace_path
                  << " for writing\n";
      }
    }
    return res;
  };
  std::vector<SimRunResult> results(threads.size() * cells_per_row);
  run_sweep_cells(
      threads.size(), cells_per_row, opts.effective_jobs(),
      [&](std::size_t i) {
        const int t = threads[i / cells_per_row];
        const int stripes = stripe_counts[(i % cells_per_row) / nrep];
        const std::uint64_t r = i % nrep;
        results[i] = run_cell(t, stripes, r);
      },
      [&](std::size_t row) {
        if (!opts.json_path.empty()) {
          for (std::size_t si = 0; si < stripe_counts.size(); ++si) {
            for (std::size_t r = 0; r < nrep; ++r) {
              const SimRunResult& res =
                  results[row * cells_per_row + si * nrep + r];
              Json cj = Json::object();
              cj.set("threads", Json(threads[row]));
              cj.set("stripes", Json(stripe_counts[si]));
              cj.set("repeat", Json(static_cast<int>(r)));
              cj.set("deq_ops", Json(res.deq_ops));
              cj.set("deq_latency_ns",
                     Json(res.deq_latency_ns(ns_per_cycle())));
              cj.set("duration_cycles",
                     Json(static_cast<std::uint64_t>(res.duration_cycles)));
              cj.set("counters", metrics_to_json(res.metrics));
              report.add_cell(std::move(cj));
            }
          }
        }
        std::vector<double> out{static_cast<double>(threads[row])};
        for (std::size_t si = 0; si < stripe_counts.size(); ++si) {
          Summary lat;
          for (std::size_t r = 0; r < nrep; ++r) {
            lat.add(results[row * cells_per_row + si * nrep + r]
                        .deq_latency_ns(ns_per_cycle()));
          }
          out.push_back(lat.mean());
        }
        table.add_row(out);
      });
  table.print(std::cout, opts.csv);
  std::cout << "\n(Striping shards the per-basket FAA chain across S "
               "counters; dequeue latency\n drops accordingly until stripe "
               "fall-over and the remaining shared lines\n dominate.)\n";
  if (!opts.json_path.empty()) {
    report.add_table("deq_latency_ns", table);
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    // Traced cell: the paper's single-counter basket, smallest thread count.
    run_cell(threads.front(), /*stripes=*/1, 0, opts.trace_path);
  }
  return 0;
}
