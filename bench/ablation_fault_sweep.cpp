// Robustness ablation: abort-injection rate vs. throughput and fallback
// fraction (docs/robustness.md).
//
// The paper's TxCAS argument (§4 "Progress") relies on surviving aborts the
// protocol itself never produces — capacity overflows, timer interrupts,
// spurious events. This driver sweeps the injected non-conflict abort rate
// on a producer-only SBQ-HTM workload (with bounded message jitter on the
// interconnect) and reports, per thread count:
//   * throughput — how gracefully performance degrades as HTM misbehaves;
//   * fallback_cas fraction — how often a TxCAS call degraded to a plain
//     CAS after exhausting its non-conflict abort budget.
// At rate 0 the fault plan stays disabled and the schedule is the default
// byte-identical one; with a fixed --fault-seed any two runs are
// byte-identical to each other (ctest fault_sweep_determinism).
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  if (opts.machine_threads > 1) {
    std::cerr << "note: the fault sweep forces injection (which the sharded "
                 "machine refuses); ignoring --machine-threads\n";
  }
  const std::vector<int> threads = opts.threads_or({4, 16, 32, 44});
  const simq::Value ops = opts.ops_or(200);
  // Top rate 0.8 models "HTM effectively broken": with the default
  // non-conflict abort budget of 8, a call falls back with probability
  // ~0.8^8 per attempt chain, so even tiny smoke sweeps exercise the
  // degraded plain-CAS path (the fault_sweep_determinism ctest asserts a
  // nonzero fallback_cas fraction).
  const std::vector<double> rates{0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8};
  BenchReport report("ablation_fault_sweep");
  report.set_sweep_config(opts, threads, ops, /*repeats=*/1);
  report.set("ns_per_cycle", Json(ns_per_cycle()));
  {
    Json jr = Json::array();
    for (double r : rates) jr.push_back(Json(r));
    report.set_config("fault_rates", std::move(jr));
    report.set_config("fault_seed",
                      Json(static_cast<std::uint64_t>(opts.fault_seed)));
    report.set_config(
        "fault_jitter",
        Json(static_cast<std::uint64_t>(
            opts.fault_jitter == 0 ? 8 : opts.fault_jitter)));
  }

  std::cout << "# Robustness ablation: injected abort rate vs. SBQ-HTM "
            << "enqueue throughput (" << ops << " ops/thread, fault seed "
            << opts.fault_seed << ")\n"
            << "# rate splits 25/50/25 across capacity/interrupt/spurious; "
            << "bounded message jitter active at rate > 0\n";
  std::vector<std::string> columns{"fault_rate", "metric"};
  for (int t : threads) columns.push_back("T=" + std::to_string(t));
  Table table(std::move(columns));
  if (!opts.csv) table.stream_to(std::cout);

  auto make = [&](double rate) {
    sim::MachineConfig mcfg;
    apply_cas_policy_options(mcfg, opts);
    WorkloadSpec spec;
    spec.kind = Workload::kProducerOnly;
    spec.ops_per_thread = ops;
    spec.seed = opts.seed;
    if (rate > 0) {
      BenchOptions fopts = opts;
      fopts.fault_rate = rate;
      if (fopts.fault_jitter == 0) fopts.fault_jitter = 8;
      apply_fault_options(mcfg, fopts);
    }
    return std::pair(mcfg, spec);
  };

  std::vector<SimRunResult> results(rates.size() * threads.size());
  run_sweep_cells(
      rates.size(), threads.size(), opts.effective_jobs(),
      [&](std::size_t i) {
        const int t = threads[i % threads.size()];
        auto [mcfg, spec] = make(rates[i / threads.size()]);
        mcfg.cores = t;
        spec.producers = t;
        results[i] = run_queue_workload(QueueKind::kSbqHtm, mcfg, spec,
                                        {}, snapshot_cache_policy(opts));
      },
      [&](std::size_t row) {
        const double rate = rates[row];
        char rate_buf[32];
        std::snprintf(rate_buf, sizeof rate_buf, "%.2f", rate);
        if (!opts.json_path.empty()) {
          for (std::size_t ti = 0; ti < threads.size(); ++ti) {
            const SimRunResult& r = results[row * threads.size() + ti];
            Json cj = Json::object();
            cj.set("fault_rate", Json(rate));
            cj.set("threads", Json(threads[ti]));
            cj.set("throughput_mops", Json(r.throughput_mops(ns_per_cycle())));
            cj.set("enq_latency_ns", Json(r.enq_latency_ns(ns_per_cycle())));
            const double calls = static_cast<double>(r.metrics.htm.calls);
            cj.set("fallback_cas_fraction",
                   Json(calls > 0
                            ? static_cast<double>(r.metrics.htm.fallback_cas) /
                                  calls
                            : 0.0));
            cj.set("counters", metrics_to_json(r.metrics));
            report.add_cell(std::move(cj));
          }
        }
        std::vector<std::string> thr_row{rate_buf, "throughput_mops"};
        std::vector<std::string> fb_row{rate_buf, "fallback_cas_frac"};
        for (std::size_t ti = 0; ti < threads.size(); ++ti) {
          const SimRunResult& r = results[row * threads.size() + ti];
          char buf[32];
          std::snprintf(buf, sizeof buf, "%.2f",
                        r.throughput_mops(ns_per_cycle()));
          thr_row.push_back(buf);
          const double calls = static_cast<double>(r.metrics.htm.calls);
          std::snprintf(
              buf, sizeof buf, "%.3f",
              calls > 0
                  ? static_cast<double>(r.metrics.htm.fallback_cas) / calls
                  : 0.0);
          fb_row.push_back(buf);
        }
        table.add_row(thr_row);
        table.add_row(fb_row);
      });
  table.print(std::cout, opts.csv);
  if (!opts.json_path.empty()) {
    report.add_table("fault_sweep", table);
    if (!opts.snapshot_cache.empty()) {
      report.set_snapshot_cache(
          cache_mode_name(snapshot_cache_policy(opts).mode));
    }
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    // Traced cell: a mid-sweep rate at the first thread count.
    auto [mcfg, spec] = make(0.1);
    mcfg.cores = threads.front();
    spec.producers = threads.front();
    if (!write_traced_cell(opts.trace_path, QueueKind::kSbqHtm, mcfg, spec)) {
      return 1;
    }
  }
  if (!opts.record_ops.empty()) {
    // Recorded cell: same mid-sweep rate as the traced cell, so a recorded
    // fault-injected schedule can be replayed and bisected (docs/replay.md).
    auto [mcfg, spec] = make(0.1);
    mcfg.cores = threads.front();
    spec.producers = threads.front();
    if (!write_recorded_cell(opts.record_ops, QueueKind::kSbqHtm, mcfg, spec)) {
      return 1;
    }
  }
  if (!opts.replay_ops.empty()) {
    auto [mcfg, spec] = make(0.1);
    mcfg.cores = threads.front();
    (void)spec;
    if (!replay_cell_from_options(opts, mcfg)) return 1;
  }
  return 0;
}
