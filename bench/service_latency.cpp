// Service latency under open-loop load: drive each evaluated queue as a
// broker behind deterministic arrival processes (docs/service.md) and
// report end-to-end sojourn percentiles plus admission accounting per
// (arrival rate x queue) cell.
//
// Unlike the fig*/ablation_* drivers (closed-loop: offered load adapts to
// the queue), the rows here are *offered* arrival rates; past the drain
// capacity the broker saturates, the admission gate trips, and the tables
// show the latency/loss cost of that overload per queue implementation.
//
// Extra options on top of the shared BenchOptions set (which this driver
// strips before BenchOptions::parse, since parse rejects unknown flags):
//   --rates LIST       arrival rates [ops/kcycle], comma separated
//                      (replaces --threads as the row axis; --threads is
//                      rejected here)
//   --arrival NAME     poisson|bursty|ramp|skew        (default poisson)
//   --admission NAME   drop|backpressure               (default drop)
//   --depth N          admission depth limit, 0 = unbounded (default 64)
//   --producers N      load-generator workers          (default 4)
//   --consumers N      drain workers                   (default 2)
//   --batch N          max back-to-back ops per wakeup (default 4)
//   --think N          consumer service time [cycles]  (default 16)
#include <cstring>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "service/broker.hpp"
#include "sim_queue_bench_util.hpp"

namespace {

using namespace sbq;
using namespace sbq::bench;

struct ServiceOptions {
  std::vector<double> rates = {1.0, 4.0, 16.0};
  service::ArrivalConfig arrival;    // kind + shape parameters
  service::AdmissionConfig admission;
  int producers = 4;
  int consumers = 2;
  int batch = 4;
  sim::Time consumer_think = 16;
};

// Split "--opt val" / "--opt=val" service flags out of argv, leaving the
// shared flags for BenchOptions::parse (which throws on anything unknown).
ServiceOptions strip_service_options(int& argc, char** argv) {
  ServiceOptions sopts;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  auto parse_rates = [&](const std::string& v) {
    sopts.rates.clear();
    std::size_t pos = 0;
    while (pos < v.size()) {
      std::size_t comma = v.find(',', pos);
      if (comma == std::string::npos) comma = v.size();
      sopts.rates.push_back(std::stod(v.substr(pos, comma - pos)));
      pos = comma + 1;
    }
    if (sopts.rates.empty()) {
      throw std::invalid_argument("--rates needs at least one rate");
    }
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string name = arg;
    std::string value;
    bool inline_value = false;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      inline_value = true;
    }
    auto take_value = [&]() -> const std::string& {
      if (inline_value) return value;
      if (i + 1 >= argc) {
        throw std::invalid_argument(name + " needs a value");
      }
      value = argv[++i];
      return value;
    };
    if (name == "--rates") {
      parse_rates(take_value());
    } else if (name == "--arrival") {
      sopts.arrival.kind = service::arrival_kind_from_name(take_value());
    } else if (name == "--admission") {
      const std::string& v = take_value();
      if (v == "drop") {
        sopts.admission.policy = service::AdmissionPolicy::kDrop;
      } else if (v == "backpressure") {
        sopts.admission.policy = service::AdmissionPolicy::kBackpressure;
      } else {
        throw std::invalid_argument("--admission wants drop|backpressure");
      }
    } else if (name == "--depth") {
      sopts.admission.depth_limit = std::stoull(take_value());
    } else if (name == "--producers") {
      sopts.producers = std::stoi(take_value());
    } else if (name == "--consumers") {
      sopts.consumers = std::stoi(take_value());
    } else if (name == "--batch") {
      sopts.batch = std::stoi(take_value());
    } else if (name == "--think") {
      sopts.consumer_think = std::stoull(take_value());
    } else {
      rest.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(rest.size());
  for (int i = 0; i < argc; ++i) argv[i] = rest[static_cast<std::size_t>(i)];
  return sopts;
}

// One summarized service cell: the raw counters plus percentile points of
// the retained sojourn/enqueue-latency samples, in nanoseconds.
struct ServiceCell {
  service::ServiceResult raw;
  double sojourn_p50_ns = 0;
  double sojourn_p99_ns = 0;
  double sojourn_p999_ns = 0;
  double enq_p99_ns = 0;
  double reject_fraction = 0;
};

ServiceCell summarize(service::ServiceResult r) {
  ServiceCell cell;
  Summary sojourn, enq;
  r.sojourn.drain_into(sojourn, ns_per_cycle());
  r.enqueue_lat.drain_into(enq, ns_per_cycle());
  cell.sojourn_p50_ns = sojourn.percentile(50);
  cell.sojourn_p99_ns = sojourn.percentile(99);
  cell.sojourn_p999_ns = sojourn.percentile(99.9);
  cell.enq_p99_ns = enq.percentile(99);
  cell.reject_fraction =
      r.offered > 0
          ? static_cast<double>(r.rejected) / static_cast<double>(r.offered)
          : 0.0;
  cell.raw = std::move(r);
  return cell;
}

// The service analogue of WarmedWorkload: build the machine and queue once
// per (rate, queue) group, snapshot at quiescence, and fork every repeat
// from that snapshot (the per-repeat variation is the arrival seed, which
// only run_service consumes).
class WarmedService {
 public:
  WarmedService() = default;

  // Same load-or-build-and-store contract as WarmedWorkload, under the
  // "service-quiesce" key flavor (the queue is snapshotted at quiescence,
  // without a prefill phase).
  WarmedService(QueueKind kind, const sim::MachineConfig& mcfg,
                const WorkloadSpec& qspec,
                const SnapshotCachePolicy& policy = {CacheMode::kOff}) {
    if (policy.mode != CacheMode::kOff && sim::snapshot_cacheable(mcfg)) {
      const SnapshotCache cache(policy.mode, sim::kSnapshotSchemaVersion);
      const std::uint64_t key =
          snapshot_cache_key(kind, mcfg, qspec, "service-quiesce");
      if (from_cache(kind, mcfg, qspec, cache, key)) return;
      warm_cold(kind, mcfg, qspec, &cache, key);
      return;
    }
    warm_cold(kind, mcfg, qspec, nullptr, 0);
  }

  service::ServiceResult run_repeat(const service::ServiceSpec& spec) const {
    return run_(spec);
  }

 private:
  template <typename QueueT>
  void capture(std::shared_ptr<const sim::MachineSnapshot> snap,
               std::shared_ptr<sim::Machine> warm,
               std::shared_ptr<QueueT> proto, int offset) {
    run_ = [snap = std::move(snap), warm = std::move(warm),
            proto = std::move(proto),
            offset](const service::ServiceSpec& spec) {
      auto m = sim::Machine::fork(*snap);
      QueueT fq(*proto);
      fq.rebind(*m);
      return service::run_service(*m, fq, spec, offset);
    };
  }

  bool from_cache(QueueKind kind, const sim::MachineConfig& mcfg,
                  const WorkloadSpec& qspec, const SnapshotCache& cache,
                  std::uint64_t key) {
    auto snap = std::make_shared<sim::MachineSnapshot>();
    auto words = std::make_shared<std::vector<std::uint64_t>>();
    if (!load_warm_snapshot(cache, key, mcfg, *snap, *words)) return false;
    std::shared_ptr<sim::Machine> warm = sim::Machine::fork(*snap);
    const simq::HostWords hw{words->data(), words->size()};
    try {
      with_queue(
          kind, *warm, qspec,
          [&](auto& q, int offset) {
            using QueueT = std::remove_reference_t<decltype(q)>;
            capture<QueueT>(std::shared_ptr<const sim::MachineSnapshot>(snap),
                            std::move(warm),
                            std::make_shared<QueueT>(std::move(q)), offset);
          },
          &hw);
    } catch (const std::out_of_range&) {
      return false;  // host words from a stale queue layout: warm up cold
    }
    return true;
  }

  void warm_cold(QueueKind kind, const sim::MachineConfig& mcfg,
                 const WorkloadSpec& qspec, const SnapshotCache* cache,
                 std::uint64_t key) {
    auto warm = std::make_shared<sim::Machine>(mcfg);
    with_queue(kind, *warm, qspec, [&](auto& q, int offset) {
      using QueueT = std::remove_reference_t<decltype(q)>;
      auto proto = std::make_shared<QueueT>(std::move(q));
      auto snap =
          std::make_shared<const sim::MachineSnapshot>(warm->snapshot());
      if (cache != nullptr) store_warm_snapshot(*cache, key, *snap, *proto);
      capture<QueueT>(std::move(snap), std::move(warm), std::move(proto),
                      offset);
    });
  }

  std::function<service::ServiceResult(const service::ServiceSpec&)> run_;
};

service::ServiceResult run_cold(QueueKind kind, const sim::MachineConfig& mcfg,
                                const WorkloadSpec& qspec,
                                const service::ServiceSpec& spec) {
  sim::Machine m(mcfg);
  return with_queue(kind, m, qspec, [&](auto& q, int offset) {
    return service::run_service(m, q, spec, offset);
  });
}

Json service_cell_json(double rate, QueueKind kind, int repeat,
                       const ServiceOptions& sopts, const ServiceCell& cell) {
  const service::ServiceResult& r = cell.raw;
  Json c = Json::object();
  c.set("rate_per_kcycle", Json(rate));
  c.set("queue", Json(queue_kind_name(kind)));
  c.set("repeat", Json(repeat));
  c.set("arrival", Json(service::arrival_kind_name(sopts.arrival.kind)));
  Json adm = Json::object();
  adm.set("policy",
          Json(service::admission_policy_name(sopts.admission.policy)));
  adm.set("depth_limit", Json(static_cast<double>(sopts.admission.depth_limit)));
  adm.set("offered", Json(static_cast<double>(r.offered)));
  adm.set("accepted", Json(static_cast<double>(r.accepted)));
  adm.set("rejected", Json(static_cast<double>(r.rejected)));
  adm.set("backpressure_waits",
          Json(static_cast<double>(r.backpressure_waits)));
  adm.set("backpressure_cycles",
          Json(static_cast<double>(r.backpressure_cycles)));
  c.set("admission", adm);
  c.set("consumed", Json(static_cast<double>(r.consumed)));
  c.set("sojourn_p50_ns", Json(cell.sojourn_p50_ns));
  c.set("sojourn_p99_ns", Json(cell.sojourn_p99_ns));
  c.set("sojourn_p999_ns", Json(cell.sojourn_p999_ns));
  c.set("enq_p99_ns", Json(cell.enq_p99_ns));
  c.set("reject_fraction", Json(cell.reject_fraction));
  c.set("delivered_mops", Json(r.delivered_mops(ns_per_cycle())));
  c.set("duration_cycles", Json(r.duration_cycles));
  c.set("counters", metrics_to_json(r.metrics));
  return c;
}

}  // namespace

int main(int argc, char** argv) try {
  ServiceOptions sopts = strip_service_options(argc, argv);
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  if (!opts.threads.empty()) {
    std::cerr << "service_latency sweeps --rates, not --threads\n";
    return 1;
  }
  if (opts.machine_threads > 1) {
    // run_service reads host-side admission state mid-run, which is only
    // deterministic under the serial engine.
    std::cerr << "service_latency requires the serial engine "
                 "(--machine-threads 1)\n";
    return 1;
  }
  const std::size_t total_ops = static_cast<std::size_t>(opts.ops_or(400));
  const int repeats = opts.repeats_or(2);
  const std::vector<QueueKind>& queues = evaluated_queue_kinds();

  BenchReport report("service_latency");
  {
    std::vector<int> no_threads;
    report.set_sweep_config(opts, no_threads, total_ops, repeats);
  }
  report.set("ns_per_cycle", Json(ns_per_cycle()));
  {
    Json rates = Json::array();
    for (double r : sopts.rates) rates.push_back(Json(r));
    report.set_config("rates_per_kcycle", rates);
    report.set_config(
        "arrival", Json(service::arrival_kind_name(sopts.arrival.kind)));
    report.set_config(
        "admission",
        Json(service::admission_policy_name(sopts.admission.policy)));
    report.set_config("depth_limit",
                      Json(static_cast<double>(sopts.admission.depth_limit)));
    report.set_config("producers", Json(sopts.producers));
    report.set_config("consumers", Json(sopts.consumers));
    report.set_config("batch", Json(sopts.batch));
    report.set_config("consumer_think",
                      Json(static_cast<double>(sopts.consumer_think)));
  }

  std::cout << "# Service latency under open-loop load ("
            << service::arrival_kind_name(sopts.arrival.kind) << " arrivals, "
            << sopts.producers << "p/" << sopts.consumers << "c, depth "
            << sopts.admission.depth_limit << " "
            << service::admission_policy_name(sopts.admission.policy) << ", "
            << total_ops << " ops, " << repeats << " repeats)\n";

  const std::vector<std::string>& qnames = queue_names();
  std::vector<std::string> columns{"rate"};
  columns.insert(columns.end(), qnames.begin(), qnames.end());
  Table p50_table(columns), p99_table(columns), p999_table(columns),
      reject_table(columns);
  if (!opts.csv) {
    std::cout << "\n## Sojourn p50 [ns] (lower is better)\n";
    p50_table.stream_to(std::cout);
  }

  auto make = [&](std::size_t row, int repeat) {
    sim::MachineConfig mcfg;
    mcfg.cores = sopts.producers + sopts.consumers;
    apply_fault_options(mcfg, opts);
    apply_machine_options(mcfg, opts);
    apply_cas_policy_options(mcfg, opts);
    WorkloadSpec qspec;  // queue sizing only; the broker runs the workload
    qspec.kind = Workload::kMixed;
    qspec.producers = sopts.producers;
    qspec.consumers = sopts.consumers;
    service::ServiceSpec spec;
    spec.arrival = sopts.arrival;
    spec.arrival.rate_per_kcycle = sopts.rates[row];
    spec.arrival.seed = opts.seed + static_cast<std::uint64_t>(repeat) * 7919;
    spec.admission = sopts.admission;
    spec.producers = sopts.producers;
    spec.consumers = sopts.consumers;
    spec.total_ops = total_ops;
    spec.batch = sopts.batch;
    spec.consumer_think = sopts.consumer_think;
    return std::pair(mcfg, spec);
  };

  const std::size_t n_queues = queues.size();
  const std::size_t n_repeats = static_cast<std::size_t>(repeats);
  std::vector<ServiceCell> cells(sopts.rates.size() * n_queues * n_repeats);
  auto cell_at = [&](std::size_t row, std::size_t q,
                     std::size_t r) -> ServiceCell& {
    return cells[(row * n_queues + q) * n_repeats + r];
  };
  auto row_done = [&](std::size_t row) {
    if (!opts.json_path.empty()) {
      for (std::size_t q = 0; q < n_queues; ++q) {
        for (std::size_t r = 0; r < n_repeats; ++r) {
          report.add_cell(service_cell_json(sopts.rates[row], queues[q],
                                            static_cast<int>(r), sopts,
                                            cell_at(row, q, r)));
        }
      }
    }
    std::vector<double> p50_row{sopts.rates[row]};
    std::vector<double> p99_row{sopts.rates[row]};
    std::vector<double> p999_row{sopts.rates[row]};
    std::vector<double> rej_row{sopts.rates[row]};
    for (std::size_t q = 0; q < n_queues; ++q) {
      Summary p50, p99, p999, rej;
      for (std::size_t r = 0; r < n_repeats; ++r) {
        const ServiceCell& c = cell_at(row, q, r);
        p50.add(c.sojourn_p50_ns);
        p99.add(c.sojourn_p99_ns);
        p999.add(c.sojourn_p999_ns);
        rej.add(c.reject_fraction);
      }
      p50_row.push_back(p50.mean());
      p99_row.push_back(p99.mean());
      p999_row.push_back(p999.mean());
      rej_row.push_back(rej.mean());
    }
    p50_table.add_row(p50_row);
    p99_table.add_row(p99_row);
    p999_table.add_row(p999_row);
    reject_table.add_row(rej_row, /*precision=*/3);
  };

  if (effective_cold_start(opts)) {
    run_sweep_cells(
        sopts.rates.size(), n_queues * n_repeats, opts.effective_jobs(),
        [&](std::size_t i) {
          const std::size_t row = i / (n_queues * n_repeats);
          const std::size_t q = (i % (n_queues * n_repeats)) / n_repeats;
          const int repeat = static_cast<int>(i % n_repeats);
          const auto [mcfg, spec] = make(row, repeat);
          WorkloadSpec qspec;
          qspec.kind = Workload::kMixed;
          qspec.producers = sopts.producers;
          qspec.consumers = sopts.consumers;
          cells[i] = summarize(run_cold(queues[q], mcfg, qspec, spec));
        },
        row_done);
  } else {
    std::vector<WarmedService> warmed(sopts.rates.size() * n_queues);
    run_sweep_groups(
        sopts.rates.size(), n_queues, n_repeats, opts.effective_jobs(),
        [&](std::size_t g) {
          const std::size_t row = g / n_queues;
          const auto [mcfg, spec] = make(row, /*repeat=*/0);
          WorkloadSpec qspec;
          qspec.kind = Workload::kMixed;
          qspec.producers = sopts.producers;
          qspec.consumers = sopts.consumers;
          warmed[g] = WarmedService(queues[g % n_queues], mcfg, qspec,
                                    snapshot_cache_policy(opts));
        },
        [&](std::size_t g, std::size_t c) {
          const std::size_t row = g / n_queues;
          const std::size_t q = g % n_queues;
          const auto [mcfg, spec] = make(row, static_cast<int>(c));
          (void)mcfg;
          cell_at(row, q, c) = summarize(warmed[g].run_repeat(spec));
          if (c + 1 == n_repeats) warmed[g] = WarmedService();
        },
        row_done);
  }

  if (opts.csv) {
    std::cout << "\n## Sojourn p50 [ns] (lower is better)\n";
    p50_table.print(std::cout, opts.csv);
  }
  std::cout << "\n## Sojourn p99 [ns]\n";
  p99_table.print(std::cout, opts.csv);
  std::cout << "\n## Sojourn p999 [ns]\n";
  p999_table.print(std::cout, opts.csv);
  std::cout << "\n## Reject fraction (of offered ops)\n";
  reject_table.print(std::cout, opts.csv);
  if (!opts.json_path.empty()) {
    report.add_table("sojourn_p50_ns", p50_table);
    report.add_table("sojourn_p99_ns", p99_table);
    report.add_table("sojourn_p999_ns", p999_table);
    report.add_table("reject_fraction", reject_table);
    if (!opts.snapshot_cache.empty()) {
      report.set_snapshot_cache(
          cache_mode_name(snapshot_cache_policy(opts).mode));
    }
    if (!report.write(opts.json_path)) return 1;
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "service_latency: " << e.what() << "\n";
  return 1;
}
