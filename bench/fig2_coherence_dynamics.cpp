// Figure 2: cache-coherence dynamics of contended CAS vs HTM-based CAS.
//
// The paper's Figure 2 is a message diagram; this benchmark regenerates its
// quantitative content. C cores all hold the target line in Shared state
// and attempt a CAS of the same old value:
//   (2a) standard CAS — every core's RMW completes at a distinct,
//        serialized time (one owner hand-off per core): the completion
//        times form a staircase whose spread grows with C.
//   (2b) HTM-based CAS — the single winner commits; every loser's
//        transaction is aborted by the winner's back-to-back invalidations,
//        i.e. all losers resolve at (nearly) the same instant: the
//        transaction-resolution times are flat.
//
// For 2b we report the *transaction resolution* time (commit or abort,
// extracted from the protocol trace) — that is the event Figure 2 depicts;
// the post-abort delay and value re-check that follow a loser's abort are
// TxCAS bookkeeping, not coherence serialization.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/metrics_json.hpp"
#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "sim/machine.hpp"

namespace sbq {
namespace {

using sim::Addr;
using sim::Machine;
using sim::Task;
using sim::Time;
using sim::Value;

struct Round {
  std::vector<double> resolution_ns;  // per core, relative to round start
  std::uint64_t fwd_getm = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t getm = 0;
  sim::MetricsSnapshot metrics;
};

Round run_round(int cores, bool htm, const std::string& trace_path = {}) {
  sim::MachineConfig mcfg;
  mcfg.cores = cores;
  mcfg.record_trace = true;
  Machine m(mcfg);
  const Addr x = m.alloc();

  // Warm-up: every core loads the line into Shared state.
  for (int c = 0; c < cores; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      co_await m.core(c).load(x);
    }(m, c, x));
  }
  m.run();
  m.trace().clear();
  const auto stats_before = m.directory().stats();
  const Time start = m.engine().now();

  auto done = std::make_shared<std::vector<Time>>(cores, Time{0});
  sim::TxCasConfig tx;
  tx.intra_txn_delay = 300;  // all losers sit in their delay when the
                             // winner's write lands (Figure 2b's setup)
  for (int c = 0; c < cores; ++c) {
    m.spawn([](Machine& m, int c, Addr x, bool htm, sim::TxCasConfig tx,
               std::shared_ptr<std::vector<Time>> done) -> Task<void> {
      co_await m.core(c).think(static_cast<Time>(1 + c * 2));
      if (htm) {
        co_await m.core(c).txcas(x, 0, static_cast<Value>(c) + 1, tx);
      } else {
        co_await m.core(c).cas(x, 0, static_cast<Value>(c) + 1);
        (*done)[static_cast<std::size_t>(c)] = m.engine().now();
      }
    }(m, c, x, htm, tx, done));
  }
  m.run();

  Round r;
  if (htm) {
    // Resolution = first commit-or-abort event per core in the trace.
    std::vector<Time> resolved(static_cast<std::size_t>(cores), Time{0});
    for (const auto& e : m.trace().events()) {
      if (e.addr != x || e.node < 0 || e.node >= cores) continue;
      if (e.is_send || std::strncmp(e.what, "txcas", 5) != 0) continue;
      auto& slot = resolved[static_cast<std::size_t>(e.node)];
      if (slot == 0) slot = e.time;
    }
    for (Time t : resolved) {
      r.resolution_ns.push_back(static_cast<double>(t - start) *
                                ns_per_cycle());
    }
  } else {
    for (Time t : *done) {
      r.resolution_ns.push_back(static_cast<double>(t - start) *
                                ns_per_cycle());
    }
  }
  const auto stats_after = m.directory().stats();
  r.fwd_getm = stats_after.fwd_getm - stats_before.fwd_getm;
  r.invalidations = stats_after.invalidations - stats_before.invalidations;
  r.getm = stats_after.getm - stats_before.getm;
  r.metrics = m.metrics();
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) {
      // The warm-up was cleared above, so this is exactly the CAS round's
      // coherence event stream (the worked example in docs/observability.md).
      m.trace().write_jsonl(out);
    } else {
      std::cerr << "--trace: cannot open " << trace_path << " for writing\n";
    }
  }
  return r;
}

double spread(const Round& r) {
  const auto [lo, hi] =
      std::minmax_element(r.resolution_ns.begin(), r.resolution_ns.end());
  return *hi - *lo;
}

}  // namespace
}  // namespace sbq

int main(int argc, char** argv) {
  using namespace sbq;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  if (opts.machine_threads > 1) {
    std::cerr << "note: fig2 always records the event trace, which needs the "
                 "serial engine; ignoring --machine-threads\n";
  }
  const int cores = opts.first_thread_or(8);

  std::cout << "# Figure 2: coherence dynamics of one contended CAS round ("
            << cores << " cores, all\n# starting from Shared state). "
            << "Times are when each core's operation RESOLVES:\n"
            << "# standard CAS = RMW executed; HTM CAS = transaction "
            << "committed or aborted.\n";

  // The two rounds are independent simulations: run them as parallel cells.
  std::vector<Round> rounds(2);
  run_sweep_cells(1, 2, opts.effective_jobs(), [&](std::size_t i) {
    rounds[i] = run_round(cores, /*htm=*/i == 1);
  });
  const Round& cas = rounds[0];
  const Round& htm = rounds[1];

  Table table({"core", "standard_cas_resolved_ns", "htm_cas_resolved_ns"});
  for (int c = 0; c < cores; ++c) {
    table.add_row({static_cast<double>(c),
                   cas.resolution_ns[static_cast<std::size_t>(c)],
                   htm.resolution_ns[static_cast<std::size_t>(c)]});
  }
  table.print(std::cout, opts.csv);

  std::cout << "\n## Summary\n";
  Table sum({"mode", "resolution_spread_ns", "GetM", "Fwd-GetM", "Inv"});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", spread(cas));
  sum.add_row({"standard CAS (2a)", buf, std::to_string(cas.getm),
               std::to_string(cas.fwd_getm), std::to_string(cas.invalidations)});
  std::snprintf(buf, sizeof buf, "%.1f", spread(htm));
  sum.add_row({"HTM CAS (2b)", buf, std::to_string(htm.getm),
               std::to_string(htm.fwd_getm), std::to_string(htm.invalidations)});
  sum.print(std::cout, opts.csv);
  std::cout << "\n(2a: completions form a serialized staircase — the spread "
               "grows with the core\n count, one Fwd-GetM hand-off per loser. "
               "2b: all losers abort on the winner's\n back-to-back "
               "invalidations — near-zero spread.)\n";
  if (!opts.json_path.empty()) {
    BenchReport report("fig2_coherence_dynamics");
    report.set_config("seed", Json(static_cast<std::uint64_t>(opts.seed)));
    report.set_config("cores", Json(cores));
    report.set("ns_per_cycle", Json(ns_per_cycle()));
    report.add_table("per_core_resolution_ns", table);
    report.add_table("summary", sum);
    const char* names[2] = {"standard_cas", "htm_cas"};
    for (std::size_t i = 0; i < 2; ++i) {
      Json cj = Json::object();
      cj.set("mode", Json(names[i]));
      cj.set("resolution_spread_ns", Json(spread(rounds[i])));
      cj.set("counters", metrics_to_json(rounds[i].metrics));
      report.add_cell(std::move(cj));
    }
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    // Worked trace example (docs/observability.md): the HTM round's events.
    run_round(cores, /*htm=*/true, opts.trace_path);
  }
  return 0;
}
