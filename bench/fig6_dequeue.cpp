// Figure 6: consumer-only workload — dequeue latency for the five evaluated
// queues, draining a pre-filled queue (§6.2 "Consumer-only workload").
//
// Expected shape: no queue scales here (every dequeue pays a contended FAA
// or equivalent). SBQ-HTM tracks the FAA queue within a small constant
// factor (the paper measures ~1.4x at high thread counts, caused by SBQ
// dequeues occasionally performing multiple FAAs on drained baskets);
// CC-Queue and BQ-Original are worse.
#include <iostream>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const std::vector<int> threads = opts.threads_or(default_single_socket_sweep());
  const simq::Value ops = opts.ops_or(200);
  const int repeats = opts.repeats_or(2);
  const std::vector<QueueKind>& queues = evaluated_queue_kinds();
  BenchReport report("fig6_dequeue");
  report.set_sweep_config(opts, threads, ops, repeats);
  report.set("ns_per_cycle", Json(ns_per_cycle()));

  std::cout << "# Figure 6: dequeue-only latency (single socket, pre-filled "
            << "queue, " << ops << " ops/thread, " << repeats << " repeats)\n";
  Table table({"threads", "SBQ-HTM", "SBQ-CAS", "WF-Queue", "BQ-Original",
               "CC-Queue", "MS-Queue"});
  if (!opts.csv) {
    std::cout << "\n## Dequeue latency [ns/op] (lower is better)\n";
    table.stream_to(std::cout);
  }
  auto make = [&](int t, int repeat) {
    sim::MachineConfig mcfg;
    mcfg.cores = t;
    apply_fault_options(mcfg, opts);
    apply_machine_options(mcfg, opts);
    apply_cas_policy_options(mcfg, opts);
    WorkloadSpec spec;
    spec.kind = Workload::kConsumerOnly;
    // The queue is pre-filled by `producers` concurrent enqueuers (the
    // same thread count, matching the paper's setup) before measuring.
    spec.producers = t;
    spec.consumers = t;
    spec.ops_per_thread = ops;
    spec.seed = opts.seed + static_cast<std::uint64_t>(repeat) * 7919;
    // Repeat-independent, so repeats of one (row, queue) group share one
    // warmed snapshot and forking stays byte-identical to --cold-start.
    spec.prefill_seed = opts.seed;
    return std::pair(mcfg, spec);
  };
  run_queue_sweep(
      threads, queues, repeats, opts.effective_jobs(), make,
      [&](std::size_t row, const QueueSweepResults& res) {
        if (!opts.json_path.empty()) {
          add_row_cells(report, row, threads[row], queues, res, ns_per_cycle());
        }
        std::vector<double> out{static_cast<double>(threads[row])};
        for (std::size_t q = 0; q < queues.size(); ++q) {
          Summary lat;
          for (int r = 0; r < repeats; ++r) {
            lat.add(res.at(row, q, static_cast<std::size_t>(r))
                        .deq_latency_ns(ns_per_cycle()));
          }
          out.push_back(lat.mean());
        }
        table.add_row(out);
      },
      effective_cold_start(opts), snapshot_cache_policy(opts));
  if (opts.csv) {
    std::cout << "\n## Dequeue latency [ns/op] (lower is better)\n";
    table.print(std::cout, opts.csv);
  }
  if (!opts.json_path.empty()) {
    report.add_table("deq_latency_ns", table);
    if (!opts.snapshot_cache.empty()) {
      report.set_snapshot_cache(cache_mode_name(snapshot_cache_policy(opts).mode));
    }
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    const auto [mcfg, spec] = make(threads.front(), 0);
    if (!write_traced_cell(opts.trace_path, queues.front(), mcfg, spec)) {
      return 1;
    }
  }
  if (!opts.record_ops.empty()) {
    const auto [mcfg, spec] = make(threads.front(), 0);
    if (!write_recorded_cell(opts.record_ops, queues.front(), mcfg, spec)) {
      return 1;
    }
  }
  if (!opts.replay_ops.empty()) {
    const auto [mcfg, spec] = make(threads.front(), 0);
    (void)spec;
    if (!replay_cell_from_options(opts, mcfg)) return 1;
  }
  return 0;
}
