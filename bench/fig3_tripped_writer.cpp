// Figure 3 / §3.4: the tripped-writer problem and the §3.4.1 fix.
//
// A writer TxCASes a line shared by several cores on a *remote* socket, so
// its commit window (waiting for cross-socket invalidation acks) is wide.
// A reader issues a GetS at a configurable offset into that window. We
// sweep the reader's arrival offset and report, with the microarchitectural
// fix off and on:
//   * whether the writer was tripped (aborted by the Fwd-GetS),
//   * the writer's total TxCAS latency,
//   * how many transactional attempts the writer needed.
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/metrics_json.hpp"
#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "sim/machine.hpp"

namespace sbq {
namespace {

using sim::Addr;
using sim::Machine;
using sim::Task;
using sim::Time;
using sim::Value;

struct Outcome {
  bool tripped = false;
  std::uint64_t stalled = 0;
  std::uint64_t attempts = 0;
  double writer_latency_ns = 0;
  sim::MetricsSnapshot metrics;
};

Outcome run_scenario(Time reader_offset, bool fix,
                     const std::string& trace_path = {}) {
  sim::MachineConfig mcfg;
  mcfg.cores = 10;
  mcfg.sockets = 2;  // cores 0-4 socket 0, cores 5-9 socket 1
  mcfg.uarch_fix = fix;
  mcfg.record_trace = !trace_path.empty();
  Machine m(mcfg);
  const Addr x = m.alloc();

  // Sharers on the remote socket: their Inv-Acks must cross the socket
  // boundary, widening the writer's commit window.
  for (int c = 5; c < 10; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      co_await m.core(c).load(x);
    }(m, c, x));
  }
  m.run();

  sim::TxCasConfig tx;
  tx.intra_txn_delay = 10;
  tx.post_abort_delay = 90;
  auto done_at = std::make_shared<Time>(0);
  auto started_at = std::make_shared<Time>(0);
  m.spawn([](Machine& m, Addr x, sim::TxCasConfig tx,
             std::shared_ptr<Time> start, std::shared_ptr<Time> end)
              -> Task<void> {
    co_await m.core(0).load(x);
    *start = m.engine().now();
    co_await m.core(0).txcas(x, 0, 1, tx);
    *end = m.engine().now();
  }(m, x, tx, started_at, done_at));
  m.spawn([](Machine& m, Addr x, Time offset) -> Task<void> {
    co_await m.core(1).think(offset);
    co_await m.core(1).load(x);
  }(m, x, reader_offset));
  m.run();

  Outcome o;
  o.tripped = m.core(0).stats().tripped_aborts > 0;
  o.stalled = m.core(0).stats().uarch_fix_stalls;
  o.attempts = m.core(0).stats().txcas_attempts;
  o.writer_latency_ns =
      static_cast<double>(*done_at - *started_at) * ns_per_cycle();
  o.metrics = m.metrics();
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) {
      m.trace().write_jsonl(out);
    } else {
      std::cerr << "--trace: cannot open " << trace_path << " for writing\n";
    }
  }
  return o;
}

}  // namespace
}  // namespace sbq

int main(int argc, char** argv) {
  using namespace sbq;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  if (opts.machine_threads > 1) {
    std::cerr << "note: fig3's host-side probe state needs the serial "
                 "engine; ignoring --machine-threads\n";
  }

  std::cout << "# Figure 3: tripped writer — remote reader's GetS arriving "
               "inside the writer's\n# cross-socket commit window, without "
               "and with the proposed uarch fix (3.4.1)\n";
  Table table({"reader_offset_cycles", "tripped(nofix)", "writer_ns(nofix)",
               "attempts(nofix)", "tripped(fix)", "stalls(fix)",
               "writer_ns(fix)", "attempts(fix)"});
  if (!opts.csv) table.stream_to(std::cout);
  const std::vector<Time> offsets{0, 20, 40, 60, 80, 100, 140, 180, 260, 400,
                                  700};
  // One cell per (offset, fix) scenario — each a fresh machine.
  std::vector<Outcome> outcomes(offsets.size() * 2);
  run_sweep_cells(
      offsets.size(), 2, opts.effective_jobs(),
      [&](std::size_t i) {
        outcomes[i] = run_scenario(offsets[i / 2], /*fix=*/(i % 2) != 0);
      },
      [&](std::size_t row) {
        const Outcome& off = outcomes[row * 2];
        const Outcome& on = outcomes[row * 2 + 1];
        table.add_row({std::to_string(offsets[row]),
                       off.tripped ? "yes" : "no",
                       std::to_string(static_cast<int>(off.writer_latency_ns)),
                       std::to_string(off.attempts), on.tripped ? "yes" : "no",
                       std::to_string(on.stalled),
                       std::to_string(static_cast<int>(on.writer_latency_ns)),
                       std::to_string(on.attempts)});
      });
  table.print(std::cout, opts.csv);
  std::cout << "\n(Offsets that land the Fwd-GetS inside the commit window "
               "trip the writer\n without the fix; with the fix the forward "
               "is stalled and the writer commits\n on its first attempt.)\n";
  if (!opts.json_path.empty()) {
    BenchReport report("fig3_tripped_writer");
    report.set_config("seed", Json(static_cast<std::uint64_t>(opts.seed)));
    Json joff = Json::array();
    for (Time t : offsets) joff.push_back(Json(static_cast<std::uint64_t>(t)));
    report.set_config("reader_offsets_cycles", std::move(joff));
    report.set("ns_per_cycle", Json(ns_per_cycle()));
    report.add_table("tripped_writer", table);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      Json cj = Json::object();
      cj.set("reader_offset_cycles",
             Json(static_cast<std::uint64_t>(offsets[i / 2])));
      cj.set("uarch_fix", Json((i % 2) != 0));
      cj.set("tripped", Json(outcomes[i].tripped));
      cj.set("uarch_fix_stalls", Json(outcomes[i].stalled));
      cj.set("writer_attempts", Json(outcomes[i].attempts));
      cj.set("writer_latency_ns", Json(outcomes[i].writer_latency_ns));
      cj.set("counters", metrics_to_json(outcomes[i].metrics));
      report.add_cell(std::move(cj));
    }
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    // Traced cell: an offset known to land inside the commit window, fix
    // off — the §3.4 tripped-writer timeline (docs/protocol.md §3.4.1).
    run_scenario(/*reader_offset=*/180, /*fix=*/false, opts.trace_path);
  }
  return 0;
}
