// §4.3 ablation: TxCAS across NUMA domains, in the presence of readers.
//
// Tripped writers need a *reader* whose GetS lands in a writer's commit
// window — in SBQ that reader is a dequeuer (or a tail-chasing enqueuer)
// polling the tail node's link word. This benchmark runs a few TxCAS
// writers (always on socket 0, per the paper's rule that TxCASs of a
// location stay on one socket) against polling readers placed either on
// the same socket or on the remote socket, and reports mean TxCAS latency,
// transactional attempts per call, and tripped-writer aborts per call —
// without and with the §3.4.1 fix.
//
// Expected: remote readers widen the hit probability of the commit window
// (cross-socket invalidation acks hold it open longer), inflating
// attempts/call; the fix restores first-attempt commits.
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/metrics_json.hpp"
#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/rng.hpp"
#include "sim/machine.hpp"

namespace sbq {
namespace {

using sim::Addr;
using sim::Machine;
using sim::Task;
using sim::Time;
using sim::Value;

struct Result {
  double latency_ns = 0;
  double attempts_per_call = 0;
  double tripped_per_call = 0;
  double stalls_per_call = 0;
  sim::MetricsSnapshot metrics;
};

Result run(int writers, int readers, bool remote_readers, bool fix,
           sim::InterconnectModel net, Value ops, std::uint64_t seed,
           const std::string& trace_path = {}) {
  sim::MachineConfig mcfg;
  mcfg.cores = 2 * (writers + readers);
  mcfg.sockets = 2;
  mcfg.uarch_fix = fix;
  mcfg.interconnect_model = net;
  mcfg.record_trace = !trace_path.empty();
  Machine m(mcfg);
  const int per_socket = mcfg.cores / 2;
  const Addr x = m.alloc();

  auto lat = std::make_shared<double>(0);
  auto n = std::make_shared<std::uint64_t>(0);
  auto writers_left = std::make_shared<int>(writers);
  const sim::TxCasConfig tx;  // defaults (post-abort delay tuned intra-socket)

  for (int w = 0; w < writers; ++w) {
    m.spawn([](Machine& m, int c, Addr x, sim::TxCasConfig tx, Value ops,
               std::uint64_t seed, std::shared_ptr<double> lat,
               std::shared_ptr<std::uint64_t> n,
               std::shared_ptr<int> left) -> Task<void> {
      Xoshiro256 rng(seed);
      co_await m.core(c).think(1 + rng.next_below(64));
      for (Value j = 0; j < ops; ++j) {
        const Value v = co_await m.core(c).load(x);
        const Time t0 = m.engine().now();
        co_await m.core(c).txcas(x, v, v + 1, tx);
        *lat += static_cast<double>(m.engine().now() - t0);
        ++*n;
        co_await m.core(c).think(1 + rng.next_below(64));
      }
      --*left;
    }(m, w, x, tx, ops, seed + static_cast<std::uint64_t>(w), lat, n,
      writers_left));
  }
  for (int r = 0; r < readers; ++r) {
    const int core = remote_readers ? per_socket + r : writers + r;
    m.spawn([](Machine& m, int c, Addr x, std::uint64_t seed,
               std::shared_ptr<int> writers_left) -> Task<void> {
      Xoshiro256 rng(seed);
      while (*writers_left > 0) {
        co_await m.core(c).load(x);
        co_await m.core(c).think(20 + rng.next_below(60));
      }
    }(m, core, x, seed * 31 + static_cast<std::uint64_t>(r), writers_left));
  }
  m.run();

  std::uint64_t attempts = 0, calls = 0, tripped = 0, stalls = 0;
  for (int c = 0; c < mcfg.cores; ++c) {
    attempts += m.core(c).stats().txcas_attempts;
    calls += m.core(c).stats().txcas_calls;
    tripped += m.core(c).stats().tripped_aborts;
    stalls += m.core(c).stats().uarch_fix_stalls;
  }
  Result res;
  res.latency_ns = *lat / static_cast<double>(*n) * 0.4;
  res.attempts_per_call =
      static_cast<double>(attempts) / static_cast<double>(calls);
  res.tripped_per_call =
      static_cast<double>(tripped) / static_cast<double>(calls);
  res.stalls_per_call =
      static_cast<double>(stalls) / static_cast<double>(calls);
  res.metrics = m.metrics();
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) {
      m.trace().write_jsonl(out);
    } else {
      std::cerr << "--trace: cannot open " << trace_path << " for writing\n";
    }
  }
  return res;
}

}  // namespace
}  // namespace sbq

int main(int argc, char** argv) {
  using namespace sbq;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  if (opts.machine_threads > 1) {
    std::cerr << "note: the NUMA ablation's kLink sweeps poll host-side "
                 "state; ignoring --machine-threads\n";
  }
  const sim::Value ops = opts.ops_or(400);

  // Every interconnect parameter the swept machines use goes in the header
  // (and the JSON config below): the flat/link divergence is meaningless
  // without the link's bandwidth figures next to it.
  const sim::MachineConfig defaults;
  std::cout << "# 4.3 ablation: TxCAS writers (socket 0) with polling "
               "readers, local vs remote\n# (" << ops
            << " writer ops each; readers poll the TxCAS target)\n"
            << "# interconnect: sockets=2 intra_latency="
            << defaults.intra_latency
            << " inter_latency=" << defaults.inter_latency
            << " link_occupancy=" << defaults.link_occupancy
            << " models=flat,link\n";
  Table table({"writers", "readers", "reader_socket", "net", "fix",
               "latency_ns", "attempts/call", "tripped/call",
               "fix_stalls/call"});
  if (!opts.csv) table.stream_to(std::cout);
  struct Combo {
    int writers;
    int readers;
    bool remote;
    sim::InterconnectModel net;
    bool fix;
  };
  std::vector<Combo> combos;
  for (int writers : {1, 2, 4}) {
    for (int readers : {2, 6}) {
      for (bool remote : {false, true}) {
        for (sim::InterconnectModel net :
             {sim::InterconnectModel::kFlat, sim::InterconnectModel::kLink}) {
          for (bool fix : {false, true}) {
            combos.push_back({writers, readers, remote, net, fix});
          }
        }
      }
    }
  }
  BenchReport report("ablation_numa");
  report.set_config("seed", Json(static_cast<std::uint64_t>(opts.seed)));
  report.set_config("ops_per_writer", Json(static_cast<std::uint64_t>(ops)));
  report.set_config("sockets", Json(2));
  report.set_config("intra_latency",
                    Json(static_cast<std::uint64_t>(defaults.intra_latency)));
  report.set_config("inter_latency",
                    Json(static_cast<std::uint64_t>(defaults.inter_latency)));
  report.set_config("link_occupancy",
                    Json(static_cast<std::uint64_t>(defaults.link_occupancy)));
  {
    Json models = Json::array();
    models.push_back(Json("flat"));
    models.push_back(Json("link"));
    report.set_config("interconnect_models", std::move(models));
  }
  report.set("ns_per_cycle", Json(ns_per_cycle()));
  std::vector<Result> results(combos.size());
  run_sweep_cells(
      combos.size(), 1, opts.effective_jobs(),
      [&](std::size_t i) {
        const Combo& c = combos[i];
        results[i] = run(c.writers, c.readers, c.remote, c.fix, c.net, ops,
                         opts.seed);
      },
      [&](std::size_t row) {
        const Combo& c = combos[row];
        const Result& r = results[row];
        const bool link = c.net == sim::InterconnectModel::kLink;
        if (!opts.json_path.empty()) {
          Json cj = Json::object();
          cj.set("writers", Json(c.writers));
          cj.set("readers", Json(c.readers));
          cj.set("reader_socket", Json(c.remote ? "remote" : "local"));
          cj.set("interconnect", Json(link ? "link" : "flat"));
          cj.set("uarch_fix", Json(c.fix));
          cj.set("latency_ns", Json(r.latency_ns));
          cj.set("attempts_per_call", Json(r.attempts_per_call));
          cj.set("tripped_per_call", Json(r.tripped_per_call));
          cj.set("fix_stalls_per_call", Json(r.stalls_per_call));
          cj.set("counters", metrics_to_json(r.metrics));
          report.add_cell(std::move(cj));
        }
        char lat[32], att[32], trip[32], st[32];
        std::snprintf(lat, sizeof lat, "%.1f", r.latency_ns);
        std::snprintf(att, sizeof att, "%.2f", r.attempts_per_call);
        std::snprintf(trip, sizeof trip, "%.3f", r.tripped_per_call);
        std::snprintf(st, sizeof st, "%.3f", r.stalls_per_call);
        table.add_row({std::to_string(c.writers), std::to_string(c.readers),
                       c.remote ? "remote" : "local", link ? "link" : "flat",
                       c.fix ? "on" : "off", lat, att, trip, st});
      });
  table.print(std::cout, opts.csv);
  std::cout << "\n(Remote readers hold the commit window open across the "
               "interconnect and trip\n writers; the 3.4.1 fix converts "
               "trips into stalls and restores ~1 attempt/call.)\n";
  if (!opts.json_path.empty()) {
    report.add_table("numa_ablation", table);
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    // Traced cell: remote readers, link model, fix off — the contended
    // cross-socket trip pattern.
    run(/*writers=*/1, /*readers=*/2, /*remote_readers=*/true, /*fix=*/false,
        sim::InterconnectModel::kLink, ops, opts.seed, opts.trace_path);
  }
  return 0;
}
