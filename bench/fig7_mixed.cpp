// Figure 7: mixed producer/consumer workload across two sockets —
// normalized total duration (ns per operation) for the five evaluated
// queues (§6.2 "Mixed workload").
//
// Setup mirrors the paper: producers pinned to socket 0, consumers to
// socket 1 (TxCASs of the tail all execute on socket 0, §4.3), the queue
// pre-filled so consumers rarely find it empty. Expected shape: the SBQ
// variants and WF-Queue lead; SBQ-HTM overtakes WF-Queue at high total
// thread counts by a modest factor (the paper reports 1.16x at 88).
#include <iostream>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  std::vector<int> threads = opts.threads_or(default_dual_socket_sweep());
  // The mixed workload needs at least one producer and one consumer.
  std::erase_if(threads, [](int total) { return total / 2 < 1; });
  const simq::Value ops = opts.ops_or(200);
  const int repeats = opts.repeats_or(2);
  const std::vector<QueueKind>& queues = evaluated_queue_kinds();
  BenchReport report("fig7_mixed");
  report.set_sweep_config(opts, threads, ops, repeats);
  report.set("ns_per_cycle", Json(ns_per_cycle()));

  std::cout << "# Figure 7: mixed workload normalized duration (producers on "
            << "socket 0, consumers on socket 1, " << ops
            << " ops/thread, " << repeats << " repeats)\n";
  Table table({"threads", "SBQ-HTM", "SBQ-CAS", "WF-Queue", "BQ-Original",
               "CC-Queue", "MS-Queue"});
  if (!opts.csv) {
    std::cout << "\n## Normalized duration [ns/op] (lower is better)\n";
    table.stream_to(std::cout);
  }
  auto make = [&](int total, int repeat) {
    const int half = total / 2;
    sim::MachineConfig mcfg;
    mcfg.cores = total;
    mcfg.sockets = 2;
    apply_fault_options(mcfg, opts);
    apply_machine_options(mcfg, opts);
    apply_cas_policy_options(mcfg, opts);
    WorkloadSpec spec;
    spec.kind = Workload::kMixed;
    spec.producers = half;
    spec.consumers = half;
    spec.ops_per_thread = ops;
    spec.prefill = static_cast<simq::Value>(half) * ops / 2;
    spec.seed = opts.seed + static_cast<std::uint64_t>(repeat) * 7919;
    // Repeat-independent, so repeats of one (row, queue) group share one
    // warmed snapshot and forking stays byte-identical to --cold-start.
    spec.prefill_seed = opts.seed;
    return std::pair(mcfg, spec);
  };
  run_queue_sweep(
      threads, queues, repeats, opts.effective_jobs(), make,
      [&](std::size_t row, const QueueSweepResults& res) {
        if (!opts.json_path.empty()) {
          add_row_cells(report, row, threads[row], queues, res, ns_per_cycle());
        }
        const int total = threads[row];
        std::vector<double> out{static_cast<double>(total)};
        for (std::size_t q = 0; q < queues.size(); ++q) {
          Summary dur;
          for (int r = 0; r < repeats; ++r) {
            const SimRunResult& cell =
                res.at(row, q, static_cast<std::size_t>(r));
            const double total_ops =
                static_cast<double>(cell.enq_ops + cell.deq_ops);
            dur.add(cell.duration_cycles * ns_per_cycle() / total_ops *
                    static_cast<double>(total));
          }
          out.push_back(dur.mean());
        }
        table.add_row(out);
      },
      effective_cold_start(opts), snapshot_cache_policy(opts));
  if (opts.csv) {
    std::cout << "\n## Normalized duration [ns/op] (lower is better)\n";
    table.print(std::cout, opts.csv);
  }
  if (!opts.json_path.empty()) {
    report.add_table("normalized_duration_ns", table);
    if (!opts.snapshot_cache.empty()) {
      report.set_snapshot_cache(cache_mode_name(snapshot_cache_policy(opts).mode));
    }
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty() && !threads.empty()) {
    const auto [mcfg, spec] = make(threads.front(), 0);
    if (!write_traced_cell(opts.trace_path, queues.front(), mcfg, spec)) {
      return 1;
    }
  }
  if (!opts.record_ops.empty() && !threads.empty()) {
    const auto [mcfg, spec] = make(threads.front(), 0);
    if (!write_recorded_cell(opts.record_ops, queues.front(), mcfg, spec)) {
      return 1;
    }
  }
  if (!opts.replay_ops.empty() && !threads.empty()) {
    const auto [mcfg, spec] = make(threads.front(), 0);
    (void)spec;
    if (!replay_cell_from_options(opts, mcfg)) return 1;
  }
  return 0;
}
