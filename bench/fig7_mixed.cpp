// Figure 7: mixed producer/consumer workload across two sockets —
// normalized total duration (ns per operation) for the five evaluated
// queues (§6.2 "Mixed workload").
//
// Setup mirrors the paper: producers pinned to socket 0, consumers to
// socket 1 (TxCASs of the tail all execute on socket 0, §4.3), the queue
// pre-filled so consumers rarely find it empty. Expected shape: the SBQ
// variants and WF-Queue lead; SBQ-HTM overtakes WF-Queue at high total
// thread counts by a modest factor (the paper reports 1.16x at 88).
#include <iostream>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  std::vector<int> threads =
      opts.threads.empty() ? default_dual_socket_sweep() : opts.threads;
  // The mixed workload needs at least one producer and one consumer.
  std::erase_if(threads, [](int total) { return total / 2 < 1; });
  const simq::Value ops = opts.ops == 0 ? 200 : opts.ops;
  const int repeats = opts.repeats == 0 ? 2 : opts.repeats;
  const std::vector<QueueKind>& queues = evaluated_queue_kinds();

  std::cout << "# Figure 7: mixed workload normalized duration (producers on "
            << "socket 0, consumers on socket 1, " << ops
            << " ops/thread, " << repeats << " repeats)\n";
  Table table({"threads", "SBQ-HTM", "SBQ-CAS", "WF-Queue", "BQ-Original",
               "CC-Queue", "MS-Queue"});
  if (!opts.csv) {
    std::cout << "\n## Normalized duration [ns/op] (lower is better)\n";
    table.stream_to(std::cout);
  }
  run_queue_sweep(
      threads, queues, repeats, opts.effective_jobs(),
      [&](int total, int repeat) {
        const int half = total / 2;
        sim::MachineConfig mcfg;
        mcfg.cores = total;
        mcfg.sockets = 2;
        WorkloadSpec spec;
        spec.kind = Workload::kMixed;
        spec.producers = half;
        spec.consumers = half;
        spec.ops_per_thread = ops;
        spec.prefill = static_cast<simq::Value>(half) * ops / 2;
        spec.seed = opts.seed + static_cast<std::uint64_t>(repeat) * 7919;
        return std::pair(mcfg, spec);
      },
      [&](std::size_t row, const QueueSweepResults& res) {
        const int total = threads[row];
        std::vector<double> out{static_cast<double>(total)};
        for (std::size_t q = 0; q < queues.size(); ++q) {
          Summary dur;
          for (int r = 0; r < repeats; ++r) {
            const SimRunResult& cell =
                res.at(row, q, static_cast<std::size_t>(r));
            const double total_ops =
                static_cast<double>(cell.enq_ops + cell.deq_ops);
            dur.add(cell.duration_cycles * ns_per_cycle() / total_ops *
                    static_cast<double>(total));
          }
          out.push_back(dur.mean());
        }
        table.add_row(out);
      });
  if (opts.csv) {
    std::cout << "\n## Normalized duration [ns/op] (lower is better)\n";
    table.print(std::cout, opts.csv);
  }
  return 0;
}
