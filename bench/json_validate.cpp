// Bench-artifact validator: runs a bench driver command, then parses the
// JSON artifact it wrote and checks it against the sbq.bench/1 schema
// (docs/observability.md "BENCH_*.json"). Used by the `bench_json_*` ctest
// entries so every driver's --json output stays machine-readable.
//
// Usage:
//   json_validate FILE [--schema sbq.bench/1] [--min-cells N]
//                 [--service-cells] -- CMD ARGS...
//
// --service-cells additionally checks every cell against the service_latency
// cell shape (docs/service.md): an "admission" object whose counters satisfy
// the conservation identity offered == accepted + rejected, a reject
// fraction in [0, 1], and monotone sojourn percentiles p50 <= p99 <= p999.
//
// --policy-cells checks every cell carrying a "counters" object against the
// TxCAS conservation identities (docs/architecture.md "Contention policy
// layer"): htm.attempts == htm.commits + sum(htm.aborts), fallbacks +
// fallback_cas <= calls, and — when the gated "cas_policy" block is present —
// the policy's decision counters must agree with the htm counters
// (txn_steps == attempts, budget_fallbacks == fallbacks,
// degraded_fallbacks == fallback_cas).
//
// Exit status: 0 if CMD succeeded and FILE parses and conforms; 1 otherwise.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/json.hpp"

namespace {

int fail(const std::string& why) {
  std::cerr << "json_validate: " << why << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using sbq::Json;
  std::string file;
  std::string schema = sbq::BenchReport::kSchema;
  long min_cells = 0;
  bool service_cells = false;
  bool policy_cells = false;
  std::vector<std::string> cmd;
  bool after_dashes = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (after_dashes) {
      cmd.push_back(a);
    } else if (a == "--") {
      after_dashes = true;
    } else if (a == "--schema" && i + 1 < argc) {
      schema = argv[++i];
    } else if (a == "--min-cells" && i + 1 < argc) {
      min_cells = std::strtol(argv[++i], nullptr, 10);
    } else if (a == "--service-cells") {
      service_cells = true;
    } else if (a == "--policy-cells") {
      policy_cells = true;
    } else if (file.empty()) {
      file = a;
    } else {
      return fail("unexpected argument: " + a);
    }
  }
  if (file.empty() || cmd.empty()) {
    return fail(
        "usage: json_validate FILE [--schema S] [--min-cells N] -- CMD...");
  }

  std::string cmdline;
  for (const std::string& part : cmd) {
    if (!cmdline.empty()) cmdline += ' ';
    cmdline += part;
  }
  const int rc = std::system(cmdline.c_str());
  if (rc != 0) {
    return fail("driver command failed (" + std::to_string(rc) +
                "): " + cmdline);
  }

  std::ifstream in(file);
  if (!in) return fail("artifact not written: " + file);
  std::stringstream buf;
  buf << in.rdbuf();

  Json root;
  try {
    root = Json::parse(buf.str());
  } catch (const std::exception& e) {
    return fail("artifact is not valid JSON: " + std::string(e.what()));
  }

  // sbq.bench/1 required shape. Json accessors throw on type mismatch;
  // treat that as a schema violation, not a crash.
  try {
  if (root.type() != Json::Type::kObject) return fail("root is not an object");
  if (!root["schema"].is_string() || root["schema"].as_string() != schema) {
    return fail("schema mismatch: expected \"" + schema + "\"");
  }
  if (root["bench"].type() != Json::Type::kString ||
      root["bench"].as_string().empty()) {
    return fail("missing or empty \"bench\" name");
  }
  if (root["config"].type() != Json::Type::kObject) {
    return fail("missing \"config\" object");
  }
  if (root["tables"].type() != Json::Type::kObject) {
    return fail("missing \"tables\" object");
  }
  for (const auto& [name, table] : root["tables"].items()) {
    if (table["columns"].type() != Json::Type::kArray ||
        table["columns"].size() == 0) {
      return fail("table \"" + name + "\" has no columns");
    }
    if (table["rows"].type() != Json::Type::kArray) {
      return fail("table \"" + name + "\" has no rows array");
    }
    for (std::size_t r = 0; r < table["rows"].size(); ++r) {
      if (table["rows"].at(r).size() != table["columns"].size()) {
        return fail("table \"" + name + "\" row " + std::to_string(r) +
                    " width != column count");
      }
    }
  }
  if (root["cells"].type() != Json::Type::kArray) {
    return fail("missing \"cells\" array");
  }
  if (static_cast<long>(root["cells"].size()) < min_cells) {
    return fail("expected at least " + std::to_string(min_cells) +
                " cells, got " + std::to_string(root["cells"].size()));
  }
  for (std::size_t i = 0; i < root["cells"].size(); ++i) {
    if (root["cells"].at(i).type() != Json::Type::kObject) {
      return fail("cell " + std::to_string(i) + " is not an object");
    }
    if (policy_cells) {
      const Json& cell = root["cells"].at(i);
      if (cell["counters"].is_object()) {
        const std::string where = "policy cell " + std::to_string(i);
        const Json& htm = cell["counters"]["htm"];
        if (!htm.is_object()) return fail(where + " has no htm counters");
        const double calls = htm["calls"].as_double();
        const double attempts = htm["attempts"].as_double();
        const double commits = htm["commits"].as_double();
        double aborts = 0;
        for (const auto& [cause, n] : htm["aborts"].items()) {
          (void)cause;
          aborts += n.as_double();
        }
        if (attempts != commits + aborts) {
          return fail(where + " violates attempt conservation: attempts " +
                      std::to_string(attempts) + " != commits " +
                      std::to_string(commits) + " + aborts " +
                      std::to_string(aborts));
        }
        const double fallbacks = htm["fallbacks"].as_double();
        const Json& policy = cell["counters"]["cas_policy"];
        const double fallback_cas = policy.is_object()
                                        ? policy["fallback_cas"].as_double()
                                        : (htm["fallback_cas"].is_number()
                                               ? htm["fallback_cas"].as_double()
                                               : 0.0);
        if (fallbacks + fallback_cas > calls) {
          return fail(where + " has more fallbacks (" +
                      std::to_string(fallbacks) + " + " +
                      std::to_string(fallback_cas) + " degraded) than calls (" +
                      std::to_string(calls) + ")");
        }
        if (policy.is_object()) {
          if (policy["txn_steps"].as_double() != attempts) {
            return fail(where + " policy txn_steps " +
                        std::to_string(policy["txn_steps"].as_double()) +
                        " != htm attempts " + std::to_string(attempts));
          }
          if (policy["budget_fallbacks"].as_double() != fallbacks) {
            return fail(where + " policy budget_fallbacks != htm fallbacks");
          }
          if (policy["degraded_fallbacks"].as_double() != fallback_cas) {
            return fail(where +
                        " policy degraded_fallbacks != htm fallback_cas");
          }
        }
      }
    }
    if (!service_cells) continue;
    const Json& cell = root["cells"].at(i);
    const std::string where = "service cell " + std::to_string(i);
    if (!cell["admission"].is_object()) {
      return fail(where + " has no \"admission\" object");
    }
    const Json& adm = cell["admission"];
    const double offered = adm["offered"].as_double();
    const double accepted = adm["accepted"].as_double();
    const double rejected = adm["rejected"].as_double();
    if (offered != accepted + rejected) {
      return fail(where + " violates admission conservation: offered " +
                  std::to_string(offered) + " != accepted " +
                  std::to_string(accepted) + " + rejected " +
                  std::to_string(rejected));
    }
    const double rej_frac = cell["reject_fraction"].as_double();
    if (!(rej_frac >= 0.0 && rej_frac <= 1.0)) {
      return fail(where + " reject_fraction out of [0, 1]");
    }
    const double p50 = cell["sojourn_p50_ns"].as_double();
    const double p99 = cell["sojourn_p99_ns"].as_double();
    const double p999 = cell["sojourn_p999_ns"].as_double();
    if (!(p50 >= 0.0 && p50 <= p99 && p99 <= p999)) {
      return fail(where + " sojourn percentiles not monotone: p50 " +
                  std::to_string(p50) + ", p99 " + std::to_string(p99) +
                  ", p999 " + std::to_string(p999));
    }
  }
  std::cout << "json_validate: " << file << " ok (" << root["cells"].size()
            << " cells, " << root["tables"].size() << " tables)\n";
  } catch (const std::exception& e) {
    return fail("artifact violates " + schema + ": " + e.what());
  }
  return 0;
}
