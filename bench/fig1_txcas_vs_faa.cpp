// Figure 1: TxCAS vs standard atomic operation latency.
//
// Reproduces the paper's headline microbenchmark: threads hammer a single
// shared word, once with FAA (the fastest standard RMW) and once with
// TxCAS. FAA latency grows linearly with the thread count because M-state
// ownership hand-offs are serialized (§3.2); TxCAS latency is dominated by
// the intra-transaction delay but stays roughly constant because failures
// abort concurrently (§3.3).
//
// Output columns: threads, FAA ns/op, TxCAS ns/op (and TxCAS success rate
// for context; the paper plots only the latencies).
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/metrics_json.hpp"
#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/machine.hpp"
#include "sim_queue_bench_util.hpp"

namespace sbq {
namespace {

using sim::Addr;
using sim::Machine;
using sim::Task;
using sim::Time;
using sim::Value;

// Loop tasks may run on different machine-worker threads under sharding, so
// the shared accumulators are relaxed atomics over integer cycle counts.
// Integer addition commutes, the totals stay far below 2^53, and every
// per-op delta is an exact double, so converting the final sums reproduces
// the old sequential double accumulation bit-for-bit — the serial goldens
// are unchanged.
struct LoopStats {
  std::atomic<std::uint64_t> latency_cycles{0};
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> success{0};
};

Task<void> faa_loop(Machine& m, int core, Addr x, Value ops,
                    std::uint64_t seed, std::shared_ptr<LoopStats> st) {
  Xoshiro256 rng(seed);
  auto& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  for (Value i = 0; i < ops; ++i) {
    const Time start = c.now();
    co_await c.faa(x, 1);
    st->latency_cycles.fetch_add(c.now() - start, std::memory_order_relaxed);
    st->ops.fetch_add(1, std::memory_order_relaxed);
    st->success.fetch_add(1, std::memory_order_relaxed);
    co_await c.think(1 + rng.next_below(8));
  }
}

Task<void> txcas_loop(Machine& m, int core, Addr x, Value ops,
                      std::uint64_t seed, std::shared_ptr<LoopStats> st) {
  Xoshiro256 rng(seed);
  auto& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  const sim::TxCasConfig cfg;  // paper defaults: ~270 ns delay
  for (Value i = 0; i < ops; ++i) {
    const Value v = co_await c.load(x);
    const Time start = c.now();
    const bool ok = co_await c.txcas(x, v, v + 1, cfg);
    st->latency_cycles.fetch_add(c.now() - start, std::memory_order_relaxed);
    st->ops.fetch_add(1, std::memory_order_relaxed);
    if (ok) st->success.fetch_add(1, std::memory_order_relaxed);
    co_await c.think(1 + rng.next_below(8));
  }
}

double run_mode(const BenchOptions& opts, bool txcas, int threads, Value ops,
                std::uint64_t seed, double* success_rate,
                sim::MetricsSnapshot* metrics = nullptr,
                const std::string& trace_path = {}) {
  sim::MachineConfig mcfg;
  mcfg.cores = threads;
  mcfg.record_trace = !trace_path.empty();
  bench::apply_machine_options(mcfg, opts);
  bench::apply_cas_policy_options(mcfg, opts);
  if (mcfg.record_trace) mcfg.machine_threads = 1;  // tracing is serial-only
  Machine m(mcfg);
  const Addr x = m.alloc();
  auto st = std::make_shared<LoopStats>();
  for (int t = 0; t < threads; ++t) {
    if (txcas) {
      m.spawn(txcas_loop(m, t, x, ops, seed + static_cast<std::uint64_t>(t), st),
              t);
    } else {
      m.spawn(faa_loop(m, t, x, ops, seed + static_cast<std::uint64_t>(t), st),
              t);
    }
  }
  m.run();
  if (metrics != nullptr) *metrics = m.metrics();
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) {
      m.trace().write_jsonl(out);
    } else {
      std::cerr << "--trace: cannot open " << trace_path << " for writing\n";
    }
  }
  const std::uint64_t nops = st->ops.load(std::memory_order_relaxed);
  if (success_rate != nullptr) {
    *success_rate =
        nops ? static_cast<double>(st->success.load(std::memory_order_relaxed)) /
                   static_cast<double>(nops)
             : 0.0;
  }
  return static_cast<double>(st->latency_cycles.load(std::memory_order_relaxed)) /
         static_cast<double>(nops) * ns_per_cycle();
}

}  // namespace
}  // namespace sbq

int main(int argc, char** argv) {
  using namespace sbq;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const std::vector<int> threads = opts.threads_or(default_single_socket_sweep());
  const sim::Value ops = opts.ops_or(400);
  const int repeats = opts.repeats_or(3);
  BenchReport report("fig1_txcas_vs_faa");
  report.set_sweep_config(opts, threads, ops, repeats);
  report.set("ns_per_cycle", Json(ns_per_cycle()));

  std::cout << "# Figure 1: TxCAS vs. standard atomic operation latency\n"
            << "# single socket, one contended word, " << ops
            << " ops/thread, " << repeats << " repeats\n";
  Table table({"threads", "faa_ns_op", "txcas_ns_op", "txcas_success_rate"});
  if (!opts.csv) table.stream_to(std::cout);

  // One sweep cell per (thread count, repeat, mode); each runs its own
  // deterministic machine, so cells execute in parallel on the --jobs pool.
  struct Cell {
    double ns = 0;
    double success_rate = 0;
    sim::MetricsSnapshot metrics;
  };
  const std::size_t cells_per_row = static_cast<std::size_t>(repeats) * 2;
  std::vector<Cell> cells(threads.size() * cells_per_row);
  run_sweep_cells(
      threads.size(), cells_per_row, opts.effective_jobs(),
      [&](std::size_t i) {
        const int t = threads[i / cells_per_row];
        const int r = static_cast<int>((i % cells_per_row) / 2);
        const bool txcas = (i % 2) != 0;
        const std::uint64_t seed =
            opts.seed + static_cast<std::uint64_t>(r) * 977;
        Cell& c = cells[i];
        c.ns = run_mode(opts, txcas, t, ops, seed,
                        txcas ? &c.success_rate : nullptr, &c.metrics);
      },
      [&](std::size_t row) {
        if (!opts.json_path.empty()) {
          for (std::size_t i = row * cells_per_row;
               i < (row + 1) * cells_per_row; ++i) {
            const bool txcas = (i % 2) != 0;
            Json cj = Json::object();
            cj.set("threads", Json(threads[row]));
            cj.set("mode", Json(txcas ? "txcas" : "faa"));
            cj.set("repeat", Json(static_cast<int>((i % cells_per_row) / 2)));
            cj.set("latency_ns", Json(cells[i].ns));
            cj.set("success_rate", Json(cells[i].success_rate));
            cj.set("counters", metrics_to_json(cells[i].metrics));
            report.add_cell(std::move(cj));
          }
        }
        Summary faa, txc, rate;
        for (int r = 0; r < repeats; ++r) {
          const std::size_t base =
              row * cells_per_row + static_cast<std::size_t>(r) * 2;
          faa.add(cells[base].ns);
          txc.add(cells[base + 1].ns);
          rate.add(cells[base + 1].success_rate);
        }
        table.add_row({static_cast<double>(threads[row]), faa.mean(),
                       txc.mean(), rate.mean()});
      });
  table.print(std::cout, opts.csv);
  if (!opts.json_path.empty()) {
    report.add_table("latency", table);
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    // Traced cell: the TxCAS mode at the first thread count, repeat 0.
    run_mode(opts, /*txcas=*/true, threads.front(), ops, opts.seed, nullptr,
             nullptr, opts.trace_path);
  }
  return 0;
}
