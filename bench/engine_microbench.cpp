// Engine microbenchmark: schedule/run throughput of the discrete-event
// engine alone, plus its allocation behaviour (the engine's slab/freelist
// event nodes must make steady-state scheduling allocation-free).
//
// Two phases per configuration:
//   * cold  — a fresh engine: slab refills and the heap vector's growth
//     are visible in allocs/event.
//   * steady — the same engine re-driven after the first drain: the
//     freelist is warm and the heap vector is at capacity, so allocs/event
//     must print as 0 (this is the regression gate future PRs compare
//     against).
//
// The workload is a self-refilling event cascade: `width` initial events,
// each of which reschedules itself until `ops` events have run — the same
// schedule-from-inside-an-event pattern the coherence protocol and the
// coroutine glue produce.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/table.hpp"
#include "sim/engine.hpp"

namespace sbq {
namespace {

struct PhaseResult {
  double events_per_sec = 0;
  std::uint64_t events = 0;
  std::uint64_t slab_refills = 0;
  std::uint64_t boxed_allocs = 0;
  double allocs_per_event = 0;
};

// Drives `ops` events through a window-logging engine the way a machine
// slice is driven: bounded run_until() windows, each followed by the merge
// barrier's bookkeeping (patch every birth to a final seq, clear the log).
// Gates the logging path's allocation behaviour — the log vectors and the
// slab must stay warm across windows.
PhaseResult drive_logged(sim::Engine& e, std::uint64_t ops, int width,
                         std::uint64_t* global_seq) {
  const sim::Engine::AllocStats before = e.alloc_stats();
  const std::uint64_t processed_before = e.events_processed();

  struct Cascade {
    sim::Engine& e;
    std::uint64_t remaining;
    std::uint64_t payload = 0;
    void fire() {
      payload = payload * 6364136223846793005ULL + 1442695040888963407ULL;
      if (remaining == 0) return;
      --remaining;
      e.schedule(1 + (payload & 7), [this] { fire(); });
    }
  };
  std::vector<Cascade> lanes;
  lanes.reserve(static_cast<std::size_t>(width));
  const std::uint64_t per_lane = ops / static_cast<std::uint64_t>(width);
  for (int w = 0; w < width; ++w) {
    lanes.push_back(Cascade{e, per_lane, static_cast<std::uint64_t>(w)});
  }
  constexpr sim::Time kWindow = 64;  // sharded windows are tens of cycles
  const auto t0 = std::chrono::steady_clock::now();
  for (Cascade& lane : lanes) {
    e.schedule(1, [&lane] { lane.fire(); });
  }
  sim::Time t;
  while (e.peek_next_time(&t)) {
    e.run_until(t + kWindow - 1);
    // Stand-in for the merge barrier: every birth gets its final global
    // seq (log order is execution order on a single engine), then the
    // window log resets for the next window.
    for (const sim::Engine::CallRecord& c : e.window_calls()) {
      if (c.kind == sim::Engine::CallKind::kBirth) {
        e.patch_birth(c.payload, (*global_seq)++);
      }
    }
    e.clear_window_log();
  }
  const auto t1 = std::chrono::steady_clock::now();

  PhaseResult r;
  r.events = e.events_processed() - processed_before;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = secs > 0 ? static_cast<double>(r.events) / secs : 0;
  const sim::Engine::AllocStats after = e.alloc_stats();
  r.slab_refills = after.slab_refills - before.slab_refills;
  r.boxed_allocs = after.boxed_allocs - before.boxed_allocs;
  r.allocs_per_event =
      r.events == 0
          ? 0
          : static_cast<double>(r.slab_refills + r.boxed_allocs) /
                static_cast<double>(r.events);
  return r;
}

// Drives `ops` events through `e` and reports throughput plus the alloc
// counters accumulated *during this phase* (deltas against phase start).
PhaseResult drive(sim::Engine& e, std::uint64_t ops, int width) {
  const sim::Engine::AllocStats before = e.alloc_stats();
  const std::uint64_t processed_before = e.events_processed();

  struct Cascade {
    sim::Engine& e;
    std::uint64_t remaining;
    std::uint64_t payload = 0;  // touched per event so work isn't elided
    void fire() {
      payload = payload * 6364136223846793005ULL + 1442695040888963407ULL;
      if (remaining == 0) return;
      --remaining;
      e.schedule(1 + (payload & 7), [this] { fire(); });
    }
  };
  std::vector<Cascade> lanes;
  lanes.reserve(static_cast<std::size_t>(width));
  const std::uint64_t per_lane = ops / static_cast<std::uint64_t>(width);
  for (int w = 0; w < width; ++w) {
    lanes.push_back(Cascade{e, per_lane, static_cast<std::uint64_t>(w)});
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (Cascade& lane : lanes) {
    e.schedule(1, [&lane] { lane.fire(); });
  }
  e.run();
  const auto t1 = std::chrono::steady_clock::now();

  PhaseResult r;
  r.events = e.events_processed() - processed_before;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = secs > 0 ? static_cast<double>(r.events) / secs : 0;
  const sim::Engine::AllocStats after = e.alloc_stats();
  r.slab_refills = after.slab_refills - before.slab_refills;
  r.boxed_allocs = after.boxed_allocs - before.boxed_allocs;
  r.allocs_per_event =
      r.events == 0
          ? 0
          : static_cast<double>(r.slab_refills + r.boxed_allocs) /
                static_cast<double>(r.events);
  return r;
}

}  // namespace
}  // namespace sbq

int main(int argc, char** argv) {
  using namespace sbq;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const std::uint64_t ops = opts.ops_or(2'000'000);
  const int width = opts.first_thread_or(64);
  const int repeats = opts.repeats_or(2);
  BenchReport report("engine_microbench");
  report.set_config("events_per_phase", Json(ops));
  report.set_config("lanes", Json(width));
  report.set_config("steady_phases", Json(repeats));

  std::cout << "# Engine microbench: schedule/run throughput and allocation "
               "behaviour\n# ("
            << ops << " events/phase, " << width
            << " concurrent event lanes; steady-state allocs/event must be "
               "0)\n";
  Table table({"phase", "events", "Mevents/s", "slab_refills", "boxed_allocs",
               "allocs_per_event"});
  sim::Engine engine;
  bool steady_clean = true;
  for (int r = 0; r < repeats + 1; ++r) {
    const PhaseResult res = drive(engine, ops, width);
    const std::string phase =
        r == 0 ? "cold" : "steady-" + std::to_string(r);
    if (r > 0 && res.slab_refills + res.boxed_allocs != 0) {
      steady_clean = false;
    }
    char rate[32], apev[32];
    std::snprintf(rate, sizeof rate, "%.2f", res.events_per_sec / 1e6);
    std::snprintf(apev, sizeof apev, "%.6f", res.allocs_per_event);
    table.add_row({phase, std::to_string(res.events), rate,
                   std::to_string(res.slab_refills),
                   std::to_string(res.boxed_allocs), apev});
    if (!opts.json_path.empty()) {
      Json cj = Json::object();
      cj.set("phase", Json(phase));
      cj.set("events", Json(res.events));
      cj.set("events_per_sec", Json(res.events_per_sec));
      cj.set("slab_refills", Json(res.slab_refills));
      cj.set("boxed_allocs", Json(res.boxed_allocs));
      cj.set("allocs_per_event", Json(res.allocs_per_event));
      report.add_cell(std::move(cj));
    }
  }
  // Same cascade through a window-logging engine driven in sharded-style
  // run_until windows (schedule logs a birth, dispatch logs a record, the
  // per-window patch/clear stands in for the merge barrier). The logging
  // path reuses the same slab and keeps its log vectors' capacity across
  // clear_window_log(), so its steady phases must be equally clean.
  sim::Engine logged;
  logged.enable_window_logging();
  std::uint64_t global_seq = 0;
  for (int r = 0; r < repeats + 1; ++r) {
    const PhaseResult res = drive_logged(logged, ops, width, &global_seq);
    const std::string phase =
        r == 0 ? "log-cold" : "log-steady-" + std::to_string(r);
    if (r > 0 && res.slab_refills + res.boxed_allocs != 0) {
      steady_clean = false;
    }
    char rate[32], apev[32];
    std::snprintf(rate, sizeof rate, "%.2f", res.events_per_sec / 1e6);
    std::snprintf(apev, sizeof apev, "%.6f", res.allocs_per_event);
    table.add_row({phase, std::to_string(res.events), rate,
                   std::to_string(res.slab_refills),
                   std::to_string(res.boxed_allocs), apev});
    if (!opts.json_path.empty()) {
      Json cj = Json::object();
      cj.set("phase", Json(phase));
      cj.set("events", Json(res.events));
      cj.set("events_per_sec", Json(res.events_per_sec));
      cj.set("slab_refills", Json(res.slab_refills));
      cj.set("boxed_allocs", Json(res.boxed_allocs));
      cj.set("allocs_per_event", Json(res.allocs_per_event));
      report.add_cell(std::move(cj));
    }
  }
  table.print(std::cout, opts.csv);
  std::cout << "\n(cold pays the slab/heap warm-up; every steady phase must "
               "report 0 slab\n refills and 0 boxed allocs — schedule() is "
               "allocation-free once warm;\n log-* phases gate the sharded "
               "engines' window-logging path the same way.)\n";
  if (!opts.json_path.empty()) {
    report.add_table("phases", table);
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    std::cerr << "engine_microbench: --trace ignored (no coherence machine "
                 "in this bench)\n";
  }
  if (!steady_clean) {
    std::cerr << "engine_microbench: FAIL — a steady phase allocated "
                 "(slab refill or boxed event); schedule() must be "
                 "allocation-free once warm\n";
    return 1;
  }
  return 0;
}
