// Figure 5: producer-only workload — enqueue latency and total throughput
// for the five evaluated queues, filling an initially empty queue
// (§6.2 "Producer-only workload").
//
// Expected shape (per the paper): SBQ-HTM's latency flattens beyond ~10
// threads; SBQ-CAS tracks it at low concurrency and stops scaling around 20
// threads; WF-Queue (FAA), BQ-Original and CC-Queue grow linearly, so at 44
// producers SBQ-HTM reaches ~1.6x the throughput of the FAA queue.
#include <iostream>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const std::vector<int> threads = opts.threads_or(default_single_socket_sweep());
  const simq::Value ops = opts.ops_or(200);
  const int repeats = opts.repeats_or(2);
  const std::vector<QueueKind>& queues = evaluated_queue_kinds();
  BenchReport report("fig5_enqueue");
  report.set_sweep_config(opts, threads, ops, repeats);
  report.set("ns_per_cycle", Json(ns_per_cycle()));

  std::cout << "# Figure 5: enqueue-only latency & throughput "
            << "(single socket, empty queue, " << ops << " ops/thread, "
            << repeats << " repeats)\n";
  Table lat_table({"threads", "SBQ-HTM", "SBQ-CAS", "WF-Queue", "BQ-Original",
                   "CC-Queue", "MS-Queue"});
  Table thr_table({"threads", "SBQ-HTM", "SBQ-CAS", "WF-Queue", "BQ-Original",
                   "CC-Queue", "MS-Queue"});
  if (!opts.csv) {
    // Stream latency rows as their sweep cells complete; the throughput
    // table (same cells) prints after the sweep.
    std::cout << "\n## Enqueue latency [ns/op] (lower is better)\n";
    lat_table.stream_to(std::cout);
  }
  auto make = [&](int t, int repeat) {
    sim::MachineConfig mcfg;
    mcfg.cores = t;
    apply_fault_options(mcfg, opts);
    apply_machine_options(mcfg, opts);
    apply_cas_policy_options(mcfg, opts);
    WorkloadSpec spec;
    spec.kind = Workload::kProducerOnly;
    spec.producers = t;
    spec.ops_per_thread = ops;
    spec.seed = opts.seed + static_cast<std::uint64_t>(repeat) * 7919;
    return std::pair(mcfg, spec);
  };
  run_queue_sweep(
      threads, queues, repeats, opts.effective_jobs(), make,
      [&](std::size_t row, const QueueSweepResults& res) {
        if (!opts.json_path.empty()) {
          add_row_cells(report, row, threads[row], queues, res, ns_per_cycle());
        }
        std::vector<double> lat_row{static_cast<double>(threads[row])};
        std::vector<double> thr_row{static_cast<double>(threads[row])};
        for (std::size_t q = 0; q < queues.size(); ++q) {
          Summary lat, thr;
          for (int r = 0; r < repeats; ++r) {
            const SimRunResult& cell =
                res.at(row, q, static_cast<std::size_t>(r));
            lat.add(cell.enq_latency_ns(ns_per_cycle()));
            thr.add(cell.throughput_mops(ns_per_cycle()));
          }
          lat_row.push_back(lat.mean());
          thr_row.push_back(thr.mean());
        }
        lat_table.add_row(lat_row);
        thr_table.add_row(thr_row);
      },
      effective_cold_start(opts), snapshot_cache_policy(opts));
  if (opts.csv) {
    std::cout << "\n## Enqueue latency [ns/op] (lower is better)\n";
    lat_table.print(std::cout, opts.csv);
  }
  std::cout << "\n## Total throughput [Mop/s] (higher is better)\n";
  thr_table.print(std::cout, opts.csv);
  if (!opts.json_path.empty()) {
    report.add_table("enq_latency_ns", lat_table);
    report.add_table("throughput_mops", thr_table);
    if (!opts.snapshot_cache.empty()) {
      report.set_snapshot_cache(cache_mode_name(snapshot_cache_policy(opts).mode));
    }
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    const auto [mcfg, spec] = make(threads.front(), 0);
    if (!write_traced_cell(opts.trace_path, queues.front(), mcfg, spec)) {
      return 1;
    }
  }
  if (!opts.record_ops.empty()) {
    const auto [mcfg, spec] = make(threads.front(), 0);
    if (!write_recorded_cell(opts.record_ops, queues.front(), mcfg, spec)) {
      return 1;
    }
  }
  if (!opts.replay_ops.empty()) {
    const auto [mcfg, spec] = make(threads.front(), 0);
    (void)spec;
    if (!replay_cell_from_options(opts, mcfg)) return 1;
  }
  return 0;
}
