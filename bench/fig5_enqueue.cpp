// Figure 5: producer-only workload — enqueue latency and total throughput
// for the five evaluated queues, filling an initially empty queue
// (§6.2 "Producer-only workload").
//
// Expected shape (per the paper): SBQ-HTM's latency flattens beyond ~10
// threads; SBQ-CAS tracks it at low concurrency and stops scaling around 20
// threads; WF-Queue (FAA), BQ-Original and CC-Queue grow linearly, so at 44
// producers SBQ-HTM reaches ~1.6x the throughput of the FAA queue.
#include <iostream>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/stats.hpp"
#include "sim_queue_bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sbq;
  using namespace sbq::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const std::vector<int> threads =
      opts.threads.empty() ? default_single_socket_sweep() : opts.threads;
  const simq::Value ops = opts.ops == 0 ? 200 : opts.ops;
  const int repeats = opts.repeats == 0 ? 2 : opts.repeats;
  const std::vector<QueueKind>& queues = evaluated_queue_kinds();

  std::cout << "# Figure 5: enqueue-only latency & throughput "
            << "(single socket, empty queue, " << ops << " ops/thread, "
            << repeats << " repeats)\n";
  Table lat_table({"threads", "SBQ-HTM", "SBQ-CAS", "WF-Queue", "BQ-Original",
                   "CC-Queue", "MS-Queue"});
  Table thr_table({"threads", "SBQ-HTM", "SBQ-CAS", "WF-Queue", "BQ-Original",
                   "CC-Queue", "MS-Queue"});
  if (!opts.csv) {
    // Stream latency rows as their sweep cells complete; the throughput
    // table (same cells) prints after the sweep.
    std::cout << "\n## Enqueue latency [ns/op] (lower is better)\n";
    lat_table.stream_to(std::cout);
  }
  run_queue_sweep(
      threads, queues, repeats, opts.effective_jobs(),
      [&](int t, int repeat) {
        sim::MachineConfig mcfg;
        mcfg.cores = t;
        WorkloadSpec spec;
        spec.kind = Workload::kProducerOnly;
        spec.producers = t;
        spec.ops_per_thread = ops;
        spec.seed = opts.seed + static_cast<std::uint64_t>(repeat) * 7919;
        return std::pair(mcfg, spec);
      },
      [&](std::size_t row, const QueueSweepResults& res) {
        std::vector<double> lat_row{static_cast<double>(threads[row])};
        std::vector<double> thr_row{static_cast<double>(threads[row])};
        for (std::size_t q = 0; q < queues.size(); ++q) {
          Summary lat, thr;
          for (int r = 0; r < repeats; ++r) {
            const SimRunResult& cell =
                res.at(row, q, static_cast<std::size_t>(r));
            lat.add(cell.enq_latency_ns(ns_per_cycle()));
            thr.add(cell.throughput_mops(ns_per_cycle()));
          }
          lat_row.push_back(lat.mean());
          thr_row.push_back(thr.mean());
        }
        lat_table.add_row(lat_row);
        thr_table.add_row(thr_row);
      });
  if (opts.csv) {
    std::cout << "\n## Enqueue latency [ns/op] (lower is better)\n";
    lat_table.print(std::cout, opts.csv);
  }
  std::cout << "\n## Total throughput [Mop/s] (higher is better)\n";
  thr_table.print(std::cout, opts.csv);
  return 0;
}
