// §4.1 ablation: the intra-transaction delay trade-off.
//
// TxCAS delays between its transactional read and write. The paper found
// ~270 ns empirically optimal on its platform: shorter delays serialize
// successful TxCASs like plain CAS (bad at high concurrency), longer delays
// just add latency. We sweep the delay at several thread counts and report
// mean TxCAS latency plus the pre-write-abort fraction (aborts that
// happened before the write issued, which is what the delay buys).
#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/metrics_json.hpp"
#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/machine.hpp"
#include "sim_queue_bench_util.hpp"

namespace sbq {
namespace {

using sim::Addr;
using sim::Machine;
using sim::Task;
using sim::Time;
using sim::Value;

struct Result {
  double mean_latency_ns = 0;
  double throughput_mops = 0;           // completed TxCASs per wall time
  double pre_write_abort_fraction = 0;  // nested / all transactional aborts
  sim::MetricsSnapshot metrics;
};

// Strip the driver-local "--policies LIST" (or --policies=LIST) flag out of
// argv before BenchOptions::parse sees it. Empty result (flag absent) keeps
// the classic delay-only sweep and its byte-identical golden output.
std::vector<std::string> strip_policies(int& argc, char** argv) {
  std::vector<std::string> policies;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  std::string list;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--policies") {
      if (i + 1 >= argc) throw std::invalid_argument("--policies needs a value");
      list = argv[++i];
    } else if (arg.rfind("--policies=", 0) == 0) {
      list = arg.substr(11);
    } else {
      rest.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(rest.size());
  for (int i = 0; i < argc; ++i) argv[i] = rest[static_cast<std::size_t>(i)];
  std::size_t start = 0;
  while (start <= list.size() && !list.empty()) {
    const std::size_t comma = list.find(',', start);
    const std::string name = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    ContentionPolicyKind kind;
    if (!contention_policy_from_name(name.c_str(), kind)) {
      throw std::invalid_argument("--policies: unknown policy " + name);
    }
    policies.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return policies;
}

Result run(const BenchOptions& opts, int threads, Time delay, Value ops,
           std::uint64_t seed, const std::string& trace_path = {},
           const ContentionPolicyParams* policy = nullptr) {
  sim::MachineConfig mcfg;
  mcfg.cores = threads;
  mcfg.record_trace = !trace_path.empty();
  bench::apply_machine_options(mcfg, opts);
  bench::apply_cas_policy_options(mcfg, opts);
  if (policy != nullptr) mcfg.cas_policy = *policy;
  if (mcfg.record_trace) mcfg.machine_threads = 1;  // tracing is serial-only
  Machine m(mcfg);
  const Addr x = m.alloc();
  // Relaxed atomic integer accumulators: tasks may run on different machine
  // workers under sharding, and integer cycle sums convert to the exact
  // doubles the old sequential accumulation produced (totals < 2^53).
  auto lat = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto n = std::make_shared<std::atomic<std::uint64_t>>(0);
  sim::TxCasConfig tx;
  tx.intra_txn_delay = delay;
  for (int c = 0; c < threads; ++c) {
    m.spawn(
        [](Machine& m, int c, Addr x, sim::TxCasConfig tx, Value ops,
           std::uint64_t seed, std::shared_ptr<std::atomic<std::uint64_t>> lat,
           std::shared_ptr<std::atomic<std::uint64_t>> n) -> Task<void> {
          Xoshiro256 rng(seed);
          auto& core = m.core(c);
          co_await core.think(1 + rng.next_below(32));
          for (Value i = 0; i < ops; ++i) {
            const Value v = co_await core.load(x);
            const Time t0 = core.now();
            co_await core.txcas(x, v, v + 1, tx);
            lat->fetch_add(core.now() - t0, std::memory_order_relaxed);
            n->fetch_add(1, std::memory_order_relaxed);
            co_await core.think(1 + rng.next_below(8));
          }
        }(m, c, x, tx, ops, seed + static_cast<std::uint64_t>(c), lat, n),
        c);
  }
  m.run();
  std::uint64_t nested = 0, tripped = 0, write_conflicts = 0;
  for (int c = 0; c < threads; ++c) {
    nested += m.core(c).stats().nested_aborts;
    tripped += m.core(c).stats().tripped_aborts;
    // Attempts minus (successes + self-aborts + nested) are write-phase
    // conflict retries; we approximate write conflicts with attempts.
    write_conflicts += m.core(c).stats().txcas_attempts -
                       m.core(c).stats().txcas_calls;
  }
  Result r;
  r.mean_latency_ns =
      static_cast<double>(lat->load(std::memory_order_relaxed)) /
      static_cast<double>(n->load(std::memory_order_relaxed)) * ns_per_cycle();
  const double makespan_ns = static_cast<double>(m.now()) * ns_per_cycle();
  r.throughput_mops =
      makespan_ns > 0
          ? static_cast<double>(n->load(std::memory_order_relaxed)) /
                makespan_ns * 1e3
          : 0.0;
  const double aborts =
      static_cast<double>(nested) + static_cast<double>(write_conflicts);
  r.pre_write_abort_fraction =
      aborts > 0 ? static_cast<double>(nested) / aborts : 1.0;
  (void)tripped;
  r.metrics = m.metrics();
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) {
      m.trace().write_jsonl(out);
    } else {
      std::cerr << "--trace: cannot open " << trace_path << " for writing\n";
    }
  }
  return r;
}

}  // namespace
}  // namespace sbq

int main(int argc, char** argv) {
  using namespace sbq;
  const std::vector<std::string> policies = strip_policies(argc, argv);
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const sim::Value ops = opts.ops_or(250);
  const std::vector<int> threads = opts.threads_or({4, 16, 32, 44});

  std::cout << "# 4.1 ablation: TxCAS intra-transaction delay sweep ("
            << ops << " ops/thread)\n"
            << "# paper: ~270 ns (675 cycles) was optimal on Broadwell\n";
  // Column headers follow the actual --threads sweep (the old fixed
  // "T=4..T=44" header broke on custom thread lists).
  std::vector<std::string> columns{"delay_cycles", "delay_ns", "metric"};
  for (int t : threads) columns.push_back("T=" + std::to_string(t));
  Table table(std::move(columns));
  if (!opts.csv) table.stream_to(std::cout);
  const std::vector<sim::Time> delays{0, 80, 200, 400, 675, 1000, 1600, 2600};
  BenchReport report("ablation_delay_sweep");
  report.set_sweep_config(opts, threads, ops, /*repeats=*/1);
  report.set("ns_per_cycle", Json(ns_per_cycle()));
  {
    Json jd = Json::array();
    for (sim::Time d : delays) jd.push_back(Json(static_cast<std::uint64_t>(d)));
    report.set_config("delays_cycles", std::move(jd));
  }
  std::vector<Result> results(delays.size() * threads.size());
  run_sweep_cells(
      delays.size(), threads.size(), opts.effective_jobs(),
      [&](std::size_t i) {
        results[i] = run(opts, threads[i % threads.size()],
                         delays[i / threads.size()], ops, opts.seed);
      },
      [&](std::size_t row) {
        const sim::Time delay = delays[row];
        if (!opts.json_path.empty()) {
          for (std::size_t ti = 0; ti < threads.size(); ++ti) {
            const Result& r = results[row * threads.size() + ti];
            Json cj = Json::object();
            cj.set("delay_cycles", Json(static_cast<std::uint64_t>(delay)));
            cj.set("threads", Json(threads[ti]));
            cj.set("latency_ns", Json(r.mean_latency_ns));
            cj.set("pre_write_abort_fraction",
                   Json(r.pre_write_abort_fraction));
            cj.set("counters", metrics_to_json(r.metrics));
            report.add_cell(std::move(cj));
          }
        }
        const std::string delay_ns = std::to_string(
            static_cast<int>(static_cast<double>(delay) * ns_per_cycle()));
        std::vector<std::string> lat_row{std::to_string(delay), delay_ns,
                                         "latency_ns"};
        std::vector<std::string> frac_row{std::to_string(delay), delay_ns,
                                          "pre_write_abort_frac"};
        for (std::size_t ti = 0; ti < threads.size(); ++ti) {
          const Result& r = results[row * threads.size() + ti];
          char buf[32];
          std::snprintf(buf, sizeof buf, "%.1f", r.mean_latency_ns);
          lat_row.push_back(buf);
          std::snprintf(buf, sizeof buf, "%.2f", r.pre_write_abort_fraction);
          frac_row.push_back(buf);
        }
        table.add_row(lat_row);
        table.add_row(frac_row);
      });
  table.print(std::cout, opts.csv);
  // Opt-in policy dimension (--policies LIST): rerun the paper-optimal delay
  // (675 cycles) under each contention policy, across the same thread
  // counts. The highest-contention cell is the last thread column; the
  // bench_baseline adaptive-vs-fixed leg and json_validate --policy-cells
  // consume the JSON cells this emits.
  if (!policies.empty()) {
    constexpr sim::Time kPolicyDelay = 675;
    std::vector<std::string> pcolumns{"policy", "metric"};
    for (int t : threads) pcolumns.push_back("T=" + std::to_string(t));
    Table ptable(std::move(pcolumns));
    std::cout << "\n## Contention-policy sweep (delay " << kPolicyDelay
              << " cycles; throughput higher is better)\n";
    if (!opts.csv) ptable.stream_to(std::cout);
    std::vector<Result> presults(policies.size() * threads.size());
    run_sweep_cells(
        policies.size(), threads.size(), opts.effective_jobs(),
        [&](std::size_t i) {
          ContentionPolicyParams params;
          contention_policy_from_name(
              policies[i / threads.size()].c_str(), params.kind);
          params.seed = opts.policy_seed;
          presults[i] = run(opts, threads[i % threads.size()], kPolicyDelay,
                            ops, opts.seed, {}, &params);
        },
        [&](std::size_t row) {
          const std::string& policy = policies[row];
          if (!opts.json_path.empty()) {
            for (std::size_t ti = 0; ti < threads.size(); ++ti) {
              const Result& r = presults[row * threads.size() + ti];
              Json cj = Json::object();
              cj.set("policy", Json(policy));
              cj.set("delay_cycles",
                     Json(static_cast<std::uint64_t>(kPolicyDelay)));
              cj.set("threads", Json(threads[ti]));
              cj.set("latency_ns", Json(r.mean_latency_ns));
              cj.set("throughput_mops", Json(r.throughput_mops));
              cj.set("counters", metrics_to_json(r.metrics));
              report.add_cell(std::move(cj));
            }
          }
          std::vector<std::string> lat_row{policy, "latency_ns"};
          std::vector<std::string> thr_row{policy, "throughput_mops"};
          for (std::size_t ti = 0; ti < threads.size(); ++ti) {
            const Result& r = presults[row * threads.size() + ti];
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.1f", r.mean_latency_ns);
            lat_row.push_back(buf);
            std::snprintf(buf, sizeof buf, "%.3f", r.throughput_mops);
            thr_row.push_back(buf);
          }
          ptable.add_row(lat_row);
          ptable.add_row(thr_row);
        });
    ptable.print(std::cout, opts.csv);
    if (!opts.json_path.empty()) {
      Json jp = Json::array();
      for (const std::string& p : policies) jp.push_back(Json(p));
      report.set_config("policies", std::move(jp));
      report.add_table("policy_sweep", ptable);
    }
  }
  if (!opts.json_path.empty()) {
    report.add_table("delay_sweep", table);
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    // Traced cell: the paper-optimal delay at the first thread count.
    run(opts, threads.front(), /*delay=*/675, ops, opts.seed, opts.trace_path);
  }
  return 0;
}
