// Whole-machine microbenchmark and allocation gate.
//
// engine_microbench gates the event engine alone; this bench drives the
// FULL simulator stack — coroutine programs, cores, caches, directory,
// interconnect, and the simulated SBQ — through complete enqueue/dequeue
// rounds and counts every heap allocation in the process (global operator
// new/delete are overridden in this translation unit).
//
// Phases:
//   * cold   — first round on a fresh machine: line tables and the frame
//     pool warm up, so allocs/event is nonzero.
//   * steady — subsequent identical rounds: every allocation source must be
//     warm (engine slab, frame pool, flat maps pre-sized via
//     Machine::reserve_lines, inline callables/vectors, inline sharer-set
//     storage), so allocs/event MUST be exactly 0.
//
// The process exits nonzero if any steady phase allocates — this is the
// regression gate that keeps the simulator's hot path allocation-free
// end-to-end (`ctest -L perf_smoke`).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/table.hpp"
#include "common/rng.hpp"
#include "sim/machine.hpp"
#include "sim/serialize.hpp"
#include "sim_queue_bench_util.hpp"
#include "simqueue/sim_sbq.hpp"

// ---------------------------------------------------------------------------
// Global allocation counters. Relaxed atomics: under --machine-threads > 1
// the slice workers allocate concurrently (cold phase only, if the gate
// holds), and the counters are only read between phases. Every form of
// operator new funnels through count_alloc.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
void count(std::size_t n) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
}

void* count_alloc(std::size_t n) {
  count(n);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* count_alloc_aligned(std::size_t n, std::size_t align) {
  count(n);
  const std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return count_alloc(n); }
void* operator new[](std::size_t n) { return count_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return count_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return count_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  count(n);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  count(n);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------
// Workload: P producers and P consumers on a 2P-core machine run a full
// enqueue/dequeue round per phase (every phase drains the queue). Same
// shape as the figure drivers' mixed workload, but without the shared_ptr
// accumulators of sim_workload.hpp — the bench must not allocate on its own
// account inside a measured phase.
// ---------------------------------------------------------------------------

namespace sbq {
namespace {

struct Accum {
  std::uint64_t enq = 0;
  std::uint64_t deq = 0;
};

simq::Task<void> producer(sim::Machine& m, simq::SimSbq& q, int core, int id,
                          simq::Value ops, std::uint64_t seed, Accum* acc) {
  Xoshiro256 rng(seed);
  sim::Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  for (simq::Value i = 0; i < ops; ++i) {
    co_await q.enqueue(
        c, simq::kFirstElement + (static_cast<simq::Value>(id) << 32 | i), id);
    ++acc->enq;
    co_await c.think(1 + rng.next_below(8));
  }
}

simq::Task<void> consumer(sim::Machine& m, simq::SimSbq& q, int core, int id,
                          simq::Value ops, std::uint64_t seed, Accum* acc) {
  Xoshiro256 rng(seed);
  sim::Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  simq::Value got = 0;
  while (got < ops) {
    const simq::Value e = co_await q.dequeue(c, id);
    if (e != 0) {
      ++acc->deq;
      ++got;
    } else {
      co_await c.think(64);
    }
  }
}

struct PhaseResult {
  std::uint64_t events = 0;
  std::uint64_t ops = 0;
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
  double events_per_sec = 0;
};

PhaseResult run_phase(sim::Machine& m, simq::SimSbq& q, int producers,
                      simq::Value ops, std::uint64_t seed) {
  Accum acc;
  const std::uint64_t events_before = m.events_processed();
  const std::uint64_t allocs_before = g_alloc_calls.load();
  const std::uint64_t bytes_before = g_alloc_bytes.load();
  const auto t0 = std::chrono::steady_clock::now();
  // Pin each root to the core it runs on: a sharded machine needs the
  // owning slice up front, and on a serial machine the pin is a no-op.
  for (int p = 0; p < producers; ++p) {
    m.spawn(producer(m, q, p, p, ops,
                     seed * 1000003 + static_cast<std::uint64_t>(p), &acc),
            static_cast<sim::CoreId>(p));
  }
  for (int ci = 0; ci < producers; ++ci) {
    m.spawn(consumer(m, q, producers + ci, ci, ops,
                     seed * 2000003 + static_cast<std::uint64_t>(ci), &acc),
            static_cast<sim::CoreId>(producers + ci));
  }
  m.run();
  const auto t1 = std::chrono::steady_clock::now();
  PhaseResult r;
  r.events = m.events_processed() - events_before;
  r.ops = acc.enq + acc.deq;
  r.allocs = g_alloc_calls.load() - allocs_before;
  r.bytes = g_alloc_bytes.load() - bytes_before;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = secs > 0 ? static_cast<double>(r.events) / secs : 0;
  return r;
}

}  // namespace
}  // namespace sbq

int main(int argc, char** argv) {
  using namespace sbq;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const int producers = opts.first_thread_or(4);
  const simq::Value ops = opts.ops_or(250);  // per producer, per phase
  const int repeats = opts.repeats_or(2);    // steady phases
  BenchReport report("sim_microbench");
  report.set_config("producers", Json(static_cast<std::uint64_t>(producers)));
  report.set_config("ops_per_producer_per_phase", Json(ops));
  report.set_config("steady_phases", Json(static_cast<std::uint64_t>(repeats)));

  sim::MachineConfig mcfg;
  mcfg.cores = 2 * producers;
  // Counter increments are cheap but SimSbq's host-side occupancy
  // bookkeeping (filled_) grows with every basket — the gate measures the
  // simulator proper, so stats stay off.
  mcfg.collect_stats = false;
  // --cas-policy points the same zero-alloc gate at the adaptive retry
  // paths: policy state lives inline in each core's TxCasOp slot, so a
  // steady phase under adaptive-backoff must be exactly as allocation-free
  // as under fixed (perf_sim_alloc_gate_policy in bench/CMakeLists.txt).
  bench::apply_cas_policy_options(mcfg, opts);
  if (!opts.cas_policy.empty()) {
    report.set_config("cas_policy", Json(opts.cas_policy));
    // Adaptive delays reshape every phase's schedule (the persistent
    // failure history keeps evolving across phases), so a steady phase can
    // exceed the cold phase's live-frame and in-flight-event high-water.
    // Prewarm both pools past any plausible depth for this workload size,
    // exactly like the sharded leg below.
    mcfg.prewarm_frames = static_cast<std::size_t>(4 * mcfg.cores) + 32;
    mcfg.prewarm_event_nodes = std::size_t{1} << 12;
  }
  // --machine-threads > 1 points the same gate at the sliced path: the
  // per-slice engines, cross-slice channel buffers, and the window-merge
  // scratch must be equally allocation-free once warm
  // (perf_sim_alloc_gate_sharded in bench/CMakeLists.txt).
  if (opts.machine_threads > 1) {
    mcfg.sockets = opts.sockets > 0 ? opts.sockets : 2;
    mcfg.dir_slices =
        opts.dir_slices > 0 ? opts.dir_slices : opts.machine_threads;
    mcfg.machine_threads = opts.machine_threads;
    mcfg.alloc_arenas = true;
    // Steady phases are seeded differently from the cold phase, so their
    // live-coroutine high-water can exceed what cold warmed up; prewarm
    // the frame pools past any plausible depth for this workload size.
    mcfg.prewarm_frames =
        static_cast<std::size_t>(4 * mcfg.cores) + 32;
    report.set_config("machine_threads", Json(static_cast<std::uint64_t>(
                                             opts.machine_threads)));
    report.set_config(
        "dir_slices", Json(static_cast<std::uint64_t>(mcfg.dir_slices)));
  }

  // --trace keeps the event ring ON through the measured phases. TraceEvent
  // stores interned literals (no per-event strings) and the ring is reserved
  // to capacity at construction, so recording must not cost a single
  // steady-phase allocation (perf_sim_alloc_gate_traced in
  // bench/CMakeLists.txt). The ring's JSONL is written after the phases.
  if (!opts.trace_path.empty()) {
    if (opts.machine_threads > 1) {
      std::cerr << "sim_microbench: --trace requires the serial engine "
                   "(tracing needs the single global event order)\n";
      return 1;
    }
    if (opts.from_snapshot) {
      std::cerr << "sim_microbench: --trace and --from-snapshot are "
                   "mutually exclusive (the trace ring is debug state and "
                   "is not captured by snapshots)\n";
      return 1;
    }
    mcfg.record_trace = true;
    mcfg.trace_capacity = 4096;
  }

  sim::Machine m(mcfg);
  simq::SimSbq::Config qcfg;
  qcfg.enqueuers = producers;
  qcfg.dequeuers = producers;
  simq::SimSbq q(m, qcfg);

  // Pre-size every per-line table for the run's whole address range: the
  // queue header plus one fresh node per enqueue (upper bound; losers reuse
  // their nodes). Setup-time allocation, like reserving a vector.
  const std::uint64_t total_enqueues = static_cast<std::uint64_t>(repeats + 1) *
                                       static_cast<std::uint64_t>(producers) *
                                       ops;
  const std::uint64_t node_words =
      static_cast<std::uint64_t>(producers) /* basket cells */ +
      1 /* extraction counter */ + 2 /* empty flag + link */;
  m.reserve_lines(16 + 2 * static_cast<std::uint64_t>(producers) +
                  (total_enqueues + 2) * node_words);
  m.reserve_tasks(static_cast<std::size_t>(2 * producers));

  std::cout << "# Sim microbench: whole-machine enqueue/dequeue rounds with "
               "heap-allocation accounting\n# ("
            << producers << " producers + " << producers << " consumers, "
            << ops << " ops/producer/phase; steady-state allocations must be "
               "0)\n";
  Table table({"phase", "events", "queue_ops", "Mevents/s", "allocs",
               "alloc_bytes", "allocs_per_event"});
  bool steady_clean = true;
  // --from-snapshot replaces the machine under the steady phases with one
  // forked from a serialize/decode round-trip of the cold-warmed state
  // (storage for that fork lives here so `mp`/`qp` stay valid).
  std::unique_ptr<sim::Machine> forked;
  std::optional<simq::SimSbq> forked_q;
  sim::Machine* mp = &m;
  simq::SimSbq* qp = &q;
  for (int r = 0; r < repeats + 1; ++r) {
    const PhaseResult res =
        run_phase(*mp, *qp, producers, ops, 1 + static_cast<std::uint64_t>(r));
    const std::string phase = r == 0 ? "cold" : "steady-" + std::to_string(r);
    if (r > 0 && res.allocs != 0) steady_clean = false;
    const double ape =
        res.events == 0 ? 0
                        : static_cast<double>(res.allocs) /
                              static_cast<double>(res.events);
    char rate[32], apev[32];
    std::snprintf(rate, sizeof rate, "%.2f", res.events_per_sec / 1e6);
    std::snprintf(apev, sizeof apev, "%.6f", ape);
    table.add_row({phase, std::to_string(res.events), std::to_string(res.ops),
                   rate, std::to_string(res.allocs),
                   std::to_string(res.bytes), apev});
    if (!opts.json_path.empty()) {
      Json cj = Json::object();
      cj.set("phase", Json(phase));
      cj.set("events", Json(res.events));
      cj.set("queue_ops", Json(res.ops));
      cj.set("events_per_sec", Json(res.events_per_sec));
      cj.set("allocs", Json(res.allocs));
      cj.set("alloc_bytes", Json(res.bytes));
      cj.set("allocs_per_event", Json(ape));
      report.add_cell(std::move(cj));
    }
    // --from-snapshot: serialize the machine the cold phase just warmed,
    // decode the blob, and run every steady phase on a fork of the DECODED
    // snapshot — the allocation gate's deserialized-warm-start leg
    // (perf_sim_alloc_gate_snapshot). The decoded config prewarns the
    // fork's event-node slab to the warm machine's capacity, so the fork —
    // like the machine it replaces — never refills mid-phase; line-table
    // capacities ride along inside the blob.
    if (r == 0 && opts.from_snapshot) {
      if (mcfg.machine_threads > 1) {
        std::cerr << "sim_microbench: --from-snapshot requires the serial "
                     "engine (sharded machines refuse snapshots)\n";
        return 1;
      }
      const std::uint64_t key = 0x5ea15ea15ea15ea1ULL;
      std::vector<std::uint64_t> words;
      q.save_host_state(words);
      const std::vector<std::uint8_t> blob =
          sim::encode_snapshot_blob(m.snapshot(), words, key);
      sim::MachineSnapshot decoded;
      std::vector<std::uint64_t> dwords;
      if (blob.empty() ||
          !sim::decode_snapshot_blob(blob, key, decoded, dwords)) {
        std::cerr << "sim_microbench: FAIL — snapshot blob round-trip "
                     "rejected\n";
        return 1;
      }
      decoded.cfg.prewarm_event_nodes = m.engine().node_capacity();
      forked = sim::Machine::fork(decoded);
      forked->reserve_tasks(static_cast<std::size_t>(2 * producers));
      try {
        forked_q.emplace(*forked, qcfg,
                         simq::HostWords{dwords.data(), dwords.size()});
      } catch (const std::out_of_range&) {
        std::cerr << "sim_microbench: FAIL — decoded host words rejected\n";
        return 1;
      }
      mp = forked.get();
      qp = &*forked_q;
      std::cout << "(steady phases run on a machine forked from a "
                   "serialized+decoded snapshot)\n";
    }
  }
  table.print(std::cout, opts.csv);
  std::cout << "\n(cold warms the line tables and the coroutine frame pool; "
               "a steady phase that\n allocates fails the gate: the whole "
               "simulator must be allocation-free once warm.)\n";
  if (!opts.json_path.empty()) {
    report.add_table("phases", table);
    if (!report.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    std::ofstream out(opts.trace_path);
    if (out) {
      mp->trace().write_jsonl(out);
    } else {
      std::cerr << "--trace: cannot open " << opts.trace_path
                << " for writing\n";
      return 1;
    }
  }
  if (!steady_clean) {
    std::cerr << "sim_microbench: FAIL — steady phase allocated on the heap "
                 "(see the allocs column)\n";
    return 1;
  }
  return 0;
}
