// Shared dispatch for the figure benchmarks: construct one of the five
// evaluated queues (§6.1) on a fresh simulated machine and run a workload.
//
// Queue selection is resolved once per sweep into a QueueKind enum (no
// per-cell string validation), and sweep cells — each an independent,
// deterministic simulation — are executed on the benchsupport parallel
// sweep pool (--jobs / --serial), keyed by (row, column, repeat) so the
// emitted tables are byte-identical to a serial run.
#pragma once

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/metrics_json.hpp"
#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sim_workload.hpp"
#include "benchsupport/table.hpp"
#include "simqueue/sim_baskets_queue.hpp"
#include "simqueue/sim_cc_queue.hpp"
#include "simqueue/sim_faa_queue.hpp"
#include "simqueue/sim_ms_queue.hpp"
#include "simqueue/sim_sbq.hpp"

namespace sbq::bench {

using simq::SimRunResult;

// The queue lineup of the paper's evaluation. We additionally expose the
// Michael–Scott queue (the CAS-retry ancestor) for context.
enum class QueueKind {
  kSbqHtm,
  kSbqCas,
  kWfQueue,
  kBqOriginal,
  kCcQueue,
  kMsQueue,
};

inline const std::vector<QueueKind>& evaluated_queue_kinds() {
  static const std::vector<QueueKind> kinds = {
      QueueKind::kSbqHtm,   QueueKind::kSbqCas,  QueueKind::kWfQueue,
      QueueKind::kBqOriginal, QueueKind::kCcQueue, QueueKind::kMsQueue};
  return kinds;
}

inline const char* queue_kind_name(QueueKind kind) {
  switch (kind) {
    case QueueKind::kSbqHtm: return "SBQ-HTM";
    case QueueKind::kSbqCas: return "SBQ-CAS";
    case QueueKind::kWfQueue: return "WF-Queue";
    case QueueKind::kBqOriginal: return "BQ-Original";
    case QueueKind::kCcQueue: return "CC-Queue";
    case QueueKind::kMsQueue: return "MS-Queue";
  }
  throw std::logic_error("bad QueueKind");
}

inline QueueKind queue_kind_from_name(const std::string& name) {
  for (QueueKind kind : evaluated_queue_kinds()) {
    if (name == queue_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown queue: " + name);
}

inline const std::vector<std::string>& queue_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (QueueKind kind : evaluated_queue_kinds()) {
      out.emplace_back(queue_kind_name(kind));
    }
    return out;
  }();
  return names;
}

// Map the shared --fault-rate/--fault-seed/--fault-jitter options onto a
// machine's fault plan (docs/robustness.md). A zero rate with zero jitter
// leaves the plan disabled, so default invocations keep the byte-identical
// golden schedule. The rate splits 25/50/25 across capacity / interrupt /
// spurious — interrupts dominate real non-conflict abort profiles.
inline void apply_fault_options(sim::MachineConfig& mcfg,
                                const BenchOptions& opts) {
  if (opts.fault_rate <= 0.0 && opts.fault_jitter == 0) return;
  sim::FaultPlan& plan = mcfg.fault_plan;
  plan.enabled = true;
  plan.seed = opts.fault_seed;
  plan.capacity_rate = opts.fault_rate * 0.25;
  plan.interrupt_rate = opts.fault_rate * 0.50;
  plan.spurious_rate = opts.fault_rate * 0.25;
  if (opts.fault_jitter > 0) {
    plan.message_jitter_rate = 0.5;
    plan.max_message_jitter = opts.fault_jitter;
  }
}

// Map the shared --machine-threads/--dir-slices/--sockets options onto a
// machine config (docs/architecture.md "Parallel machine"). Defaults leave
// the config untouched, so default invocations keep the classic serial
// engine and its byte-identical goldens. When sharding is requested the
// slice count defaults to the worker count (the finest legal slicing under
// kFlat; kLink requires slices == sockets, so derive that instead), and
// per-core allocation arenas switch on — also for the serial twin
// (--dir-slices N with --machine-threads 1), which is therefore the exact
// comparison baseline for a sharded run.
inline void apply_machine_options(sim::MachineConfig& mcfg,
                                  const BenchOptions& opts) {
  if (opts.sockets > 0) mcfg.sockets = opts.sockets;
  int slices = opts.dir_slices;
  if (slices == 0) {
    if (opts.machine_threads <= 1) return;
    slices = mcfg.interconnect_model == sim::InterconnectModel::kLink
                 ? mcfg.sockets
                 : opts.machine_threads;
  }
  mcfg.dir_slices = std::min(slices, mcfg.cores);
  mcfg.machine_threads = opts.machine_threads;
  mcfg.alloc_arenas = mcfg.dir_slices > 1;
}

// Snapshots (and thus the shared-warm-snapshot fork path) are refused by
// sharded machines, so sweeps must cold-start every cell under
// --machine-threads > 1.
inline bool effective_cold_start(const BenchOptions& opts) {
  return opts.cold_start || opts.machine_threads > 1;
}

enum class Workload { kProducerOnly, kConsumerOnly, kMixed };

struct WorkloadSpec {
  Workload kind = Workload::kProducerOnly;
  int producers = 1;       // live enqueuers (also prefill threads)
  int consumers = 1;       // live dequeuers
  simq::Value ops_per_thread = 1000;
  simq::Value prefill = 0;      // mixed only
  std::uint64_t seed = 1;
  // Seed of the un-measured prefill phase; 0 means "use `seed`". Sweeps
  // that fork repeats from one warmed snapshot MUST set this to a value
  // that does not vary across repeats — the snapshot is shared, so the
  // prefill schedule must be too (the per-repeat variation lives entirely
  // in `seed`, which only the measured phase consumes).
  std::uint64_t prefill_seed = 0;
  int basket_capacity = 44;     // the paper's fixed B
};

inline std::uint64_t effective_prefill_seed(const WorkloadSpec& spec) {
  return spec.prefill_seed == 0 ? spec.seed : spec.prefill_seed;
}

// Run `spec`'s un-measured prefill phase (no-op for producer-only) on
// machine `m`, leaving it quiescent.
template <typename QueueT>
void prefill_spec(sim::Machine& m, QueueT& q, const WorkloadSpec& spec) {
  const std::uint64_t pseed = effective_prefill_seed(spec);
  switch (spec.kind) {
    case Workload::kProducerOnly:
      return;  // starts from an empty queue
    case Workload::kConsumerOnly:
      simq::run_prefill(m, q, spec.producers,
                        simq::consumer_only_per_producer(
                            spec.producers, spec.consumers,
                            spec.ops_per_thread),
                        pseed);
      return;
    case Workload::kMixed:
      simq::run_prefill(m, q, spec.producers,
                        simq::mixed_per_producer(spec.producers, spec.prefill),
                        pseed);
      return;
  }
  throw std::logic_error("bad workload");
}

// Run `spec`'s measured phase; any prefill must already have happened (on
// this machine or on the snapshot it was forked from). The machine must
// have enough cores: producer-only/consumer-only use cores [0, threads);
// mixed puts consumers at [cores/2, ...).
template <typename QueueT>
SimRunResult measure_spec(sim::Machine& m, QueueT& q, const WorkloadSpec& spec,
                          int consumer_id_offset) {
  switch (spec.kind) {
    case Workload::kProducerOnly:
      return simq::run_producer_only(m, q, spec.producers, spec.ops_per_thread,
                                     spec.seed);
    case Workload::kConsumerOnly:
      return simq::measure_consumer_only(m, q, spec.consumers,
                                         spec.ops_per_thread, spec.seed,
                                         consumer_id_offset);
    case Workload::kMixed:
      return simq::measure_mixed(m, q, spec.producers, spec.consumers,
                                 spec.ops_per_thread, spec.seed,
                                 consumer_id_offset);
  }
  throw std::logic_error("bad workload");
}

// Both phases on one machine.
template <typename QueueT>
SimRunResult run_spec(sim::Machine& m, QueueT& q, const WorkloadSpec& spec,
                      int consumer_id_offset) {
  prefill_spec(m, q, spec);
  return measure_spec(m, q, spec, consumer_id_offset);
}

// Construct the queue `kind` prescribes on machine `m` and invoke
// fn(queue, consumer_id_offset) with it — the one place the QueueKind ->
// class mapping lives.
template <typename Fn>
decltype(auto) with_queue(QueueKind kind, sim::Machine& m,
                          const WorkloadSpec& spec, Fn&& fn) {
  const int single_space_offset = spec.producers;
  switch (kind) {
    case QueueKind::kSbqHtm:
    case QueueKind::kSbqCas: {
      simq::SimSbq::Config qc;
      qc.enqueuers = spec.producers;
      qc.dequeuers = spec.consumers == 0 ? 1 : spec.consumers;
      qc.basket_capacity = std::max(spec.basket_capacity, spec.producers);
      qc.variant = kind == QueueKind::kSbqHtm ? simq::SbqVariant::kHtm
                                              : simq::SbqVariant::kCas;
      simq::SimSbq q(m, qc);
      return fn(q, /*consumer_id_offset=*/0);
    }
    case QueueKind::kWfQueue: {
      simq::SimFaaQueue q(m, {});
      return fn(q, single_space_offset);
    }
    case QueueKind::kBqOriginal: {
      simq::SimBasketsQueue q(m, {});
      q.set_dequeuers(spec.producers + spec.consumers + 1);
      return fn(q, single_space_offset);
    }
    case QueueKind::kCcQueue: {
      simq::SimCcQueue q(m, {.threads = spec.producers + spec.consumers + 1});
      return fn(q, single_space_offset);
    }
    case QueueKind::kMsQueue: {
      simq::SimMsQueue q(m, {});
      return fn(q, single_space_offset);
    }
  }
  throw std::logic_error("bad QueueKind");
}

// `post_run`, when set, is called with the machine after the workload
// completes (and before it is torn down) — used by --trace to export the
// event ring of a representative cell.
inline SimRunResult run_queue_workload(
    QueueKind kind, const sim::MachineConfig& mcfg, const WorkloadSpec& spec,
    const std::function<void(sim::Machine&)>& post_run = {}) {
  sim::Machine m(mcfg);
  SimRunResult result = with_queue(kind, m, spec, [&](auto& q, int offset) {
    return run_spec(m, q, spec, offset);
  });
  if (post_run) post_run(m);
  return result;
}

// A workload warmed once, forkable many times: builds a machine, constructs
// the queue, runs the (repeat-independent) prefill phase, and takes a
// Machine::snapshot. Each run_repeat() forks a machine from the snapshot,
// copies the prototype queue's host-side state, rebinds the copy to the
// fork, and runs the measured phase — byte-identical to cold-starting the
// same cell, at a fraction of the warm-up cost. Const access is
// thread-safe: run_repeat only reads the captured snapshot and prototype,
// so sweep workers can fork repeats of one group concurrently.
class WarmedWorkload {
 public:
  WarmedWorkload() = default;

  WarmedWorkload(QueueKind kind, const sim::MachineConfig& mcfg,
                 const WorkloadSpec& warm_spec) {
    with_queue_type(kind, mcfg, warm_spec);
  }

  // `spec` must match warm_spec in everything but `seed` (the prefill is
  // already baked into the snapshot; only the measured phase runs).
  SimRunResult run_repeat(
      const WorkloadSpec& spec,
      const std::function<void(sim::Machine&)>& post_run = {}) const {
    return run_(spec, post_run);
  }

  explicit operator bool() const noexcept { return static_cast<bool>(run_); }

 private:
  template <typename QueueT>
  void capture(std::shared_ptr<sim::Machine> warm,
               std::shared_ptr<QueueT> proto, int offset) {
    auto snap =
        std::make_shared<const sim::MachineSnapshot>(warm->snapshot());
    // `warm` stays captured: the prototype holds a Machine* into it (never
    // dereferenced after the snapshot — every fork rebinds its copy — but
    // keeping it alive keeps the pointer valid by construction).
    run_ = [warm = std::move(warm), proto = std::move(proto),
            snap = std::move(snap),
            offset](const WorkloadSpec& spec,
                    const std::function<void(sim::Machine&)>& post_run) {
      auto m = sim::Machine::fork(*snap);
      QueueT q(*proto);
      q.rebind(*m);
      SimRunResult result = measure_spec(*m, q, spec, offset);
      if (post_run) post_run(*m);
      return result;
    };
  }

  void with_queue_type(QueueKind kind, const sim::MachineConfig& mcfg,
                       const WorkloadSpec& spec) {
    auto warm = std::make_shared<sim::Machine>(mcfg);
    with_queue(kind, *warm, spec, [&](auto& q, int offset) {
      using QueueT = std::remove_reference_t<decltype(q)>;
      auto proto = std::make_shared<QueueT>(std::move(q));
      prefill_spec(*warm, *proto, spec);
      capture<QueueT>(warm, std::move(proto), offset);
    });
  }

  std::function<SimRunResult(const WorkloadSpec&,
                             const std::function<void(sim::Machine&)>&)>
      run_;
};

// Name-based shim for callers outside the sweep hot path (resolves the
// name on every call; sweeps should resolve once and pass QueueKind).
inline SimRunResult run_queue_workload(const std::string& name,
                                       sim::MachineConfig mcfg,
                                       const WorkloadSpec& spec) {
  return run_queue_workload(queue_kind_from_name(name), mcfg, spec);
}

// (threads-row × queue × repeat) sweep grid executed on the parallel pool.
// Results are keyed by cell index — at(row, queue, repeat) — so downstream
// aggregation is independent of completion order.
struct QueueSweepResults {
  std::vector<SimRunResult> cells;
  std::size_t queues = 0;
  std::size_t repeats = 0;

  const SimRunResult& at(std::size_t row, std::size_t queue,
                         std::size_t repeat) const {
    return cells[(row * queues + queue) * repeats + repeat];
  }
};

// Runs the standard figure grid: for each thread count in `rows`, each
// queue in `queues`, and each repeat, one cell. `make` maps
// (thread_count, repeat) -> {MachineConfig, WorkloadSpec} (the queue kind
// is applied by the runner). `row_done(row, results)` is called on the
// calling thread, in row order, as soon as a row's cells all finish —
// drivers use it to stream finished table rows.
//
// By default repeats of one (row, queue) group share a warmed snapshot:
// the group's prefill runs once, and each repeat forks a machine from it
// (WarmedWorkload) — byte-identical to a cold start because the prefill
// schedule depends only on spec.prefill_seed, which `make` must keep
// constant across repeats. `cold_start` forces the old path (every cell
// warms its own machine); drivers expose it as --cold-start so the
// equivalence stays checkable from the command line.
template <typename MakeSpec, typename RowDone>
void run_queue_sweep(const std::vector<int>& rows,
                     const std::vector<QueueKind>& queues, int repeats,
                     int jobs, MakeSpec make, RowDone row_done,
                     bool cold_start = false) {
  QueueSweepResults res;
  res.queues = queues.size();
  res.repeats = static_cast<std::size_t>(repeats);
  const std::size_t cells_per_row = res.queues * res.repeats;
  res.cells.resize(rows.size() * cells_per_row);
  if (cold_start) {
    run_sweep_cells(
        rows.size(), cells_per_row, jobs,
        [&](std::size_t i) {
          const std::size_t row = i / cells_per_row;
          const std::size_t queue = (i % cells_per_row) / res.repeats;
          const int repeat = static_cast<int>(i % res.repeats);
          const auto [mcfg, spec] = make(rows[row], repeat);
          res.cells[i] = run_queue_workload(queues[queue], mcfg, spec);
        },
        [&](std::size_t row) { row_done(row, res); });
    return;
  }
  // Fork path: one work item per (row, queue) group. Each group's slot in
  // `warmed` is touched by exactly one worker (run_sweep_groups contract),
  // and is released after the group's last repeat to bound live snapshots
  // to in-flight groups.
  std::vector<WarmedWorkload> warmed(rows.size() * res.queues);
  run_sweep_groups(
      rows.size(), res.queues, res.repeats, jobs,
      [&](std::size_t g) {
        const std::size_t row = g / res.queues;
        const auto [mcfg, spec] = make(rows[row], /*repeat=*/0);
        warmed[g] = WarmedWorkload(queues[g % res.queues], mcfg, spec);
      },
      [&](std::size_t g, std::size_t c) {
        const std::size_t row = g / res.queues;
        const std::size_t queue = g % res.queues;
        const auto [mcfg, spec] = make(rows[row], static_cast<int>(c));
        res.cells[(row * res.queues + queue) * res.repeats + c] =
            warmed[g].run_repeat(spec);
        if (c + 1 == res.repeats) warmed[g] = WarmedWorkload();
      },
      [&](std::size_t row) { row_done(row, res); });
}

// ---------------------------------------------------------------------------
// --json / --trace support shared by the figure drivers
// (schema "sbq.bench/1"; see docs/observability.md).
// ---------------------------------------------------------------------------

// One per-cell record of the standard (threads × queue × repeat) grid:
// the cell's coordinates, its latency/throughput measurements, and the
// machine's counter snapshot.
inline Json queue_cell_json(int threads, QueueKind kind, int repeat,
                            const SimRunResult& r, double ns_per_cycle) {
  Json c = Json::object();
  c.set("threads", Json(threads));
  c.set("queue", Json(queue_kind_name(kind)));
  c.set("repeat", Json(repeat));
  c.set("enq_ops", Json(r.enq_ops));
  c.set("deq_ops", Json(r.deq_ops));
  c.set("enq_latency_ns", Json(r.enq_latency_ns(ns_per_cycle)));
  c.set("deq_latency_ns", Json(r.deq_latency_ns(ns_per_cycle)));
  c.set("throughput_mops", Json(r.throughput_mops(ns_per_cycle)));
  c.set("duration_cycles", Json(r.duration_cycles));
  c.set("counters", metrics_to_json(r.metrics));
  return c;
}

// Append one finished row's cells to the report in (queue, repeat) order.
// Called from row_done (rows arrive in order), so the artifact's cell order
// is deterministic regardless of --jobs.
inline void add_row_cells(BenchReport& report, std::size_t row, int threads,
                          const std::vector<QueueKind>& queues,
                          const QueueSweepResults& res, double ns_per_cycle) {
  for (std::size_t q = 0; q < queues.size(); ++q) {
    for (std::size_t r = 0; r < res.repeats; ++r) {
      report.add_cell(queue_cell_json(threads, queues[q], static_cast<int>(r),
                                      res.at(row, q, r), ns_per_cycle));
    }
  }
}

// --trace: re-run one representative cell with the event ring enabled and
// write its JSONL trace to `path`. Returns false on I/O failure.
inline bool write_traced_cell(const std::string& path, QueueKind kind,
                              sim::MachineConfig mcfg,
                              const WorkloadSpec& spec) {
  if (path.empty()) return true;
  mcfg.record_trace = true;
  // Tracing needs the single global event order only the serial engine
  // produces (the sharded ctor refuses record_trace); the traced re-run is
  // a one-off outside the sweep, so dropping to one machine thread is free.
  mcfg.machine_threads = 1;
  bool ok = false;
  run_queue_workload(kind, mcfg, spec, [&](sim::Machine& m) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "--trace: cannot open " << path << " for writing\n";
      return;
    }
    m.trace().write_jsonl(out);
    out.flush();
    ok = static_cast<bool>(out);
  });
  return ok;
}

}  // namespace sbq::bench
