// Shared dispatch for the figure benchmarks: construct one of the five
// evaluated queues (§6.1) on a fresh simulated machine and run a workload.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchsupport/sim_workload.hpp"
#include "simqueue/sim_baskets_queue.hpp"
#include "simqueue/sim_cc_queue.hpp"
#include "simqueue/sim_faa_queue.hpp"
#include "simqueue/sim_ms_queue.hpp"
#include "simqueue/sim_sbq.hpp"

namespace sbq::bench {

using simq::SimRunResult;

// The queue lineup of the paper's evaluation. We additionally expose the
// Michael–Scott queue (the CAS-retry ancestor) for context.
inline const std::vector<std::string>& queue_names() {
  static const std::vector<std::string> names = {
      "SBQ-HTM", "SBQ-CAS", "WF-Queue", "BQ-Original", "CC-Queue", "MS-Queue"};
  return names;
}

enum class Workload { kProducerOnly, kConsumerOnly, kMixed };

struct WorkloadSpec {
  Workload kind = Workload::kProducerOnly;
  int producers = 1;       // live enqueuers (also prefill threads)
  int consumers = 1;       // live dequeuers
  simq::Value ops_per_thread = 1000;
  simq::Value prefill = 0;      // mixed only
  std::uint64_t seed = 1;
  int basket_capacity = 44;     // the paper's fixed B
};

// Runs `spec` for the named queue on machine `m`. The machine must have
// enough cores: producer-only/consumer-only use cores [0, threads);
// mixed puts consumers at [cores/2, ...).
template <typename QueueT>
SimRunResult run_spec(sim::Machine& m, QueueT& q, const WorkloadSpec& spec,
                      int consumer_id_offset) {
  switch (spec.kind) {
    case Workload::kProducerOnly:
      return simq::run_producer_only(m, q, spec.producers, spec.ops_per_thread,
                                     spec.seed);
    case Workload::kConsumerOnly:
      return simq::run_consumer_only(m, q, spec.producers, spec.consumers,
                                     spec.ops_per_thread, spec.seed,
                                     consumer_id_offset);
    case Workload::kMixed:
      return simq::run_mixed(m, q, spec.producers, spec.consumers,
                             spec.ops_per_thread, spec.prefill, spec.seed,
                             consumer_id_offset);
  }
  throw std::logic_error("bad workload");
}

inline SimRunResult run_queue_workload(const std::string& name,
                                       sim::MachineConfig mcfg,
                                       const WorkloadSpec& spec) {
  sim::Machine m(mcfg);
  const int single_space_offset = spec.producers;
  if (name == "SBQ-HTM" || name == "SBQ-CAS") {
    simq::SimSbq::Config qc;
    qc.enqueuers = spec.producers;
    qc.dequeuers = spec.consumers == 0 ? 1 : spec.consumers;
    qc.basket_capacity = std::max(spec.basket_capacity, spec.producers);
    qc.variant = name == "SBQ-HTM" ? simq::SbqVariant::kHtm
                                   : simq::SbqVariant::kCas;
    simq::SimSbq q(m, qc);
    return run_spec(m, q, spec, /*consumer_id_offset=*/0);
  }
  if (name == "WF-Queue") {
    simq::SimFaaQueue q(m, {});
    return run_spec(m, q, spec, single_space_offset);
  }
  if (name == "BQ-Original") {
    simq::SimBasketsQueue q(m, {});
    q.set_dequeuers(spec.producers + spec.consumers + 1);
    return run_spec(m, q, spec, single_space_offset);
  }
  if (name == "CC-Queue") {
    simq::SimCcQueue q(m, {.threads = spec.producers + spec.consumers + 1});
    return run_spec(m, q, spec, single_space_offset);
  }
  if (name == "MS-Queue") {
    simq::SimMsQueue q(m, {});
    return run_spec(m, q, spec, single_space_offset);
  }
  throw std::invalid_argument("unknown queue: " + name);
}

}  // namespace sbq::bench
