// Shared dispatch for the figure benchmarks: construct one of the five
// evaluated queues (§6.1) on a fresh simulated machine and run a workload.
//
// Queue selection is resolved once per sweep into a QueueKind enum (no
// per-cell string validation), and sweep cells — each an independent,
// deterministic simulation — are executed on the benchsupport parallel
// sweep pool (--jobs / --serial), keyed by (row, column, repeat) so the
// emitted tables are byte-identical to a serial run.
#pragma once

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "benchsupport/bench_report.hpp"
#include "common/contention.hpp"
#include "benchsupport/metrics_json.hpp"
#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sim_workload.hpp"
#include "benchsupport/snapshot_cache.hpp"
#include "benchsupport/table.hpp"
#include "replay/op_trace.hpp"
#include "replay/sim_replay.hpp"
#include "sim/serialize.hpp"
#include "simqueue/sim_baskets_queue.hpp"
#include "simqueue/sim_cc_queue.hpp"
#include "simqueue/sim_faa_queue.hpp"
#include "simqueue/sim_ms_queue.hpp"
#include "simqueue/sim_sbq.hpp"

namespace sbq::bench {

using simq::SimRunResult;

// The queue lineup of the paper's evaluation. We additionally expose the
// Michael–Scott queue (the CAS-retry ancestor) for context.
enum class QueueKind {
  kSbqHtm,
  kSbqCas,
  kWfQueue,
  kBqOriginal,
  kCcQueue,
  kMsQueue,
};

inline const std::vector<QueueKind>& evaluated_queue_kinds() {
  static const std::vector<QueueKind> kinds = {
      QueueKind::kSbqHtm,   QueueKind::kSbqCas,  QueueKind::kWfQueue,
      QueueKind::kBqOriginal, QueueKind::kCcQueue, QueueKind::kMsQueue};
  return kinds;
}

inline const char* queue_kind_name(QueueKind kind) {
  switch (kind) {
    case QueueKind::kSbqHtm: return "SBQ-HTM";
    case QueueKind::kSbqCas: return "SBQ-CAS";
    case QueueKind::kWfQueue: return "WF-Queue";
    case QueueKind::kBqOriginal: return "BQ-Original";
    case QueueKind::kCcQueue: return "CC-Queue";
    case QueueKind::kMsQueue: return "MS-Queue";
  }
  throw std::logic_error("bad QueueKind");
}

inline QueueKind queue_kind_from_name(const std::string& name) {
  for (QueueKind kind : evaluated_queue_kinds()) {
    if (name == queue_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown queue: " + name);
}

inline const std::vector<std::string>& queue_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (QueueKind kind : evaluated_queue_kinds()) {
      out.emplace_back(queue_kind_name(kind));
    }
    return out;
  }();
  return names;
}

// Map the shared --fault-rate/--fault-seed/--fault-jitter options onto a
// machine's fault plan (docs/robustness.md). A zero rate with zero jitter
// leaves the plan disabled, so default invocations keep the byte-identical
// golden schedule. The rate splits 25/50/25 across capacity / interrupt /
// spurious — interrupts dominate real non-conflict abort profiles.
inline void apply_fault_options(sim::MachineConfig& mcfg,
                                const BenchOptions& opts) {
  if (opts.fault_rate <= 0.0 && opts.fault_jitter == 0) return;
  sim::FaultPlan& plan = mcfg.fault_plan;
  plan.enabled = true;
  plan.seed = opts.fault_seed;
  plan.capacity_rate = opts.fault_rate * 0.25;
  plan.interrupt_rate = opts.fault_rate * 0.50;
  plan.spurious_rate = opts.fault_rate * 0.25;
  if (opts.fault_jitter > 0) {
    plan.message_jitter_rate = 0.5;
    plan.max_message_jitter = opts.fault_jitter;
  }
}

// Map the shared --machine-threads/--dir-slices/--sockets options onto a
// machine config (docs/architecture.md "Parallel machine"). Defaults leave
// the config untouched, so default invocations keep the classic serial
// engine and its byte-identical goldens. When sharding is requested the
// slice count defaults to the worker count (the finest legal slicing under
// kFlat; kLink requires slices == sockets, so derive that instead), and
// per-core allocation arenas switch on — also for the serial twin
// (--dir-slices N with --machine-threads 1), which is therefore the exact
// comparison baseline for a sharded run.
inline void apply_machine_options(sim::MachineConfig& mcfg,
                                  const BenchOptions& opts) {
  if (opts.sockets > 0) mcfg.sockets = opts.sockets;
  int slices = opts.dir_slices;
  if (slices == 0) {
    if (opts.machine_threads <= 1) return;
    slices = mcfg.interconnect_model == sim::InterconnectModel::kLink
                 ? mcfg.sockets
                 : opts.machine_threads;
  }
  mcfg.dir_slices = std::min(slices, mcfg.cores);
  mcfg.machine_threads = opts.machine_threads;
  mcfg.alloc_arenas = mcfg.dir_slices > 1;
}

// Map the shared --cas-policy/--policy-seed/--policy-budget/--policy-nc-cost
// options onto a machine's TxCAS contention policy (common/contention.hpp;
// docs/architecture.md "Contention policy layer"). An empty --cas-policy
// leaves the default fixed policy in place, so default invocations keep the
// byte-identical golden schedule. An unknown name throws — sweeps must not
// silently fall back to fixed.
inline void apply_cas_policy_options(sim::MachineConfig& mcfg,
                                     const BenchOptions& opts) {
  if (!opts.policy_decay.empty()) {
    if (opts.policy_decay == "linear") {
      mcfg.cas_policy.commit_decay = ContentionPolicyParams::kCommitDecayLinear;
    } else if (opts.policy_decay == "half-life") {
      mcfg.cas_policy.commit_decay =
          ContentionPolicyParams::kCommitDecayHalfLife;
    } else {
      throw std::invalid_argument("--policy-decay needs linear or half-life");
    }
  }
  if (opts.cas_policy.empty()) return;
  ContentionPolicyKind kind;
  if (!contention_policy_from_name(opts.cas_policy.c_str(), kind)) {
    throw std::invalid_argument(
        "--cas-policy needs fixed, adaptive-backoff or adaptive-fallback");
  }
  mcfg.cas_policy.kind = kind;
  mcfg.cas_policy.seed = opts.policy_seed;
  if (opts.policy_budget > 0) {
    mcfg.cas_policy.fallback_budget =
        static_cast<std::uint64_t>(opts.policy_budget);
  }
  if (opts.policy_nc_cost > 0) {
    mcfg.cas_policy.nonconflict_cost =
        static_cast<std::uint64_t>(opts.policy_nc_cost);
  }
}

// Snapshots (and thus the shared-warm-snapshot fork path) are refused by
// sharded machines, so sweeps must cold-start every cell under
// --machine-threads > 1.
inline bool effective_cold_start(const BenchOptions& opts) {
  return opts.cold_start || opts.machine_threads > 1;
}

enum class Workload { kProducerOnly, kConsumerOnly, kMixed };

struct WorkloadSpec {
  Workload kind = Workload::kProducerOnly;
  int producers = 1;       // live enqueuers (also prefill threads)
  int consumers = 1;       // live dequeuers
  simq::Value ops_per_thread = 1000;
  simq::Value prefill = 0;      // mixed only
  std::uint64_t seed = 1;
  // Seed of the un-measured prefill phase; 0 means "use `seed`". Sweeps
  // that fork repeats from one warmed snapshot MUST set this to a value
  // that does not vary across repeats — the snapshot is shared, so the
  // prefill schedule must be too (the per-repeat variation lives entirely
  // in `seed`, which only the measured phase consumes).
  std::uint64_t prefill_seed = 0;
  int basket_capacity = 44;     // the paper's fixed B
};

inline std::uint64_t effective_prefill_seed(const WorkloadSpec& spec) {
  return spec.prefill_seed == 0 ? spec.seed : spec.prefill_seed;
}

// How a sweep talks to the persistent warm-start cache (docs/performance.md
// "Warm-start cache"). The default is read-write: cached and cold warm-ups
// are byte-identical by construction (checked by snapshot_serde_test and
// rebaseline_golden.sh --check-cached), so the cache is always safe to use.
struct SnapshotCachePolicy {
  CacheMode mode = CacheMode::kReadWrite;
};

// Resolve --snapshot-cache=off|ro|rw (empty = the rw default).
inline SnapshotCachePolicy snapshot_cache_policy(const BenchOptions& opts) {
  SnapshotCachePolicy policy;
  if (!opts.snapshot_cache.empty() &&
      !parse_cache_mode(opts.snapshot_cache, policy.mode)) {
    throw std::invalid_argument("--snapshot-cache needs off, ro or rw");
  }
  return policy;
}

// The one canonical cache-key derivation: schema version, the config's
// encoded-bytes digest, the queue kind, and every WorkloadSpec field the
// prefill schedule can observe. spec.seed is deliberately absent — it only
// drives the measured phase, which is never part of the snapshot
// (spec.ops_per_thread IS hashed: consumer-only prefill depth derives from
// it). `flavor` namespaces warm-up recipes that share a spec but bake
// different state — "prefill" (the figure sweeps: queue built AND prefill
// phase run) vs service_latency's "service-quiesce" (queue built, no
// prefill).
inline std::uint64_t snapshot_cache_key(QueueKind kind,
                                        const sim::MachineConfig& mcfg,
                                        const WorkloadSpec& spec,
                                        const char* flavor = "prefill") {
  CacheKey k;
  k.add_u64(sim::kSnapshotSchemaVersion);
  k.add_str(flavor);
  k.add_u64(sim::machine_config_digest(mcfg));
  k.add_str(queue_kind_name(kind));
  k.add_u64(static_cast<std::uint64_t>(spec.kind));
  k.add_u64(static_cast<std::uint64_t>(spec.producers));
  k.add_u64(static_cast<std::uint64_t>(spec.consumers));
  k.add_u64(spec.ops_per_thread);
  k.add_u64(spec.prefill);
  k.add_u64(static_cast<std::uint64_t>(spec.basket_capacity));
  k.add_u64(effective_prefill_seed(spec));
  return k.value();
}

// Run `spec`'s un-measured prefill phase (no-op for producer-only) on
// machine `m`, leaving it quiescent.
template <typename QueueT>
void prefill_spec(sim::Machine& m, QueueT& q, const WorkloadSpec& spec) {
  const std::uint64_t pseed = effective_prefill_seed(spec);
  switch (spec.kind) {
    case Workload::kProducerOnly:
      return;  // starts from an empty queue
    case Workload::kConsumerOnly:
      simq::run_prefill(m, q, spec.producers,
                        simq::consumer_only_per_producer(
                            spec.producers, spec.consumers,
                            spec.ops_per_thread),
                        pseed);
      return;
    case Workload::kMixed:
      simq::run_prefill(m, q, spec.producers,
                        simq::mixed_per_producer(spec.producers, spec.prefill),
                        pseed);
      return;
  }
  throw std::logic_error("bad workload");
}

// Run `spec`'s measured phase; any prefill must already have happened (on
// this machine or on the snapshot it was forked from). The machine must
// have enough cores: producer-only/consumer-only use cores [0, threads);
// mixed puts consumers at [cores/2, ...).
template <typename QueueT>
SimRunResult measure_spec(sim::Machine& m, QueueT& q, const WorkloadSpec& spec,
                          int consumer_id_offset) {
  switch (spec.kind) {
    case Workload::kProducerOnly:
      return simq::run_producer_only(m, q, spec.producers, spec.ops_per_thread,
                                     spec.seed);
    case Workload::kConsumerOnly:
      return simq::measure_consumer_only(m, q, spec.consumers,
                                         spec.ops_per_thread, spec.seed,
                                         consumer_id_offset);
    case Workload::kMixed:
      return simq::measure_mixed(m, q, spec.producers, spec.consumers,
                                 spec.ops_per_thread, spec.seed,
                                 consumer_id_offset);
  }
  throw std::logic_error("bad workload");
}

// Both phases on one machine.
template <typename QueueT>
SimRunResult run_spec(sim::Machine& m, QueueT& q, const WorkloadSpec& spec,
                      int consumer_id_offset) {
  prefill_spec(m, q, spec);
  return measure_spec(m, q, spec, consumer_id_offset);
}

// Construct the queue `kind` prescribes on machine `m` and invoke
// fn(queue, consumer_id_offset) with it — the one place the QueueKind ->
// class mapping lives. When `restore` is given, `m` must be a fork of a
// deserialized snapshot and the queue is rebuilt from the saved host words
// instead of allocating/poking fresh state (note BQ-Original: the restore
// constructor carries the hop counters, so set_dequeuers must NOT run).
template <typename Fn>
decltype(auto) with_queue(QueueKind kind, sim::Machine& m,
                          const WorkloadSpec& spec, Fn&& fn,
                          const simq::HostWords* restore = nullptr) {
  const int single_space_offset = spec.producers;
  switch (kind) {
    case QueueKind::kSbqHtm:
    case QueueKind::kSbqCas: {
      simq::SimSbq::Config qc;
      qc.enqueuers = spec.producers;
      qc.dequeuers = spec.consumers == 0 ? 1 : spec.consumers;
      qc.basket_capacity = std::max(spec.basket_capacity, spec.producers);
      qc.variant = kind == QueueKind::kSbqHtm ? simq::SbqVariant::kHtm
                                              : simq::SbqVariant::kCas;
      if (restore != nullptr) {
        simq::SimSbq q(m, qc, *restore);
        return fn(q, /*consumer_id_offset=*/0);
      }
      simq::SimSbq q(m, qc);
      return fn(q, /*consumer_id_offset=*/0);
    }
    case QueueKind::kWfQueue: {
      if (restore != nullptr) {
        simq::SimFaaQueue q(m, {}, *restore);
        return fn(q, single_space_offset);
      }
      simq::SimFaaQueue q(m, {});
      return fn(q, single_space_offset);
    }
    case QueueKind::kBqOriginal: {
      if (restore != nullptr) {
        simq::SimBasketsQueue q(m, {}, *restore);
        return fn(q, single_space_offset);
      }
      simq::SimBasketsQueue q(m, {});
      q.set_dequeuers(spec.producers + spec.consumers + 1);
      return fn(q, single_space_offset);
    }
    case QueueKind::kCcQueue: {
      const simq::SimCcQueue::Config qc{.threads =
                                            spec.producers + spec.consumers + 1};
      if (restore != nullptr) {
        simq::SimCcQueue q(m, qc, *restore);
        return fn(q, single_space_offset);
      }
      simq::SimCcQueue q(m, qc);
      return fn(q, single_space_offset);
    }
    case QueueKind::kMsQueue: {
      if (restore != nullptr) {
        simq::SimMsQueue q(m, {}, *restore);
        return fn(q, single_space_offset);
      }
      simq::SimMsQueue q(m, {});
      return fn(q, single_space_offset);
    }
  }
  throw std::logic_error("bad QueueKind");
}

// Try to satisfy one warm-up from the cache: load, decode, and — pure
// paranoia, the key already hashes the digest — check that the decoded
// snapshot's config matches the requested one. Counts one hit or one miss.
inline bool load_warm_snapshot(const SnapshotCache& cache, std::uint64_t key,
                               const sim::MachineConfig& mcfg,
                               sim::MachineSnapshot& snap,
                               std::vector<std::uint64_t>& words) {
  auto& stats = snapshot_cache_stats();
  const auto blob = cache.load(key);
  if (blob && sim::decode_snapshot_blob(*blob, key, snap, words) &&
      sim::machine_config_digest(snap.cfg) ==
          sim::machine_config_digest(mcfg)) {
    stats.hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  stats.misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

// Encode the freshly warmed (machine, queue) pair and publish it under
// `key` (read-write mode only; best-effort).
template <typename QueueT>
void store_warm_snapshot(const SnapshotCache& cache, std::uint64_t key,
                         const sim::MachineSnapshot& snap, const QueueT& q) {
  if (cache.mode() != CacheMode::kReadWrite) return;
  std::vector<std::uint64_t> words;
  q.save_host_state(words);
  const std::vector<std::uint8_t> blob =
      sim::encode_snapshot_blob(snap, words, key);
  if (!blob.empty() && cache.store(key, blob)) {
    snapshot_cache_stats().stores.fetch_add(1, std::memory_order_relaxed);
  }
}

// Cached analogue of the cold single cell: a hit replaces the prefill phase
// with fork(decoded snapshot) + host-word restore — byte-identical to the
// cold run by the same invariant the --cold-start golden checks pin down; a
// miss warms cold and (rw) publishes the warmed state for the next run.
inline SimRunResult run_queue_workload_cached(
    QueueKind kind, const sim::MachineConfig& mcfg, const WorkloadSpec& spec,
    const std::function<void(sim::Machine&)>& post_run,
    const SnapshotCachePolicy& policy) {
  const SnapshotCache cache(policy.mode, sim::kSnapshotSchemaVersion);
  const std::uint64_t key = snapshot_cache_key(kind, mcfg, spec);
  sim::MachineSnapshot snap;
  std::vector<std::uint64_t> words;
  if (load_warm_snapshot(cache, key, mcfg, snap, words)) {
    try {
      auto m = sim::Machine::fork(snap);
      const simq::HostWords hw{words.data(), words.size()};
      SimRunResult result = with_queue(
          kind, *m, spec,
          [&](auto& q, int offset) { return measure_spec(*m, q, spec, offset); },
          &hw);
      if (post_run) post_run(*m);
      return result;
    } catch (const std::out_of_range&) {
      // Host words from a stale queue layout that still decoded: cold path.
    }
  }
  sim::Machine m(mcfg);
  SimRunResult result = with_queue(kind, m, spec, [&](auto& q, int offset) {
    prefill_spec(m, q, spec);
    store_warm_snapshot(cache, key, m.snapshot(), q);
    return measure_spec(m, q, spec, offset);
  });
  if (post_run) post_run(m);
  return result;
}

// `post_run`, when set, is called with the machine after the workload
// completes (and before it is torn down) — used by --trace to export the
// event ring of a representative cell. `cache_policy` (off at this API
// level; drivers pass snapshot_cache_policy(opts), whose default is rw)
// routes cells with a real prefill phase through the warm-start cache —
// producer-only cells start empty, so there is nothing to skip.
inline SimRunResult run_queue_workload(
    QueueKind kind, const sim::MachineConfig& mcfg, const WorkloadSpec& spec,
    const std::function<void(sim::Machine&)>& post_run = {},
    const SnapshotCachePolicy& cache_policy = {CacheMode::kOff}) {
  if (cache_policy.mode != CacheMode::kOff && sim::snapshot_cacheable(mcfg) &&
      spec.kind != Workload::kProducerOnly) {
    return run_queue_workload_cached(kind, mcfg, spec, post_run, cache_policy);
  }
  sim::Machine m(mcfg);
  SimRunResult result = with_queue(kind, m, spec, [&](auto& q, int offset) {
    return run_spec(m, q, spec, offset);
  });
  if (post_run) post_run(m);
  return result;
}

// A workload warmed once, forkable many times: builds a machine, constructs
// the queue, runs the (repeat-independent) prefill phase, and takes a
// Machine::snapshot. Each run_repeat() forks a machine from the snapshot,
// copies the prototype queue's host-side state, rebinds the copy to the
// fork, and runs the measured phase — byte-identical to cold-starting the
// same cell, at a fraction of the warm-up cost. Const access is
// thread-safe: run_repeat only reads the captured snapshot and prototype,
// so sweep workers can fork repeats of one group concurrently.
class WarmedWorkload {
 public:
  WarmedWorkload() = default;

  // With a cache policy (drivers pass snapshot_cache_policy(opts); the off
  // default keeps library-level callers from writing .sbq-cache/ into their
  // cwd unasked) the group's warm state is loaded from the persistent cache
  // when present, and published to it after a cold warm-up otherwise.
  WarmedWorkload(QueueKind kind, const sim::MachineConfig& mcfg,
                 const WorkloadSpec& warm_spec,
                 const SnapshotCachePolicy& policy = {CacheMode::kOff}) {
    if (policy.mode != CacheMode::kOff && sim::snapshot_cacheable(mcfg)) {
      const SnapshotCache cache(policy.mode, sim::kSnapshotSchemaVersion);
      const std::uint64_t key = snapshot_cache_key(kind, mcfg, warm_spec);
      if (from_cache(kind, mcfg, warm_spec, cache, key)) return;
      warm_cold(kind, mcfg, warm_spec, &cache, key);
      return;
    }
    warm_cold(kind, mcfg, warm_spec, nullptr, 0);
  }

  // `spec` must match warm_spec in everything but `seed` (the prefill is
  // already baked into the snapshot; only the measured phase runs).
  SimRunResult run_repeat(
      const WorkloadSpec& spec,
      const std::function<void(sim::Machine&)>& post_run = {}) const {
    return run_(spec, post_run);
  }

  explicit operator bool() const noexcept { return static_cast<bool>(run_); }

 private:
  template <typename QueueT>
  void capture(std::shared_ptr<const sim::MachineSnapshot> snap,
               std::shared_ptr<sim::Machine> warm,
               std::shared_ptr<QueueT> proto, int offset) {
    // `warm` stays captured: the prototype holds a Machine* into it (never
    // dereferenced after capture — every fork rebinds its copy — but
    // keeping it alive keeps the pointer valid by construction).
    run_ = [snap = std::move(snap), warm = std::move(warm),
            proto = std::move(proto),
            offset](const WorkloadSpec& spec,
                    const std::function<void(sim::Machine&)>& post_run) {
      auto m = sim::Machine::fork(*snap);
      QueueT q(*proto);
      q.rebind(*m);
      SimRunResult result = measure_spec(*m, q, spec, offset);
      if (post_run) post_run(*m);
      return result;
    };
  }

  bool from_cache(QueueKind kind, const sim::MachineConfig& mcfg,
                  const WorkloadSpec& spec, const SnapshotCache& cache,
                  std::uint64_t key) {
    auto snap = std::make_shared<sim::MachineSnapshot>();
    auto words = std::make_shared<std::vector<std::uint64_t>>();
    if (!load_warm_snapshot(cache, key, mcfg, *snap, *words)) return false;
    // The prototype queue needs a live machine to point at; fork one from
    // the decoded snapshot and keep it captured, exactly as the cold path
    // keeps its warm machine.
    std::shared_ptr<sim::Machine> warm = sim::Machine::fork(*snap);
    const simq::HostWords hw{words->data(), words->size()};
    try {
      with_queue(
          kind, *warm, spec,
          [&](auto& q, int offset) {
            using QueueT = std::remove_reference_t<decltype(q)>;
            capture<QueueT>(std::shared_ptr<const sim::MachineSnapshot>(snap),
                            std::move(warm),
                            std::make_shared<QueueT>(std::move(q)), offset);
          },
          &hw);
    } catch (const std::out_of_range&) {
      return false;  // host words from a stale queue layout: warm up cold
    }
    return true;
  }

  void warm_cold(QueueKind kind, const sim::MachineConfig& mcfg,
                 const WorkloadSpec& spec, const SnapshotCache* cache,
                 std::uint64_t key) {
    auto warm = std::make_shared<sim::Machine>(mcfg);
    with_queue(kind, *warm, spec, [&](auto& q, int offset) {
      using QueueT = std::remove_reference_t<decltype(q)>;
      auto proto = std::make_shared<QueueT>(std::move(q));
      prefill_spec(*warm, *proto, spec);
      auto snap =
          std::make_shared<const sim::MachineSnapshot>(warm->snapshot());
      if (cache != nullptr) store_warm_snapshot(*cache, key, *snap, *proto);
      capture<QueueT>(std::move(snap), std::move(warm), std::move(proto),
                      offset);
    });
  }

  std::function<SimRunResult(const WorkloadSpec&,
                             const std::function<void(sim::Machine&)>&)>
      run_;
};

// Name-based shim for callers outside the sweep hot path (resolves the
// name on every call; sweeps should resolve once and pass QueueKind).
inline SimRunResult run_queue_workload(const std::string& name,
                                       sim::MachineConfig mcfg,
                                       const WorkloadSpec& spec) {
  return run_queue_workload(queue_kind_from_name(name), mcfg, spec);
}

// (threads-row × queue × repeat) sweep grid executed on the parallel pool.
// Results are keyed by cell index — at(row, queue, repeat) — so downstream
// aggregation is independent of completion order.
struct QueueSweepResults {
  std::vector<SimRunResult> cells;
  std::size_t queues = 0;
  std::size_t repeats = 0;

  const SimRunResult& at(std::size_t row, std::size_t queue,
                         std::size_t repeat) const {
    return cells[(row * queues + queue) * repeats + repeat];
  }
};

// Runs the standard figure grid: for each thread count in `rows`, each
// queue in `queues`, and each repeat, one cell. `make` maps
// (thread_count, repeat) -> {MachineConfig, WorkloadSpec} (the queue kind
// is applied by the runner). `row_done(row, results)` is called on the
// calling thread, in row order, as soon as a row's cells all finish —
// drivers use it to stream finished table rows.
//
// By default repeats of one (row, queue) group share a warmed snapshot:
// the group's prefill runs once, and each repeat forks a machine from it
// (WarmedWorkload) — byte-identical to a cold start because the prefill
// schedule depends only on spec.prefill_seed, which `make` must keep
// constant across repeats. `cold_start` forces the old path (every cell
// warms its own machine); drivers expose it as --cold-start so the
// equivalence stays checkable from the command line. `cache_policy` routes
// the groups' warm-ups through the persistent snapshot cache (off by
// default at this API level; drivers pass snapshot_cache_policy(opts));
// cold-start sweeps stay genuinely cold — they exist to check identity
// against the fork paths, cached one included.
template <typename MakeSpec, typename RowDone>
void run_queue_sweep(const std::vector<int>& rows,
                     const std::vector<QueueKind>& queues, int repeats,
                     int jobs, MakeSpec make, RowDone row_done,
                     bool cold_start = false,
                     const SnapshotCachePolicy& cache_policy = {
                         CacheMode::kOff}) {
  QueueSweepResults res;
  res.queues = queues.size();
  res.repeats = static_cast<std::size_t>(repeats);
  const std::size_t cells_per_row = res.queues * res.repeats;
  res.cells.resize(rows.size() * cells_per_row);
  if (cold_start) {
    run_sweep_cells(
        rows.size(), cells_per_row, jobs,
        [&](std::size_t i) {
          const std::size_t row = i / cells_per_row;
          const std::size_t queue = (i % cells_per_row) / res.repeats;
          const int repeat = static_cast<int>(i % res.repeats);
          const auto [mcfg, spec] = make(rows[row], repeat);
          res.cells[i] = run_queue_workload(queues[queue], mcfg, spec);
        },
        [&](std::size_t row) { row_done(row, res); });
    return;
  }
  // Fork path: one work item per (row, queue) group. Each group's slot in
  // `warmed` is touched by exactly one worker (run_sweep_groups contract),
  // and is released after the group's last repeat to bound live snapshots
  // to in-flight groups.
  std::vector<WarmedWorkload> warmed(rows.size() * res.queues);
  run_sweep_groups(
      rows.size(), res.queues, res.repeats, jobs,
      [&](std::size_t g) {
        const std::size_t row = g / res.queues;
        const auto [mcfg, spec] = make(rows[row], /*repeat=*/0);
        warmed[g] =
            WarmedWorkload(queues[g % res.queues], mcfg, spec, cache_policy);
      },
      [&](std::size_t g, std::size_t c) {
        const std::size_t row = g / res.queues;
        const std::size_t queue = g % res.queues;
        const auto [mcfg, spec] = make(rows[row], static_cast<int>(c));
        res.cells[(row * res.queues + queue) * res.repeats + c] =
            warmed[g].run_repeat(spec);
        if (c + 1 == res.repeats) warmed[g] = WarmedWorkload();
      },
      [&](std::size_t row) { row_done(row, res); });
}

// ---------------------------------------------------------------------------
// --json / --trace support shared by the figure drivers
// (schema "sbq.bench/1"; see docs/observability.md).
// ---------------------------------------------------------------------------

// One per-cell record of the standard (threads × queue × repeat) grid:
// the cell's coordinates, its latency/throughput measurements, and the
// machine's counter snapshot.
inline Json queue_cell_json(int threads, QueueKind kind, int repeat,
                            const SimRunResult& r, double ns_per_cycle) {
  Json c = Json::object();
  c.set("threads", Json(threads));
  c.set("queue", Json(queue_kind_name(kind)));
  c.set("repeat", Json(repeat));
  c.set("enq_ops", Json(r.enq_ops));
  c.set("deq_ops", Json(r.deq_ops));
  c.set("enq_latency_ns", Json(r.enq_latency_ns(ns_per_cycle)));
  c.set("deq_latency_ns", Json(r.deq_latency_ns(ns_per_cycle)));
  c.set("throughput_mops", Json(r.throughput_mops(ns_per_cycle)));
  c.set("duration_cycles", Json(r.duration_cycles));
  c.set("counters", metrics_to_json(r.metrics));
  return c;
}

// Append one finished row's cells to the report in (queue, repeat) order.
// Called from row_done (rows arrive in order), so the artifact's cell order
// is deterministic regardless of --jobs.
inline void add_row_cells(BenchReport& report, std::size_t row, int threads,
                          const std::vector<QueueKind>& queues,
                          const QueueSweepResults& res, double ns_per_cycle) {
  for (std::size_t q = 0; q < queues.size(); ++q) {
    for (std::size_t r = 0; r < res.repeats; ++r) {
      report.add_cell(queue_cell_json(threads, queues[q], static_cast<int>(r),
                                      res.at(row, q, r), ns_per_cycle));
    }
  }
}

// --record-ops: re-run one representative cell with op recording enabled
// and write the versioned trace to `path` (docs/replay.md). Like --trace,
// the recorded re-run is a one-off outside the sweep: recording needs the
// single global event order only the serial engine produces, and the
// host-side log append is schedule-invisible, so the recorded run's
// metrics equal the plain cell's. Returns false on I/O failure.
inline bool write_recorded_cell(const std::string& path, QueueKind kind,
                                sim::MachineConfig mcfg,
                                const WorkloadSpec& spec) {
  if (path.empty()) return true;
  mcfg.machine_threads = 1;
  replay::OpTrace trace;
  trace.source = replay::TraceSource::kSim;
  trace.queue = queue_kind_name(kind);
  trace.workload = static_cast<std::uint8_t>(spec.kind);
  trace.producers = static_cast<std::uint32_t>(spec.producers);
  trace.consumers = static_cast<std::uint32_t>(spec.consumers);
  trace.ops_per_thread = spec.ops_per_thread;
  trace.prefill = spec.prefill;
  trace.seed = spec.seed;
  trace.prefill_seed = spec.prefill_seed;
  trace.basket_capacity = static_cast<std::uint32_t>(spec.basket_capacity);
  sim::Machine m(mcfg);
  with_queue(kind, m, spec, [&](auto& q, int offset) {
    return replay::run_recorded_workload(m, q, trace, offset);
  });
  if (!replay::write_op_trace_file(path, trace)) {
    std::cerr << "--record-ops: cannot write " << path << "\n";
    return false;
  }
  return true;
}

// Rebuild the WorkloadSpec a trace header describes (native traces map to
// the mixed shape: every thread is both a producer and a consumer).
inline WorkloadSpec spec_from_trace(const replay::OpTrace& trace) {
  WorkloadSpec spec;
  spec.kind = static_cast<Workload>(trace.workload);
  spec.producers = static_cast<int>(trace.producers);
  spec.consumers = static_cast<int>(trace.consumers);
  spec.ops_per_thread = trace.ops_per_thread;
  spec.prefill = trace.prefill;
  spec.seed = trace.seed;
  spec.prefill_seed = trace.prefill_seed;
  spec.basket_capacity = static_cast<int>(trace.basket_capacity);
  return spec;
}

// Core count a replayed spec needs: producer/consumer cores for sim traces
// (mixed pins consumers at cores/2), one core per native thread.
inline int replay_min_cores(const WorkloadSpec& spec) {
  switch (spec.kind) {
    case Workload::kProducerOnly:
      return spec.producers;
    case Workload::kConsumerOnly:
      return std::max(spec.producers, spec.consumers);
    case Workload::kMixed:
      return 2 * std::max(spec.producers, spec.consumers);
  }
  throw std::logic_error("bad workload");
}

struct ReplaySummary {
  replay::ReplayOutcome outcome;
  std::uint64_t trace_records = 0;
};

// --replay-ops: feed a recorded trace back as a sim workload under `mcfg`
// (cores bumped to the trace's need, serial engine forced). The queue kind
// and workload shape come from the trace header, the machine model from
// the driver's flags — that is the point: the same logical history under
// any MachineConfig.
inline ReplaySummary run_replay_file(const std::string& path,
                                     sim::MachineConfig mcfg) {
  replay::OpTrace trace;
  if (!replay::read_op_trace_file(path, trace)) {
    throw std::invalid_argument("--replay-ops: cannot decode " + path);
  }
  const QueueKind kind = queue_kind_from_name(trace.queue);
  const WorkloadSpec spec = spec_from_trace(trace);
  mcfg.machine_threads = 1;
  mcfg.cores = std::max(mcfg.cores, replay_min_cores(spec));
  ReplaySummary summary;
  summary.trace_records = trace.records.size();
  sim::Machine m(mcfg);
  summary.outcome = with_queue(kind, m, spec, [&](auto& q, int offset) {
    return replay::replay_trace(m, q, trace, offset);
  });
  return summary;
}

// Shared driver tail for --replay-ops: run, print a deterministic one-line
// summary, return false on error (drivers exit 1).
inline bool replay_cell_from_options(const BenchOptions& opts,
                                     sim::MachineConfig mcfg) {
  if (opts.replay_ops.empty()) return true;
  try {
    const ReplaySummary s = run_replay_file(opts.replay_ops, mcfg);
    std::cout << "replay: " << s.trace_records << " trace records, "
              << s.outcome.run.enq_ops << " enqueues, "
              << s.outcome.run.deq_ops << " dequeues replayed, "
              << s.outcome.value_mismatches << " value mismatches\n";
    return true;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return false;
  }
}

// --trace: re-run one representative cell with the event ring enabled and
// write its JSONL trace to `path`. Returns false on I/O failure.
inline bool write_traced_cell(const std::string& path, QueueKind kind,
                              sim::MachineConfig mcfg,
                              const WorkloadSpec& spec) {
  if (path.empty()) return true;
  mcfg.record_trace = true;
  // Tracing needs the single global event order only the serial engine
  // produces (the sharded ctor refuses record_trace); the traced re-run is
  // a one-off outside the sweep, so dropping to one machine thread is free.
  mcfg.machine_threads = 1;
  bool ok = false;
  run_queue_workload(kind, mcfg, spec, [&](sim::Machine& m) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "--trace: cannot open " << path << " for writing\n";
      return;
    }
    m.trace().write_jsonl(out);
    out.flush();
    ok = static_cast<bool>(out);
  });
  return ok;
}

}  // namespace sbq::bench
