// Shared dispatch for the figure benchmarks: construct one of the five
// evaluated queues (§6.1) on a fresh simulated machine and run a workload.
//
// Queue selection is resolved once per sweep into a QueueKind enum (no
// per-cell string validation), and sweep cells — each an independent,
// deterministic simulation — are executed on the benchsupport parallel
// sweep pool (--jobs / --serial), keyed by (row, column, repeat) so the
// emitted tables are byte-identical to a serial run.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "benchsupport/parallel_sweep.hpp"
#include "benchsupport/sim_workload.hpp"
#include "simqueue/sim_baskets_queue.hpp"
#include "simqueue/sim_cc_queue.hpp"
#include "simqueue/sim_faa_queue.hpp"
#include "simqueue/sim_ms_queue.hpp"
#include "simqueue/sim_sbq.hpp"

namespace sbq::bench {

using simq::SimRunResult;

// The queue lineup of the paper's evaluation. We additionally expose the
// Michael–Scott queue (the CAS-retry ancestor) for context.
enum class QueueKind {
  kSbqHtm,
  kSbqCas,
  kWfQueue,
  kBqOriginal,
  kCcQueue,
  kMsQueue,
};

inline const std::vector<QueueKind>& evaluated_queue_kinds() {
  static const std::vector<QueueKind> kinds = {
      QueueKind::kSbqHtm,   QueueKind::kSbqCas,  QueueKind::kWfQueue,
      QueueKind::kBqOriginal, QueueKind::kCcQueue, QueueKind::kMsQueue};
  return kinds;
}

inline const char* queue_kind_name(QueueKind kind) {
  switch (kind) {
    case QueueKind::kSbqHtm: return "SBQ-HTM";
    case QueueKind::kSbqCas: return "SBQ-CAS";
    case QueueKind::kWfQueue: return "WF-Queue";
    case QueueKind::kBqOriginal: return "BQ-Original";
    case QueueKind::kCcQueue: return "CC-Queue";
    case QueueKind::kMsQueue: return "MS-Queue";
  }
  throw std::logic_error("bad QueueKind");
}

inline QueueKind queue_kind_from_name(const std::string& name) {
  for (QueueKind kind : evaluated_queue_kinds()) {
    if (name == queue_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown queue: " + name);
}

inline const std::vector<std::string>& queue_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (QueueKind kind : evaluated_queue_kinds()) {
      out.emplace_back(queue_kind_name(kind));
    }
    return out;
  }();
  return names;
}

enum class Workload { kProducerOnly, kConsumerOnly, kMixed };

struct WorkloadSpec {
  Workload kind = Workload::kProducerOnly;
  int producers = 1;       // live enqueuers (also prefill threads)
  int consumers = 1;       // live dequeuers
  simq::Value ops_per_thread = 1000;
  simq::Value prefill = 0;      // mixed only
  std::uint64_t seed = 1;
  int basket_capacity = 44;     // the paper's fixed B
};

// Runs `spec` for the named queue on machine `m`. The machine must have
// enough cores: producer-only/consumer-only use cores [0, threads);
// mixed puts consumers at [cores/2, ...).
template <typename QueueT>
SimRunResult run_spec(sim::Machine& m, QueueT& q, const WorkloadSpec& spec,
                      int consumer_id_offset) {
  switch (spec.kind) {
    case Workload::kProducerOnly:
      return simq::run_producer_only(m, q, spec.producers, spec.ops_per_thread,
                                     spec.seed);
    case Workload::kConsumerOnly:
      return simq::run_consumer_only(m, q, spec.producers, spec.consumers,
                                     spec.ops_per_thread, spec.seed,
                                     consumer_id_offset);
    case Workload::kMixed:
      return simq::run_mixed(m, q, spec.producers, spec.consumers,
                             spec.ops_per_thread, spec.prefill, spec.seed,
                             consumer_id_offset);
  }
  throw std::logic_error("bad workload");
}

inline SimRunResult run_queue_workload(QueueKind kind,
                                       const sim::MachineConfig& mcfg,
                                       const WorkloadSpec& spec) {
  sim::Machine m(mcfg);
  const int single_space_offset = spec.producers;
  switch (kind) {
    case QueueKind::kSbqHtm:
    case QueueKind::kSbqCas: {
      simq::SimSbq::Config qc;
      qc.enqueuers = spec.producers;
      qc.dequeuers = spec.consumers == 0 ? 1 : spec.consumers;
      qc.basket_capacity = std::max(spec.basket_capacity, spec.producers);
      qc.variant = kind == QueueKind::kSbqHtm ? simq::SbqVariant::kHtm
                                              : simq::SbqVariant::kCas;
      simq::SimSbq q(m, qc);
      return run_spec(m, q, spec, /*consumer_id_offset=*/0);
    }
    case QueueKind::kWfQueue: {
      simq::SimFaaQueue q(m, {});
      return run_spec(m, q, spec, single_space_offset);
    }
    case QueueKind::kBqOriginal: {
      simq::SimBasketsQueue q(m, {});
      q.set_dequeuers(spec.producers + spec.consumers + 1);
      return run_spec(m, q, spec, single_space_offset);
    }
    case QueueKind::kCcQueue: {
      simq::SimCcQueue q(m, {.threads = spec.producers + spec.consumers + 1});
      return run_spec(m, q, spec, single_space_offset);
    }
    case QueueKind::kMsQueue: {
      simq::SimMsQueue q(m, {});
      return run_spec(m, q, spec, single_space_offset);
    }
  }
  throw std::logic_error("bad QueueKind");
}

// Name-based shim for callers outside the sweep hot path (resolves the
// name on every call; sweeps should resolve once and pass QueueKind).
inline SimRunResult run_queue_workload(const std::string& name,
                                       sim::MachineConfig mcfg,
                                       const WorkloadSpec& spec) {
  return run_queue_workload(queue_kind_from_name(name), mcfg, spec);
}

// (threads-row × queue × repeat) sweep grid executed on the parallel pool.
// Results are keyed by cell index — at(row, queue, repeat) — so downstream
// aggregation is independent of completion order.
struct QueueSweepResults {
  std::vector<SimRunResult> cells;
  std::size_t queues = 0;
  std::size_t repeats = 0;

  const SimRunResult& at(std::size_t row, std::size_t queue,
                         std::size_t repeat) const {
    return cells[(row * queues + queue) * repeats + repeat];
  }
};

// Runs the standard figure grid: for each thread count in `rows`, each
// queue in `queues`, and each repeat, one cell. `make` maps
// (thread_count, repeat) -> {MachineConfig, WorkloadSpec} (the queue kind
// is applied by the runner). `row_done(row, results)` is called on the
// calling thread, in row order, as soon as a row's cells all finish —
// drivers use it to stream finished table rows.
template <typename MakeSpec, typename RowDone>
void run_queue_sweep(const std::vector<int>& rows,
                     const std::vector<QueueKind>& queues, int repeats,
                     int jobs, MakeSpec make, RowDone row_done) {
  QueueSweepResults res;
  res.queues = queues.size();
  res.repeats = static_cast<std::size_t>(repeats);
  const std::size_t cells_per_row = res.queues * res.repeats;
  res.cells.resize(rows.size() * cells_per_row);
  run_sweep_cells(
      rows.size(), cells_per_row, jobs,
      [&](std::size_t i) {
        const std::size_t row = i / cells_per_row;
        const std::size_t queue = (i % cells_per_row) / res.repeats;
        const int repeat = static_cast<int>(i % res.repeats);
        const auto [mcfg, spec] = make(rows[row], repeat);
        res.cells[i] = run_queue_workload(queues[queue], mcfg, spec);
      },
      [&](std::size_t row) { row_done(row, res); });
}

}  // namespace sbq::bench
