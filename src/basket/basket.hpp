// The basket abstract data type (§5.2.1 of the paper).
//
// A basket is a linearizable multiset with three operations:
//
//   insert(x, id)  -> bool   may fail non-deterministically; on success x
//                            becomes extractable exactly once
//   extract(id)    -> T*     removes and returns some element, or nullptr
//   empty()        -> bool   false if non-empty; false negatives allowed
//
// plus `reset()`, which the modular queue uses when an enqueuer recycles a
// node whose append lost the race (§5.2.2: node reuse undoes the single
// insertion in O(1) amortized time).
//
// The interface alone does not make the queue linearizable; an
// implementation must additionally guarantee (§5.3.2): once the basket is
// *indicated empty* (an extract returned nullptr or empty() returned true),
// any basket_extract invoked later must fail. Both implementations below
// satisfy it — the SBQ basket via its counter/empty-bit protocol, the
// Treiber basket by closing itself on first emptiness indication.
#pragma once

#include <concepts>
#include <cstddef>

namespace sbq {

template <typename B, typename T>
concept Basket = requires(B& b, const B& cb, T* x, int id) {
  { b.insert(x, id) } -> std::same_as<bool>;
  { b.extract(id) } -> std::same_as<T*>;
  { cb.empty() } -> std::same_as<bool>;
  { b.reset(id) };
};

}  // namespace sbq
