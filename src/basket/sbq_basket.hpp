// The SBQ scalable basket (Algorithms 8 and 9 of the paper).
//
// Design goal: contention-free insertion, single-FAA extraction.
//   * One cache-line-padded cell per inserter; insert is a CAS on the
//     inserter's *private* cell (INSERT -> element), so inserts never
//     contend with each other.
//   * Extract FAAs a shared counter to claim a cell index, then SWAPs the
//     cell with EMPTY. Getting a real element: done. Getting INSERT: the
//     inserter never showed up; the SWAP blocks it from ever inserting, and
//     the extractor retries at the next index.
//   * The extractor that claims the *last* index sets the `empty` bit, which
//     short-circuits later extractors before they FAA (reduces FAA traffic).
//
// Wait-freedom: insert is one CAS; extract performs at most N FAAs.
// Linearizability w.r.t. the §5.2.1 spec is exercised by the property tests
// in tests/basket_test.cpp (every inserted element extracted exactly once,
// emptiness indication is stable, etc.).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cacheline.hpp"
#include "common/padded.hpp"

namespace sbq {

template <typename T>
class SbqBasket {
 public:
  // `capacity` is the number of inserters (B in the paper). `live_inserters`
  // bounds the extract scan; the paper's benchmarks fix capacity at 44 but
  // scan only the number of enqueuers in the experiment.
  explicit SbqBasket(std::size_t capacity, std::size_t live_inserters = 0)
      : capacity_(capacity),
        live_(live_inserters == 0 ? capacity : live_inserters),
        cells_(std::make_unique<Padded<std::atomic<void*>>[]>(capacity)) {
    assert(live_ <= capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].value.store(kInsert, std::memory_order_relaxed);
    }
  }

  SbqBasket(const SbqBasket&) = delete;
  SbqBasket& operator=(const SbqBasket&) = delete;

  // Attempt to place `element` in this inserter's cell (Algorithm 9 line 2).
  bool insert(T* element, int id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < capacity_);
    assert(element != nullptr);
    void* expected = kInsert;
    return cells_[static_cast<std::size_t>(id)].value.compare_exchange_strong(
        expected, element, std::memory_order_release, std::memory_order_acquire);
  }

  // Remove and return some element, or nullptr if the basket is (indicated)
  // empty (Algorithm 9 lines 4–13).
  T* extract(int /*id*/) {
    if (empty_.load(std::memory_order_acquire)) return nullptr;
    std::uint64_t index;
    while ((index = counter_.fetch_add(1, std::memory_order_acq_rel)) < live_) {
      if (index == live_ - 1) empty_.store(true, std::memory_order_release);
      void* element =
          cells_[index].value.exchange(kEmpty, std::memory_order_acq_rel);
      if (element != kInsert) return static_cast<T*>(element);
      // Cell was never filled; it is now closed to its inserter. Retry.
    }
    return nullptr;
  }

  // False means possibly non-empty (false negatives allowed by the spec).
  bool empty() const { return empty_.load(std::memory_order_acquire); }

  // Reused-node reset (§5.2.2): called only by an enqueuer whose node never
  // got appended, so the only modification to undo is its own insertion.
  // O(1): exactly one cell can differ from INSERT.
  void reset(int id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < capacity_);
    cells_[static_cast<std::size_t>(id)].value.store(kInsert,
                                                     std::memory_order_relaxed);
    counter_.store(0, std::memory_order_relaxed);
    empty_.store(false, std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t live_inserters() const noexcept { return live_; }

 private:
  // Reserved cell values. Distinct static addresses that no caller can pass
  // as an element pointer.
  static inline char insert_tag_;
  static inline char empty_tag_;
  static constexpr void* tag(char& c) noexcept { return &c; }
  static inline void* const kInsert = &insert_tag_;
  static inline void* const kEmpty = &empty_tag_;

  const std::size_t capacity_;
  const std::size_t live_;
  std::unique_ptr<Padded<std::atomic<void*>>[]> cells_;
  alignas(kCacheLineSize) std::atomic<std::uint64_t> counter_{0};
  alignas(kCacheLineSize) std::atomic<bool> empty_{false};
};

}  // namespace sbq
