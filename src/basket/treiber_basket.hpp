// A LIFO Treiber-stack basket with close-on-empty semantics.
//
// §5.2 of the paper observes that the *original* baskets queue can be viewed,
// in the modular framework, as using a Treiber-stack variant as its basket:
// once an element has been removed (or emptiness observed), further
// insertions must fail so that the queue stays linearizable. We realize that
// here explicitly: the stack's head pointer carries a CLOSED tag bit; the
// first extract that leaves the basket empty (or any emptiness indication)
// closes it, and closed baskets reject all inserts.
//
// This basket makes the modular queue behave like BQ-Original structurally:
// inserts all CAS the same head pointer, so insertion is contended (the
// non-scalable part SBQ's array basket removes).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

namespace sbq {

template <typename T>
class TreiberBasket {
 public:
  struct Cell {
    T* element;
    Cell* next;
  };

  // Cells are owned by the inserting thread and recycled with the node; we
  // keep one embedded cell per inserter slot inside the basket so that
  // insert is allocation-free. `capacity` = number of inserters.
  explicit TreiberBasket(std::size_t capacity, std::size_t /*live*/ = 0)
      : capacity_(capacity), cells_(new Cell[capacity]) {}

  TreiberBasket(const TreiberBasket&) = delete;
  TreiberBasket& operator=(const TreiberBasket&) = delete;
  ~TreiberBasket() { delete[] cells_; }

  bool insert(T* element, int id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < capacity_);
    Cell* cell = &cells_[static_cast<std::size_t>(id)];
    cell->element = element;
    std::uintptr_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      if (is_closed(head)) return false;
      cell->next = ptr(head);
      if (head_.compare_exchange_weak(head, pack(cell), std::memory_order_release,
                                      std::memory_order_acquire)) {
        return true;
      }
    }
  }

  T* extract(int /*id*/) {
    std::uintptr_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      Cell* top = ptr(head);
      if (top == nullptr) {
        // Empty: close the basket so later inserts fail (linearizability
        // requirement from §5.2.2 "Linearizability").
        if (is_closed(head)) return nullptr;
        if (head_.compare_exchange_weak(head, head | kClosedBit,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          return nullptr;
        }
        continue;
      }
      // Preserve the closed bit (it can only be set when the list is empty,
      // so it is clear here, but keep the invariant explicit).
      const std::uintptr_t next = pack(top->next) | (head & kClosedBit);
      if (head_.compare_exchange_weak(head, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return top->element;
      }
    }
  }

  bool empty() const {
    return ptr(head_.load(std::memory_order_acquire)) == nullptr;
  }

  void reset(int /*id*/) { head_.store(0, std::memory_order_relaxed); }

  bool closed() const {
    return is_closed(head_.load(std::memory_order_acquire));
  }

 private:
  static constexpr std::uintptr_t kClosedBit = 1;

  static Cell* ptr(std::uintptr_t v) noexcept {
    return reinterpret_cast<Cell*>(v & ~kClosedBit);
  }
  static std::uintptr_t pack(Cell* c) noexcept {
    return reinterpret_cast<std::uintptr_t>(c);
  }
  static bool is_closed(std::uintptr_t v) noexcept { return (v & kClosedBit) != 0; }

  const std::size_t capacity_;
  Cell* cells_;
  std::atomic<std::uintptr_t> head_{0};
};

}  // namespace sbq
