// StripedBasket: a basket with more scalable extraction — our take on the
// paper's future-work item (§8: "designing a basket with scalable dequeue
// operations").
//
// SBQ's dequeue bottleneck is the single extraction counter: every extract
// performs one FAA on it, so dequeue latency is linear in the number of
// concurrent dequeuers (§5.3.4). This basket shards the counter: cells are
// partitioned into S stripes, each with its own counter. An extractor
// starts at the stripe derived from its id and claims indices there; when a
// stripe drains it moves on to the next. The FAA contention per counter
// drops by ~S while every basket-ADT property (§5.2.1) is preserved:
//
//   * insert is still a single CAS on the inserter's private cell;
//   * an extract returns null only after claiming past the end of every
//     stripe, at which point all cells are closed — so emptiness indication
//     is stable (the linearizability hinge of §5.3.2);
//   * the empty bit is set by whoever claims the globally last index
//     (tracked by a drained-stripe counter), exactly once.
//
// Wait-free: insert is one CAS; extract performs at most B + S FAAs.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/cacheline.hpp"
#include "common/padded.hpp"

namespace sbq {

template <typename T, std::size_t kStripes = 4>
class StripedBasket {
 public:
  explicit StripedBasket(std::size_t capacity, std::size_t live_inserters = 0)
      : capacity_(capacity),
        live_(live_inserters == 0 ? capacity : live_inserters),
        cells_(std::make_unique<Padded<std::atomic<void*>>[]>(capacity)),
        counters_(std::make_unique<Padded<std::atomic<std::uint64_t>>[]>(kStripes)) {
    assert(live_ <= capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].value.store(kInsert, std::memory_order_relaxed);
    }
    for (std::size_t s = 0; s < kStripes; ++s) {
      counters_[s].value.store(0, std::memory_order_relaxed);
    }
  }

  StripedBasket(const StripedBasket&) = delete;
  StripedBasket& operator=(const StripedBasket&) = delete;

  bool insert(T* element, int id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < capacity_);
    void* expected = kInsert;
    return cells_[static_cast<std::size_t>(id)].value.compare_exchange_strong(
        expected, element, std::memory_order_release, std::memory_order_acquire);
  }

  T* extract(int id) {
    if (empty_.load(std::memory_order_acquire)) return nullptr;
    const std::size_t start =
        static_cast<std::size_t>(id) % live_stripes();
    for (std::size_t hop = 0; hop < live_stripes(); ++hop) {
      const std::size_t s = (start + hop) % live_stripes();
      const std::uint64_t size = stripe_size(s);
      std::uint64_t index;
      while ((index = counters_[s].value.fetch_add(
                  1, std::memory_order_acq_rel)) < size) {
        if (index == size - 1) mark_stripe_drained();
        void* element = cells_[stripe_base(s) + index].value.exchange(
            kEmpty, std::memory_order_acq_rel);
        if (element != kInsert) return static_cast<T*>(element);
      }
    }
    return nullptr;
  }

  bool empty() const { return empty_.load(std::memory_order_acquire); }

  void reset(int id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < capacity_);
    cells_[static_cast<std::size_t>(id)].value.store(kInsert,
                                                     std::memory_order_relaxed);
    for (std::size_t s = 0; s < kStripes; ++s) {
      counters_[s].value.store(0, std::memory_order_relaxed);
    }
    drained_.store(0, std::memory_order_relaxed);
    empty_.store(false, std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  static constexpr std::size_t stripes() noexcept { return kStripes; }

 private:
  static inline char insert_tag_;
  static inline char empty_tag_;
  static inline void* const kInsert = &insert_tag_;
  static inline void* const kEmpty = &empty_tag_;

  // Only cells [0, live_) can ever be inserted into; stripe the live range.
  std::size_t live_stripes() const noexcept {
    return live_ < kStripes ? live_ : kStripes;
  }
  std::uint64_t stripe_size(std::size_t s) const noexcept {
    const std::size_t n = live_stripes();
    return live_ / n + (s < live_ % n ? 1 : 0);
  }
  std::size_t stripe_base(std::size_t s) const noexcept {
    const std::size_t n = live_stripes();
    const std::size_t base = live_ / n;
    const std::size_t rem = live_ % n;
    return s * base + (s < rem ? s : rem);
  }

  void mark_stripe_drained() {
    if (drained_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        live_stripes()) {
      empty_.store(true, std::memory_order_release);
    }
  }

  const std::size_t capacity_;
  const std::size_t live_;
  std::unique_ptr<Padded<std::atomic<void*>>[]> cells_;
  std::unique_ptr<Padded<std::atomic<std::uint64_t>>[]> counters_;
  alignas(kCacheLineSize) std::atomic<std::size_t> drained_{0};
  alignas(kCacheLineSize) std::atomic<bool> empty_{false};
};

}  // namespace sbq
