#include "service/arrival.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace sbq::service {

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kRamp: return "ramp";
    case ArrivalKind::kSkewed: return "skew";
  }
  throw std::logic_error("bad ArrivalKind");
}

ArrivalKind arrival_kind_from_name(const std::string& name) {
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kRamp,
        ArrivalKind::kSkewed}) {
    if (name == arrival_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown arrival process: " + name +
                              " (want poisson|bursty|ramp|skew)");
}

namespace {

// Instantaneous rate modulation factor at simulated time t. Pure in
// (cfg, t, horizon); the horizon only matters for kRamp, where it sets the
// triangle's base (the "day length").
double rate_factor(const ArrivalConfig& cfg, double t, double horizon) {
  switch (cfg.kind) {
    case ArrivalKind::kPoisson:
    case ArrivalKind::kSkewed:  // skew lives in the partition, not the rate
      return 1.0;
    case ArrivalKind::kBursty: {
      const double period = static_cast<double>(cfg.burst_period);
      const double phase = t - std::floor(t / period) * period;
      return phase < cfg.burst_fraction * period ? cfg.burst_multiplier : 1.0;
    }
    case ArrivalKind::kRamp: {
      if (horizon <= 0.0) return cfg.ramp_peak;
      // Triangle: ramp_min at t=0 and t=horizon, ramp_peak at horizon/2;
      // flat at ramp_min past the horizon (the schedule ran long).
      const double x = t / horizon;
      if (x >= 1.0) return cfg.ramp_min;
      const double up = x < 0.5 ? 2.0 * x : 2.0 * (1.0 - x);
      return cfg.ramp_min + (cfg.ramp_peak - cfg.ramp_min) * up;
    }
  }
  throw std::logic_error("bad ArrivalKind");
}

}  // namespace

std::vector<sim::Time> generate_arrivals(const ArrivalConfig& cfg,
                                         std::size_t count) {
  if (cfg.rate_per_kcycle <= 0.0) {
    throw std::invalid_argument("arrival rate must be positive");
  }
  std::vector<sim::Time> out;
  out.reserve(count);
  Xoshiro256 rng(cfg.seed);
  const double base_per_cycle = cfg.rate_per_kcycle / 1000.0;
  // Nominal horizon of the base process: what kRamp calls one "day".
  const double horizon = static_cast<double>(count) / base_per_cycle;
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double lambda =
        base_per_cycle * rate_factor(cfg, t, horizon);
    // Exponential inter-arrival gap with mean 1/lambda; -log1p(-u) keeps
    // the argument strictly positive for u in [0, 1).
    const double gap = -std::log1p(-rng.next_double()) / lambda;
    t += gap < 1.0 ? 1.0 : gap;  // integral cycles: at least 1 apart
    out.push_back(static_cast<sim::Time>(t));
  }
  return out;
}

std::vector<std::vector<WorkerArrival>> partition_arrivals(
    const ArrivalConfig& cfg, const std::vector<sim::Time>& times,
    int workers) {
  if (workers < 1) throw std::invalid_argument("need at least one worker");
  std::vector<std::vector<WorkerArrival>> out(
      static_cast<std::size_t>(workers));
  for (auto& w : out) w.reserve(times.size() / static_cast<std::size_t>(workers) + 1);
  // A dedicated stream (decorrelated from the gap stream by the constant)
  // so adding a worker-assignment draw never shifts the timestamps.
  Xoshiro256 assign_rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
  for (std::size_t op = 0; op < times.size(); ++op) {
    std::size_t w;
    if (cfg.kind == ArrivalKind::kSkewed && workers > 1) {
      if (assign_rng.next_double() < cfg.hot_fraction) {
        w = 0;  // the hot producer
      } else {
        w = 1 + static_cast<std::size_t>(
                    assign_rng.next_below(static_cast<std::uint64_t>(workers) - 1));
      }
    } else {
      w = op % static_cast<std::size_t>(workers);
    }
    out[w].push_back(WorkerArrival{op, times[op]});
  }
  return out;
}

}  // namespace sbq::service
