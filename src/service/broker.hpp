// The queue service broker: drives any simulated queue under open-loop
// traffic (docs/service.md).
//
// Closed-loop workloads (src/benchsupport/sim_workload.hpp) measure "how
// fast can T threads hammer the queue"; the broker measures "what does a
// given *offered load* do to latency". Arrivals come from a pre-generated
// deterministic schedule (service/arrival.hpp); load-generator workers
// sleep until an op's arrival time, pass it through admission control
// (service/admission.hpp), and enqueue it; drain workers dequeue and
// "serve" each element. Both sides batch: a producer that wakes up behind
// schedule enqueues every due op back-to-back (up to `batch`), which is
// exactly how an open-loop generator avoids coordinated omission — late
// ops are issued late and their full queueing delay is measured, not
// silently skipped.
//
// Timestamps (docs/service.md "Measuring latency"):
//   arrival     — the op's scheduled arrival time (schedule, not c.now())
//   enq done    — the enqueue coroutine completed
//   deq done    — a drain worker's dequeue returned the element
// enqueue_lat = enq done - arrival (admission wait + enqueue service time);
// sojourn     = deq done - arrival (the end-to-end number p50/p99/p999 are
// reported on). Samples land in preallocated LatencyRings (no allocation
// inside the measured phase).
//
// Serial-engine only: the broker's host-side gate/accounting state is read
// mid-run, which is only deterministic under the single global event order
// of the serial engine — run_service throws on a sharded machine.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "service/admission.hpp"
#include "service/arrival.hpp"
#include "service/latency_ring.hpp"
#include "sim/machine.hpp"
#include "simqueue/sim_queue_base.hpp"

namespace sbq::service {

struct ServiceSpec {
  ArrivalConfig arrival;
  AdmissionConfig admission;
  int producers = 4;   // load-generator workers, cores [0, P)
  int consumers = 2;   // drain workers, cores [P, P + C)
  std::size_t total_ops = 400;  // offered arrivals per run
  int batch = 4;       // max back-to-back ops per worker wakeup, both sides
  // Per-element downstream service time a drain worker pays after each
  // successful dequeue (what makes overload possible: consumers drain at
  // most ~1000/(consumer_think + dequeue latency) ops/kcycle each).
  sim::Time consumer_think = 16;
  sim::Time empty_backoff = 64;  // drain-worker poll gap on an empty queue
};

struct ServiceResult {
  // Admission accounting at quiescence (offered == accepted + rejected).
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t backpressure_waits = 0;
  std::uint64_t backpressure_cycles = 0;
  std::uint64_t consumed = 0;
  double duration_cycles = 0;  // first arrival dispatch to quiescence
  // Per-op samples, in cycles (ring-buffered, preallocated to total_ops).
  LatencyRing enqueue_lat{1};
  LatencyRing sojourn{1};
  sim::MetricsSnapshot metrics;

  // ops/s through the broker (consumed ops over the measured window).
  double delivered_mops(double ns_per_cycle) const {
    const double ns = duration_cycles * ns_per_cycle;
    return ns > 0 ? static_cast<double>(consumed) / ns * 1e3 : 0.0;
  }
};

namespace detail {

// Host-side state shared by the workers of one run. Plain (non-atomic)
// members: serial engine only, one host thread.
struct BrokerState {
  explicit BrokerState(const ServiceSpec& spec,
                       std::vector<sim::Time> arrival_times)
      : gate(spec.admission),
        times(std::move(arrival_times)),
        enqueue_lat(times.empty() ? 1 : times.size()),
        sojourn(times.empty() ? 1 : times.size()) {}

  AdmissionGate gate;
  std::vector<sim::Time> times;  // op id -> scheduled arrival [cycles]
  LatencyRing enqueue_lat;
  LatencyRing sojourn;
  std::uint64_t consumed = 0;
  int producers_done = 0;
};

template <typename QueueT>
simq::Task<void> load_worker(sim::Machine& m, QueueT& q, int core, int id,
                             const std::vector<WorkerArrival>* schedule,
                             const ServiceSpec* spec, BrokerState* st) {
  sim::Core& c = m.core(core);
  std::size_t i = 0;
  while (i < schedule->size()) {
    const WorkerArrival& head = (*schedule)[i];
    if (c.now() < head.at) co_await c.think(head.at - c.now());
    // Issue every op that is due by now, up to the batch cap; enqueuing
    // advances c.now(), so a worker running behind schedule streams its
    // backlog out back-to-back instead of re-sleeping per op.
    int in_batch = 0;
    while (i < schedule->size() && (*schedule)[i].at <= c.now() &&
           in_batch < spec->batch) {
      const WorkerArrival a = (*schedule)[i];
      ++i;
      ++in_batch;
      if (!st->gate.has_room()) {
        if (st->gate.config().policy == AdmissionPolicy::kDrop) {
          st->gate.reject();
          continue;
        }
        const sim::Time wait_start = c.now();
        while (!st->gate.has_room()) {
          co_await c.think(st->gate.config().backpressure_poll);
        }
        st->gate.note_backpressure(c.now() - wait_start);
      }
      st->gate.accept();
      co_await q.enqueue(c, simq::kFirstElement + a.op, id);
      st->enqueue_lat.push(c.now() - a.at);
    }
  }
  ++st->producers_done;
}

template <typename QueueT>
simq::Task<void> drain_worker(sim::Machine& m, QueueT& q, int core, int id,
                              const ServiceSpec* spec, BrokerState* st) {
  sim::Core& c = m.core(core);
  for (;;) {
    // accepted is final once every producer finished; until then keep
    // draining even through transient emptiness.
    if (st->producers_done == spec->producers &&
        st->consumed >= st->gate.accepted()) {
      co_return;
    }
    int got = 0;
    while (got < spec->batch) {
      const simq::Value e = co_await q.dequeue(c, id);
      if (e == 0) break;
      const std::size_t op = static_cast<std::size_t>(e - simq::kFirstElement);
      st->gate.release();
      st->sojourn.push(c.now() - st->times[op]);
      ++st->consumed;
      ++got;
    }
    co_await c.think(got > 0 ? spec->consumer_think : spec->empty_backoff);
  }
}

}  // namespace detail

// Run one open-loop service phase on machine `m` over queue `q`. The
// machine must have at least producers + consumers cores; `q` must have
// been constructed for at least that many enqueuers/dequeuers.
// `consumer_id_offset` separates drain-worker ids from load-worker ids for
// queues with a single thread-id space (same convention as
// sim_workload.hpp's measure_mixed).
template <typename QueueT>
ServiceResult run_service(sim::Machine& m, QueueT& q, const ServiceSpec& spec,
                          int consumer_id_offset) {
  if (spec.producers < 1 || spec.consumers < 1) {
    throw std::invalid_argument("service needs >= 1 producer and consumer");
  }
  if (m.core_count() < spec.producers + spec.consumers) {
    throw std::invalid_argument("machine too small for the service spec");
  }
  if (m.core(0).sharded()) {
    throw std::invalid_argument(
        "run_service requires the serial engine (machine_threads == 1): "
        "admission decisions read host state mid-run");
  }
  auto st = std::make_unique<detail::BrokerState>(
      spec, generate_arrivals(spec.arrival, spec.total_ops));
  const auto schedules =
      partition_arrivals(spec.arrival, st->times, spec.producers);
  const sim::Time start = m.now();
  for (int p = 0; p < spec.producers; ++p) {
    m.spawn(detail::load_worker(m, q, p, p, &schedules[static_cast<std::size_t>(p)],
                                &spec, st.get()),
            static_cast<sim::CoreId>(p));
  }
  for (int ci = 0; ci < spec.consumers; ++ci) {
    m.spawn(detail::drain_worker(m, q, spec.producers + ci,
                                 consumer_id_offset + ci, &spec, st.get()),
            static_cast<sim::CoreId>(spec.producers + ci));
  }
  m.run();

  ServiceResult r;
  r.offered = st->gate.offered();
  r.accepted = st->gate.accepted();
  r.rejected = st->gate.rejected();
  r.backpressure_waits = st->gate.backpressure_waits();
  r.backpressure_cycles = st->gate.backpressure_cycles();
  r.consumed = st->consumed;
  r.duration_cycles = static_cast<double>(m.now() - start);
  r.enqueue_lat = std::move(st->enqueue_lat);
  r.sojourn = std::move(st->sojourn);
  r.metrics = m.metrics();
  return r;
}

}  // namespace sbq::service
