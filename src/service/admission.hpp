// Bounded-queue admission control for the service harness
// (docs/service.md "Admission control").
//
// A production broker never lets its queue grow without bound: beyond a
// configured depth it either rejects new work (load shedding) or pushes
// back on the producer (backpressure). The gate tracks the *logical* queue
// depth — ops admitted but not yet dequeued — on the host side, so it works
// unchanged over every queue implementation.
//
// The gate is plain (non-atomic) state: the service harness runs on the
// serial simulator engine only (run_service enforces machine_threads == 1),
// where all coroutines execute on one host thread in deterministic event
// order. That is also what makes the admission decision itself
// deterministic — under a sharded machine the decision would depend on
// which slice's window observed the depth first.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/types.hpp"

namespace sbq::service {

enum class AdmissionPolicy {
  kDrop,          // over the limit: reject the op, count it, move on
  kBackpressure,  // over the limit: the producer waits for room
};

inline const char* admission_policy_name(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kDrop: return "drop";
    case AdmissionPolicy::kBackpressure: return "backpressure";
  }
  throw std::logic_error("bad AdmissionPolicy");
}

struct AdmissionConfig {
  std::uint64_t depth_limit = 64;  // 0 = unbounded (gate always admits)
  AdmissionPolicy policy = AdmissionPolicy::kDrop;
  // kBackpressure: cycles a blocked producer waits between depth re-checks.
  sim::Time backpressure_poll = 32;
};

// Counter identity (checked by tests/service_test.cpp): at quiescence
//   offered == accepted + rejected        (every op is decided exactly once)
//   depth() == accepted - released == 0   (everything admitted was drained)
// Under kBackpressure rejected stays 0; the cost shows up in
// backpressure_waits / backpressure_cycles instead.
class AdmissionGate {
 public:
  explicit AdmissionGate(const AdmissionConfig& cfg) : cfg_(cfg) {}

  const AdmissionConfig& config() const noexcept { return cfg_; }

  bool has_room() const noexcept {
    return cfg_.depth_limit == 0 || depth_ < cfg_.depth_limit;
  }
  std::uint64_t depth() const noexcept { return depth_; }

  // Producer side: every arrival calls exactly one of accept()/reject()
  // (both count the op as offered).
  void accept() noexcept {
    ++offered_;
    ++accepted_;
    ++depth_;
  }
  void reject() noexcept {
    ++offered_;
    ++rejected_;
  }
  // A producer that found the gate closed under kBackpressure reports the
  // stall (once per blocked op) and how long it ended up waiting.
  void note_backpressure(sim::Time waited_cycles) noexcept {
    ++backpressure_waits_;
    backpressure_cycles_ += waited_cycles;
  }

  // Consumer side: one admitted op left the queue.
  void release() noexcept {
    --depth_;
    ++released_;
  }

  std::uint64_t offered() const noexcept { return offered_; }
  std::uint64_t accepted() const noexcept { return accepted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t released() const noexcept { return released_; }
  std::uint64_t backpressure_waits() const noexcept {
    return backpressure_waits_;
  }
  std::uint64_t backpressure_cycles() const noexcept {
    return backpressure_cycles_;
  }

 private:
  AdmissionConfig cfg_;
  std::uint64_t depth_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t released_ = 0;
  std::uint64_t backpressure_waits_ = 0;
  std::uint64_t backpressure_cycles_ = 0;
};

}  // namespace sbq::service
