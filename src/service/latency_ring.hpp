// Preallocated per-op latency capture (docs/service.md "Measuring
// latency").
//
// The broker records one sample per completed op from inside coroutine
// hot loops, so capture must not allocate: the ring's storage is sized
// once, up front, and push() is a store plus an index increment. When the
// ring is smaller than the op count the *oldest* samples are overwritten —
// the tail of the run survives, matching the trace ring's convention —
// and dropped() reports how many were lost (the service driver sizes rings
// to the exact op count, so nothing drops there).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "sim/types.hpp"

namespace sbq::service {

class LatencyRing {
 public:
  explicit LatencyRing(std::size_t capacity)
      : samples_(capacity == 0 ? 1 : capacity) {}

  void push(sim::Time cycles) noexcept {
    samples_[next_] = cycles;
    next_ = next_ + 1 == samples_.size() ? 0 : next_ + 1;
    ++pushed_;
  }

  std::size_t capacity() const noexcept { return samples_.size(); }
  std::uint64_t pushed() const noexcept { return pushed_; }
  std::size_t size() const noexcept {
    return pushed_ < samples_.size() ? static_cast<std::size_t>(pushed_)
                                     : samples_.size();
  }
  std::uint64_t dropped() const noexcept {
    return pushed_ < samples_.size() ? 0 : pushed_ - samples_.size();
  }

  // Feed the retained samples into a Summary, each multiplied by `scale`
  // (pass ns_per_cycle to summarize in nanoseconds).
  void drain_into(Summary& summary, double scale) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      summary.add(static_cast<double>(samples_[i]) * scale);
    }
  }

 private:
  std::vector<sim::Time> samples_;
  std::size_t next_ = 0;
  std::uint64_t pushed_ = 0;
};

}  // namespace sbq::service
