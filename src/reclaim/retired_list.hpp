// Index-based epoch reclamation (Algorithm 7 of the paper, adapted from
// Yang & Mellor-Crummey's wait-free queue).
//
// The queue is a singly linked list whose nodes carry monotonically
// increasing indices. A node is *retired* once the queue head has advanced
// past it. `retired` points at the retired prefix; `protectors[i]` is where
// thread i announces the earliest node it may still touch. free_nodes()
// frees the retired prefix up to min(protected indices), in mutual
// exclusion obtained by SWAPping `retired` with null.
//
// Node requirements: `Node* next` and `std::uint64_t index` members.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>

#include "common/cacheline.hpp"
#include "common/padded.hpp"

namespace sbq {

template <typename Node, typename Deleter>
class RetiredList {
 public:
  // `sentinel` is the queue's initial node (retired starts there, as head
  // does). `max_threads` sizes the protectors array.
  RetiredList(Node* sentinel, std::size_t max_threads, Deleter deleter = {})
      : max_threads_(max_threads),
        protectors_(std::make_unique<Padded<std::atomic<Node*>>[]>(max_threads)),
        retired_(sentinel),
        deleter_(deleter) {
    for (std::size_t i = 0; i < max_threads_; ++i) {
      protectors_[i].value.store(nullptr, std::memory_order_relaxed);
    }
  }

  RetiredList(const RetiredList&) = delete;
  RetiredList& operator=(const RetiredList&) = delete;

  ~RetiredList() {
    // At destruction no thread is active; the retired prefix up to (and
    // including) whatever the caller still owns must be freed by the owner.
    // We free nothing here: the queue frees its remaining nodes itself,
    // starting from `retired_` (see queue destructors).
  }

  // Announce-and-validate (Algorithm 7, protect): loop until the announced
  // snapshot is still the current value of *src, so that the node cannot
  // have been retired-and-freed between read and announcement.
  Node* protect(const std::atomic<Node*>& src, int tid) {
    auto& slot = protectors_[static_cast<std::size_t>(tid)].value;
    Node* snapshot = src.load(std::memory_order_acquire);
    for (;;) {
      slot.store(snapshot, std::memory_order_seq_cst);
      // The seq_cst store/load pair is the fence Algorithm 7's comment
      // requires between the protector write and the validating re-read.
      Node* current = src.load(std::memory_order_seq_cst);
      if (current == snapshot) return snapshot;
      snapshot = current;
    }
  }

  void unprotect(int tid) {
    protectors_[static_cast<std::size_t>(tid)].value.store(
        nullptr, std::memory_order_release);
  }

  // Free retired nodes not protected by any thread (Algorithm 7,
  // free_nodes). `head` is the queue's current head (never freed here).
  void free_nodes(Node* head) {
    Node* retired = retired_.exchange(nullptr, std::memory_order_acq_rel);
    if (retired == nullptr) return;  // another thread is reclaiming
    const std::uint64_t limit = min_protected_index();
    while (retired != head && retired->index < limit) {
      Node* next = retired->next.load(std::memory_order_relaxed);
      deleter_(retired);
      retired = next;
    }
    retired_.store(retired, std::memory_order_release);
  }

  // Frees every node from the retired pointer through the list end. Only
  // valid during single-threaded teardown.
  void drain_all() {
    Node* n = retired_.exchange(nullptr, std::memory_order_acq_rel);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      deleter_(n);
      n = next;
    }
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  std::uint64_t min_protected_index() const {
    std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < max_threads_; ++i) {
      Node* p = protectors_[i].value.load(std::memory_order_acquire);
      if (p != nullptr && p->index < min) min = p->index;
    }
    return min;
  }

  const std::size_t max_threads_;
  std::unique_ptr<Padded<std::atomic<Node*>>[]> protectors_;
  alignas(kCacheLineSize) std::atomic<Node*> retired_;
  [[no_unique_address]] Deleter deleter_;
};

}  // namespace sbq
