// Classic hazard-pointer reclamation (Michael, IEEE TPDS 2004).
//
// The paper notes (§5.2.2) that the modular queue is compatible with
// standard reclamation schemes including hazard pointers; the evaluation
// uses the index-based scheme (reclaim/retired_list.hpp). We provide hazard
// pointers as the alternative, used by the Michael–Scott and original
// baskets queue implementations, each of which dereferences at most two
// shared node pointers at a time.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/cacheline.hpp"
#include "common/padded.hpp"

namespace sbq {

template <typename Node, typename Deleter, std::size_t kSlotsPerThread = 3>
class HazardPointers {
 public:
  HazardPointers(std::size_t max_threads, Deleter deleter = {})
      : max_threads_(max_threads),
        slots_(std::make_unique<Padded<Slots>[]>(max_threads)),
        retired_(std::make_unique<Padded<RetiredVec>[]>(max_threads)),
        deleter_(deleter) {
    for (std::size_t t = 0; t < max_threads_; ++t) {
      for (auto& s : slots_[t].value.hp) s.store(nullptr, std::memory_order_relaxed);
    }
  }

  HazardPointers(const HazardPointers&) = delete;
  HazardPointers& operator=(const HazardPointers&) = delete;

  ~HazardPointers() {
    for (std::size_t t = 0; t < max_threads_; ++t) {
      for (Node* n : retired_[t].value.nodes) deleter_(n);
    }
  }

  // Protect slot `slot` of thread `tid` with a validated snapshot of *src.
  Node* protect(const std::atomic<Node*>& src, int tid, std::size_t slot) {
    auto& hp = slots_[static_cast<std::size_t>(tid)].value.hp[slot];
    Node* snapshot = src.load(std::memory_order_acquire);
    for (;;) {
      hp.store(snapshot, std::memory_order_seq_cst);
      Node* current = src.load(std::memory_order_seq_cst);
      if (current == snapshot) return snapshot;
      snapshot = current;
    }
  }

  // Protect a pointer the caller already validated by other means.
  void set(Node* node, int tid, std::size_t slot) {
    slots_[static_cast<std::size_t>(tid)].value.hp[slot].store(
        node, std::memory_order_seq_cst);
  }

  void clear(int tid) {
    for (auto& s : slots_[static_cast<std::size_t>(tid)].value.hp) {
      s.store(nullptr, std::memory_order_release);
    }
  }

  void retire(Node* node, int tid) {
    auto& mine = retired_[static_cast<std::size_t>(tid)].value.nodes;
    mine.push_back(node);
    if (mine.size() >= scan_threshold()) scan(tid);
  }

  // Force a scan of this thread's retired list regardless of its size.
  void flush(int tid) { scan(tid); }

  std::size_t retired_count(int tid) const {
    return retired_[static_cast<std::size_t>(tid)].value.nodes.size();
  }

 private:
  struct Slots {
    std::atomic<Node*> hp[kSlotsPerThread];
  };
  struct RetiredVec {
    std::vector<Node*> nodes;
  };

  std::size_t scan_threshold() const noexcept {
    return 2 * max_threads_ * kSlotsPerThread + 8;
  }

  void scan(int tid) {
    std::vector<Node*> hazards;
    hazards.reserve(max_threads_ * kSlotsPerThread);
    for (std::size_t t = 0; t < max_threads_; ++t) {
      for (const auto& s : slots_[t].value.hp) {
        if (Node* p = s.load(std::memory_order_acquire)) hazards.push_back(p);
      }
    }
    auto& mine = retired_[static_cast<std::size_t>(tid)].value.nodes;
    std::vector<Node*> keep;
    keep.reserve(mine.size());
    for (Node* n : mine) {
      bool hazardous = false;
      for (Node* h : hazards) {
        if (h == n) { hazardous = true; break; }
      }
      if (hazardous) keep.push_back(n);
      else deleter_(n);
    }
    mine.swap(keep);
  }

  const std::size_t max_threads_;
  std::unique_ptr<Padded<Slots>[]> slots_;
  std::unique_ptr<Padded<RetiredVec>[]> retired_;
  [[no_unique_address]] Deleter deleter_;
};

}  // namespace sbq
