#include "replay/native_record.hpp"

#include <atomic>
#include <memory>
#include <thread>

#include "basket/sbq_basket.hpp"
#include "htm/cas_policy.hpp"
#include "queues/baskets_queue.hpp"
#include "queues/cc_queue.hpp"
#include "queues/faa_queue.hpp"
#include "queues/ms_queue.hpp"
#include "queues/sbq.hpp"

namespace sbq::replay {

namespace {

// Unique, nonzero, >= the sim's kFirstElement (16) — safe to replay into
// the simulated queues, whose reserved cell markers live below 16.
std::uint64_t value_of(int thread, std::uint64_t i) {
  return (static_cast<std::uint64_t>(thread + 1) << 32) | (i + 1);
}

// One workload over any native queue with `void enqueue(T*, int)` /
// `T* dequeue(int)`. Values travel in preallocated per-thread slots so the
// dequeuer recovers the logical value through the returned pointer.
template <typename Q>
void run_pairwise(Q& q, const NativeRecordSpec& spec, bool single_id_space,
                  OpTrace& out) {
  const int threads = spec.threads;
  const std::uint64_t pairs = spec.pairs_per_thread;
  std::atomic<std::uint64_t> ticket{0};
  std::vector<std::vector<std::uint64_t>> slots(
      static_cast<std::size_t>(threads));
  std::vector<std::vector<OpRecord>> recs(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    slots[static_cast<std::size_t>(t)].resize(pairs);
    recs[static_cast<std::size_t>(t)].reserve(2 * pairs);
  }

  auto worker = [&](int t) {
    auto& my_slots = slots[static_cast<std::size_t>(t)];
    auto& my_recs = recs[static_cast<std::size_t>(t)];
    const int deq_id = single_id_space ? t : t;
    for (std::uint64_t i = 0; i < pairs; ++i) {
      const std::uint64_t v = value_of(t, i);
      my_slots[i] = v;
      const std::uint64_t inv = ticket.fetch_add(1);
      q.enqueue(&my_slots[i], t);
      const std::uint64_t resp = ticket.fetch_add(1);
      my_recs.push_back({t, kOpEnqueue, v, inv, resp, 1});

      const std::uint64_t inv2 = ticket.fetch_add(1);
      std::uint64_t* p = q.dequeue(deq_id);
      const std::uint64_t resp2 = ticket.fetch_add(1);
      my_recs.push_back({t, kOpDequeue, 0, inv2, resp2, p ? *p : 0});
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();

  // Single-threaded drain on thread 0's ids: completes the history so the
  // checker's VOrd/VWit clauses (which assume every enqueued value is
  // eventually dequeued) are sound. The final null marks emptiness.
  auto& drain_recs = recs[0];
  for (;;) {
    const std::uint64_t inv = ticket.fetch_add(1);
    std::uint64_t* p = q.dequeue(0);
    const std::uint64_t resp = ticket.fetch_add(1);
    drain_recs.push_back({0, kOpDequeue, 0, inv, resp, p ? *p : 0});
    if (p == nullptr) break;
  }

  out.records.clear();
  for (const auto& r : recs) {
    out.records.insert(out.records.end(), r.begin(), r.end());
  }
}

}  // namespace

const std::vector<std::string>& native_record_queue_names() {
  static const std::vector<std::string> names = {
      "SBQ-HTM", "SBQ-CAS", "WF-Queue", "BQ-Original", "CC-Queue", "MS-Queue"};
  return names;
}

bool record_native_queue(const std::string& queue_name,
                         const NativeRecordSpec& spec, OpTrace& out) {
  if (spec.threads < 1 || spec.threads > 64) return false;
  if (spec.pairs_per_thread < 1 ||
      spec.pairs_per_thread > (std::uint64_t{1} << 24)) {
    return false;
  }
  const int threads = spec.threads;

  out = OpTrace{};
  out.source = TraceSource::kNative;
  out.queue = queue_name;
  out.workload = 2;  // mixed: every thread both enqueues and dequeues
  out.producers = static_cast<std::uint32_t>(threads);
  out.consumers = static_cast<std::uint32_t>(threads);
  out.ops_per_thread = spec.pairs_per_thread;
  out.prefill = 0;
  out.seed = spec.seed;
  out.prefill_seed = 0;
  out.basket_capacity = static_cast<std::uint32_t>(threads);

  using V = std::uint64_t;
  if (queue_name == "SBQ-HTM" || queue_name == "SBQ-CAS") {
    auto run = [&](auto& q) { run_pairwise(q, spec, false, out); };
    if (queue_name == "SBQ-HTM") {
      using Q = sbq::Queue<V, sbq::SbqBasket<V>, sbq::HtmCas>;
      typename Q::Config cfg{};
      cfg.max_enqueuers = static_cast<std::size_t>(threads);
      cfg.max_dequeuers = static_cast<std::size_t>(threads);
      Q q(cfg);
      run(q);
    } else {
      using Q = sbq::Queue<V, sbq::SbqBasket<V>, sbq::DelayedCas>;
      typename Q::Config cfg{};
      cfg.max_enqueuers = static_cast<std::size_t>(threads);
      cfg.max_dequeuers = static_cast<std::size_t>(threads);
      Q q(cfg);
      run(q);
    }
    return true;
  }
  if (queue_name == "WF-Queue") {
    sbq::FaaQueue<V, 256> q(threads);
    run_pairwise(q, spec, true, out);
    return true;
  }
  if (queue_name == "BQ-Original") {
    sbq::BasketsQueue<V> q(threads);
    run_pairwise(q, spec, true, out);
    return true;
  }
  if (queue_name == "CC-Queue") {
    sbq::CcQueue<V> q(threads);
    run_pairwise(q, spec, true, out);
    return true;
  }
  if (queue_name == "MS-Queue") {
    sbq::MsQueue<V> q(threads);
    run_pairwise(q, spec, true, out);
    return true;
  }
  return false;
}

}  // namespace sbq::replay
