#include "replay/op_trace.hpp"

#include <cstdio>
#include <limits>

namespace sbq::replay {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

struct Writer {
  std::vector<std::uint8_t> buf;

  void u8(std::uint8_t v) { buf.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
  }
};

// Bounds-checked little-endian reader: every accessor returns false instead
// of reading past the end, so truncated blobs fail cleanly.
struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t pos = 0;

  bool u8(std::uint8_t& v) {
    if (pos + 1 > n) return false;
    v = p[pos++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos + 4 > n) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[pos++]} << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos + 8 > n) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[pos++]} << (8 * i);
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t len;
    if (!u32(len)) return false;
    if (len > 256 || pos + len > n) return false;  // queue names are short
    s.assign(reinterpret_cast<const char*>(p + pos), len);
    pos += len;
    return true;
  }
};

// A record costs at least this many encoded bytes; a count claiming more
// entries than could fit in the remaining bytes is corrupt — reject before
// allocating for it.
constexpr std::size_t kRecordBytes = 4 + 1 + 8 + 8 + 8 + 8;

}  // namespace

std::vector<std::uint8_t> encode_op_trace(const OpTrace& trace) {
  Writer w;
  w.u32(kOpTraceMagic);
  w.u32(kOpTraceFormatVersion);
  w.u8(static_cast<std::uint8_t>(trace.source));
  w.str(trace.queue);
  w.u8(trace.workload);
  w.u32(trace.producers);
  w.u32(trace.consumers);
  w.u64(trace.ops_per_thread);
  w.u64(trace.prefill);
  w.u64(trace.seed);
  w.u64(trace.prefill_seed);
  w.u32(trace.basket_capacity);
  w.u64(static_cast<std::uint64_t>(trace.records.size()));
  for (const OpRecord& r : trace.records) {
    w.u32(static_cast<std::uint32_t>(r.thread));
    w.u8(r.op);
    w.u64(r.value);
    w.u64(r.invoke_seq);
    w.u64(r.response_seq);
    w.u64(r.result);
  }
  w.u64(fnv1a(w.buf.data(), w.buf.size()));
  return std::move(w.buf);
}

bool decode_op_trace(const std::vector<std::uint8_t>& bytes, OpTrace& out) {
  if (bytes.size() < 8) return false;
  Reader r{bytes.data(), bytes.size() - 8};
  // Verify the trailing checksum over everything that precedes it first:
  // any bit flip anywhere fails here, before field-level parsing.
  std::uint64_t want = 0;
  {
    Reader tail{bytes.data(), bytes.size()};
    tail.pos = bytes.size() - 8;
    if (!tail.u64(want)) return false;
  }
  if (fnv1a(bytes.data(), bytes.size() - 8) != want) return false;

  std::uint32_t magic, version;
  if (!r.u32(magic) || magic != kOpTraceMagic) return false;
  if (!r.u32(version) || version != kOpTraceFormatVersion) return false;

  OpTrace t;
  std::uint8_t source;
  if (!r.u8(source) || source > 1) return false;
  t.source = static_cast<TraceSource>(source);
  if (!r.str(t.queue)) return false;
  if (!r.u8(t.workload) || t.workload > 2) return false;
  if (!r.u32(t.producers) || !r.u32(t.consumers)) return false;
  if (!r.u64(t.ops_per_thread) || !r.u64(t.prefill)) return false;
  if (!r.u64(t.seed) || !r.u64(t.prefill_seed)) return false;
  if (!r.u32(t.basket_capacity)) return false;

  std::uint64_t count;
  if (!r.u64(count)) return false;
  if (count > (r.n - r.pos) / kRecordBytes) return false;
  t.records.resize(static_cast<std::size_t>(count));
  for (OpRecord& rec : t.records) {
    std::uint32_t thread;
    if (!r.u32(thread)) return false;
    rec.thread = static_cast<std::int32_t>(thread);
    if (!r.u8(rec.op) || rec.op > kOpDequeue) return false;
    if (!r.u64(rec.value) || !r.u64(rec.invoke_seq)) return false;
    if (!r.u64(rec.response_seq) || !r.u64(rec.result)) return false;
  }
  if (r.pos != r.n) return false;  // trailing garbage before the checksum
  out = std::move(t);
  return true;
}

bool write_op_trace_file(const std::string& path, const OpTrace& trace) {
  const std::vector<std::uint8_t> bytes = encode_op_trace(trace);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

bool read_op_trace_file(const std::string& path, OpTrace& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  return read_ok && decode_op_trace(bytes, out);
}

}  // namespace sbq::replay
