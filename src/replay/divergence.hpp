// Differential divergence bisection (docs/replay.md).
//
// Runs one workload twice — same logical work, two machine configurations —
// and localizes the FIRST interconnect message where the two schedules
// part ways, as a (virtual time, global message seq) coordinate plus a
// DebugRing-style dump of the messages leading up to it on each side.
//
// Two passes keep memory bounded on multi-million-message runs:
//
//   1. Digest pass: each side records one cumulative FNV-1a digest per
//      `window` messages (a per-window engine dispatch-log digest, with the
//      window-end virtual time as a periodic machine-state fingerprint).
//      The first divergent window is found by binary search over the
//      digest arrays — cumulative digests are monotone-divergent: once the
//      streams differ, they never re-agree (modulo a 2^-64 collision).
//   2. Capture pass: both sides re-run, recording raw messages only around
//      the divergent window; a linear scan pins the exact first divergent
//      seq and the ring context before it.
//
// Both passes rely on runs being deterministic functions of their config —
// which is exactly the property this tool exists to audit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/interconnect.hpp"
#include "sim/message.hpp"
#include "sim/types.hpp"

namespace sbq::replay {

struct SendEvent {
  sim::Time time = 0;
  sim::CoreId src = -1;
  sim::CoreId dst = -1;
  sim::MsgType type = sim::MsgType::kGetS;
  sim::Addr addr = 0;
  sim::Value value = 0;

  bool operator==(const SendEvent& o) const {
    return time == o.time && src == o.src && dst == o.dst && type == o.type &&
           addr == o.addr && value == o.value;
  }
};

struct DivergenceReport {
  bool diverged = false;
  // First divergent message: global send index (0-based) and each side's
  // virtual time at that index. When one stream is a strict prefix of the
  // other, seq is the shorter stream's length and `prefix_only` is set.
  std::uint64_t seq = 0;
  bool prefix_only = false;
  SendEvent a, b;  // the messages at `seq` (absent side left default)
  std::uint64_t total_a = 0, total_b = 0;
  // DebugRing-format dumps of up to 256 messages preceding (and including)
  // the divergence on each side.
  std::string context_a, context_b;
};

// A side: construct the machine, attach the observer via
// Interconnect::set_send_observer BEFORE building the queue, run the whole
// workload. Called up to twice per side (digest pass + capture pass), so it
// must be deterministic and re-runnable.
using ObservedRunFn =
    std::function<void(sim::Interconnect::SendObserverFn, void*)>;

DivergenceReport find_divergence(const ObservedRunFn& run_a,
                                 const ObservedRunFn& run_b,
                                 std::uint64_t window = 1024);

// Render the report for humans (deterministic text; used by
// tools/sbq_divergence and scripts/check_fault_determinism.sh).
std::string format_divergence(const DivergenceReport& report);

}  // namespace sbq::replay
