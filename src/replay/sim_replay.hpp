// Sim-side op recording and trace replay (docs/replay.md).
//
// Recording twins of the simq workload coroutines append one OpRecord per
// queue op to a host-side log. The append happens outside the simulated
// timeline (no simulated think/latency cost), so a recorded run's schedule
// — and therefore its metrics — is byte-identical to an unrecorded one
// (pinned by tests/replay_test.cpp). The bodies must stay in lockstep with
// simq::detail::producer_thread / consumer_thread in
// src/benchsupport/sim_workload.hpp: same rng streams, same think calls,
// same value scheme.
//
// Replay reverses the process: per-thread op sequences from a decoded
// OpTrace are pinned (a producer enqueues exactly its recorded values in
// order; a consumer dequeues until it has matched its recorded success
// count), while the think/rng streams regenerate from the trace header.
// Under the recording MachineConfig the replay reproduces the original
// schedule exactly; under any other config the same logical history runs
// on the new machine and per-thread dequeue results are diffed against the
// recorded ones.
//
// Phase encoding: measured-phase ops carry thread >= 0 (producers 0..P-1,
// consumers P..P+C-1 as global indices); un-measured prefill enqueues carry
// thread -(p+1) so replay and the history checker can reconstruct the
// complete value history without conflating the phases.
#pragma once

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "benchsupport/sim_workload.hpp"
#include "common/rng.hpp"
#include "replay/op_trace.hpp"

namespace sbq::replay {

// Host-side single-threaded op log (recording requires the serial engine's
// single global event order; callers force machine_threads = 1).
struct SimOpLog {
  std::vector<OpRecord> records;
};

namespace detail {

using simq::Machine;
using simq::Task;
using simq::Time;
using simq::Value;

// Lockstep twin of simq::detail::producer_thread plus the log append.
template <typename QueueT>
Task<void> recording_producer(Machine& m, QueueT& q, int core, int id,
                              int log_thread, Value ops, std::uint64_t seed,
                              std::shared_ptr<simq::detail::Accum> acc,
                              SimOpLog* log) {
  Xoshiro256 rng(seed);
  sim::Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  for (Value i = 0; i < ops; ++i) {
    const Value v = simq::kFirstElement + (static_cast<Value>(id) << 32 | i);
    const Time start = c.now();
    co_await q.enqueue(c, v, id);
    acc->enq_lat_cycles.fetch_add(c.now() - start, std::memory_order_relaxed);
    acc->enq.fetch_add(1, std::memory_order_relaxed);
    log->records.push_back({log_thread, kOpEnqueue, v, start, c.now(), 1});
    co_await c.think(1 + rng.next_below(8));
  }
}

// Lockstep twin of simq::detail::consumer_thread plus the log append (null
// dequeues included: they are part of the logical history).
template <typename QueueT>
Task<void> recording_consumer(Machine& m, QueueT& q, int core, int id,
                              int log_thread, Value ops, std::uint64_t seed,
                              std::shared_ptr<simq::detail::Accum> acc,
                              SimOpLog* log) {
  Xoshiro256 rng(seed);
  sim::Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  Value got = 0;
  while (got < ops) {
    const Time start = c.now();
    const Value e = co_await q.dequeue(c, id);
    log->records.push_back({log_thread, kOpDequeue, 0, start, c.now(), e});
    if (e != 0) {
      acc->deq_lat_cycles.fetch_add(c.now() - start, std::memory_order_relaxed);
      acc->deq.fetch_add(1, std::memory_order_relaxed);
      ++got;
    } else {
      co_await c.think(64);  // transiently empty; back off briefly
    }
  }
}

// Replay producer: the value sequence comes from the trace instead of being
// regenerated, everything else matches recording_producer.
template <typename QueueT>
Task<void> replay_producer(Machine& m, QueueT& q, int core, int id,
                           int log_thread, const std::vector<Value>* values,
                           std::uint64_t seed,
                           std::shared_ptr<simq::detail::Accum> acc,
                           SimOpLog* log) {
  Xoshiro256 rng(seed);
  sim::Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  for (std::size_t i = 0; i < values->size(); ++i) {
    const Value v = (*values)[i];
    const Time start = c.now();
    co_await q.enqueue(c, v, id);
    acc->enq_lat_cycles.fetch_add(c.now() - start, std::memory_order_relaxed);
    acc->enq.fetch_add(1, std::memory_order_relaxed);
    if (log != nullptr) {
      log->records.push_back({log_thread, kOpEnqueue, v, start, c.now(), 1});
    }
    co_await c.think(1 + rng.next_below(8));
  }
}

// Replay consumer: runs until it has matched the recorded success count,
// diffing each successful dequeue against the recorded value sequence.
template <typename QueueT>
Task<void> replay_consumer(Machine& m, QueueT& q, int core, int id,
                           int log_thread, const std::vector<Value>* expected,
                           std::uint64_t seed,
                           std::shared_ptr<simq::detail::Accum> acc,
                           SimOpLog* log, std::uint64_t* mismatches) {
  Xoshiro256 rng(seed);
  sim::Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  Value got = 0;
  const Value ops = static_cast<Value>(expected->size());
  while (got < ops) {
    const Time start = c.now();
    const Value e = co_await q.dequeue(c, id);
    if (log != nullptr) {
      log->records.push_back({log_thread, kOpDequeue, 0, start, c.now(), e});
    }
    if (e != 0) {
      acc->deq_lat_cycles.fetch_add(c.now() - start, std::memory_order_relaxed);
      acc->deq.fetch_add(1, std::memory_order_relaxed);
      if (e != (*expected)[static_cast<std::size_t>(got)]) ++*mismatches;
      ++got;
    } else {
      co_await c.think(64);
    }
  }
}

// Native-trace replay actor: walks one native thread's recorded op list in
// invocation order. Dequeues are single attempts (the native workload never
// retries), and a deterministic think stream keeps the actors from
// lockstepping — seeded off the trace seed so the replay itself is
// reproducible.
template <typename QueueT>
Task<void> replay_native_thread(Machine& m, QueueT& q, int core, int enq_id,
                                int deq_id, int log_thread,
                                const std::vector<OpRecord>* ops,
                                std::uint64_t seed,
                                std::shared_ptr<simq::detail::Accum> acc,
                                SimOpLog* log) {
  Xoshiro256 rng(seed);
  sim::Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  for (const OpRecord& rec : *ops) {
    const Time start = c.now();
    if (rec.op == kOpEnqueue) {
      co_await q.enqueue(c, rec.value, enq_id);
      acc->enq_lat_cycles.fetch_add(c.now() - start,
                                    std::memory_order_relaxed);
      acc->enq.fetch_add(1, std::memory_order_relaxed);
      if (log != nullptr) {
        log->records.push_back(
            {log_thread, kOpEnqueue, rec.value, start, c.now(), 1});
      }
    } else {
      const Value e = co_await q.dequeue(c, deq_id);
      if (e != 0) {
        acc->deq_lat_cycles.fetch_add(c.now() - start,
                                      std::memory_order_relaxed);
        acc->deq.fetch_add(1, std::memory_order_relaxed);
      }
      if (log != nullptr) {
        log->records.push_back({log_thread, kOpDequeue, 0, start, c.now(), e});
      }
    }
    co_await c.think(1 + rng.next_below(8));
  }
}

inline std::uint64_t trace_prefill_seed(const OpTrace& t) {
  return t.prefill_seed == 0 ? t.seed : t.prefill_seed;
}

inline simq::Value trace_prefill_per_producer(const OpTrace& t) {
  const int producers = static_cast<int>(t.producers);
  switch (t.workload) {
    case 0:
      return 0;
    case 1:
      return simq::consumer_only_per_producer(producers,
                                              static_cast<int>(t.consumers),
                                              t.ops_per_thread);
    case 2:
      return simq::mixed_per_producer(producers, t.prefill);
  }
  throw std::logic_error("bad trace workload");
}

}  // namespace detail

// Runs the workload described by `trace`'s header on (m, q), recording
// every op (prefill included) into trace.records. The caller fills the
// header fields and owns machine/queue construction; `m` must be serial
// (machine_threads == 1). Returns the measured-phase result, which is
// byte-identical to the same spec run unrecorded.
template <typename QueueT>
simq::SimRunResult run_recorded_workload(simq::Machine& m, QueueT& q,
                                         OpTrace& trace,
                                         int consumer_id_offset) {
  using detail::Value;
  SimOpLog log;
  const int producers = static_cast<int>(trace.producers);
  const int consumers = static_cast<int>(trace.consumers);
  const Value per_producer = detail::trace_prefill_per_producer(trace);
  // Run the prefill phase whenever bench::prefill_spec would — including a
  // zero-element fill (each producer still costs its initial think), so the
  // recorded schedule twins the plain run structurally, not just op-wise.
  if (trace.workload != 0) {
    const std::uint64_t pseed = detail::trace_prefill_seed(trace);
    auto fill_acc = std::make_shared<simq::detail::Accum>();
    for (int p = 0; p < producers; ++p) {
      m.spawn(detail::recording_producer(
                  m, q, p, p, -(p + 1), per_producer,
                  pseed * 7 + static_cast<std::uint64_t>(p), fill_acc, &log),
              p);
    }
    m.run();
  }

  auto acc = std::make_shared<simq::detail::Accum>();
  const detail::Time start = m.now();
  if (trace.workload == 0 || trace.workload == 2) {
    for (int p = 0; p < producers; ++p) {
      m.spawn(detail::recording_producer(
                  m, q, p, p, p, trace.ops_per_thread,
                  trace.seed * 1000003 + static_cast<std::uint64_t>(p), acc,
                  &log),
              p);
    }
  }
  if (trace.workload == 1 || trace.workload == 2) {
    const int consumer_core0 = trace.workload == 2 ? m.core_count() / 2 : 0;
    for (int ci = 0; ci < consumers; ++ci) {
      m.spawn(detail::recording_consumer(
                  m, q, consumer_core0 + ci, consumer_id_offset + ci,
                  producers + ci, trace.ops_per_thread,
                  trace.seed * 2000003 + static_cast<std::uint64_t>(ci), acc,
                  &log),
              consumer_core0 + ci);
    }
  }
  m.run();

  simq::SimRunResult r;
  r.enq_ops = acc->enq_count();
  r.deq_ops = acc->deq_count();
  r.enq_latency_cycles =
      r.enq_ops ? acc->enq_lat() / static_cast<double>(r.enq_ops) : 0;
  r.deq_latency_cycles =
      r.deq_ops ? acc->deq_lat() / static_cast<double>(r.deq_ops) : 0;
  r.duration_cycles = static_cast<double>(m.now() - start);
  r.metrics = m.metrics();
  trace.records = std::move(log.records);
  return r;
}

struct ReplayOutcome {
  simq::SimRunResult run;
  // Successful dequeues whose value differed from the recorded one at the
  // same per-thread position (sim-source traces only; 0 under the
  // recording config by construction).
  std::uint64_t value_mismatches = 0;
  // The replayed history with this run's virtual timestamps, ready for
  // the history checker or for re-encoding.
  std::vector<OpRecord> observed;
};

// Feeds `trace` back into (m, q): per-thread op sequences are pinned from
// the records while think/rng streams regenerate from the header. `m` must
// be serial and have enough cores for the trace's thread placement.
template <typename QueueT>
ReplayOutcome replay_trace(simq::Machine& m, QueueT& q, const OpTrace& trace,
                           int consumer_id_offset) {
  using detail::Value;
  ReplayOutcome out;
  SimOpLog log;
  auto acc = std::make_shared<simq::detail::Accum>();

  if (trace.source == TraceSource::kNative) {
    const int threads = static_cast<int>(trace.producers);
    std::vector<std::vector<OpRecord>> per_thread(
        static_cast<std::size_t>(threads));
    for (const OpRecord& rec : trace.records) {
      if (rec.thread < 0 || rec.thread >= threads) continue;
      per_thread[static_cast<std::size_t>(rec.thread)].push_back(rec);
    }
    for (auto& ops : per_thread) {
      std::stable_sort(ops.begin(), ops.end(),
                       [](const OpRecord& a, const OpRecord& b) {
                         return a.invoke_seq < b.invoke_seq;
                       });
    }
    const detail::Time start = m.now();
    for (int t = 0; t < threads; ++t) {
      const int deq_id =
          consumer_id_offset == 0 ? t : consumer_id_offset + t;
      m.spawn(detail::replay_native_thread(
                  m, q, t, t, deq_id, t,
                  &per_thread[static_cast<std::size_t>(t)],
                  trace.seed * 3000003 + static_cast<std::uint64_t>(t), acc,
                  &log),
              t);
    }
    m.run();
    out.run.enq_ops = acc->enq_count();
    out.run.deq_ops = acc->deq_count();
    out.run.duration_cycles = static_cast<double>(m.now() - start);
    out.run.metrics = m.metrics();
    out.observed = std::move(log.records);
    return out;
  }

  // Sim-source: partition by phase and thread.
  const int producers = static_cast<int>(trace.producers);
  const int consumers = static_cast<int>(trace.consumers);
  std::vector<std::vector<Value>> prefill_values(
      static_cast<std::size_t>(producers));
  std::vector<std::vector<Value>> enq_values(
      static_cast<std::size_t>(producers));
  std::vector<std::vector<Value>> deq_values(
      static_cast<std::size_t>(consumers));
  for (const OpRecord& rec : trace.records) {
    if (rec.thread < 0) {
      const int p = -(rec.thread + 1);
      if (p < producers && rec.op == kOpEnqueue) {
        prefill_values[static_cast<std::size_t>(p)].push_back(rec.value);
      }
    } else if (rec.op == kOpEnqueue) {
      if (rec.thread < producers) {
        enq_values[static_cast<std::size_t>(rec.thread)].push_back(rec.value);
      }
    } else {
      const int ci = rec.thread - producers;
      if (ci >= 0 && ci < consumers && rec.result != 0) {
        deq_values[static_cast<std::size_t>(ci)].push_back(rec.result);
      }
    }
  }

  // Prefill phase structure comes from the header (like prefill_spec), not
  // from whether any prefill records exist: a zero-element fill still spawns
  // its producers so the replayed schedule twins the recorded one.
  if (trace.workload != 0) {
    const std::uint64_t pseed = detail::trace_prefill_seed(trace);
    auto fill_acc = std::make_shared<simq::detail::Accum>();
    for (int p = 0; p < producers; ++p) {
      m.spawn(detail::replay_producer(
                  m, q, p, p, -(p + 1),
                  &prefill_values[static_cast<std::size_t>(p)],
                  pseed * 7 + static_cast<std::uint64_t>(p), fill_acc, &log),
              p);
    }
    m.run();
  }

  const detail::Time start = m.now();
  if (trace.workload == 0 || trace.workload == 2) {
    for (int p = 0; p < producers; ++p) {
      m.spawn(detail::replay_producer(
                  m, q, p, p, p, &enq_values[static_cast<std::size_t>(p)],
                  trace.seed * 1000003 + static_cast<std::uint64_t>(p), acc,
                  &log),
              p);
    }
  }
  if (trace.workload == 1 || trace.workload == 2) {
    const int consumer_core0 = trace.workload == 2 ? m.core_count() / 2 : 0;
    for (int ci = 0; ci < consumers; ++ci) {
      m.spawn(detail::replay_consumer(
                  m, q, consumer_core0 + ci, consumer_id_offset + ci,
                  producers + ci, &deq_values[static_cast<std::size_t>(ci)],
                  trace.seed * 2000003 + static_cast<std::uint64_t>(ci), acc,
                  &log, &out.value_mismatches),
              consumer_core0 + ci);
    }
  }
  m.run();

  out.run.enq_ops = acc->enq_count();
  out.run.deq_ops = acc->deq_count();
  out.run.enq_latency_cycles =
      out.run.enq_ops ? acc->enq_lat() / static_cast<double>(out.run.enq_ops)
                      : 0;
  out.run.deq_latency_cycles =
      out.run.deq_ops ? acc->deq_lat() / static_cast<double>(out.run.deq_ops)
                      : 0;
  out.run.duration_cycles = static_cast<double>(m.now() - start);
  out.run.metrics = m.metrics();
  out.observed = std::move(log.records);
  return out;
}

}  // namespace sbq::replay
