// Versioned, checksummed op-level trace format (docs/replay.md).
//
// One trace = one queue run: a header describing the workload shape (queue
// kind, producer/consumer counts, ops per thread, seeds) plus a flat list
// of OpRecord entries capturing every enqueue/dequeue with its invocation
// and response order. Two sources share the format:
//
//   kSim    — recorded from a serial simulated run; invoke_seq/response_seq
//             are exact virtual times, so the record order is the
//             deterministic schedule itself.
//   kNative — recorded from real host threads (bench/native_queues
//             --record-ops); invoke_seq/response_seq are tickets from one
//             global atomic counter, giving a real-time-consistent total
//             order of invocations and responses.
//
// The codec mirrors src/sim/serialize.cpp discipline: little-endian
// fixed-width fields, an FNV-1a64 checksum over everything that precedes
// it, and a decoder that NEVER throws — truncation, bit flips, foreign
// magic, stale versions, and trailing garbage all return false.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbq::replay {

// "SBQO" little-endian; distinct from the snapshot magic ("SBQ1").
inline constexpr std::uint32_t kOpTraceMagic = 0x4f514253;
// Bump on ANY change to the encoded layout.
inline constexpr std::uint32_t kOpTraceFormatVersion = 1;

enum class TraceSource : std::uint8_t { kSim = 0, kNative = 1 };

inline constexpr std::uint8_t kOpEnqueue = 0;
inline constexpr std::uint8_t kOpDequeue = 1;

struct OpRecord {
  std::int32_t thread = 0;       // global thread index (producers first)
  std::uint8_t op = kOpEnqueue;
  std::uint64_t value = 0;       // enq: value enqueued; deq: 0
  std::uint64_t invoke_seq = 0;  // sim: virtual time; native: global ticket
  std::uint64_t response_seq = 0;
  std::uint64_t result = 0;      // enq: 1; deq: value returned (0 = NULL)
};

struct OpTrace {
  TraceSource source = TraceSource::kSim;
  std::string queue;             // QueueKind name, e.g. "SBQ-HTM"
  // Workload shape; sim replay regenerates think/rng streams from these.
  std::uint8_t workload = 0;     // bench WorkloadSpec kind (0 prod / 1 cons / 2 mixed)
  std::uint32_t producers = 0;
  std::uint32_t consumers = 0;
  std::uint64_t ops_per_thread = 0;
  std::uint64_t prefill = 0;
  std::uint64_t seed = 0;
  std::uint64_t prefill_seed = 0;
  std::uint32_t basket_capacity = 0;
  std::vector<OpRecord> records;
};

std::vector<std::uint8_t> encode_op_trace(const OpTrace& trace);

// Returns false (leaving `out` unspecified) on any damage: wrong magic,
// stale version, truncation, checksum mismatch, implausible counts, or
// trailing bytes. Never throws.
bool decode_op_trace(const std::vector<std::uint8_t>& bytes, OpTrace& out);

// File helpers; false on I/O failure (write) or I/O + decode failure (read).
bool write_op_trace_file(const std::string& path, const OpTrace& trace);
bool read_op_trace_file(const std::string& path, OpTrace& out);

}  // namespace sbq::replay
