// Real-thread op recording over the native (host) queues (docs/replay.md).
//
// Runs the pairwise workload from bench/native_queues on T host threads —
// each thread alternates enqueue/dequeue — while stamping every operation
// with invocation and response tickets drawn from one global sequentially-
// consistent counter. The resulting intervals strictly contain each op's
// real execution, so any precedence the tickets prove (resp < inv) held in
// real time too: the HSV linearizability checker stays sound on these
// histories. A single-threaded drain after the threads join completes the
// history (every enqueued value dequeued), which VOrd/VWit need.
//
// Queue names match the simulator's QueueKind vocabulary so a native trace
// replays directly as a sim workload (WF-Queue maps to the native FAA
// queue, its host twin).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "replay/op_trace.hpp"

namespace sbq::replay {

struct NativeRecordSpec {
  int threads = 4;
  std::uint64_t pairs_per_thread = 256;  // enqueue+dequeue pairs per thread
  std::uint64_t seed = 1;                // recorded in the header (replay rng)
};

// All queue names record_native_queue accepts, in QueueKind order.
const std::vector<std::string>& native_record_queue_names();

// Runs the recording workload on the named queue and fills `out` (header +
// records, drained history). Returns false for an unknown queue name or an
// out-of-range spec.
bool record_native_queue(const std::string& queue_name,
                         const NativeRecordSpec& spec, OpTrace& out);

}  // namespace sbq::replay
