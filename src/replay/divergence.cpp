#include "replay/divergence.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "sim/trace.hpp"

namespace sbq::replay {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kContext = 256;  // DebugRing-sized context window

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

// Digest pass: one cumulative hash + window-end time per `window` sends.
struct DigestObserver {
  std::uint64_t window;
  std::uint64_t h = kFnvOffset;
  std::uint64_t count = 0;
  std::vector<std::uint64_t> digests;
  std::vector<sim::Time> times;

  static void cb(void* ctx, sim::Time t, sim::CoreId src, sim::CoreId dst,
                 const sim::Message& msg) {
    auto* o = static_cast<DigestObserver*>(ctx);
    std::uint64_t h = o->h;
    h = mix(h, static_cast<std::uint64_t>(t));
    h = mix(h, static_cast<std::uint64_t>(src));
    h = mix(h, static_cast<std::uint64_t>(dst));
    h = mix(h, static_cast<std::uint64_t>(msg.type));
    h = mix(h, static_cast<std::uint64_t>(msg.addr));
    h = mix(h, static_cast<std::uint64_t>(msg.value));
    o->h = h;
    if (++o->count % o->window == 0) {
      o->digests.push_back(h);
      o->times.push_back(t);
    }
  }
};

// Capture pass: raw events for seq in [lo, hi).
struct CaptureObserver {
  std::uint64_t lo, hi;
  std::uint64_t count = 0;
  std::vector<SendEvent> events;

  static void cb(void* ctx, sim::Time t, sim::CoreId src, sim::CoreId dst,
                 const sim::Message& msg) {
    auto* o = static_cast<CaptureObserver*>(ctx);
    const std::uint64_t seq = o->count++;
    if (seq < o->lo || seq >= o->hi) return;
    o->events.push_back({t, src, dst, msg.type, msg.addr, msg.value});
  }
};

std::string format_context(const std::vector<SendEvent>& events,
                           std::uint64_t first_seq) {
  sim::DebugRing ring(kContext);
  for (const SendEvent& e : events) {
    ring.record(e.time, e.src, e.dst, e.type, e.addr, e.value);
  }
  std::ostringstream os;
  os << "messages before divergence (first shown has seq " << first_seq
     << ")\n";
  ring.dump(os);
  return os.str();
}

}  // namespace

DivergenceReport find_divergence(const ObservedRunFn& run_a,
                                 const ObservedRunFn& run_b,
                                 std::uint64_t window) {
  if (window == 0) window = 1;
  DivergenceReport report;

  DigestObserver da{window}, db{window};
  run_a(&DigestObserver::cb, &da);
  run_b(&DigestObserver::cb, &db);
  report.total_a = da.count;
  report.total_b = db.count;

  // Binary search the first window whose cumulative digest (or end time)
  // differs; windows before it are pairwise identical streams.
  const std::size_t windows = std::min(da.digests.size(), db.digests.size());
  std::size_t lo = 0, hi = windows;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool same =
        da.digests[mid] == db.digests[mid] && da.times[mid] == db.times[mid];
    if (same) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const bool tail_same =
      lo == windows && da.h == db.h && da.count == db.count;
  if (tail_same) return report;  // identical streams

  // Divergence lies in window `lo` (or in the ragged tail past the last
  // full window). Capture that window plus the ring context before it.
  const std::uint64_t div_window_start = static_cast<std::uint64_t>(lo) * window;
  const std::uint64_t cap_lo =
      div_window_start > kContext ? div_window_start - kContext : 0;
  const std::uint64_t cap_hi = div_window_start + window + 1;

  CaptureObserver ca{cap_lo, cap_hi}, cb_{cap_lo, cap_hi};
  run_a(&CaptureObserver::cb, &ca);
  run_b(&CaptureObserver::cb, &cb_);

  // Linear scan inside the captured slice for the first differing seq.
  const std::size_t na = ca.events.size();
  const std::size_t nb = cb_.events.size();
  std::size_t i = 0;
  while (i < na && i < nb && ca.events[i] == cb_.events[i]) ++i;

  report.diverged = true;
  report.seq = cap_lo + i;
  if (i < na) report.a = ca.events[i];
  if (i < nb) report.b = cb_.events[i];
  report.prefix_only = i >= na || i >= nb;

  const auto prefix = [&](const std::vector<SendEvent>& ev, std::size_t end) {
    std::vector<SendEvent> out(ev.begin(),
                               ev.begin() + static_cast<std::ptrdiff_t>(
                                                std::min(end + 1, ev.size())));
    return out;
  };
  const std::uint64_t ctx_first =
      report.seq > kContext ? report.seq - kContext : 0;
  report.context_a = format_context(prefix(ca.events, i), ctx_first);
  report.context_b = format_context(prefix(cb_.events, i), ctx_first);
  return report;
}

std::string format_divergence(const DivergenceReport& report) {
  std::ostringstream os;
  if (!report.diverged) {
    os << "no divergence: " << report.total_a
       << " interconnect messages, identical streams\n";
    return os.str();
  }
  os << "first divergent message: seq " << report.seq << "\n";
  auto side = [&](const char* name, const SendEvent& e, std::uint64_t total) {
    os << "  side " << name << " (" << total << " messages total): ";
    if (report.seq >= total) {
      os << "stream ended\n";
      return;
    }
    os << "t=" << e.time << "  " << e.src << " -> " << e.dst << "  "
       << sim::msg_type_name(e.type) << "  addr=" << e.addr
       << "  value=" << e.value << "\n";
  };
  side("A", report.a, report.total_a);
  side("B", report.b, report.total_b);
  os << "--- side A " << report.context_a;
  os << "--- side B " << report.context_b;
  return os.str();
}

}  // namespace sbq::replay
