#include "verify/history_checker.hpp"

#include <map>

namespace sbq::histcheck {

std::vector<Violation> History::check() const {
  std::vector<Violation> out;

  std::map<ValueT, const Op*> enq_of;   // value -> enqueue op
  std::vector<const Op*> deqs_null;
  std::map<ValueT, std::vector<const Op*>> deqs_of;  // value -> dequeues

  for (const Op& op : ops_) {
    if (op.kind == Op::kEnq) {
      enq_of[op.value] = &op;
    } else if (op.value == 0) {
      deqs_null.push_back(&op);
    } else {
      deqs_of[op.value].push_back(&op);
    }
  }

  // VFresh + VRepeat.
  for (const auto& [v, deqs] : deqs_of) {
    if (enq_of.count(v) == 0) {
      out.push_back({"VFresh", "dequeued value " + std::to_string(v) +
                                   " was never enqueued"});
    }
    if (deqs.size() > 1) {
      out.push_back({"VRepeat", "value " + std::to_string(v) + " dequeued " +
                                    std::to_string(deqs.size()) + " times"});
    }
  }

  // Precedence: op1 precedes op2 iff op1.responded < op2.invoked.
  auto precedes = [](const Op* a, const Op* b) {
    return a->responded < b->invoked;
  };

  // VOrd: enq(a) ≺ enq(b), b dequeued, and (a never dequeued, or
  // deq(b) ≺ deq(a)).
  for (const auto& [vb, deqs_b] : deqs_of) {
    auto itb = enq_of.find(vb);
    if (itb == enq_of.end()) continue;
    const Op* enq_b = itb->second;
    for (const auto& [va, enq_a] : enq_of) {
      if (va == vb || !precedes(enq_a, enq_b)) continue;
      auto ita = deqs_of.find(va);
      if (ita == deqs_of.end()) {
        // a never dequeued although b (enqueued later) was: only a
        // violation if the history is complete and drained — callers
        // ensure every enqueued element is dequeued, so report it.
        out.push_back({"VOrd", "value " + std::to_string(vb) +
                                   " dequeued but earlier-enqueued " +
                                   std::to_string(va) + " never dequeued"});
        continue;
      }
      const Op* deq_a = ita->second.front();
      const Op* deq_b = deqs_b.front();
      if (precedes(deq_b, deq_a)) {
        out.push_back({"VOrd",
                       "deq(" + std::to_string(vb) + ") completed before deq(" +
                           std::to_string(va) + ") was invoked, but enq(" +
                           std::to_string(va) + ") preceded enq(" +
                           std::to_string(vb) + ")"});
      }
    }
  }

  // VWit: a null dequeue D although some value v has enq(v) ≺ D and every
  // dequeue of v begins only after D responds (v was in the queue for all
  // of D's interval).
  for (const Op* d : deqs_null) {
    for (const auto& [v, enq] : enq_of) {
      if (!precedes(enq, d)) continue;
      const auto it = deqs_of.find(v);
      bool witness_in_queue_throughout;
      if (it == deqs_of.end()) {
        witness_in_queue_throughout = true;  // never dequeued at all
      } else {
        // If any dequeue of v was invoked before D responded, v may have
        // left the queue during D's interval — not a witness.
        witness_in_queue_throughout = true;
        for (const Op* dv : it->second) {
          if (dv->invoked < d->responded) {
            witness_in_queue_throughout = false;
            break;
          }
        }
      }
      if (witness_in_queue_throughout) {
        out.push_back({"VWit",
                       "dequeue returned NULL at [" +
                           std::to_string(d->invoked) + "," +
                           std::to_string(d->responded) + ") although " +
                           std::to_string(v) + " was enqueued before and not "
                           "removed during the interval"});
        break;  // one witness per null dequeue is enough
      }
    }
  }
  return out;
}

}  // namespace sbq::histcheck
