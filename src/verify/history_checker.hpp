// Aspect-oriented linearizability checking for queue histories.
//
// §5.3.2 of the paper proves SBQ linearizable via the Henzinger–Sezgin–
// Vafeiadis framework [13]: a complete queue history is linearizable iff it
// contains none of four violations (assuming unique enqueued values):
//
//   VFresh  — a dequeue returns a value that was never enqueued;
//   VRepeat — two dequeues return the value of the same enqueue;
//   VOrd    — enqueue(b) is invoked after enqueue(a) COMPLETES, some
//             dequeue returns b, but a is never dequeued or a's dequeue is
//             invoked only after b's dequeue completes;
//   VWit    — a dequeue returns NULL although some element was enqueued
//             (completed) before its invocation and not yet dequeued
//             throughout its whole execution interval.
//
// This library implements the checks directly over recorded operation
// intervals. On the simulator, timestamps are exact virtual times, so the
// precedence relation (resp < inv) is precise — the checker is a sound and
// complete test for these four violation classes. Shared by the tests and
// the `sbq_check_history` CLI (tools/sbq_check_history.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbq::histcheck {

using ValueT = std::uint64_t;
using TimeT = std::uint64_t;

struct Op {
  enum Kind { kEnq, kDeq } kind;
  TimeT invoked;
  TimeT responded;
  ValueT value;  // enq: value enqueued; deq: value returned (0 = NULL)
};

struct Violation {
  std::string kind;
  std::string detail;
};

class History {
 public:
  void record_enq(TimeT inv, TimeT resp, ValueT v) {
    ops_.push_back({Op::kEnq, inv, resp, v});
  }
  void record_deq(TimeT inv, TimeT resp, ValueT v) {
    ops_.push_back({Op::kDeq, inv, resp, v});
  }
  void merge(const History& other) {
    ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
  }
  std::size_t size() const { return ops_.size(); }

  // Runs all four checks; returns every violation found (empty = pass).
  std::vector<Violation> check() const;

 private:
  std::vector<Op> ops_;
};

}  // namespace sbq::histcheck
