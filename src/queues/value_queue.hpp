// ValueQueue<T>: a by-value convenience adapter over the pointer-based SBQ.
//
// The core queue (like the paper's algorithms) moves `T*`. Applications
// frequently want to enqueue small values; this adapter owns the element
// storage in per-enqueuer arenas, so enqueue copies the value in and
// dequeue moves it out (returning std::optional<T>). Elements allocated by
// enqueuer i are recycled through arena i's remote freelist when a
// different thread dequeues them.
//
// Ownership note: values still sitting in the queue when it is destroyed
// are not individually destroyed (their storage is reclaimed with the
// arenas). Drain the queue before destruction if T has significant
// destructors.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "basket/sbq_basket.hpp"
#include "common/arena.hpp"
#include "htm/cas_policy.hpp"
#include "queues/sbq.hpp"

namespace sbq {

template <typename T, typename CasPolicyT = HtmCas>
class ValueQueue {
 public:
  struct Config {
    std::size_t max_enqueuers = 1;
    std::size_t max_dequeuers = 1;
    CasPolicyT cas{};
  };

  explicit ValueQueue(Config cfg)
      : enqueuers_(cfg.max_enqueuers) {
    typename Impl::Config icfg;
    icfg.max_enqueuers = cfg.max_enqueuers;
    icfg.max_dequeuers = cfg.max_dequeuers;
    icfg.cas = cfg.cas;
    impl_ = std::make_unique<Impl>(icfg);
    arenas_.reserve(cfg.max_enqueuers);
    for (std::size_t i = 0; i < cfg.max_enqueuers; ++i) {
      arenas_.push_back(std::make_unique<TypedArena<Boxed>>());
    }
  }

  // Copies/moves `value` into per-thread storage and enqueues it.
  template <typename U>
  void enqueue(U&& value, int enqueuer_id) {
    assert(enqueuer_id >= 0 &&
           static_cast<std::size_t>(enqueuer_id) < enqueuers_);
    auto& arena = *arenas_[static_cast<std::size_t>(enqueuer_id)];
    Boxed* box = arena.create(std::forward<U>(value),
                              static_cast<std::uint32_t>(enqueuer_id));
    impl_->enqueue(box, enqueuer_id);
  }

  // Returns the next value, or nullopt if the queue is (observed) empty.
  std::optional<T> dequeue(int dequeuer_id) {
    Boxed* box = impl_->dequeue(dequeuer_id);
    if (box == nullptr) return std::nullopt;
    std::optional<T> out(std::move(box->value));
    // Return the box to its owning enqueuer's arena (remote free).
    arenas_[box->owner]->destroy_remote(box);
    return out;
  }

 private:
  struct Boxed {
    template <typename U>
    Boxed(U&& v, std::uint32_t o) : value(std::forward<U>(v)), owner(o) {}
    T value;
    std::uint32_t owner;
  };
  using Impl = Queue<Boxed, SbqBasket<Boxed>, CasPolicyT>;

  std::size_t enqueuers_;
  std::unique_ptr<Impl> impl_;
  std::vector<std::unique_ptr<TypedArena<Boxed>>> arenas_;
};

}  // namespace sbq
