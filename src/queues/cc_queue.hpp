// CC-Queue: a FIFO queue protected by the CC-Synch combining protocol of
// Fatourou & Kallimanis (PPoPP 2012).
//
// CC-Synch: threads SWAP themselves onto a combining list; the thread that
// lands at the list's head becomes the combiner and executes the pending
// requests of everyone behind it (up to a help bound), then hands the
// combiner role to the next waiting thread. Each operation costs one
// contended SWAP — the same serialized-RMW cost model as FAA queues (§7 of
// the paper: "the fastest combining-based queues … are based on contended
// FAA and SWAP").
//
// The underlying sequential queue is a plain singly linked list; it is only
// ever touched by the current combiner, so it needs no synchronization.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>

#include "common/backoff.hpp"
#include "common/cacheline.hpp"
#include "common/padded.hpp"

namespace sbq {

template <typename T>
class CcQueue {
 public:
  explicit CcQueue(std::size_t max_threads)
      : max_threads_(max_threads),
        records_(std::make_unique<Padded<ThreadRecord>[]>(max_threads)) {
    // The combining list always contains one dummy "lock holder" record.
    auto* dummy = new Record();
    dummy->locked.store(false, std::memory_order_relaxed);
    dummy->completed.store(true, std::memory_order_relaxed);
    combining_tail_.store(dummy, std::memory_order_relaxed);
    seq_head_ = seq_tail_ = new SeqNode();  // sentinel
  }

  CcQueue(const CcQueue&) = delete;
  CcQueue& operator=(const CcQueue&) = delete;

  ~CcQueue() {
    delete combining_tail_.load(std::memory_order_relaxed);
    SeqNode* n = seq_head_;
    while (n != nullptr) {
      SeqNode* next = n->next;
      delete n;
      n = next;
    }
    SeqNode* f = free_list_;
    while (f != nullptr) {
      SeqNode* next = f->next;
      delete f;
      f = next;
    }
  }

  void enqueue(T* element, int id) {
    apply(Request{Op::kEnqueue, element}, id);
  }

  T* dequeue(int id) {
    return apply(Request{Op::kDequeue, nullptr}, id);
  }

 private:
  enum class Op : unsigned char { kEnqueue, kDequeue };

  struct Request {
    Op op;
    T* argument;
  };

  struct Record {
    std::atomic<Record*> next{nullptr};
    std::atomic<bool> locked{true};
    std::atomic<bool> completed{false};
    Request request{};
    T* result = nullptr;
  };

  struct SeqNode {
    T* element = nullptr;
    SeqNode* next = nullptr;
  };

  static constexpr std::size_t kHelpBound = 64;

  // The CC-Synch protocol. Returns the operation's result.
  T* apply(Request req, int id) {
    // Each thread owns two records and alternates between them: the record
    // it hands to the list stays there as the next dummy.
    auto& mine = records_[static_cast<std::size_t>(id)].value;
    Record* next_dummy = mine.spare != nullptr ? mine.spare : new Record();
    mine.spare = nullptr;
    next_dummy->next.store(nullptr, std::memory_order_relaxed);
    next_dummy->locked.store(true, std::memory_order_relaxed);
    next_dummy->completed.store(false, std::memory_order_relaxed);

    Record* cur = combining_tail_.exchange(next_dummy, std::memory_order_acq_rel);
    cur->request = req;
    cur->result = nullptr;
    cur->completed.store(false, std::memory_order_relaxed);
    cur->next.store(next_dummy, std::memory_order_release);

    // Wait until either our request was combined or we hold the lock.
    while (cur->locked.load(std::memory_order_acquire)) {
      cpu_relax();
      if (cur->completed.load(std::memory_order_acquire)) break;
    }
    if (cur->completed.load(std::memory_order_acquire)) {
      // Someone combined us; reuse `cur` as our spare next time.
      T* result = cur->result;
      mine.spare = cur;
      return result;
    }

    // We are the combiner. Serve the list, then pass the lock on.
    Record* node = cur;
    std::size_t helped = 0;
    while (node->next.load(std::memory_order_acquire) != nullptr &&
           helped < kHelpBound) {
      execute(node);
      node->completed.store(true, std::memory_order_release);
      node->locked.store(false, std::memory_order_release);
      ++helped;
      node = node->next.load(std::memory_order_acquire);
    }
    // `node` is the new dummy/lock holder.
    node->locked.store(false, std::memory_order_release);
    T* result = cur->result;
    mine.spare = cur;
    return result;
  }

  void execute(Record* r) {
    if (r->request.op == Op::kEnqueue) {
      SeqNode* n = alloc_node();
      n->element = r->request.argument;
      n->next = nullptr;
      seq_tail_->next = n;
      seq_tail_ = n;
    } else {
      SeqNode* first = seq_head_->next;
      if (first == nullptr) {
        r->result = nullptr;
      } else {
        r->result = first->element;
        free_node(seq_head_);
        seq_head_ = first;
      }
    }
  }

  SeqNode* alloc_node() {
    if (free_list_ != nullptr) {
      SeqNode* n = free_list_;
      free_list_ = n->next;
      return n;
    }
    return new SeqNode();
  }

  void free_node(SeqNode* n) {
    n->next = free_list_;
    free_list_ = n;
  }

  struct ThreadRecord {
    Record* spare = nullptr;
    ~ThreadRecord() { delete spare; }
  };
  // Alias to keep Padded<Record> naming honest: per-thread state.
  using RecordSlot = ThreadRecord;

  const std::size_t max_threads_;
  std::unique_ptr<Padded<RecordSlot>[]> records_;
  alignas(kCacheLineSize) std::atomic<Record*> combining_tail_;
  // Sequential queue: combiner-only state.
  alignas(kCacheLineSize) SeqNode* seq_head_;
  SeqNode* seq_tail_;
  SeqNode* free_list_ = nullptr;
};

}  // namespace sbq
