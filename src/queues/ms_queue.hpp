// The Michael–Scott lock-free queue (PODC 1996), with hazard-pointer
// reclamation. Baseline for the CAS-retry family: a contended enqueue
// retries its tail CAS until it wins, which is exactly the behaviour the
// baskets queue (and SBQ) avoid.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>

#include "common/cacheline.hpp"
#include "reclaim/hazard_pointers.hpp"

namespace sbq {

template <typename T>
class MsQueue {
 public:
  explicit MsQueue(std::size_t max_threads)
      : hp_(max_threads) {
    Node* sentinel = new Node{};
    head_.store(sentinel, std::memory_order_relaxed);
    tail_.store(sentinel, std::memory_order_relaxed);
  }

  MsQueue(const MsQueue&) = delete;
  MsQueue& operator=(const MsQueue&) = delete;

  ~MsQueue() {
    Node* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  void enqueue(T* element, int id) {
    Node* node = new Node{};
    node->element = element;
    for (;;) {
      Node* tail = hp_.protect(tail_, id, 0);
      Node* next = tail->next.load(std::memory_order_acquire);
      if (tail != tail_.load(std::memory_order_acquire)) continue;
      if (next != nullptr) {
        // Help swing the tail, then retry.
        Node* expected = tail;
        tail_.compare_exchange_strong(expected, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire);
        continue;
      }
      Node* null_node = nullptr;
      if (tail->next.compare_exchange_strong(null_node, node,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        Node* expected = tail;
        tail_.compare_exchange_strong(expected, node, std::memory_order_acq_rel,
                                      std::memory_order_acquire);
        hp_.clear(id);
        return;
      }
    }
  }

  T* dequeue(int id) {
    for (;;) {
      Node* head = hp_.protect(head_, id, 0);
      Node* tail = tail_.load(std::memory_order_acquire);
      Node* next = hp_.protect(head->next, id, 1);
      if (head != head_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        hp_.clear(id);
        return nullptr;  // queue empty
      }
      if (head == tail) {
        // Tail is lagging; help it forward.
        Node* expected = tail;
        tail_.compare_exchange_strong(expected, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire);
        continue;
      }
      T* element = next->element;
      Node* expected = head;
      if (head_.compare_exchange_strong(expected, next, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        hp_.clear(id);
        hp_.retire(head, id);
        return element;
      }
    }
  }

 private:
  struct Node {
    T* element = nullptr;
    alignas(kCacheLineSize) std::atomic<Node*> next{nullptr};
  };
  struct NodeDeleter {
    void operator()(Node* n) const { delete n; }
  };

  HazardPointers<Node, NodeDeleter> hp_;
  alignas(kCacheLineSize) std::atomic<Node*> head_;
  alignas(kCacheLineSize) std::atomic<Node*> tail_;
};

}  // namespace sbq
