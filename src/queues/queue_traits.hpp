// Shared concepts/conventions for the queue implementations.
//
// All queues in this library store `T*` elements (as in the paper's
// evaluation, where elements are pointers) and take the calling thread's id
// explicitly. Enqueuer ids and dequeuer ids are separate dense ranges
// ([0, max_enqueuers) and [0, max_dequeuers)) as §5.2.2 assumes.
#pragma once

#include <concepts>

namespace sbq {

template <typename Q, typename T>
concept ConcurrentQueue = requires(Q& q, T* x, int id) {
  { q.enqueue(x, id) };
  { q.dequeue(id) } -> std::same_as<T*>;
};

}  // namespace sbq
