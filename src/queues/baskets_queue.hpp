// The original baskets queue of Hoffman, Shalev and Shavit (OPODIS 2007),
// implemented clean-room from the algorithm description.
//
// Structure: a Michael–Scott list whose enqueue, on a failed tail-link CAS,
// retries insertion *at the same node* (the implicit LIFO basket) by CASing
// itself between the tail node and its successor, instead of chasing the new
// tail. Dequeued nodes are logically deleted by setting a tag bit in their
// next pointer; a deleted bit on the successor chain is what closes a basket
// to further insertions. Physical unlinking happens when head is advanced
// over a chain of deleted nodes.
//
// Pointers carry a (deleted | tag) word to the side: we pack the deleted bit
// into the pointer's LSB (nodes are cache-line aligned) and rely on hazard
// pointers for ABA-safe reclamation instead of the original's tag counters.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/backoff.hpp"
#include "common/cacheline.hpp"
#include "reclaim/hazard_pointers.hpp"

namespace sbq {

template <typename T>
class BasketsQueue {
 public:
  explicit BasketsQueue(std::size_t max_threads) : hp_(max_threads) {
    Node* sentinel = new Node{};
    head_.store(pack(sentinel, false), std::memory_order_relaxed);
    tail_.store(pack(sentinel, false), std::memory_order_relaxed);
  }

  BasketsQueue(const BasketsQueue&) = delete;
  BasketsQueue& operator=(const BasketsQueue&) = delete;

  ~BasketsQueue() {
    Node* n = ptr(head_.load(std::memory_order_relaxed));
    while (n != nullptr) {
      Node* next = ptr(n->next.load(std::memory_order_relaxed));
      delete n;
      n = next;
    }
  }

  void enqueue(T* element, int id) {
    Node* node = new Node{};
    node->element = element;
    Backoff backoff;
    for (;;) {
      const Word tail_w = tail_.load(std::memory_order_acquire);
      Node* tail = ptr(tail_w);
      hp_.set(tail, id, 0);
      if (tail_w != tail_.load(std::memory_order_acquire)) continue;
      const Word next_w = tail->next.load(std::memory_order_acquire);
      if (ptr(next_w) == nullptr) {
        // Try to link after the tail.
        node->next.store(pack(nullptr, false), std::memory_order_relaxed);
        Word expected = next_w;
        if (tail->next.compare_exchange_strong(expected, pack(node, false),
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          Word tw = tail_w;
          tail_.compare_exchange_strong(tw, pack(node, false),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
          hp_.clear(id);
          return;
        }
        // CAS failed: a winner linked its node concurrently — we are in its
        // basket's equivalence class. Retry insertion at the same tail node,
        // placing ourselves between `tail` and its current successor.
        for (;;) {
          const Word succ_w = tail->next.load(std::memory_order_acquire);
          if (deleted(succ_w) ||
              tail_w != tail_.load(std::memory_order_acquire)) {
            break;  // basket closed or tail moved on; restart outer loop
          }
          node->next.store(succ_w, std::memory_order_relaxed);
          Word e = succ_w;
          if (tail->next.compare_exchange_strong(e, pack(node, false),
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
            hp_.clear(id);
            return;
          }
          backoff.pause();
        }
      } else {
        // Stale tail: help it one node forward and retry. Only the tail
        // node itself is hazard-protected here, so chasing the true last
        // node would dereference successors a concurrent dequeuer may
        // already have retired (head can advance past a stale tail).
        Word tw = tail_w;
        tail_.compare_exchange_strong(tw, pack(ptr(next_w), false),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
      }
    }
  }

  T* dequeue(int id) {
    Backoff backoff;
    for (;;) {
      const Word head_w = head_.load(std::memory_order_acquire);
      Node* head = ptr(head_w);
      hp_.set(head, id, 0);
      if (head_w != head_.load(std::memory_order_acquire)) continue;
      const Word tail_w = tail_.load(std::memory_order_acquire);

      // Skip over logically deleted nodes after head. Each hop publishes a
      // hazard on the node and re-validates head *before* dereferencing it:
      // nodes are only retired by the dequeuer that advances head, so an
      // unmoved head means nothing reachable from it has been retired,
      // while a moved head means `iter` may already be freed — restart.
      Node* iter = head;
      Word next_w = iter->next.load(std::memory_order_acquire);
      bool head_moved = false;
      while (deleted(next_w) && ptr(next_w) != nullptr) {
        iter = ptr(next_w);
        hp_.set(iter, id, 1);
        if (head_w != head_.load(std::memory_order_seq_cst)) {
          head_moved = true;
          break;
        }
        next_w = iter->next.load(std::memory_order_acquire);
      }
      if (head_moved || head_w != head_.load(std::memory_order_acquire)) {
        continue;
      }

      if (ptr(next_w) == nullptr) {
        // Reached the end through deleted nodes: free the chain, then empty.
        if (iter != head) free_chain(head_w, pack(iter, false), id);
        hp_.clear(id);
        if (iter == ptr(tail_.load(std::memory_order_acquire))) return nullptr;
        continue;  // tail lagging behind deleted chain; retry
      }

      if (head == ptr(tail_w)) {
        // Tail is stale; help it one node forward, then retry. `next_w`
        // came from a hazard-protected node after the head validation, so
        // the CAS target is a list node — walking further would
        // dereference nodes no hazard protects.
        Word tw = tail_w;
        tail_.compare_exchange_strong(tw, pack(ptr(next_w), false),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
        continue;
      }

      // Logically delete the first live successor. After publishing the
      // hazard, re-validate head (not just iter->next: free_chain never
      // rewrites next pointers, so an unchanged iter->next does not prove
      // `next` escaped a concurrent retirement sweep) before touching it.
      Node* next = ptr(next_w);
      hp_.set(next, id, 2);
      if (head_w != head_.load(std::memory_order_seq_cst)) continue;
      if (iter->next.load(std::memory_order_acquire) != next_w) continue;
      T* element = next->element;
      Word e = next_w;
      if (iter->next.compare_exchange_strong(e, pack(next, true),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        // Periodically advance head and reclaim the deleted prefix.
        if (next->seq_hint++ % kReclaimPeriod == 0) {
          free_chain(head_w, pack(next, false), id);
        }
        hp_.clear(id);
        return element;
      }
      backoff.pause();
    }
  }

 private:
  using Word = std::uintptr_t;

  struct Node {
    T* element = nullptr;
    std::uint32_t seq_hint = 0;  // heuristic reclaim trigger; not synchronized
    alignas(kCacheLineSize) std::atomic<Word> next{0};
  };
  struct NodeDeleter {
    void operator()(Node* n) const { delete n; }
  };

  static constexpr Word kDeletedBit = 1;
  static constexpr std::uint32_t kReclaimPeriod = 16;

  static Node* ptr(Word w) noexcept {
    return reinterpret_cast<Node*>(w & ~kDeletedBit);
  }
  static bool deleted(Word w) noexcept { return (w & kDeletedBit) != 0; }
  static Word pack(Node* n, bool del) noexcept {
    return reinterpret_cast<Word>(n) | (del ? kDeletedBit : 0);
  }

  // Advance head from old_head to new_head and retire the skipped nodes.
  void free_chain(Word old_head, Word new_head, int id) {
    Word expected = old_head;
    if (!head_.compare_exchange_strong(expected, new_head,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return;
    }
    Node* n = ptr(old_head);
    Node* stop = ptr(new_head);
    while (n != stop) {
      Node* next = ptr(n->next.load(std::memory_order_acquire));
      hp_.retire(n, id);
      n = next;
    }
  }

  HazardPointers<Node, NodeDeleter> hp_;
  alignas(kCacheLineSize) std::atomic<Word> head_;
  alignas(kCacheLineSize) std::atomic<Word> tail_;
};

}  // namespace sbq
