// FAA-based segment queue — the stand-in for the FAA-only family (LCRQ of
// Morrison & Afek 2013; the wait-free queue of Yang & Mellor-Crummey 2016,
// which the paper treats as the fastest queue in the literature).
//
// Design (the classic "FAA array queue" fast path): the queue is a linked
// list of fixed-size segments, each with its own enq/deq indices.
//   enqueue: FAA the tail segment's enq index to claim a cell, CAS the
//            element into it (fails only if a dequeuer poisoned the cell);
//            if the segment is full, append a fresh segment and swing tail.
//   dequeue: check emptiness, FAA the head segment's deq index, SWAP the
//            cell with TAKEN; null means an overtaken enqueuer — retry.
// One contended FAA per operation, which is exactly the cost model §3 of
// the paper ascribes to this family. Lock-free rather than wait-free: we
// implement the fast path, not YMC's helping slow path — the paper itself
// notes the slow path never triggers in practice, so the performance shape
// (and the comparison against SBQ) is preserved.
//
// Reclamation: hazard pointers; every cell access happens inside a validated
// head/tail-segment hazard, so no unprotected multi-segment traversal.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "common/cacheline.hpp"
#include "common/padded.hpp"
#include "reclaim/hazard_pointers.hpp"

namespace sbq {

template <typename T, std::size_t kSegmentSize = 1024>
class FaaQueue {
 public:
  explicit FaaQueue(std::size_t max_threads) : hp_(max_threads) {
    Segment* s = new Segment();
    head_.store(s, std::memory_order_relaxed);
    tail_.store(s, std::memory_order_relaxed);
  }

  FaaQueue(const FaaQueue&) = delete;
  FaaQueue& operator=(const FaaQueue&) = delete;

  ~FaaQueue() {
    Segment* s = head_.load(std::memory_order_relaxed);
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      delete s;
      s = next;
    }
  }

  void enqueue(T* element, int id) {
    assert(element != nullptr);
    for (;;) {
      Segment* tail = hp_.protect(tail_, id, 0);
      const std::uint64_t i = tail->enq_idx.fetch_add(1, std::memory_order_acq_rel);
      if (i < kSegmentSize) {
        void* expected = nullptr;
        if (tail->cells[i].value.compare_exchange_strong(
                expected, element, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          hp_.clear(id);
          return;
        }
        continue;  // cell poisoned by an overtaking dequeuer; take a new slot
      }
      // Segment full: link a fresh one (or help the winner), swing the tail.
      Segment* next = tail->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        Segment* fresh = new Segment();
        fresh->cells[0].value.store(element, std::memory_order_relaxed);
        fresh->enq_idx.store(1, std::memory_order_relaxed);
        Segment* expected = nullptr;
        if (tail->next.compare_exchange_strong(expected, fresh,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          Segment* t = tail;
          tail_.compare_exchange_strong(t, fresh, std::memory_order_acq_rel,
                                        std::memory_order_acquire);
          hp_.clear(id);
          return;  // element shipped inside the fresh segment
        }
        delete fresh;
        next = expected;
      }
      Segment* t = tail;
      tail_.compare_exchange_strong(t, next, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
    }
  }

  T* dequeue(int id) {
    for (;;) {
      Segment* head = hp_.protect(head_, id, 0);
      if (head->deq_idx.load(std::memory_order_acquire) >=
              head->enq_idx.load(std::memory_order_acquire) &&
          head->next.load(std::memory_order_acquire) == nullptr) {
        hp_.clear(id);
        return nullptr;  // empty
      }
      const std::uint64_t i = head->deq_idx.fetch_add(1, std::memory_order_acq_rel);
      if (i < kSegmentSize) {
        void* value =
            head->cells[i].value.exchange(kTaken, std::memory_order_acq_rel);
        if (value != nullptr) {
          hp_.clear(id);
          return static_cast<T*>(value);
        }
        // Poisoned an in-flight enqueuer's cell; it will retry elsewhere.
        // Re-check emptiness before burning another ticket.
        if (head->deq_idx.load(std::memory_order_acquire) >=
                head->enq_idx.load(std::memory_order_acquire) &&
            head->next.load(std::memory_order_acquire) == nullptr) {
          hp_.clear(id);
          return nullptr;
        }
        continue;
      }
      // Head segment drained: advance to the next segment and retire it.
      Segment* next = head->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        hp_.clear(id);
        return nullptr;  // drained and nothing after it
      }
      Segment* h = head;
      if (head_.compare_exchange_strong(h, next, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        hp_.retire(head, id);
      }
    }
  }

 private:
  // One cell per cache line so concurrent claims don't false-share.
  struct alignas(kCacheLineSize) Cell {
    std::atomic<void*> value{nullptr};
  };

  struct Segment {
    alignas(kCacheLineSize) std::atomic<std::uint64_t> enq_idx{0};
    alignas(kCacheLineSize) std::atomic<std::uint64_t> deq_idx{0};
    alignas(kCacheLineSize) std::atomic<Segment*> next{nullptr};
    Cell cells[kSegmentSize];
  };
  struct SegDeleter {
    void operator()(Segment* s) const { delete s; }
  };

  // Distinct poison address (never a valid element pointer).
  static inline char taken_tag_;
  static inline void* const kTaken = &taken_tag_;

  HazardPointers<Segment, SegDeleter> hp_;
  alignas(kCacheLineSize) std::atomic<Segment*> head_;
  alignas(kCacheLineSize) std::atomic<Segment*> tail_;
};

}  // namespace sbq
