// SBQ — the scalable baskets queue (§5 of the paper), as a modular design
// templated over the basket implementation and the CAS policy used by
// try_append:
//
//   Queue<T, SbqBasket<T>, HtmCas>      = SBQ-HTM   (the paper's SBQ)
//   Queue<T, SbqBasket<T>, DelayedCas>  = SBQ-CAS   (§6.1 ablation)
//   Queue<T, TreiberBasket<T>, NativeCas> ≈ structure of BQ-Original
//
// The queue is a singly linked list of nodes, each holding a basket.
// enqueue (Algorithm 3): insert into a fresh node's basket, try_append the
// node after the tail; on FAILURE insert into the *winner's* basket instead;
// on BAD_TAIL (or failed basket insert) re-find the tail and retry.
// dequeue (Algorithm 5): walk from head to the first non-empty basket and
// extract. advance_node (Algorithm 6) monotonically advances head/tail by
// node index. Reclamation is the index-based scheme of Algorithm 7.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "basket/basket.hpp"
#include "common/cacheline.hpp"
#include "htm/cas_policy.hpp"
#include "reclaim/retired_list.hpp"

namespace sbq {

enum class AppendResult { kSuccess, kFailure, kBadTail };

template <typename T, typename BasketT, typename CasPolicyT>
class Queue {
 public:
  struct Node {
    Node(std::size_t basket_capacity, std::size_t live_inserters)
        : basket(basket_capacity, live_inserters) {}

    BasketT basket;
    std::atomic<Node*> next{nullptr};
    std::uint64_t index = 0;
  };

  struct Config {
    std::size_t max_enqueuers;      // basket capacity B
    std::size_t max_dequeuers;
    // Extract scan bound: number of enqueuers actually running. The paper's
    // experiments fix B = 44 but determine emptiness from the live count.
    std::size_t live_enqueuers = 0;  // 0 => max_enqueuers
    CasPolicyT cas{};
  };

  explicit Queue(Config cfg)
      : cfg_(cfg),
        live_(cfg.live_enqueuers == 0 ? cfg.max_enqueuers : cfg.live_enqueuers),
        sentinel_(new Node(cfg.max_enqueuers,
                           cfg.live_enqueuers == 0 ? cfg.max_enqueuers
                                                   : cfg.live_enqueuers)),
        reclaimer_(sentinel_, cfg.max_enqueuers + cfg.max_dequeuers),
        reusable_(cfg.max_enqueuers, nullptr) {
    head_.store(sentinel_, std::memory_order_relaxed);
    tail_.store(sentinel_, std::memory_order_relaxed);
  }

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  ~Queue() {
    // Single-threaded teardown: free the whole list (retired prefix plus
    // the live portion — they form one chain starting at `retired`).
    reclaimer_.drain_all();
    for (Node* n : reusable_) delete n;
  }

  // Algorithm 3. `id` is the enqueuer id in [0, max_enqueuers).
  void enqueue(T* element, int id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < cfg_.max_enqueuers);
    Node* t = reclaimer_.protect(tail_, enq_tid(id));
    Node* new_node = take_reusable_or_allocate(id);
    bool inserted = new_node->basket.insert(element, id);
    assert(inserted);
    (void)inserted;
    for (;;) {
      new_node->index = t->index + 1;
      const AppendResult status = try_append(t, new_node);
      if (status == AppendResult::kSuccess) {
        advance_node(tail_, new_node);
        new_node = nullptr;  // consumed by the queue
        break;
      }
      if (status == AppendResult::kFailure) {
        // Another node was appended concurrently; join its basket.
        t = t->next.load(std::memory_order_acquire);
        if (t->basket.insert(element, id)) {
          // Keep new_node for reuse by this thread's next enqueue; undo its
          // basket insertion (O(1), §5.2.2).
          new_node->basket.reset(id);
          reusable_[static_cast<std::size_t>(id)] = new_node;
          break;
        }
      }
      // BAD_TAIL or failed basket insert: find the real tail and retry.
      while (Node* next = t->next.load(std::memory_order_acquire)) t = next;
      advance_node(tail_, t);
    }
    reclaimer_.unprotect(enq_tid(id));
  }

  // Algorithm 5. `id` is the dequeuer id in [0, max_dequeuers).
  T* dequeue(int id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < cfg_.max_dequeuers);
    Node* h = reclaimer_.protect(head_, deq_tid(id));
    T* element = nullptr;
    for (;;) {
      while (h->basket.empty()) {
        Node* next = h->next.load(std::memory_order_acquire);
        if (next == nullptr) break;
        h = next;
      }
      element = h->basket.extract(id);
      if (element != nullptr || h->next.load(std::memory_order_acquire) == nullptr) {
        break;
      }
    }
    advance_node(head_, h);
    reclaimer_.free_nodes(head_.load(std::memory_order_acquire));
    reclaimer_.unprotect(deq_tid(id));
    return element;
  }

  // Introspection for tests/benchmarks (not linearizable; quiescent use only).
  std::size_t node_count() const {
    std::size_t n = 0;
    for (Node* p = head_.load(std::memory_order_acquire); p != nullptr;
         p = p->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }
  std::uint64_t head_index() const {
    return head_.load(std::memory_order_acquire)->index;
  }
  std::uint64_t tail_index() const {
    return tail_.load(std::memory_order_acquire)->index;
  }

 private:
  struct NodeDeleter {
    void operator()(Node* n) const { delete n; }
  };
  using Reclaimer = RetiredList<Node, NodeDeleter>;

  int enq_tid(int id) const noexcept { return id; }
  int deq_tid(int id) const noexcept {
    return static_cast<int>(cfg_.max_enqueuers) + id;
  }

  Node* make_node() { return new Node(cfg_.max_enqueuers, live_); }

  Node* take_reusable_or_allocate(int id) {
    Node*& slot = reusable_[static_cast<std::size_t>(id)];
    if (slot != nullptr) {
      Node* n = slot;
      slot = nullptr;
      return n;
    }
    return make_node();
  }

  // Algorithm 4 (basic try_append) with the CAS policy plugged in. The
  // BAD_TAIL precheck also prevents an enqueuer from re-inserting into a
  // basket it already used in a previous completed operation (§5.2.2).
  AppendResult try_append(Node* tail, Node* new_node) {
    if (tail->next.load(std::memory_order_acquire) != nullptr) {
      return AppendResult::kBadTail;
    }
    return cfg_.cas(tail->next, static_cast<Node*>(nullptr), new_node)
               ? AppendResult::kSuccess
               : AppendResult::kFailure;
  }

  // Algorithm 6: advance *ptr at least to new_node (by index).
  static void advance_node(std::atomic<Node*>& ptr, Node* new_node) {
    Node* old_node = ptr.load(std::memory_order_acquire);
    for (;;) {
      if (old_node->index >= new_node->index) return;
      if (ptr.compare_exchange_weak(old_node, new_node, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
        return;
      }
    }
  }

  Config cfg_;
  std::size_t live_;
  Node* sentinel_;  // initial node; ownership passes to the list/reclaimer
  Reclaimer reclaimer_;
  alignas(kCacheLineSize) std::atomic<Node*> head_{nullptr};
  alignas(kCacheLineSize) std::atomic<Node*> tail_{nullptr};
  std::vector<Node*> reusable_;  // per-enqueuer node recycled after FAILURE

  friend class QueueTestPeer;
};

}  // namespace sbq
