#include "benchsupport/snapshot_cache.hpp"

#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace sbq::bench {

bool parse_cache_mode(const std::string& s, CacheMode& out) {
  if (s == "off") {
    out = CacheMode::kOff;
  } else if (s == "ro") {
    out = CacheMode::kReadOnly;
  } else if (s == "rw") {
    out = CacheMode::kReadWrite;
  } else {
    return false;
  }
  return true;
}

const char* cache_mode_name(CacheMode m) noexcept {
  switch (m) {
    case CacheMode::kOff: return "off";
    case CacheMode::kReadOnly: return "ro";
    case CacheMode::kReadWrite: return "rw";
  }
  return "?";
}

SnapshotCacheStats& snapshot_cache_stats() noexcept {
  static SnapshotCacheStats stats;
  return stats;
}

void CacheKey::add_f64(double v) noexcept {
  add_u64(std::bit_cast<std::uint64_t>(v));
}

SnapshotCache::SnapshotCache(CacheMode mode, std::uint32_t schema_version)
    : mode_(mode), schema_(schema_version) {
  const char* env = std::getenv("SBQ_SNAPSHOT_CACHE");
  dir_ = (env != nullptr && env[0] != '\0') ? env : ".sbq-cache";
}

std::string SnapshotCache::path_for(std::uint64_t key) const {
  char name[64];
  std::snprintf(name, sizeof(name), "/v%u-%016llx.snap", schema_,
                static_cast<unsigned long long>(key));
  return dir_ + name;
}

std::optional<std::vector<std::uint8_t>> SnapshotCache::load(
    std::uint64_t key) const {
  if (mode_ == CacheMode::kOff) return std::nullopt;
  std::FILE* f = std::fopen(path_for(key).c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> blob;
  std::uint8_t buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    blob.insert(blob.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return blob;
}

bool SnapshotCache::store(std::uint64_t key,
                          const std::vector<std::uint8_t>& blob) const {
  if (mode_ != CacheMode::kReadWrite || blob.empty()) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // ok if it already exists
  const std::string final_path = path_for(key);
  // Temp name unique per process (pid) AND per store call (atomic
  // counter), so concurrent threads — even ones storing the same key —
  // never share a temp file. The rename is what makes publication safe;
  // same-filesystem is guaranteed because the temp lives in the cache dir
  // itself.
  static std::atomic<std::uint64_t> store_seq{0};
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    store_seq.fetch_add(1, std::memory_order_relaxed)));
  const std::string tmp_path = final_path + suffix;
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  const bool flushed = std::fclose(f) == 0;
  if (!wrote || !flushed ||
      std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

}  // namespace sbq::bench
