#include "benchsupport/bench_report.hpp"

#include "benchsupport/snapshot_cache.hpp"

#include <atomic>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace sbq {

Json table_to_json(const Table& t) {
  Json cols = Json::array();
  for (const auto& c : t.column_names()) cols.push_back(Json(c));
  Json rows = Json::array();
  for (const auto& row : t.rows()) {
    Json r = Json::array();
    for (const auto& cell : row) r.push_back(Json(cell));
    rows.push_back(std::move(r));
  }
  Json out = Json::object();
  out.set("columns", std::move(cols));
  out.set("rows", std::move(rows));
  return out;
}

BenchReport::BenchReport(std::string bench_name)
    : bench_(std::move(bench_name)),
      config_(Json::object()),
      tables_(Json::object()),
      cells_(Json::array()),
      extra_(Json::object()) {}

void BenchReport::set_config(const std::string& key, Json v) {
  config_.set(key, std::move(v));
}

void BenchReport::set_sweep_config(const BenchOptions& opts,
                                   const std::vector<int>& threads,
                                   unsigned long long ops, int repeats) {
  config_.set("seed", Json(static_cast<std::uint64_t>(opts.seed)));
  config_.set("ops_per_thread", Json(static_cast<std::uint64_t>(ops)));
  config_.set("repeats", Json(repeats));
  Json jt = Json::array();
  for (int t : threads) jt.push_back(Json(t));
  config_.set("threads", std::move(jt));
  // Only recorded when the sharded machine is in play, so default artifacts
  // stay byte-identical to pre-sharding baselines.
  if (opts.machine_threads > 1) {
    config_.set("machine_threads", Json(opts.machine_threads));
  }
  // Likewise gated: only non-default --cas-policy runs record the policy,
  // so default fixed-policy artifacts match the goldens byte-for-byte.
  if (!opts.cas_policy.empty()) {
    config_.set("cas_policy", Json(opts.cas_policy));
    config_.set("policy_seed", Json(static_cast<std::uint64_t>(opts.policy_seed)));
  }
}

void BenchReport::add_table(const std::string& name, const Table& t) {
  tables_.set(name, table_to_json(t));
}

void BenchReport::add_cell(Json cell) { cells_.push_back(std::move(cell)); }

void BenchReport::set(const std::string& key, Json v) {
  extra_.set(key, std::move(v));
}

void BenchReport::set_snapshot_cache(const std::string& mode_name) {
  const bench::SnapshotCacheStats& stats = bench::snapshot_cache_stats();
  Json sc = Json::object();
  sc.set("mode", Json(mode_name));
  sc.set("hits", Json(stats.hits.load(std::memory_order_relaxed)));
  sc.set("misses", Json(stats.misses.load(std::memory_order_relaxed)));
  sc.set("stores", Json(stats.stores.load(std::memory_order_relaxed)));
  extra_.set("snapshot_cache", std::move(sc));
}

Json BenchReport::root() const {
  Json doc = Json::object();
  doc.set("schema", Json(kSchema));
  doc.set("bench", Json(bench_));
  doc.set("config", config_);
  for (const auto& kv : extra_.items()) doc.set(kv.first, kv.second);
  doc.set("tables", tables_);
  doc.set("cells", cells_);
  return doc;
}

bool BenchReport::write(const std::string& path) const {
  const std::string text = root().dump(2) + "\n";
  // Self-check before touching the filesystem: the artifact must re-parse
  // and still carry its schema tag.
  const Json back = Json::parse(text);
  if (back["schema"].as_string() != kSchema) {
    throw std::runtime_error("BenchReport: schema lost in round-trip");
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "BenchReport: cannot open " << path << " for writing\n";
    return false;
  }
  out << text;
  out.flush();
  if (!out) {
    std::cerr << "BenchReport: write to " << path << " failed\n";
    return false;
  }
  return true;
}

bool BenchReport::write_if(const std::string& path, const BenchReport& report) {
  if (path.empty()) return true;
  return report.write(path);
}

}  // namespace sbq
