// JSON encoding of a sim::MetricsSnapshot — the "counters" block every
// per-cell record in a BENCH_*.json artifact carries (docs/observability.md
// documents each field). Header-only so that non-sim binaries linking
// sbq_benchsupport do not pull in the simulator.
#pragma once

#include "benchsupport/json.hpp"
#include "common/contention.hpp"
#include "sim/stats.hpp"

namespace sbq {

inline Json metrics_to_json(const sim::MetricsSnapshot& m) {
  Json protocol = Json::object();
  protocol.set("gets", Json(m.protocol.gets));
  protocol.set("getm", Json(m.protocol.getm));
  protocol.set("fwd_gets", Json(m.protocol.fwd_gets));
  protocol.set("fwd_getm", Json(m.protocol.fwd_getm));
  protocol.set("inv", Json(m.protocol.inv));
  protocol.set("inv_ack", Json(m.protocol.inv_ack));
  protocol.set("wb_data", Json(m.protocol.wb_data));

  // The base §3 abort taxonomy is always serialized; the injected causes
  // (interrupt, spurious) and the fault block only appear when the machine
  // ran with fault injection enabled, so default artifacts — and the
  // goldens diffed against them — stay byte-identical.
  Json aborts = Json::object();
  const int cause_count =
      m.fault_injection ? sim::kAbortCauseCount : sim::kBaseAbortCauseCount;
  for (int c = 0; c < cause_count; ++c) {
    aborts.set(sim::abort_cause_name(static_cast<sim::AbortCause>(c)),
               Json(m.htm.aborts[static_cast<std::size_t>(c)]));
  }
  Json retry = Json::array();
  for (std::uint64_t b : m.htm.retry_histogram) retry.push_back(Json(b));
  Json htm = Json::object();
  htm.set("calls", Json(m.htm.calls));
  htm.set("attempts", Json(m.htm.attempts));
  htm.set("commits", Json(m.htm.commits));
  htm.set("aborts", std::move(aborts));
  htm.set("fallbacks", Json(m.htm.fallbacks));
  if (m.fault_injection) {
    htm.set("fallback_cas", Json(m.htm.fallback_cas));
  }
  htm.set("uarch_fix_stalls", Json(m.htm.uarch_fix_stalls));
  htm.set("retry_histogram", std::move(retry));

  Json basket = Json::object();
  basket.set("appends_won", Json(m.basket.appends_won));
  basket.set("appends_lost", Json(m.basket.appends_lost));
  basket.set("stale_tails", Json(m.basket.stale_tails));
  basket.set("closes", Json(m.basket.closes));
  basket.set("occupancy_sum", Json(m.basket.occupancy_sum));
  basket.set("occupancy_min",
             Json(m.basket.closes == 0 ? 0 : m.basket.occupancy_min));
  basket.set("occupancy_max", Json(m.basket.occupancy_max));
  basket.set("extracted", Json(m.basket.extracted));
  basket.set("empty_swaps", Json(m.basket.empty_swaps));
  basket.set("node_reuses", Json(m.basket.node_reuses));
  basket.set("fresh_allocs", Json(m.basket.fresh_allocs));

  Json out = Json::object();
  out.set("protocol", std::move(protocol));
  out.set("htm", std::move(htm));
  out.set("basket", std::move(basket));
  out.set("messages", Json(m.messages));
  out.set("link_messages", Json(m.link_messages));
  out.set("link_wait_cycles", Json(m.link_wait_cycles));
  out.set("events", Json(m.events));
  out.set("final_time", Json(static_cast<std::uint64_t>(m.final_time)));
  if (m.fault_injection) {
    Json faults = Json::object();
    faults.set("injected_capacity", Json(m.faults.injected_capacity));
    faults.set("injected_interrupt", Json(m.faults.injected_interrupt));
    faults.set("injected_spurious", Json(m.faults.injected_spurious));
    faults.set("one_shots_fired", Json(m.faults.one_shots_fired));
    faults.set("jittered_messages", Json(m.faults.jittered_messages));
    faults.set("jitter_cycles", Json(m.faults.jitter_cycles));
    out.set("faults", std::move(faults));
  }
  // Sharded-machine block: only present when the run actually used worker
  // threads, so serial artifacts (and the goldens) stay byte-identical.
  if (m.machine_threads > 1) {
    Json parallel = Json::object();
    parallel.set("machine_threads",
                 Json(static_cast<std::uint64_t>(m.machine_threads)));
    Json per_slice = Json::array();
    for (std::uint64_t e : m.per_slice_events) per_slice.push_back(Json(e));
    parallel.set("per_slice_events", std::move(per_slice));
    out.set("parallel", std::move(parallel));
  }
  // Contention-policy block: gated on a non-fixed policy kind (like the
  // fault block), so default fixed-policy artifacts stay byte-identical.
  // Under a non-fixed policy, fallback_cas is carried here even without
  // fault injection: adaptive-fallback can degrade on its own budget.
  if (m.cas_policy_kind != 0) {
    Json policy = Json::object();
    policy.set("kind", Json(contention_policy_name(static_cast<
                                ContentionPolicyKind>(m.cas_policy_kind))));
    policy.set("txn_steps", Json(m.policy.txn_steps));
    policy.set("budget_fallbacks", Json(m.policy.budget_fallbacks));
    policy.set("degraded_fallbacks", Json(m.policy.degraded_fallbacks));
    policy.set("intra_delay_cycles", Json(m.policy.intra_delay_cycles));
    policy.set("post_delay_cycles", Json(m.policy.post_delay_cycles));
    policy.set("fallback_cas", Json(m.htm.fallback_cas));
    out.set("cas_policy", std::move(policy));
  }
  // Backpressure accounting: gated on the config caps, like the fault
  // block, so default runs serialize exactly as before.
  if (m.backpressure) {
    Json bp = Json::object();
    bp.set("link_bp_stalls", Json(m.link_bp_stalls));
    bp.set("link_queue_peak", Json(m.link_queue_peak));
    bp.set("dir_bp_stalls", Json(m.dir_bp_stalls));
    bp.set("dir_queue_peak", Json(m.dir_queue_peak));
    out.set("backpressure", std::move(bp));
  }
  return out;
}

}  // namespace sbq
