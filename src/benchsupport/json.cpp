#include "benchsupport/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sbq {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("Json: not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) throw std::runtime_error("Json: not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kNumber) throw std::runtime_error("Json: not a number");
  return static_cast<std::int64_t>(num_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("Json: not a string");
  return str_;
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) throw std::runtime_error("Json: not an array");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  throw std::runtime_error("Json: size() on a scalar");
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) throw std::runtime_error("Json: not an array");
  return arr_.at(i);
}

void Json::set(const std::string& key, Json v) {
  if (type_ != Type::kObject) throw std::runtime_error("Json: not an object");
  for (auto& kv : obj_) {
    if (kv.first == key) {
      kv.second = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

bool Json::contains(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& kv : obj_) {
    if (kv.first == key) return true;
  }
  return false;
}

const Json& Json::operator[](const std::string& key) const {
  static const Json kNull;
  if (type_ != Type::kObject) return kNull;
  for (const auto& kv : obj_) {
    if (kv.first == key) return kv.second;
  }
  return kNull;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  if (type_ != Type::kObject) throw std::runtime_error("Json: not an object");
  return obj_;
}

namespace {

void write_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v, bool integer) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no NaN/Inf; absent beats malformed
    return;
  }
  char buf[40];
  if (integer) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    // %.17g round-trips any double; trim to %g when it is exact.
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  os << buf;
}

void indent_to(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::write_impl(std::ostream& os, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: os << "null"; return;
    case Type::kBool: os << (bool_ ? "true" : "false"); return;
    case Type::kNumber: write_number(os, num_, integer_); return;
    case Type::kString: write_string(os, str_); return;
    case Type::kArray: {
      if (arr_.empty()) {
        os << "[]";
        return;
      }
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) os << ',';
        indent_to(os, indent, depth + 1);
        arr_[i].write_impl(os, indent, depth + 1);
      }
      indent_to(os, indent, depth);
      os << ']';
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        os << "{}";
        return;
      }
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) os << ',';
        indent_to(os, indent, depth + 1);
        write_string(os, obj_[i].first);
        os << (indent < 0 ? ":" : ": ");
        obj_[i].second.write_impl(os, indent, depth + 1);
      }
      indent_to(os, indent, depth);
      os << '}';
      return;
    }
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream ss;
  write(ss, indent);
  return ss.str();
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Bench artifacts are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    bool integer = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integer = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    const std::string tok = text_.substr(start, pos_ - start);
    try {
      const double v = std::stod(tok);
      if (integer) {
        return Json(static_cast<std::int64_t>(std::stoll(tok)));
      }
      return Json(v);
    } catch (const std::exception&) {
      fail("unparseable number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace sbq
