// SnapshotCache — persistent content-addressed store for warm-start blobs
// (docs/performance.md "Warm-start cache").
//
// A cache entry is an opaque byte blob (in practice a serialized
// sim::MachineSnapshot, see sim/serialize.hpp) addressed by a 64-bit
// canonical key. The key is a streaming FNV-1a hash over everything that
// determines the warmed state: the snapshot schema version, every
// MachineConfig field, the queue kind, and the prefill workload — so any
// change to any input lands on a different file and stale entries are
// simply never addressed (scripts/snapshot_cache.sh --prune collects them).
//
// Concurrency: store() writes to a unique temp file in the cache directory
// and publishes it with one atomic rename, so concurrent sweep workers (or
// whole concurrent driver processes) racing on the same key never observe a
// torn blob — they see the old file, the new file, or no file. load()
// additionally leaves integrity checking to the blob's own checksum; this
// layer only moves bytes.
//
// Layout: <dir>/v<schema>-<16-hex-key>.snap where <dir> is
// $SBQ_SNAPSHOT_CACHE or ./.sbq-cache. Every IO failure degrades to a miss
// or a skipped store — the cache is an accelerator, never a correctness
// dependency.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sbq::bench {

// --snapshot-cache=off|ro|rw. rw is the default: the cache is transparent
// (byte-identical outputs either way), so there is no reason not to fill it.
enum class CacheMode { kOff, kReadOnly, kReadWrite };

// Parses "off"/"ro"/"rw"; returns false (leaving `out` untouched) otherwise.
bool parse_cache_mode(const std::string& s, CacheMode& out);
const char* cache_mode_name(CacheMode m) noexcept;

// Process-wide hit/miss/store counters (relaxed atomics: sweep workers on
// several threads count concurrently). A "hit" is a load whose blob also
// decoded successfully — the caller counts after validation, so a corrupt
// or stale file is a miss even though the bytes were read.
struct SnapshotCacheStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> stores{0};
};
SnapshotCacheStats& snapshot_cache_stats() noexcept;

// Streaming FNV-1a 64-bit hasher for canonical cache keys. Field order is
// part of the schema: hash the same fields in the same order everywhere
// (sim_queue_bench_util.hpp snapshot_cache_key is the one key derivation).
class CacheKey {
 public:
  void add_u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void add_f64(double v) noexcept;  // bitwise, so -0.0 != 0.0 etc. is exact
  void add_str(const char* s) noexcept {
    for (; *s != '\0'; ++s) byte(static_cast<std::uint8_t>(*s));
    byte(0);  // terminator keeps ("ab","c") distinct from ("a","bc")
  }
  std::uint64_t value() const noexcept { return h_; }

 private:
  void byte(std::uint8_t b) noexcept {
    h_ ^= b;
    h_ *= 1099511628211ULL;
  }
  std::uint64_t h_ = 14695981039346656037ULL;
};

class SnapshotCache {
 public:
  // `schema_version` becomes part of the filename, so bumped-schema blobs
  // are never even opened. The directory is resolved once:
  // $SBQ_SNAPSHOT_CACHE if set and non-empty, else ".sbq-cache".
  explicit SnapshotCache(CacheMode mode, std::uint32_t schema_version);

  CacheMode mode() const noexcept { return mode_; }
  bool enabled() const noexcept { return mode_ != CacheMode::kOff; }
  const std::string& dir() const noexcept { return dir_; }

  // Read the blob for `key`. nullopt on kOff mode, missing file, or any IO
  // error. Does NOT touch the stats counters (the caller decides hit vs
  // miss after decoding).
  std::optional<std::vector<std::uint8_t>> load(std::uint64_t key) const;

  // Publish `blob` under `key` (kReadWrite only; silently skipped
  // otherwise). Creates the cache directory on first use. Best-effort:
  // write to a unique temp file, atomic-rename over the final name; any
  // failure cleans up the temp file and returns false.
  bool store(std::uint64_t key, const std::vector<std::uint8_t>& blob) const;

  // Final path for `key` (exposed for tests and the stats script).
  std::string path_for(std::uint64_t key) const;

 private:
  CacheMode mode_;
  std::uint32_t schema_;
  std::string dir_;
};

}  // namespace sbq::bench
