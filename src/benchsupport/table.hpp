// Table/CSV emitter for the benchmark harness: every fig*/ablation_* binary
// prints an aligned human-readable table by default and machine-readable CSV
// with --csv, matching the series the paper plots.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sbq {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  void add_row(const std::vector<double>& cells, int precision = 2);

  // Progress streaming for long sweeps (pretty mode only): prints the
  // header immediately and echoes every subsequent add_row to `os` with
  // fixed column widths, so each row appears as soon as its sweep cells
  // complete instead of after the whole sweep. print() on a streaming
  // table is then a no-op in pretty mode (the rows are already out);
  // --csv output is unaffected — CSV callers never enable streaming.
  void stream_to(std::ostream& os);

  void print(std::ostream& os, bool csv) const;

  std::size_t row_count() const noexcept { return rows_.size(); }
  const std::vector<std::string>& column_names() const noexcept { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  void print_aligned_row(std::ostream& os, const std::vector<std::string>& row,
                         const std::vector<std::size_t>& widths) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::ostream* stream_ = nullptr;       // non-null => streaming enabled
  std::vector<std::size_t> stream_widths_;
};

// Shared CLI parsing for bench binaries: recognizes --csv, --seed N,
// --threads LIST (comma separated), --ops N, --repeats N, --jobs N,
// --serial, --cold-start, --json FILE (BenchReport artifact) and --trace
// FILE (JSONL coherence-event trace); --json/--trace also accept the
// --opt=FILE form.
struct BenchOptions {
  bool csv = false;
  unsigned long long seed = 42;
  std::vector<int> threads;       // empty => binary default sweep
  unsigned long long ops = 0;     // 0 => binary default
  int repeats = 0;                // 0 => binary default
  int jobs = 0;                   // 0 => default_sweep_jobs()
  bool serial = false;            // force single-threaded cell execution
  // Warm every sweep cell from scratch instead of forking repeats from a
  // shared warmed snapshot. Output must be byte-identical either way (the
  // golden tests run fig6 both ways against one baseline); this flag exists
  // to keep that equivalence checkable and to time the warm-up savings.
  bool cold_start = false;
  std::string json_path;          // empty => no JSON artifact
  std::string trace_path;         // empty => no event trace
  // Fault injection (sim drivers only; see docs/robustness.md):
  //   --fault-rate P    total injected-abort probability per transactional
  //                     attempt (split across capacity/interrupt/spurious);
  //                     0 (default) leaves the fault plan disabled.
  //   --fault-seed N    seed of the injection RNG streams.
  //   --fault-jitter M  bounded message-latency jitter up to M cycles.
  double fault_rate = 0.0;
  unsigned long long fault_seed = 1;
  unsigned long long fault_jitter = 0;
  // Sharded-machine execution (sim drivers only; see docs/architecture.md
  // "Parallel machine"):
  //   --machine-threads N  worker threads driving the sliced machine
  //                        (1 = the classic serial engine, the default).
  //   --dir-slices N       directory slices (0 = derived: machine_threads
  //                        when sharding, 1 otherwise).
  //   --sockets N          override the driver's socket count.
  int machine_threads = 1;
  int dir_slices = 0;
  int sockets = 0;
  // Persistent warm-start cache (docs/performance.md "Warm-start cache"):
  //   --snapshot-cache=off|ro|rw  cache mode; empty (flag absent) means the
  //                               rw default AND suppresses the
  //                               snapshot_cache block in --json artifacts,
  //                               so default artifacts stay byte-stable.
  //   --from-snapshot             sim_microbench only: run the measured
  //                               phases on a machine forked from a
  //                               serialize/deserialize round-trip of the
  //                               warmed snapshot (the perf gate's third
  //                               identity path).
  std::string snapshot_cache;
  bool from_snapshot = false;
  // TxCAS contention policy (sim drivers; see common/contention.hpp and
  // docs/architecture.md "Contention policy layer"):
  //   --cas-policy NAME   fixed (default) | adaptive-backoff |
  //                       adaptive-fallback; empty means fixed AND keeps
  //                       every artifact byte-identical to the goldens.
  //   --policy-seed N     seed of the per-core policy jitter streams.
  //   --policy-budget N   adaptive-fallback abort budget (0 = kind default).
  //   --policy-nc-cost N  budget cost of one non-conflict abort (0 = default).
  std::string cas_policy;
  unsigned long long policy_seed = 1;
  int policy_budget = 0;
  int policy_nc_cost = 0;
  //   --policy-decay MODE adaptive-backoff failure-level decay on commit:
  //                       linear (default, level - 1) | half-life
  //                       (level / 2). Empty keeps the schedule-identical
  //                       linear default.
  std::string policy_decay;
  // Op-level trace record/replay (docs/replay.md):
  //   --record-ops FILE  re-run one representative cell with op recording
  //                      and write the versioned trace to FILE.
  //   --replay-ops FILE  feed a recorded trace back as a sim workload under
  //                      this driver's machine flags.
  // Both accept the --opt=FILE form; both empty by default so every
  // artifact stays byte-identical to the goldens.
  std::string record_ops;
  std::string replay_ops;
  static BenchOptions parse(int argc, char** argv);

  // Worker threads for the sweep pool: 1 under --serial, --jobs N when
  // given, otherwise hardware_concurrency.
  int effective_jobs() const;

  // Per-driver default fallbacks — the one place the "N means the binary's
  // default" convention lives, instead of a drifted copy per driver.
  unsigned long long ops_or(unsigned long long dflt) const {
    return ops == 0 ? dflt : ops;
  }
  int repeats_or(int dflt) const { return repeats == 0 ? dflt : repeats; }
  std::vector<int> threads_or(std::vector<int> dflt) const {
    return threads.empty() ? std::move(dflt) : threads;
  }
  int first_thread_or(int dflt) const {
    return threads.empty() ? dflt : threads.front();
  }
};

}  // namespace sbq
