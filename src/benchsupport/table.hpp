// Table/CSV emitter for the benchmark harness: every fig*/ablation_* binary
// prints an aligned human-readable table by default and machine-readable CSV
// with --csv, matching the series the paper plots.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sbq {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  void add_row(const std::vector<double>& cells, int precision = 2);

  void print(std::ostream& os, bool csv) const;

  std::size_t row_count() const noexcept { return rows_.size(); }
  const std::vector<std::string>& column_names() const noexcept { return columns_; }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Shared CLI parsing for bench binaries: recognizes --csv, --seed N,
// --threads LIST (comma separated), --ops N, --repeats N.
struct BenchOptions {
  bool csv = false;
  unsigned long long seed = 42;
  std::vector<int> threads;       // empty => binary default sweep
  unsigned long long ops = 0;     // 0 => binary default
  int repeats = 0;                // 0 => binary default
  static BenchOptions parse(int argc, char** argv);
};

}  // namespace sbq
