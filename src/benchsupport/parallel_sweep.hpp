// Parallel sweep runner for the figure-reproduction benchmarks.
//
// Every sweep cell — one (row, column, repeat) point of a figure — is an
// independent, deterministic, single-threaded simulation on its own
// sim::Machine, so cells can run concurrently on a fixed-size pool of real
// threads. Results are keyed by cell index (row-major), never by completion
// order, so the emitted tables are byte-identical to a serial run for the
// same seed regardless of scheduling.
#pragma once

#include <cstddef>
#include <functional>

namespace sbq {

// Worker count used when the caller does not pass --jobs:
// std::thread::hardware_concurrency(), at least 1.
int default_sweep_jobs();

// Runs `rows * cells_per_row` independent cells on `jobs` worker threads
// (jobs <= 1 runs everything inline on the calling thread — serial mode).
//
// cell(i) is invoked exactly once for each index i in [0, rows *
// cells_per_row); cells run concurrently, so each must confine its writes
// to state owned by index i (e.g. a slot in a pre-sized results vector).
// Cell index i belongs to row i / cells_per_row (row-major).
//
// on_row_done(row), if non-null, is invoked on the *calling* thread in
// strict row order 0..rows-1, as soon as every cell of that row has
// completed — this is what lets drivers stream finished table rows while
// later rows are still simulating. Workers are handed cells in row-major
// order, so early rows tend to finish (and print) first.
//
// The first exception thrown by any cell is rethrown on the calling thread
// after the pool drains; remaining on_row_done callbacks are skipped.
void run_sweep_cells(std::size_t rows, std::size_t cells_per_row, int jobs,
                     const std::function<void(std::size_t)>& cell,
                     const std::function<void(std::size_t)>& on_row_done);

// Convenience overload: no row streaming.
inline void run_sweep_cells(std::size_t rows, std::size_t cells_per_row,
                            int jobs,
                            const std::function<void(std::size_t)>& cell) {
  run_sweep_cells(rows, cells_per_row, jobs, cell, nullptr);
}

// Group-level scheduling: one work item per (row, group) instead of per
// cell. The worker that claims a group first calls warm_group(g) — e.g. to
// prefill a machine and take a Machine::snapshot — then runs that group's
// `cells_per_group` cells back-to-back on the same thread, so per-group
// warm-up work happens once per group instead of once per cell (the sweep
// checkpoint/fork optimization). Group g belongs to row g / groups_per_row;
// warm state is communicated through caller-owned slots indexed by g (each
// group's slot is touched by exactly one worker).
//
// on_row_done and the exception semantics match run_sweep_cells.
void run_sweep_groups(
    std::size_t rows, std::size_t groups_per_row, std::size_t cells_per_group,
    int jobs, const std::function<void(std::size_t)>& warm_group,
    const std::function<void(std::size_t, std::size_t)>& cell,
    const std::function<void(std::size_t)>& on_row_done);

}  // namespace sbq
