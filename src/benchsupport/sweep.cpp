#include "benchsupport/sweep.hpp"

namespace sbq {

std::vector<int> default_single_socket_sweep() {
  return {1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32, 36, 40, 44};
}

std::vector<int> default_dual_socket_sweep() {
  return {2, 4, 8, 12, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88};
}

double ns_per_cycle() { return 0.4; }

}  // namespace sbq
