// BenchReport: the machine-readable artifact every fig*/ablation_* driver
// writes with --json=FILE (BENCH_fig5.json and friends).
//
// Layout (schema "sbq.bench/1", documented in docs/observability.md):
//   {
//     "schema":  "sbq.bench/1",
//     "bench":   "<driver name>",
//     "config":  { ... sweep parameters: seed, ops, repeats, threads ... },
//     "tables":  { "<name>": {"columns": [...], "rows": [[...], ...]} },
//     "cells":   [ { per-cell record: config + latencies + counters }, ... ]
//   }
// `tables` mirrors the human/CSV output exactly (stringly typed, same
// formatting); `cells` carries raw per-cell measurements and counter
// snapshots for drivers that have them.
//
// write() serializes and then re-parses its own output as a self-check, so
// a malformed artifact fails loudly at the producer instead of at the first
// consumer.
#pragma once

#include <string>
#include <vector>

#include "benchsupport/json.hpp"
#include "benchsupport/table.hpp"

namespace sbq {

// The CSV-mirroring table encoding used inside BenchReport.
Json table_to_json(const Table& t);

class BenchReport {
 public:
  static constexpr const char* kSchema = "sbq.bench/1";

  explicit BenchReport(std::string bench_name);

  // Sweep configuration key (seed, ops, ...): one flat object.
  void set_config(const std::string& key, Json v);
  // The standard resolved sweep parameters (after per-driver defaults have
  // been applied) every driver records: seed, ops/thread, repeats, threads.
  void set_sweep_config(const BenchOptions& opts,
                        const std::vector<int>& threads,
                        unsigned long long ops, int repeats);

  // Add the CSV-equivalent of a result table under `name`.
  void add_table(const std::string& name, const Table& t);

  // Append one per-cell record (drivers with per-cell counters).
  void add_cell(Json cell);
  std::size_t cell_count() const { return cells_.size(); }

  // Extra top-level fields (e.g. "ns_per_cycle").
  void set(const std::string& key, Json v);

  // Record the warm-start cache outcome: a top-level "snapshot_cache"
  // object with the mode and the process-wide hit/miss/store counters as
  // they stand at the call (so call it after the sweep). Drivers only emit
  // it when --snapshot-cache was passed explicitly — the counters depend on
  // cache occupancy, which would make default artifacts unstable.
  void set_snapshot_cache(const std::string& mode_name);

  // Assemble the full document.
  Json root() const;

  // Write to `path` (pretty-printed, trailing newline) and validate by
  // re-parsing. Returns false and reports on stderr if the file cannot be
  // written; throws std::runtime_error if the round-trip check fails (a
  // BenchReport bug, not an environment problem).
  bool write(const std::string& path) const;

  // Drivers' one-liner: no-op on an empty path, otherwise write().
  static bool write_if(const std::string& path, const BenchReport& report);

 private:
  std::string bench_;
  Json config_;
  Json tables_;
  Json cells_;
  Json extra_;
};

}  // namespace sbq
