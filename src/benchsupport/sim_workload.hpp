// Simulated-queue workload drivers for the figure-reproduction benchmarks:
// producer-only (Figure 5), consumer-only (Figure 6), and the mixed
// two-socket workload (Figure 7), mirroring §6.1 of the paper.
//
// Threads are simulated cores; producer i runs on core i and consumers run
// on the cores after the producers (for the mixed workload: producers on
// socket 0, consumers on socket 1, as the paper pins them). A small
// deterministic per-op think-time jitter avoids artificial lockstep.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "sim/stats.hpp"
#include "simqueue/sim_queue_base.hpp"

namespace sbq::simq {

struct SimRunResult {
  double enq_latency_cycles = 0;  // mean per enqueue
  double deq_latency_cycles = 0;  // mean per dequeue
  double duration_cycles = 0;     // measured-phase wall time
  std::uint64_t enq_ops = 0;
  std::uint64_t deq_ops = 0;
  // Machine counters at the end of the run (cumulative: for consumer-only
  // and mixed runs this includes the un-measured pre-fill phase).
  sim::MetricsSnapshot metrics;

  double enq_latency_ns(double ns_per_cycle) const {
    return enq_latency_cycles * ns_per_cycle;
  }
  double deq_latency_ns(double ns_per_cycle) const {
    return deq_latency_cycles * ns_per_cycle;
  }
  // Aggregate throughput in operations per second of the measured phase.
  double throughput_mops(double ns_per_cycle) const {
    const double ops = static_cast<double>(enq_ops + deq_ops);
    const double ns = duration_cycles * ns_per_cycle;
    return ns > 0 ? ops / ns * 1e3 : 0.0;
  }
};

namespace detail {

struct Accum {
  double enq_lat = 0, deq_lat = 0;
  std::uint64_t enq = 0, deq = 0;
};

template <typename QueueT>
Task<void> producer_thread(Machine& m, QueueT& q, int core, int id,
                           Value ops, std::uint64_t seed,
                           std::shared_ptr<Accum> acc) {
  Xoshiro256 rng(seed);
  Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  for (Value i = 0; i < ops; ++i) {
    const Time start = m.engine().now();
    co_await q.enqueue(c, kFirstElement + (static_cast<Value>(id) << 32 | i),
                       id);
    acc->enq_lat += static_cast<double>(m.engine().now() - start);
    ++acc->enq;
    co_await c.think(1 + rng.next_below(8));
  }
}

template <typename QueueT>
Task<void> consumer_thread(Machine& m, QueueT& q, int core, int id, Value ops,
                           std::uint64_t seed, std::shared_ptr<Accum> acc) {
  Xoshiro256 rng(seed);
  Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  Value got = 0;
  while (got < ops) {
    const Time start = m.engine().now();
    const Value e = co_await q.dequeue(c, id);
    if (e != 0) {
      acc->deq_lat += static_cast<double>(m.engine().now() - start);
      ++acc->deq;
      ++got;
    } else {
      co_await c.think(64);  // transiently empty; back off briefly
    }
  }
}

}  // namespace detail

// Producer-only: `producers` threads each enqueue `ops_per_thread` elements
// into an initially empty queue (Figure 5's workload).
template <typename QueueT>
SimRunResult run_producer_only(Machine& m, QueueT& q, int producers,
                               Value ops_per_thread, std::uint64_t seed = 1) {
  auto acc = std::make_shared<detail::Accum>();
  const Time start = m.engine().now();
  for (int p = 0; p < producers; ++p) {
    m.spawn(detail::producer_thread(m, q, p, p, ops_per_thread,
                                    seed * 1000003 + static_cast<std::uint64_t>(p),
                                    acc));
  }
  m.run();
  SimRunResult r;
  r.enq_ops = acc->enq;
  r.enq_latency_cycles = acc->enq ? acc->enq_lat / static_cast<double>(acc->enq) : 0;
  r.duration_cycles = static_cast<double>(m.engine().now() - start);
  r.metrics = m.metrics();
  return r;
}

// Consumer-only: the queue is pre-filled concurrently by `prefill_producers`
// (un-measured, matching §6.1's "pre-fill using concurrent producers"), then
// `consumers` threads each dequeue `ops_per_thread` elements.
// `consumer_id_offset` separates consumer ids from producer ids for queues
// with a single thread-id space (CC-Queue's per-thread records); SBQ keeps
// separate id ranges and passes 0.
template <typename QueueT>
SimRunResult run_consumer_only(Machine& m, QueueT& q, int prefill_producers,
                               int consumers, Value ops_per_thread,
                               std::uint64_t seed = 1,
                               int consumer_id_offset = 0) {
  const Value total = static_cast<Value>(consumers) * ops_per_thread;
  const Value per_producer =
      (total + static_cast<Value>(prefill_producers) - 1) /
      static_cast<Value>(prefill_producers);
  auto fill_acc = std::make_shared<detail::Accum>();
  for (int p = 0; p < prefill_producers; ++p) {
    m.spawn(detail::producer_thread(m, q, p, p, per_producer,
                                    seed * 7 + static_cast<std::uint64_t>(p),
                                    fill_acc));
  }
  m.run();  // un-measured fill phase

  auto acc = std::make_shared<detail::Accum>();
  const Time start = m.engine().now();
  for (int ci = 0; ci < consumers; ++ci) {
    m.spawn(detail::consumer_thread(m, q, ci, consumer_id_offset + ci,
                                    ops_per_thread,
                                    seed * 2000003 + static_cast<std::uint64_t>(ci),
                                    acc));
  }
  m.run();
  SimRunResult r;
  r.deq_ops = acc->deq;
  r.deq_latency_cycles = acc->deq ? acc->deq_lat / static_cast<double>(acc->deq) : 0;
  r.duration_cycles = static_cast<double>(m.engine().now() - start);
  r.metrics = m.metrics();
  return r;
}

// Mixed: producers on cores [0, P) (socket 0 in a 2-socket machine),
// consumers on cores [cores/2, cores/2 + C) (socket 1). The queue is
// pre-filled so consumers rarely see it empty (Figure 7's setup).
template <typename QueueT>
SimRunResult run_mixed(Machine& m, QueueT& q, int producers, int consumers,
                       Value ops_per_thread, Value prefill,
                       std::uint64_t seed = 1, int consumer_id_offset = 0) {
  // Un-measured pre-fill by the producers' cores.
  const Value per_producer =
      (prefill + static_cast<Value>(producers) - 1) /
      static_cast<Value>(producers);
  auto fill_acc = std::make_shared<detail::Accum>();
  for (int p = 0; p < producers; ++p) {
    m.spawn(detail::producer_thread(m, q, p, p, per_producer,
                                    seed * 7 + static_cast<std::uint64_t>(p),
                                    fill_acc));
  }
  m.run();

  auto acc = std::make_shared<detail::Accum>();
  const int consumer_core0 = m.core_count() / 2;
  const Time start = m.engine().now();
  for (int p = 0; p < producers; ++p) {
    m.spawn(detail::producer_thread(m, q, p, p, ops_per_thread,
                                    seed * 1000003 + static_cast<std::uint64_t>(p),
                                    acc));
  }
  for (int ci = 0; ci < consumers; ++ci) {
    m.spawn(detail::consumer_thread(m, q, consumer_core0 + ci,
                                    consumer_id_offset + ci, ops_per_thread,
                                    seed * 2000003 + static_cast<std::uint64_t>(ci),
                                    acc));
  }
  m.run();
  SimRunResult r;
  r.enq_ops = acc->enq;
  r.deq_ops = acc->deq;
  r.enq_latency_cycles = acc->enq ? acc->enq_lat / static_cast<double>(acc->enq) : 0;
  r.deq_latency_cycles = acc->deq ? acc->deq_lat / static_cast<double>(acc->deq) : 0;
  r.duration_cycles = static_cast<double>(m.engine().now() - start);
  r.metrics = m.metrics();
  return r;
}

}  // namespace sbq::simq
