// Simulated-queue workload drivers for the figure-reproduction benchmarks:
// producer-only (Figure 5), consumer-only (Figure 6), and the mixed
// two-socket workload (Figure 7), mirroring §6.1 of the paper.
//
// Threads are simulated cores; producer i runs on core i and consumers run
// on the cores after the producers (for the mixed workload: producers on
// socket 0, consumers on socket 1, as the paper pins them). A small
// deterministic per-op think-time jitter avoids artificial lockstep.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "sim/stats.hpp"
#include "simqueue/sim_queue_base.hpp"

namespace sbq::simq {

struct SimRunResult {
  double enq_latency_cycles = 0;  // mean per enqueue
  double deq_latency_cycles = 0;  // mean per dequeue
  double duration_cycles = 0;     // measured-phase wall time
  std::uint64_t enq_ops = 0;
  std::uint64_t deq_ops = 0;
  // Machine counters at the end of the run (cumulative: for consumer-only
  // and mixed runs this includes the un-measured pre-fill phase).
  sim::MetricsSnapshot metrics;

  double enq_latency_ns(double ns_per_cycle) const {
    return enq_latency_cycles * ns_per_cycle;
  }
  double deq_latency_ns(double ns_per_cycle) const {
    return deq_latency_cycles * ns_per_cycle;
  }
  // Aggregate throughput in operations per second of the measured phase.
  double throughput_mops(double ns_per_cycle) const {
    const double ops = static_cast<double>(enq_ops + deq_ops);
    const double ns = duration_cycles * ns_per_cycle;
    return ns > 0 ? ops / ns * 1e3 : 0.0;
  }
};

namespace detail {

// Latency sums are kept as integer cycle counts in relaxed atomics so that
// sharded runs (threads on different worker threads) accumulate without
// races AND without order-dependence — integer addition commutes, unlike
// floating-point. The totals stay far below 2^53, so the final
// double(cycle_sum) equals the value the old sequential double
// accumulation produced — serial artifacts stay byte-identical.
struct Accum {
  std::atomic<std::uint64_t> enq_lat_cycles{0}, deq_lat_cycles{0};
  std::atomic<std::uint64_t> enq{0}, deq{0};

  double enq_lat() const {
    return static_cast<double>(enq_lat_cycles.load(std::memory_order_relaxed));
  }
  double deq_lat() const {
    return static_cast<double>(deq_lat_cycles.load(std::memory_order_relaxed));
  }
  std::uint64_t enq_count() const {
    return enq.load(std::memory_order_relaxed);
  }
  std::uint64_t deq_count() const {
    return deq.load(std::memory_order_relaxed);
  }
};

template <typename QueueT>
Task<void> producer_thread(Machine& m, QueueT& q, int core, int id,
                           Value ops, std::uint64_t seed,
                           std::shared_ptr<Accum> acc) {
  (void)m;
  Xoshiro256 rng(seed);
  Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  for (Value i = 0; i < ops; ++i) {
    const Time start = c.now();  // slice-local clock: valid under sharding
    co_await q.enqueue(c, kFirstElement + (static_cast<Value>(id) << 32 | i),
                       id);
    acc->enq_lat_cycles.fetch_add(c.now() - start, std::memory_order_relaxed);
    acc->enq.fetch_add(1, std::memory_order_relaxed);
    co_await c.think(1 + rng.next_below(8));
  }
}

template <typename QueueT>
Task<void> consumer_thread(Machine& m, QueueT& q, int core, int id, Value ops,
                           std::uint64_t seed, std::shared_ptr<Accum> acc) {
  (void)m;
  Xoshiro256 rng(seed);
  Core& c = m.core(core);
  co_await c.think(1 + rng.next_below(32));
  Value got = 0;
  while (got < ops) {
    const Time start = c.now();
    const Value e = co_await q.dequeue(c, id);
    if (e != 0) {
      acc->deq_lat_cycles.fetch_add(c.now() - start, std::memory_order_relaxed);
      acc->deq.fetch_add(1, std::memory_order_relaxed);
      ++got;
    } else {
      co_await c.think(64);  // transiently empty; back off briefly
    }
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Prefill phases (un-measured).
//
// The prefill phase is split from the measured phase so that sweep cells
// sharing a (row, queue) coordinate can run it ONCE, take a
// Machine::snapshot of the warmed machine, and fork each repeat from the
// snapshot instead of re-warming (see bench/sim_queue_bench_util.hpp's
// WarmedWorkload). For that to be sound the prefill must be seeded
// independently of the per-repeat measurement seed — callers pass a
// `prefill_seed` that is constant across repeats.
// ---------------------------------------------------------------------------

// Concurrent pre-fill by `producers` threads, `per_producer` elements each
// (§6.1's "pre-fill using concurrent producers"). Runs to quiescence.
template <typename QueueT>
void run_prefill(Machine& m, QueueT& q, int producers, Value per_producer,
                 std::uint64_t prefill_seed) {
  auto fill_acc = std::make_shared<detail::Accum>();
  for (int p = 0; p < producers; ++p) {
    m.spawn(detail::producer_thread(
                m, q, p, p, per_producer,
                prefill_seed * 7 + static_cast<std::uint64_t>(p), fill_acc),
            p);
  }
  m.run();  // un-measured fill phase
}

// Elements each prefill producer contributes for a consumer-only run: the
// consumers' total demand split evenly (rounded up).
inline Value consumer_only_per_producer(int prefill_producers, int consumers,
                                        Value ops_per_thread) {
  const Value total = static_cast<Value>(consumers) * ops_per_thread;
  return (total + static_cast<Value>(prefill_producers) - 1) /
         static_cast<Value>(prefill_producers);
}

inline Value mixed_per_producer(int producers, Value prefill) {
  return (prefill + static_cast<Value>(producers) - 1) /
         static_cast<Value>(producers);
}

// ---------------------------------------------------------------------------
// Measured phases. Each assumes any prefill already ran to quiescence (on
// this machine, or on the machine its fork snapshot was taken from).
// ---------------------------------------------------------------------------

// Producer-only: `producers` threads each enqueue `ops_per_thread` elements
// into an initially empty queue (Figure 5's workload).
template <typename QueueT>
SimRunResult run_producer_only(Machine& m, QueueT& q, int producers,
                               Value ops_per_thread, std::uint64_t seed = 1) {
  auto acc = std::make_shared<detail::Accum>();
  const Time start = m.now();
  for (int p = 0; p < producers; ++p) {
    m.spawn(detail::producer_thread(m, q, p, p, ops_per_thread,
                                    seed * 1000003 + static_cast<std::uint64_t>(p),
                                    acc),
            p);
  }
  m.run();
  SimRunResult r;
  r.enq_ops = acc->enq_count();
  r.enq_latency_cycles =
      r.enq_ops ? acc->enq_lat() / static_cast<double>(r.enq_ops) : 0;
  r.duration_cycles = static_cast<double>(m.now() - start);
  r.metrics = m.metrics();
  return r;
}

// Consumer-only measured phase: `consumers` threads each dequeue
// `ops_per_thread` elements from the (pre-filled) queue.
// `consumer_id_offset` separates consumer ids from producer ids for queues
// with a single thread-id space (CC-Queue's per-thread records); SBQ keeps
// separate id ranges and passes 0.
template <typename QueueT>
SimRunResult measure_consumer_only(Machine& m, QueueT& q, int consumers,
                                   Value ops_per_thread, std::uint64_t seed,
                                   int consumer_id_offset) {
  auto acc = std::make_shared<detail::Accum>();
  const Time start = m.now();
  for (int ci = 0; ci < consumers; ++ci) {
    m.spawn(detail::consumer_thread(m, q, ci, consumer_id_offset + ci,
                                    ops_per_thread,
                                    seed * 2000003 + static_cast<std::uint64_t>(ci),
                                    acc),
            ci);
  }
  m.run();
  SimRunResult r;
  r.deq_ops = acc->deq_count();
  r.deq_latency_cycles =
      r.deq_ops ? acc->deq_lat() / static_cast<double>(r.deq_ops) : 0;
  r.duration_cycles = static_cast<double>(m.now() - start);
  r.metrics = m.metrics();
  return r;
}

// Mixed measured phase: producers on cores [0, P) (socket 0 in a 2-socket
// machine), consumers on cores [cores/2, cores/2 + C) (socket 1).
template <typename QueueT>
SimRunResult measure_mixed(Machine& m, QueueT& q, int producers, int consumers,
                           Value ops_per_thread, std::uint64_t seed,
                           int consumer_id_offset) {
  auto acc = std::make_shared<detail::Accum>();
  const int consumer_core0 = m.core_count() / 2;
  const Time start = m.now();
  for (int p = 0; p < producers; ++p) {
    m.spawn(detail::producer_thread(m, q, p, p, ops_per_thread,
                                    seed * 1000003 + static_cast<std::uint64_t>(p),
                                    acc),
            p);
  }
  for (int ci = 0; ci < consumers; ++ci) {
    m.spawn(detail::consumer_thread(m, q, consumer_core0 + ci,
                                    consumer_id_offset + ci, ops_per_thread,
                                    seed * 2000003 + static_cast<std::uint64_t>(ci),
                                    acc),
            consumer_core0 + ci);
  }
  m.run();
  SimRunResult r;
  r.enq_ops = acc->enq_count();
  r.deq_ops = acc->deq_count();
  r.enq_latency_cycles =
      r.enq_ops ? acc->enq_lat() / static_cast<double>(r.enq_ops) : 0;
  r.deq_latency_cycles =
      r.deq_ops ? acc->deq_lat() / static_cast<double>(r.deq_ops) : 0;
  r.duration_cycles = static_cast<double>(m.now() - start);
  r.metrics = m.metrics();
  return r;
}

// ---------------------------------------------------------------------------
// Whole-workload wrappers (prefill + measure on one machine, same seed for
// both phases) — kept for tests and callers outside the sweep path.
// ---------------------------------------------------------------------------

template <typename QueueT>
SimRunResult run_consumer_only(Machine& m, QueueT& q, int prefill_producers,
                               int consumers, Value ops_per_thread,
                               std::uint64_t seed = 1,
                               int consumer_id_offset = 0) {
  run_prefill(m, q, prefill_producers,
              consumer_only_per_producer(prefill_producers, consumers,
                                         ops_per_thread),
              seed);
  return measure_consumer_only(m, q, consumers, ops_per_thread, seed,
                               consumer_id_offset);
}

template <typename QueueT>
SimRunResult run_mixed(Machine& m, QueueT& q, int producers, int consumers,
                       Value ops_per_thread, Value prefill,
                       std::uint64_t seed = 1, int consumer_id_offset = 0) {
  run_prefill(m, q, producers, mixed_per_producer(producers, prefill), seed);
  return measure_mixed(m, q, producers, consumers, ops_per_thread, seed,
                       consumer_id_offset);
}

}  // namespace sbq::simq
