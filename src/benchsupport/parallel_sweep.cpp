#include "benchsupport/parallel_sweep.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sbq {

int default_sweep_jobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void run_sweep_cells(std::size_t rows, std::size_t cells_per_row, int jobs,
                     const std::function<void(std::size_t)>& cell,
                     const std::function<void(std::size_t)>& on_row_done) {
  const std::size_t total = rows * cells_per_row;
  if (total == 0) return;

  if (jobs <= 1 || total == 1) {
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cells_per_row; ++c) {
        cell(r * cells_per_row + c);
      }
      if (on_row_done) on_row_done(r);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::size_t> row_remaining(rows, cells_per_row);
  std::exception_ptr error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      bool failed = false;
      try {
        cell(i);
      } catch (...) {
        failed = true;
        std::lock_guard<std::mutex> lk(mu);
        if (!error) error = std::current_exception();
      }
      if (failed) {
        // Fast-drain: stop handing out cells; the calling thread rethrows.
        next.store(total, std::memory_order_relaxed);
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        if (--row_remaining[i / cells_per_row] == 0 || failed) {
          cv.notify_all();
        }
      }
    }
  };

  const std::size_t nthreads =
      std::min(static_cast<std::size_t>(jobs), total);
  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (std::size_t t = 0; t < nthreads; ++t) pool.emplace_back(worker);

  // Deliver completed rows in order while workers chew through later ones.
  for (std::size_t r = 0; r < rows; ++r) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return row_remaining[r] == 0 || error != nullptr; });
    if (error) break;
    lk.unlock();
    if (on_row_done) on_row_done(r);
  }
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

void run_sweep_groups(
    std::size_t rows, std::size_t groups_per_row, std::size_t cells_per_group,
    int jobs, const std::function<void(std::size_t)>& warm_group,
    const std::function<void(std::size_t, std::size_t)>& cell,
    const std::function<void(std::size_t)>& on_row_done) {
  // A group is one sweep work item: warm once, then its cells in order on
  // the same worker. Row bookkeeping and error handling are inherited from
  // the cell runner with cells_per_row = groups_per_row.
  run_sweep_cells(
      rows, groups_per_row, jobs,
      [&](std::size_t g) {
        warm_group(g);
        for (std::size_t c = 0; c < cells_per_group; ++c) cell(g, c);
      },
      on_row_done);
}

}  // namespace sbq
