// Minimal JSON value + writer + parser for the bench artifacts
// (BENCH_*.json via BenchReport) and their validation in tests/CI.
//
// Deliberately small: the repo has no external dependencies, and the bench
// schema (docs/observability.md) needs only the standard scalar types plus
// arrays and objects. Objects preserve insertion order so the emitted
// artifacts diff cleanly run-to-run. Numbers are stored as double with an
// integer flag so counters round-trip without a trailing ".0".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sbq {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int v) : type_(Type::kNumber), num_(v), integer_(true) {}
  Json(std::int64_t v)
      : type_(Type::kNumber), num_(static_cast<double>(v)), integer_(true) {}
  Json(std::uint64_t v)
      : type_(Type::kNumber), num_(static_cast<double>(v)), integer_(true) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array();
  static Json object();

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  // Arrays.
  void push_back(Json v);
  std::size_t size() const;
  const Json& at(std::size_t i) const;

  // Objects (insertion-ordered; set() replaces an existing key in place).
  void set(const std::string& key, Json v);
  bool contains(const std::string& key) const;
  // Null-object pattern: returns a shared null for absent keys so schema
  // checks can chain lookups without exceptions.
  const Json& operator[](const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& items() const;

  // Compact on indent < 0, otherwise pretty-printed with `indent` spaces.
  void write(std::ostream& os, int indent = 2) const;
  std::string dump(int indent = 2) const;

  // Strict recursive-descent parse of a full document; throws
  // std::runtime_error (with byte offset) on malformed input.
  static Json parse(const std::string& text);

 private:
  void write_impl(std::ostream& os, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  bool integer_ = false;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace sbq
