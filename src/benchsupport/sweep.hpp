// Thread-count sweeps and cycle/nanosecond calibration shared by the
// figure-reproduction benchmarks.
#pragma once

#include <vector>

namespace sbq {

// The paper's single-socket sweeps run 1..44 hardware threads on one
// 22-core/44-thread Broadwell. We sample the same range.
std::vector<int> default_single_socket_sweep();

// The mixed workload (Figure 7) splits threads evenly across two sockets,
// 2..88 total. Values returned are *total* thread counts (even).
std::vector<int> default_dual_socket_sweep();

// Simulated-cycle to nanosecond conversion. The simulator's unit time is one
// "cycle"; the paper's Broadwell E5-2699 v4 runs at ~2.5 GHz under all-core
// turbo, i.e. 0.4 ns/cycle.
double ns_per_cycle();

}  // namespace sbq
