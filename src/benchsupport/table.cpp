#include "benchsupport/table.hpp"

#include "benchsupport/parallel_sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sbq {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: cell count != column count");
  }
  rows_.push_back(std::move(cells));
  if (stream_ != nullptr) {
    print_aligned_row(*stream_, rows_.back(), stream_widths_);
    stream_->flush();
  }
}

void Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    out.push_back(ss.str());
  }
  add_row(std::move(out));
}

void Table::print_aligned_row(std::ostream& os,
                              const std::vector<std::string>& row,
                              const std::vector<std::size_t>& widths) const {
  for (std::size_t c = 0; c < row.size(); ++c) {
    os << std::setw(static_cast<int>(widths[c])) << row[c]
       << (c + 1 < row.size() ? "  " : "\n");
  }
}

void Table::stream_to(std::ostream& os) {
  stream_ = &os;
  // Widths are fixed up front (rows are not known yet): wide enough for the
  // header and for typical formatted numbers.
  constexpr std::size_t kMinStreamWidth = 8;
  stream_widths_.assign(columns_.size(), kMinStreamWidth);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    stream_widths_[c] = std::max(stream_widths_[c], columns_[c].size());
  }
  print_aligned_row(os, columns_, stream_widths_);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(stream_widths_[c], '-')
       << (c + 1 < columns_.size() ? "  " : "\n");
  }
  for (const auto& row : rows_) print_aligned_row(os, row, stream_widths_);
  os.flush();
}

void Table::print(std::ostream& os, bool csv) const {
  if (csv) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << row[c] << (c + 1 < row.size() ? "," : "\n");
      }
    }
    return;
  }
  if (stream_ == &os) return;  // rows were already streamed to this sink
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  print_aligned_row(os, columns_, widths);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 < columns_.size() ? "  " : "\n");
  }
  for (const auto& row : rows_) print_aligned_row(os, row, widths);
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) throw std::invalid_argument(std::string(a) + " needs a value");
      return argv[++i];
    };
    if (std::strcmp(a, "--csv") == 0) {
      opts.csv = true;
    } else if (std::strcmp(a, "--seed") == 0) {
      opts.seed = std::strtoull(next_value(), nullptr, 10);
    } else if (std::strcmp(a, "--ops") == 0) {
      opts.ops = std::strtoull(next_value(), nullptr, 10);
    } else if (std::strcmp(a, "--repeats") == 0) {
      opts.repeats = static_cast<int>(std::strtol(next_value(), nullptr, 10));
    } else if (std::strcmp(a, "--jobs") == 0) {
      opts.jobs = static_cast<int>(std::strtol(next_value(), nullptr, 10));
      if (opts.jobs < 1) {
        throw std::invalid_argument("--jobs needs a positive thread count");
      }
    } else if (std::strcmp(a, "--serial") == 0) {
      opts.serial = true;
    } else if (std::strcmp(a, "--cold-start") == 0) {
      opts.cold_start = true;
    } else if (std::strcmp(a, "--json") == 0) {
      opts.json_path = next_value();
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      opts.json_path = a + 7;
    } else if (std::strcmp(a, "--snapshot-cache") == 0) {
      opts.snapshot_cache = next_value();
    } else if (std::strncmp(a, "--snapshot-cache=", 17) == 0) {
      opts.snapshot_cache = a + 17;
    } else if (std::strcmp(a, "--from-snapshot") == 0) {
      opts.from_snapshot = true;
    } else if (std::strcmp(a, "--trace") == 0) {
      opts.trace_path = next_value();
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      opts.trace_path = a + 8;
    } else if (std::strcmp(a, "--cas-policy") == 0) {
      opts.cas_policy = next_value();
    } else if (std::strncmp(a, "--cas-policy=", 13) == 0) {
      opts.cas_policy = a + 13;
    } else if (std::strcmp(a, "--policy-decay") == 0) {
      opts.policy_decay = next_value();
    } else if (std::strncmp(a, "--policy-decay=", 15) == 0) {
      opts.policy_decay = a + 15;
    } else if (std::strcmp(a, "--record-ops") == 0) {
      opts.record_ops = next_value();
    } else if (std::strncmp(a, "--record-ops=", 13) == 0) {
      opts.record_ops = a + 13;
    } else if (std::strcmp(a, "--replay-ops") == 0) {
      opts.replay_ops = next_value();
    } else if (std::strncmp(a, "--replay-ops=", 13) == 0) {
      opts.replay_ops = a + 13;
    } else if (std::strcmp(a, "--policy-seed") == 0) {
      opts.policy_seed = std::strtoull(next_value(), nullptr, 10);
    } else if (std::strcmp(a, "--policy-budget") == 0) {
      opts.policy_budget = static_cast<int>(std::strtol(next_value(), nullptr, 10));
      if (opts.policy_budget < 0) {
        throw std::invalid_argument("--policy-budget needs a non-negative count");
      }
    } else if (std::strcmp(a, "--policy-nc-cost") == 0) {
      opts.policy_nc_cost = static_cast<int>(std::strtol(next_value(), nullptr, 10));
      if (opts.policy_nc_cost < 0) {
        throw std::invalid_argument("--policy-nc-cost needs a non-negative cost");
      }
    } else if (std::strcmp(a, "--fault-rate") == 0) {
      opts.fault_rate = std::strtod(next_value(), nullptr);
      if (opts.fault_rate < 0.0 || opts.fault_rate > 1.0) {
        throw std::invalid_argument("--fault-rate needs a probability in [0,1]");
      }
    } else if (std::strcmp(a, "--fault-seed") == 0) {
      opts.fault_seed = std::strtoull(next_value(), nullptr, 10);
    } else if (std::strcmp(a, "--fault-jitter") == 0) {
      opts.fault_jitter = std::strtoull(next_value(), nullptr, 10);
    } else if (std::strcmp(a, "--machine-threads") == 0) {
      opts.machine_threads = static_cast<int>(std::strtol(next_value(), nullptr, 10));
      if (opts.machine_threads < 1) {
        throw std::invalid_argument("--machine-threads needs a positive count");
      }
    } else if (std::strcmp(a, "--dir-slices") == 0) {
      opts.dir_slices = static_cast<int>(std::strtol(next_value(), nullptr, 10));
      if (opts.dir_slices < 0) {
        throw std::invalid_argument("--dir-slices needs a non-negative count");
      }
    } else if (std::strcmp(a, "--sockets") == 0) {
      opts.sockets = static_cast<int>(std::strtol(next_value(), nullptr, 10));
      if (opts.sockets < 0) {
        throw std::invalid_argument("--sockets needs a non-negative count");
      }
    } else if (std::strcmp(a, "--threads") == 0) {
      const char* list = next_value();
      std::stringstream ss(list);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        opts.threads.push_back(std::atoi(tok.c_str()));
      }
    } else {
      throw std::invalid_argument(std::string("unknown option: ") + a);
    }
  }
  return opts;
}

int BenchOptions::effective_jobs() const {
  if (serial) return 1;
  return jobs > 0 ? jobs : default_sweep_jobs();
}

}  // namespace sbq
