#include "sim/stats.hpp"

namespace sbq::sim {

const char* abort_cause_name(AbortCause c) noexcept {
  switch (c) {
    case AbortCause::kConflict: return "conflict";
    case AbortCause::kCapacity: return "capacity";
    case AbortCause::kTrippedWriter: return "tripped_writer";
    case AbortCause::kExplicit: return "explicit";
    case AbortCause::kInterrupt: return "interrupt";
    case AbortCause::kSpurious: return "spurious";
  }
  return "?";
}

Stats::Stats(int cores, bool track_lines)
    : track_lines_(track_lines),
      per_core_protocol_(static_cast<std::size_t>(cores < 0 ? 0 : cores)),
      per_core_htm_(static_cast<std::size_t>(cores < 0 ? 0 : cores)) {}

void Stats::on_request(CoreId core, Addr a, bool want_m) {
  auto& cc = per_core_protocol_.at(static_cast<std::size_t>(core));
  if (want_m) {
    ++protocol_.getm;
    ++cc.getm;
    if (ProtocolCounters* l = line_slot(a)) ++l->getm;
  } else {
    ++protocol_.gets;
    ++cc.gets;
    if (ProtocolCounters* l = line_slot(a)) ++l->gets;
  }
}

void Stats::on_fwd(CoreId owner, Addr a, bool getm) {
  auto& cc = per_core_protocol_.at(static_cast<std::size_t>(owner));
  if (getm) {
    ++protocol_.fwd_getm;
    ++cc.fwd_getm;
    if (ProtocolCounters* l = line_slot(a)) ++l->fwd_getm;
  } else {
    ++protocol_.fwd_gets;
    ++cc.fwd_gets;
    if (ProtocolCounters* l = line_slot(a)) ++l->fwd_gets;
  }
}

void Stats::on_inv(CoreId sharer, Addr a) {
  ++protocol_.inv;
  ++per_core_protocol_.at(static_cast<std::size_t>(sharer)).inv;
  if (ProtocolCounters* l = line_slot(a)) ++l->inv;
}

void Stats::on_inv_ack(CoreId requester, Addr a) {
  ++protocol_.inv_ack;
  ++per_core_protocol_.at(static_cast<std::size_t>(requester)).inv_ack;
  if (ProtocolCounters* l = line_slot(a)) ++l->inv_ack;
}

void Stats::on_wb(CoreId owner, Addr a) {
  ++protocol_.wb_data;
  ++per_core_protocol_.at(static_cast<std::size_t>(owner)).wb_data;
  if (ProtocolCounters* l = line_slot(a)) ++l->wb_data;
}

void Stats::on_txcas_call(CoreId c) {
  ++htm_.calls;
  ++per_core_htm_.at(static_cast<std::size_t>(c)).calls;
}

void Stats::on_txn_attempt(CoreId c) {
  ++htm_.attempts;
  ++per_core_htm_.at(static_cast<std::size_t>(c)).attempts;
}

void Stats::on_txn_commit(CoreId c) {
  ++htm_.commits;
  ++per_core_htm_.at(static_cast<std::size_t>(c)).commits;
}

void Stats::on_txn_abort(CoreId c, AbortCause cause) {
  const auto idx = static_cast<std::size_t>(cause);
  ++htm_.aborts[idx];
  ++per_core_htm_.at(static_cast<std::size_t>(c)).aborts[idx];
}

void Stats::on_txn_fallback(CoreId c) {
  ++htm_.fallbacks;
  ++per_core_htm_.at(static_cast<std::size_t>(c)).fallbacks;
}

void Stats::on_fallback_cas(CoreId c) {
  ++htm_.fallback_cas;
  ++per_core_htm_.at(static_cast<std::size_t>(c)).fallback_cas;
}

void Stats::on_uarch_fix_stall(CoreId c) {
  ++htm_.uarch_fix_stalls;
  ++per_core_htm_.at(static_cast<std::size_t>(c)).uarch_fix_stalls;
}

void Stats::on_txcas_done(CoreId c, int attempts, bool /*success*/) {
  int bucket = attempts < 1 ? 0 : attempts - 1;
  if (bucket >= HtmCounters::kRetryBuckets) {
    bucket = HtmCounters::kRetryBuckets - 1;
  }
  const auto b = static_cast<std::size_t>(bucket);
  ++htm_.retry_histogram[b];
  ++per_core_htm_.at(static_cast<std::size_t>(c)).retry_histogram[b];
}

void Stats::on_policy_step(CoreId /*c*/, int step) {
  switch (step) {
    case 0: ++policy_.txn_steps; break;
    case 1: ++policy_.budget_fallbacks; break;
    default: ++policy_.degraded_fallbacks; break;
  }
}

void Stats::on_policy_delay(CoreId /*c*/, bool intra, Time cycles) {
  if (intra) {
    policy_.intra_delay_cycles += cycles;
  } else {
    policy_.post_delay_cycles += cycles;
  }
}

void Stats::on_basket_append(bool won) {
  if (won) {
    ++basket_.appends_won;
  } else {
    ++basket_.appends_lost;
  }
}

void Stats::on_basket_stale_tail() { ++basket_.stale_tails; }

void Stats::on_basket_close(std::uint64_t occupancy) {
  ++basket_.closes;
  basket_.occupancy_sum += occupancy;
  if (occupancy < basket_.occupancy_min) basket_.occupancy_min = occupancy;
  if (occupancy > basket_.occupancy_max) basket_.occupancy_max = occupancy;
}

void Stats::on_basket_extract(bool got_element) {
  if (got_element) {
    ++basket_.extracted;
  } else {
    ++basket_.empty_swaps;
  }
}

void Stats::on_basket_node(bool reused) {
  if (reused) {
    ++basket_.node_reuses;
  } else {
    ++basket_.fresh_allocs;
  }
}

const ProtocolCounters& Stats::line(Addr a) const {
  static const ProtocolCounters kZero{};
  auto it = lines_.find(a);
  return it == lines_.end() ? kZero : it->second;
}

}  // namespace sbq::sim
