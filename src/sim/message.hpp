// Coherence messages exchanged between cores and the directory, following
// the MSI directory protocol of Sorin–Hill–Wood that §3 of the paper
// analyzes: GetS/GetM requests, Fwd-GetS/Fwd-GetM owner forwards,
// invalidations with acks collected by the requester, and data responses.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace sbq::sim {

enum class MsgType : std::uint8_t {
  kGetS,     // core -> dir: request shared (read) permission
  kGetM,     // core -> dir: request exclusive (write) permission
  kFwdGetS,  // dir -> owner core: send data to requester, downgrade to S
  kFwdGetM,  // dir -> owner core: send data to requester, invalidate
  kInv,      // dir -> sharer core: invalidate, ack to requester
  kInvAck,   // sharer core -> requesting core
  kData,     // dir/owner -> requester: line data (+ expected ack count)
  kWbData,   // owner -> dir: line copy after an M->shared transition
};

const char* msg_type_name(MsgType t) noexcept;

struct Message {
  MsgType type{};
  Addr addr = 0;
  CoreId src = -1;        // sending node (core id, or directory)
  CoreId requester = -1;  // the core this transaction is on behalf of
  Value value = 0;        // payload for kData
  int ack_count = 0;      // for kData on a GetM: invalidations to expect
};

}  // namespace sbq::sim
