// Fundamental types and configuration for the coherence simulator.
//
// The simulator models the machine of §3.1 of the paper: a multi-core (and
// optionally multi-socket) processor with private caches, a shared LLC with
// an MSI directory, and a point-to-point interconnect that supports multiple
// in-flight messages. Time is measured in cycles; one simulated word maps to
// one cache line (the algorithms pad contended variables anyway).
#pragma once

#include <cstddef>
#include <cstdint>

namespace sbq::sim {

using Addr = std::uint64_t;   // word address; one word per cache line
using Value = std::uint64_t;  // 64-bit memory words (§2 "Atomic primitives")
using Time = std::uint64_t;   // cycles
using CoreId = int;

inline constexpr Addr kNullAddr = 0;  // sim code treats address 0 as NULL

// Interconnect topology model (selected via MachineConfig).
//
//   kFlat — the original latency matrix: every hop costs intra_latency or
//           inter_latency, bandwidth is unlimited. Cheap and sufficient for
//           single-socket sweeps (there is no cross-socket traffic to
//           contend for).
//   kLink — per-socket-pair link objects with finite bandwidth: each
//           directed cross-socket link serializes messages (one every
//           link_occupancy cycles) through a FIFO occupancy queue, so a
//           message's delay is inter_latency plus however long the link's
//           queue makes it wait. Intra-socket messages still use the flat
//           intra_latency (the on-chip mesh is not the bottleneck §3.1
//           models). This is what lets ablation_numa capture *contention*
//           on the socket link rather than just the added hop cost.
enum class InterconnectModel : std::uint8_t { kFlat, kLink };

// Machine-wide timing and topology parameters. Defaults approximate the
// paper's Broadwell (§3.2 cites 15–30 cycles per message delay; QPI hops
// are several times that).
struct MachineConfig {
  int cores = 44;
  int sockets = 1;          // cores are split evenly across sockets
  Time intra_latency = 40;  // message delay within a socket [cycles]
  Time inter_latency = 160; // message delay across sockets [cycles]
  InterconnectModel interconnect_model = InterconnectModel::kFlat;
  // kLink only: cycles a directed cross-socket link is held per message
  // (the inverse of its bandwidth). A QPI-class link moves a 64-byte
  // flit train in a handful of cycles; 16 makes two back-to-back remote
  // messages visibly queue without dominating the 160-cycle hop.
  Time link_occupancy = 16;
  // Order in which the directory delivers back-to-back Invs to a line's
  // sharers (§3.3). True (default) walks the sharer bitmask in ascending
  // core-id order — the canonical, re-baselined schedule. False replays the
  // pre-canonical libstdc++ bucket-chain order (legacy_inv_order.hpp) for
  // diffing against PR-3 artifacts; legacy mode keeps a per-line side table
  // and is exempt from the zero-alloc gates.
  bool canonical_inv_order = true;
  Time dir_occupancy = 3;   // directory per-request processing time
  Time hit_latency = 1;     // cache hit
  Time rmw_latency = 8;     // read-modify-write execute cost once owned
  bool uarch_fix = false;   // §3.4.1: stall Fwd-GetS of a committing txn
  bool record_trace = false;
  // Bounded event-trace ring: once `trace_capacity` events are buffered the
  // oldest are overwritten (Trace::dropped() reports how many).
  std::size_t trace_capacity = std::size_t{1} << 20;
  // Metrics registry (sim::Stats): machine-wide + per-core counters. Plain
  // increments — keep on unless a microbenchmark needs the last percent.
  bool collect_stats = true;
  // Additionally key protocol counters by cache line (a hash lookup per
  // protocol event; off by default).
  bool track_lines = false;
};

// TxCAS tuning (§4.1, §4.2). Cycle values assume 0.4 ns/cycle, so the
// paper's 270 ns intra-transaction delay is ~675 cycles.
struct TxCasConfig {
  Time intra_txn_delay = 675;
  Time post_abort_delay = 130;  // covers an intra-socket Inv/Ack round trip
  int max_attempts = 64;  // then fall back to a plain CAS (wait-freedom)
};

}  // namespace sbq::sim
