// Fundamental types and configuration for the coherence simulator.
//
// The simulator models the machine of §3.1 of the paper: a multi-core (and
// optionally multi-socket) processor with private caches, a shared LLC with
// an MSI directory, and a point-to-point interconnect that supports multiple
// in-flight messages. Time is measured in cycles; one simulated word maps to
// one cache line (the algorithms pad contended variables anyway).
#pragma once

#include <cstddef>
#include <cstdint>

namespace sbq::sim {

using Addr = std::uint64_t;   // word address; one word per cache line
using Value = std::uint64_t;  // 64-bit memory words (§2 "Atomic primitives")
using Time = std::uint64_t;   // cycles
using CoreId = int;

inline constexpr Addr kNullAddr = 0;  // sim code treats address 0 as NULL

// Machine-wide timing and topology parameters. Defaults approximate the
// paper's Broadwell (§3.2 cites 15–30 cycles per message delay; QPI hops
// are several times that).
struct MachineConfig {
  int cores = 44;
  int sockets = 1;          // cores are split evenly across sockets
  Time intra_latency = 40;  // message delay within a socket [cycles]
  Time inter_latency = 160; // message delay across sockets [cycles]
  Time dir_occupancy = 3;   // directory per-request processing time
  Time hit_latency = 1;     // cache hit
  Time rmw_latency = 8;     // read-modify-write execute cost once owned
  bool uarch_fix = false;   // §3.4.1: stall Fwd-GetS of a committing txn
  bool record_trace = false;
  // Bounded event-trace ring: once `trace_capacity` events are buffered the
  // oldest are overwritten (Trace::dropped() reports how many).
  std::size_t trace_capacity = std::size_t{1} << 20;
  // Metrics registry (sim::Stats): machine-wide + per-core counters. Plain
  // increments — keep on unless a microbenchmark needs the last percent.
  bool collect_stats = true;
  // Additionally key protocol counters by cache line (a hash lookup per
  // protocol event; off by default).
  bool track_lines = false;
};

// TxCAS tuning (§4.1, §4.2). Cycle values assume 0.4 ns/cycle, so the
// paper's 270 ns intra-transaction delay is ~675 cycles.
struct TxCasConfig {
  Time intra_txn_delay = 675;
  Time post_abort_delay = 130;  // covers an intra-socket Inv/Ack round trip
  int max_attempts = 64;  // then fall back to a plain CAS (wait-freedom)
};

}  // namespace sbq::sim
