// Fundamental types and configuration for the coherence simulator.
//
// The simulator models the machine of §3.1 of the paper: a multi-core (and
// optionally multi-socket) processor with private caches, a shared LLC with
// an MSI directory, and a point-to-point interconnect that supports multiple
// in-flight messages. Time is measured in cycles; one simulated word maps to
// one cache line (the algorithms pad contended variables anyway).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/contention.hpp"

namespace sbq::sim {

using Addr = std::uint64_t;   // word address; one word per cache line
using Value = std::uint64_t;  // 64-bit memory words (§2 "Atomic primitives")
using Time = std::uint64_t;   // cycles
using CoreId = int;

inline constexpr Addr kNullAddr = 0;  // sim code treats address 0 as NULL

// Interconnect topology model (selected via MachineConfig).
//
//   kFlat — the original latency matrix: every hop costs intra_latency or
//           inter_latency, bandwidth is unlimited. Cheap and sufficient for
//           single-socket sweeps (there is no cross-socket traffic to
//           contend for).
//   kLink — per-socket-pair link objects with finite bandwidth: each
//           directed cross-socket link serializes messages (one every
//           link_occupancy cycles) through a FIFO occupancy queue, so a
//           message's delay is inter_latency plus however long the link's
//           queue makes it wait. Intra-socket messages still use the flat
//           intra_latency (the on-chip mesh is not the bottleneck §3.1
//           models). This is what lets ablation_numa capture *contention*
//           on the socket link rather than just the added hop cost.
enum class InterconnectModel : std::uint8_t { kFlat, kLink };

// Kinds of HTM abort the fault-injection layer can force into an in-flight
// simulated transaction. The simulator's protocol only ever produces
// conflict aborts on its own; real HTM additionally aborts on footprint
// overflow (capacity), timer interrupts/context switches, and for
// unexplained ("spurious") reasons — the cases the paper's fallback
// argument (§4 "Progress") has to survive.
enum class FaultKind : std::uint8_t { kCapacity, kInterrupt, kSpurious };
inline constexpr int kFaultKindCount = 3;

// One scheduled fault: at simulated cycle `time`, abort whatever
// transaction core `core` has in flight (a no-op if that core is not in a
// transaction at that instant — like a real timer interrupt).
struct FaultOneShot {
  Time time = 0;
  CoreId core = 0;
  FaultKind kind = FaultKind::kInterrupt;
};

// Deterministic, seedable fault-injection plan (off by default — a default
// plan leaves every simulated schedule and every golden byte-identical).
//
// Rate-based injection draws once per transactional attempt from a
// per-core SplitMix64 stream seeded from (seed, core id); at most one fault
// fires per attempt, at a deterministic offset inside the attempt's
// vulnerability window. Message jitter draws per interconnect message from
// a dedicated stream. All streams fork with Machine::snapshot(), so forked
// repeats replay byte-identically.
struct FaultPlan {
  bool enabled = false;     // master switch; false ⇒ zero schedule impact
  std::uint64_t seed = 1;   // root of every injection RNG stream
  // Per-transactional-attempt abort probabilities in [0, 1] (summed: at
  // most one injected abort per attempt).
  double capacity_rate = 0.0;
  double interrupt_rate = 0.0;
  double spurious_rate = 0.0;
  // Bounded message-latency jitter: with probability `message_jitter_rate`
  // a message's delivery is delayed by a uniform 1..max_message_jitter
  // extra cycles. Jitter only ever adds latency and per-(src,dst) FIFO
  // order is preserved (arrival times are clamped to be monotone per
  // pair), so every jittered schedule is protocol-legal.
  double message_jitter_rate = 0.0;
  Time max_message_jitter = 0;
  // Scheduled one-shot faults (fired when run() first starts the machine).
  std::vector<FaultOneShot> one_shots;

  bool rates_active() const noexcept {
    return enabled &&
           (capacity_rate > 0 || interrupt_rate > 0 || spurious_rate > 0);
  }
  bool jitter_active() const noexcept {
    return enabled && message_jitter_rate > 0 && max_message_jitter > 0;
  }
};

// Machine-wide timing and topology parameters. Defaults approximate the
// paper's Broadwell (§3.2 cites 15–30 cycles per message delay; QPI hops
// are several times that).
struct MachineConfig {
  int cores = 44;
  int sockets = 1;          // cores are split evenly across sockets
  Time intra_latency = 40;  // message delay within a socket [cycles]
  Time inter_latency = 160; // message delay across sockets [cycles]
  InterconnectModel interconnect_model = InterconnectModel::kFlat;
  // kLink only: cycles a directed cross-socket link is held per message
  // (the inverse of its bandwidth). A QPI-class link moves a 64-byte
  // flit train in a handful of cycles; 16 makes two back-to-back remote
  // messages visibly queue without dominating the 160-cycle hop.
  Time link_occupancy = 16;
  // Order in which the directory delivers back-to-back Invs to a line's
  // sharers (§3.3). True (default) walks the sharer bitmask in ascending
  // core-id order — the canonical, re-baselined schedule. False replays the
  // pre-canonical libstdc++ bucket-chain order (legacy_inv_order.hpp) for
  // diffing against PR-3 artifacts; legacy mode keeps a per-line side table
  // and is exempt from the zero-alloc gates.
  bool canonical_inv_order = true;
  Time dir_occupancy = 3;   // directory per-request processing time
  Time hit_latency = 1;     // cache hit
  Time rmw_latency = 8;     // read-modify-write execute cost once owned
  bool uarch_fix = false;   // §3.4.1: stall Fwd-GetS of a committing txn
  bool record_trace = false;
  // Bounded event-trace ring: once `trace_capacity` events are buffered the
  // oldest are overwritten (Trace::dropped() reports how many).
  std::size_t trace_capacity = std::size_t{1} << 20;
  // Metrics registry (sim::Stats): machine-wide + per-core counters. Plain
  // increments — keep on unless a microbenchmark needs the last percent.
  bool collect_stats = true;
  // Additionally key protocol counters by cache line (a hash lookup per
  // protocol event; off by default).
  bool track_lines = false;
  // Fault injection (docs/robustness.md). Disabled by default: with the
  // default plan every driver's output is byte-identical to tests/golden/.
  FaultPlan fault_plan;
  // Runtime coherence invariant checker: after every delivered protocol
  // message, verify SWMR and directory/cache consistency (O(lines × cores)
  // per message — always compiled, opt-in). A violation dumps the debug
  // ring to stderr and throws std::logic_error instead of silently
  // simulating on corrupt state.
  bool check_invariants = false;
  // --- Sharded (parallel) machine -------------------------------------
  // The directory is split into `dir_slices` independent slices; a line
  // with address A is homed on slice A % dir_slices. With dir_slices > 1
  // the machine can additionally run each slice (its cores, their private
  // caches, the slice's directory and timing-wheel engine) on a worker
  // thread: `machine_threads` > 1 enables the conservative-lookahead
  // parallel run loop (docs/architecture.md "Parallel machine"). Results
  // are deterministic and identical to a serial run of the same config;
  // the defaults keep every golden byte-identical.
  int dir_slices = 1;
  int machine_threads = 1;
  // Deterministic per-core allocation arenas: Machine::alloc(words, core)
  // carves from a fixed 2^30-word region per core instead of the shared
  // bump cursor, so mid-run allocations get schedule-independent
  // addresses. Required (and enabled by the drivers) whenever
  // dir_slices > 1 so the serial twin and the sharded run allocate the
  // same addresses.
  bool alloc_arenas = false;
  // Pre-fill the coroutine FramePool of every engine-driving thread (the
  // constructing thread and, when sharded, each pool worker) with this many
  // free frames per size class. 0 (default) skips the prewarm; the
  // allocation-gate benches set it so a steady phase whose live-frame
  // high-water exceeds the cold phase's never hits the heap.
  std::size_t prewarm_frames = 0;
  // Pre-fill the engine's event-node slab with at least this many nodes at
  // construction. 0 (default) skips it. Machines forked from a *deserialized*
  // snapshot set this (the in-memory fork path inherits the warmed engine's
  // slabs for free, the on-disk path starts from a cold engine): the
  // measured phase then never refills the slab, keeping the zero-alloc
  // perf_smoke gates green on the cached warm-start path.
  std::size_t prewarm_event_nodes = 0;
  // Saturation accounting (backpressure): when > 0, the interconnect's
  // per-link occupancy queues and the per-slice directory count how often
  // a message arrives while `cap` messages are already queued ahead of it
  // (a stall) and track the peak queue depth. Accounting only — arrival
  // times are unchanged, so any cap is golden-safe.
  std::uint64_t link_queue_cap = 0;
  std::uint64_t dir_queue_cap = 0;
  // TxCAS contention policy (common/contention.hpp): fixed (default,
  // byte-identical goldens), adaptive-backoff, or adaptive-fallback.
  // Machine-wide so it participates in machine_config_digest and thus in
  // snapshot/cache identity; the persistent per-core policy state lives in
  // each core's TxCasOp slot and is serialized alongside it.
  ContentionPolicyParams cas_policy;
};

// TxCAS tuning (§4.1, §4.2). Cycle values assume 0.4 ns/cycle, so the
// paper's 270 ns intra-transaction delay is ~675 cycles.
struct TxCasConfig {
  Time intra_txn_delay = 675;
  Time post_abort_delay = 130;  // covers an intra-socket Inv/Ack round trip
  int max_attempts = 64;  // then fall back to a plain CAS (wait-freedom)
  // Graceful degradation: after this many NON-conflict aborts (capacity /
  // interrupt / spurious — in the simulator these only arise from fault
  // injection) within one TxCAS call, stop retrying transactionally and
  // degrade to a plain CAS immediately. Retrying past persistent
  // non-conflict aborts buys nothing: a capacity abort recurs
  // deterministically and interrupt storms starve the commit window. The
  // degraded path is counted separately (`fallback_cas`) from the
  // attempt-budget fallback (`fallbacks`). 0 disables degradation. The
  // default is the shared cross-backend constant (common/contention.hpp);
  // the native backend documents its deliberate 0 override there.
  int max_nonconflict_aborts =
      static_cast<int>(kDefaultNonconflictAbortBudget);
};

// The policy object a (machine policy params, per-op TxCasConfig) pair
// resolves to — the exact construction Core::start_txcas uses. Exposed so
// the cross-backend differential test can drive the sim's decision logic
// directly against the native one.
inline ContentionPolicy make_contention_policy(
    const ContentionPolicyParams& params, const TxCasConfig& cfg) noexcept {
  return ContentionPolicy(
      params,
      ContentionKnobs{cfg.intra_txn_delay, cfg.post_abort_delay,
                      static_cast<std::uint32_t>(cfg.max_attempts < 0
                                                     ? 0
                                                     : cfg.max_attempts),
                      static_cast<std::uint32_t>(
                          cfg.max_nonconflict_aborts < 0
                              ? 0
                              : cfg.max_nonconflict_aborts)});
}

}  // namespace sbq::sim
