// Discrete-event engine: a deterministic time-ordered event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace sbq::sim {

class Engine {
 public:
  using Action = std::function<void()>;

  Time now() const noexcept { return now_; }

  // Schedule `action` to run `delay` cycles from now. Events with equal
  // timestamps run in scheduling order (FIFO), which makes runs fully
  // deterministic.
  void schedule(Time delay, Action action);

  // Run events until the queue drains. Returns the final time.
  Time run();

  // Run until the queue drains or `limit` is reached (safety valve for
  // tests; hitting the limit indicates livelock in the modeled protocol).
  // Returns true if the queue drained.
  bool run_until(Time limit);

  std::uint64_t events_processed() const noexcept { return processed_; }
  bool idle() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sbq::sim
