// Discrete-event engine: a deterministic time-ordered event queue.
//
// Hot-path design: the pending set is a timing wheel — a power-of-two ring
// of slots covering the time window [now, now + kWheelSlots). Every modeled
// latency in the simulator is a small bounded constant (hit = 1 … inter-
// socket = 160 ≪ 8192), so schedule() is an O(1) append to the slot list
// and dispatch is an O(1) pop plus a short occupancy-bitmap scan to find
// the next nonempty slot. Events scheduled ≥ kWheelSlots cycles ahead go
// to a small overflow min-heap and are merged (by seq) into the wheel as
// the window reaches them, so arbitrary horizons still work.
//
// Two invariants make the wheel exactly equivalent to the previous binary
// heap on (time, seq):
//  1. Single-time slots: all pending times lie in [now, now + kWheelSlots)
//     (times never precede `now`, and direct inserts use delay < wheel
//     span), so two events in the same slot always share the same time.
//  2. Slots are FIFO by seq: direct schedule() appends in seq order, and
//     overflow drains insert at the (time, seq) position, so equal-time
//     events run in scheduling order — runs stay fully deterministic.
//
// schedule() moves the callable into a fixed-size event node drawn from a
// per-engine slab + freelist, so steady-state scheduling performs zero
// heap allocations (nodes are recycled as events run). The node's inline
// buffer fits every callable the simulator schedules; an oversized
// callable falls back to one boxed heap allocation, which is counted in
// alloc_stats() so regressions surface in engine_microbench.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace sbq::sim {

class Engine {
 public:
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const noexcept { return now_; }

  // Schedule `fn` to run `delay` cycles from now. Events with equal
  // timestamps run in scheduling order (FIFO), which makes runs fully
  // deterministic.
  template <typename F>
  void schedule(Time delay, F fn) {
    Node* n = make_node(std::move(fn));
    n->time = now_ + delay;
    if (logging_) {
      // Window-logged (sharded) mode: the global (time, seq) order is only
      // decided at the next merge barrier, so new events carry a provisional
      // key — larger than every materialized seq (so equal-time ordering
      // against pre-window events is already final) and monotone in birth
      // order (so patching to the merged seqs is order-preserving).
      n->seq = kProvisionalSeqBase + births_;
      calls_.push_back({CallKind::kBirth, births_});
      birth_node_.push_back(n);
      ++births_;
    } else {
      n->seq = next_seq_++;
    }
    n->next = nullptr;
    if (delay < kWheelSlots) {
      append_slot(n);
    } else {
      ++alloc_.overflow_events;
      overflow_.push_back(n);
      std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    }
  }

  // Insert an event at an absolute time with an externally assigned seq
  // (cross-slice channel deliveries and the sharded machine's root/one-shot
  // injection). Pre: time >= now() and, when the target slot is occupied,
  // the window invariant (time - now() < wheel span keeps same-slot times
  // equal) — both hold for conservative-lookahead deliveries.
  template <typename F>
  void insert_external(Time time, std::uint64_t seq, F fn) {
    Node* n = make_node(std::move(fn));
    n->time = time;
    n->seq = seq;
    n->next = nullptr;
    if (time - now_ < kWheelSlots) {
      insert_slot_by_seq(n);
    } else {
      ++alloc_.overflow_events;
      overflow_.push_back(n);
      std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    }
  }

  // Run events until the queue drains. Returns the final time.
  Time run();

  // Run until the queue drains or `limit` is reached (safety valve for
  // tests; hitting the limit indicates livelock in the modeled protocol).
  // Returns true if the queue drained.
  //
  // Boundary semantics: the limit is INCLUSIVE — every event whose time is
  // <= limit runs (including events scheduled at exactly Time == limit by
  // events that themselves ran at `limit`). When the next pending event
  // lies strictly after `limit`, run_until returns false and leaves now()
  // at the time of the last event that ran; it does NOT fast-forward the
  // clock to `limit`.
  bool run_until(Time limit);

  std::uint64_t events_processed() const noexcept { return processed_; }
  bool idle() const noexcept {
    return wheel_count_ == 0 && overflow_.empty();
  }

  // Allocation accounting for the engine microbench: in steady state
  // (freelist warm, overflow untouched) schedule() allocates nothing, so
  // `slab_refills` and `boxed_allocs` stay flat while `scheduled` grows.
  struct AllocStats {
    std::uint64_t scheduled = 0;        // total schedule() calls
    std::uint64_t slab_refills = 0;     // node-slab growths (kSlabNodes each)
    std::uint64_t boxed_allocs = 0;     // callables too big for a node
    std::uint64_t overflow_events = 0;  // events beyond the wheel window
  };
  const AllocStats& alloc_stats() const noexcept { return alloc_; }

  // Grow the node slab until at least `n` nodes exist (free or in use).
  // Slab warmth is wall-clock state, not schedule state (it is excluded
  // from Checkpoint), so prewarming is always schedule-invisible. Machines
  // forked from a deserialized snapshot use this
  // (MachineConfig::prewarm_event_nodes) to keep the measured phase off the
  // heap — the in-memory fork path inherits a warm process, the on-disk
  // path starts cold.
  void prewarm_nodes(std::size_t n);
  // Total nodes backed by the slab (free + live).
  std::size_t node_capacity() const noexcept {
    return slabs_.size() * kSlabNodes;
  }

  // Checkpoint of the schedule-visible clock state, valid only at idle()
  // (no pending events — nothing in the wheel or overflow heap to capture).
  // Restoring onto an idle engine resumes the (time, seq) stream exactly
  // where the checkpointed engine left it: slot indexing is absolute-time
  // based, so now_ alone re-anchors the wheel window. The node slab and
  // freelist are deliberately NOT part of the checkpoint — warmth is a
  // wall-clock property, not a schedule-visible one (a forked machine
  // re-warms its slab on first use; see Machine::fork).
  struct Checkpoint {
    Time now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;
    AllocStats alloc;
  };
  Checkpoint save_checkpoint() const;   // pre: idle()
  void restore_checkpoint(const Checkpoint& c);  // pre: idle()

  // --- Window logging (sharded machine) -------------------------------
  //
  // A slice engine in a parallel Machine runs in logging mode: every
  // dispatched event is recorded together with the ordered list of calls
  // it made (local schedules, cross-slice channel sends, host effects).
  // At the merge barrier the Machine replays the per-slice logs in global
  // (time, key) order, assigns the definitive seqs, and patches the still-
  // pending provisionally-keyed nodes — reproducing the serial engine's
  // (time, seq) stream exactly. Keys at/above kProvisionalSeqBase are
  // provisional (assigned in schedule() while logging); patching them to
  // the merged seqs is a monotone remap, so slot lists and the overflow
  // heap stay ordered without a re-sort.
  static constexpr std::uint64_t kProvisionalSeqBase = std::uint64_t{1}
                                                       << 63;

  enum class CallKind : std::uint8_t { kBirth, kChannel, kEffect };
  struct CallRecord {
    CallKind kind;
    std::uint64_t payload;  // birth id / channel index / effect index
  };
  struct DispatchRecord {
    Time time = 0;
    std::uint64_t key = 0;  // seq (provisional when born in this window)
    std::uint32_t first_call = 0;
    std::uint32_t ncalls = 0;
  };
  struct EffectRecord {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };

  void enable_window_logging();
  bool window_logging() const noexcept { return logging_; }
  // Record a cross-slice channel send (payload index assigned by the
  // caller, which owns the channel buffer) / an ordered host effect.
  void log_channel(std::uint64_t index) {
    calls_.push_back({CallKind::kChannel, index});
  }
  void log_effect(std::uint64_t a, std::uint64_t b) {
    calls_.push_back({CallKind::kEffect, effects_.size()});
    effects_.push_back({a, b});
  }
  const std::vector<DispatchRecord>& window_dispatches() const noexcept {
    return dispatches_;
  }
  const std::vector<CallRecord>& window_calls() const noexcept {
    return calls_;
  }
  const EffectRecord& window_effect(std::uint64_t index) const noexcept {
    return effects_[index];
  }
  std::uint64_t window_births() const noexcept { return births_; }
  // Rewrite a still-pending in-window node's provisional key to its merged
  // seq (no-op if the node already dispatched inside the window).
  void patch_birth(std::uint64_t birth, std::uint64_t seq) noexcept {
    Node* n = birth_node_[birth];
    if (n != nullptr) n->seq = seq;
  }
  void clear_window_log() {
    dispatches_.clear();
    calls_.clear();
    effects_.clear();
    birth_node_.clear();
    births_ = 0;
  }
  // Time of the earliest pending event without advancing the clock.
  // Returns false when idle.
  bool peek_next_time(Time* t) {
    if (idle()) return false;
    *t = next_event_time();
    return true;
  }

 private:
  // Inline payload: the largest callable the simulator schedules today is
  // ~80 bytes (core-op completions capturing an inline continuation);
  // 96 leaves headroom without bloating the per-node footprint.
  static constexpr std::size_t kInlineCapacity = 96;
  static constexpr std::size_t kSlabNodes = 256;

  // Wheel geometry: 8192 slots × 16-byte Slot = 128 KiB, heap-allocated
  // once at engine construction. Power of two so slot lookup is a mask.
  static constexpr std::size_t kWheelSlots = 8192;
  static constexpr std::size_t kWheelMask = kWheelSlots - 1;
  static constexpr std::size_t kOccWords = kWheelSlots / 64;  // 128

  struct Node {
    // Runs (when `run`) and destroys the payload. Set per schedule() call.
    void (*run_and_destroy)(Node*, bool run) = nullptr;
    Node* next = nullptr;  // slot-list link / freelist link
    Time time = 0;
    std::uint64_t seq = 0;
    alignas(std::max_align_t) unsigned char payload[kInlineCapacity];
  };

  struct Slot {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  struct Later {
    bool operator()(const Node* a, const Node* b) const noexcept {
      return a->time != b->time ? a->time > b->time : a->seq > b->seq;
    }
  };

  Node* acquire_node() {
    if (free_head_ == nullptr) refill_slab();
    Node* n = free_head_;
    free_head_ = n->next;
    return n;
  }

  // Allocate a node and move `fn` into it (inline when it fits, boxed
  // otherwise). Time/seq/linkage are the caller's responsibility.
  template <typename F>
  Node* make_node(F fn) {
    static_assert(std::is_invocable_v<F&>, "event callable must be nullary");
    ++alloc_.scheduled;
    Node* n = acquire_node();
    if constexpr (sizeof(F) <= kInlineCapacity &&
                  alignof(F) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(n->payload)) F(std::move(fn));
      n->run_and_destroy = [](Node* node, bool run) {
        F* f = std::launder(reinterpret_cast<F*>(node->payload));
        if (run) (*f)();
        f->~F();
      };
    } else {
      // Callable too big for the inline buffer: box it. Rare by design —
      // the microbench alloc counter flags any callable that grows past
      // the node payload.
      ++alloc_.boxed_allocs;
      F* boxed = new F(std::move(fn));
      ::new (static_cast<void*>(n->payload)) (F*)(boxed);
      n->run_and_destroy = [](Node* node, bool run) {
        F* f = *std::launder(reinterpret_cast<F**>(node->payload));
        if (run) (*f)();
        delete f;
      };
    }
    return n;
  }
  void release_node(Node* n) noexcept {
    n->next = free_head_;
    free_head_ = n;
  }
  void refill_slab();

  void mark(std::size_t idx) noexcept {
    occ_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  void clear_mark(std::size_t idx) noexcept {
    occ_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }

  // Append at the slot tail: direct schedules arrive in seq order, so the
  // slot list stays sorted by seq.
  void append_slot(Node* n) noexcept {
    Slot& s = wheel_[n->time & kWheelMask];
    if (s.head == nullptr) {
      s.head = s.tail = n;
      mark(static_cast<std::size_t>(n->time) & kWheelMask);
    } else {
      s.tail->next = n;
      s.tail = n;
    }
    ++wheel_count_;
  }

  // Insert a drained overflow node at its seq position (overflow events
  // carry seqs that may precede already-slotted ones).
  void insert_slot_by_seq(Node* n) noexcept;

  // Move every overflow event with time < base + kWheelSlots into the
  // wheel. Cheap no-op (one compare) when nothing is drainable.
  void drain_overflow(Time base);

  // Index of the first occupied slot at/after `from`, cyclic. Worst case
  // scans the whole 1 KiB bitmap; the common case hits the first word
  // because protocol latencies keep pending events within a few slots of
  // `now`. Precondition: wheel_count_ > 0.
  std::size_t first_occupied(std::size_t from) const noexcept;

  // Time of the next pending event; caches its slot in next_idx_ when it
  // is already in the wheel. Does not advance now_. Pre: !idle().
  Time next_event_time();

  // Run the next event (time `t` as returned by next_event_time()); hops
  // the window forward first when the event is still in overflow.
  void dispatch_at(Time t);

  // Pop the head of slot `idx`, advance time, run it, recycle the node.
  void step_at(std::size_t idx);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t wheel_count_ = 0;
  std::size_t next_idx_ = 0;
  std::unique_ptr<Slot[]> wheel_;
  std::uint64_t occ_[kOccWords] = {};  // bit per slot: list nonempty
  std::vector<Node*> overflow_;        // min-heap on (time, seq) via Later
  Node* free_head_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  AllocStats alloc_;

  // Window log (sharded mode only; empty and untouched otherwise). The
  // vectors keep their capacity across clear_window_log(), so a warmed
  // slice engine logs allocation-free.
  bool logging_ = false;
  std::uint64_t births_ = 0;
  std::vector<DispatchRecord> dispatches_;
  std::vector<CallRecord> calls_;
  std::vector<EffectRecord> effects_;
  std::vector<Node*> birth_node_;  // birth id -> pending node (or null)
};

}  // namespace sbq::sim
