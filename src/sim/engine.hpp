// Discrete-event engine: a deterministic time-ordered event queue.
//
// Hot-path design: schedule() moves the callable into a fixed-size event
// node drawn from a per-engine slab + freelist, so steady-state scheduling
// performs zero heap allocations (nodes are recycled as events run). The
// node's inline buffer fits every callable the simulator schedules; an
// oversized callable falls back to one boxed heap allocation, which is
// counted in alloc_stats() so regressions surface in engine_microbench.
// The (time, seq) total order is unchanged: events with equal timestamps
// run in scheduling order (FIFO), keeping runs fully deterministic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace sbq::sim {

class Engine {
 public:
  Engine() = default;
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const noexcept { return now_; }

  // Schedule `fn` to run `delay` cycles from now. Events with equal
  // timestamps run in scheduling order (FIFO), which makes runs fully
  // deterministic.
  template <typename F>
  void schedule(Time delay, F fn) {
    static_assert(std::is_invocable_v<F&>, "event callable must be nullary");
    ++alloc_.scheduled;
    Node* n = acquire_node();
    if constexpr (sizeof(F) <= kInlineCapacity &&
                  alignof(F) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(n->payload)) F(std::move(fn));
      n->run_and_destroy = [](Node* node, bool run) {
        F* f = std::launder(reinterpret_cast<F*>(node->payload));
        if (run) (*f)();
        f->~F();
      };
    } else {
      // Callable too big for the inline buffer: box it. Rare by design —
      // the microbench alloc counter flags any callable that grows past
      // the node payload.
      ++alloc_.boxed_allocs;
      F* boxed = new F(std::move(fn));
      ::new (static_cast<void*>(n->payload)) (F*)(boxed);
      n->run_and_destroy = [](Node* node, bool run) {
        F* f = *std::launder(reinterpret_cast<F**>(node->payload));
        if (run) (*f)();
        delete f;
      };
    }
    heap_.push_back(Entry{now_ + delay, next_seq_++, n});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  // Run events until the queue drains. Returns the final time.
  Time run();

  // Run until the queue drains or `limit` is reached (safety valve for
  // tests; hitting the limit indicates livelock in the modeled protocol).
  // Returns true if the queue drained.
  bool run_until(Time limit);

  std::uint64_t events_processed() const noexcept { return processed_; }
  bool idle() const noexcept { return heap_.empty(); }

  // Allocation accounting for the engine microbench: in steady state
  // (freelist warm, heap vector at capacity) schedule() allocates nothing,
  // so `slab_refills` and `boxed_allocs` stay flat while `scheduled` grows.
  struct AllocStats {
    std::uint64_t scheduled = 0;     // total schedule() calls
    std::uint64_t slab_refills = 0;  // node-slab growths (kSlabNodes each)
    std::uint64_t boxed_allocs = 0;  // callables too big for a node
  };
  const AllocStats& alloc_stats() const noexcept { return alloc_; }

 private:
  // Inline payload: the largest callable the simulator schedules today is
  // ~64 bytes (core-op completions capturing a std::function continuation);
  // 96 leaves headroom without bloating the per-node footprint.
  static constexpr std::size_t kInlineCapacity = 96;
  static constexpr std::size_t kSlabNodes = 256;

  struct Node {
    // Runs (when `run`) and destroys the payload. Set per schedule() call.
    void (*run_and_destroy)(Node*, bool run) = nullptr;
    Node* next_free = nullptr;
    alignas(std::max_align_t) unsigned char payload[kInlineCapacity];
  };

  struct Entry {
    Time time;
    std::uint64_t seq;
    Node* node;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  Node* acquire_node() {
    if (free_head_ == nullptr) refill_slab();
    Node* n = free_head_;
    free_head_ = n->next_free;
    return n;
  }
  void release_node(Node* n) noexcept {
    n->next_free = free_head_;
    free_head_ = n;
  }
  void refill_slab();

  // Pops the earliest event, advances time, runs it, recycles the node.
  void step();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<Entry> heap_;  // binary min-heap on (time, seq) via Later
  Node* free_head_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  AllocStats alloc_;
};

}  // namespace sbq::sim
