#include "sim/interconnect.hpp"

#include <algorithm>
#include <cassert>

#include "common/rng.hpp"
#include "sim/trace.hpp"

namespace sbq::sim {

const char* msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kGetS: return "GetS";
    case MsgType::kGetM: return "GetM";
    case MsgType::kFwdGetS: return "Fwd-GetS";
    case MsgType::kFwdGetM: return "Fwd-GetM";
    case MsgType::kInv: return "Inv";
    case MsgType::kInvAck: return "Inv-Ack";
    case MsgType::kData: return "Data";
    case MsgType::kWbData: return "WB-Data";
  }
  return "?";
}

Interconnect::Interconnect(Engine& engine, const MachineConfig& cfg,
                           Trace* trace, DebugRing* debug_ring)
    : engine_(engine), cfg_(cfg), trace_(trace), debug_ring_(debug_ring),
      handlers_(static_cast<std::size_t>(cfg.cores) +
                static_cast<std::size_t>(cfg.dir_slices > 1 ? cfg.dir_slices
                                                            : 1)) {
  if (cfg_.interconnect_model == InterconnectModel::kLink) {
    links_.resize(static_cast<std::size_t>(cfg_.sockets) *
                  static_cast<std::size_t>(cfg_.sockets));
  }
  const FaultPlan& plan = cfg_.fault_plan;
  if (plan.jitter_active()) {
    jitter_on_ = true;
    jitter_rng_state_ = SplitMix64(plan.seed ^ 0xd1b54a32d192ed03ULL).next();
    const double r = plan.message_jitter_rate;
    jitter_threshold_ =
        r >= 1.0 ? 0xffffffffu
                 : static_cast<std::uint32_t>(r <= 0.0 ? 0 : r * 4294967296.0);
    const auto nodes = handlers_.size();
    last_arrival_.assign(nodes * nodes, 0);
  }
}

void Interconnect::set_handler(CoreId node, MessageHandlerFn handler) {
  assert(node >= 0 && static_cast<std::size_t>(node) < handlers_.size());
  handlers_[static_cast<std::size_t>(node)] = std::move(handler);
}

int Interconnect::socket_of(CoreId node) const noexcept {
  const int per_socket = (cfg_.cores + cfg_.sockets - 1) / cfg_.sockets;
  if (node >= cfg_.cores) {
    // Directory slice s is homed on the socket of the first core it is
    // co-located with (slice 0 => socket 0, matching the single-directory
    // layout when dir_slices == 1).
    const int slices = cfg_.dir_slices > 1 ? cfg_.dir_slices : 1;
    const int cps = (cfg_.cores + slices - 1) / slices;
    const int first = std::min((node - cfg_.cores) * cps, cfg_.cores - 1);
    return first / per_socket;
  }
  return node / per_socket;
}

Time Interconnect::latency(CoreId src, CoreId dst) const noexcept {
  if (socket_of(src) == socket_of(dst)) return cfg_.intra_latency;
  return cfg_.interconnect_model == InterconnectModel::kLink
             ? cfg_.inter_latency + cfg_.link_occupancy
             : cfg_.inter_latency;
}

void Interconnect::send(CoreId src, CoreId dst, Message msg) {
  msg.src = src;
  ++sent_;
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->record_send(engine_.now(), src, dst, msg.type, msg.addr,
                        msg.requester);
  }
  Time delay;
  const int ss = socket_of(src);
  const int ds = socket_of(dst);
  if (cfg_.interconnect_model == InterconnectModel::kLink && ss != ds) {
    // Occupancy queue: depart when the link frees up, hold it for
    // link_occupancy cycles, then traverse the hop. busy_until advancing
    // monotonically per link is exactly a FIFO queue of earlier senders.
    Link& l = link(ss, ds);
    const Time now = engine_.now();
    if (cfg_.link_queue_cap > 0) {
      // Saturation accounting only: a FIFO cap cannot change arrival times
      // under busy_until modeling, so counting keeps the schedule (and the
      // goldens) intact.
      const Time backlog = l.busy_until > now ? l.busy_until - now : 0;
      const std::uint64_t depth =
          (backlog + cfg_.link_occupancy - 1) / cfg_.link_occupancy;
      if (depth >= cfg_.link_queue_cap) ++link_bp_stalls_;
      if (depth + 1 > link_queue_peak_) link_queue_peak_ = depth + 1;
    }
    const Time depart = std::max(now, l.busy_until);
    l.busy_until = depart + cfg_.link_occupancy;
    const Time wait = depart - now;
    delay = wait + cfg_.link_occupancy + cfg_.inter_latency;
    ++link_msgs_;
    link_wait_cycles_ += wait;
  } else {
    delay = latency(src, dst);
  }
  if (jitter_on_) {
    // Draw jitter per message; then clamp EVERY arrival (jittered or not)
    // to the pair's previous arrival so per-(src,dst) FIFO order survives.
    std::uint64_t z = (jitter_rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    if (static_cast<std::uint32_t>(z >> 32) < jitter_threshold_) {
      const Time extra =
          1 + static_cast<Time>(z & 0xffffffffu) % cfg_.fault_plan.max_message_jitter;
      delay += extra;
      ++jittered_msgs_;
      jitter_cycles_ += extra;
    }
    const auto nodes = handlers_.size();
    Time& last = last_arrival_[static_cast<std::size_t>(src) * nodes +
                              static_cast<std::size_t>(dst)];
    const Time now = engine_.now();
    Time arrival = now + delay;
    if (arrival < last) {
      jitter_cycles_ += last - arrival;
      arrival = last;
      delay = arrival - now;
    }
    last = arrival;
  }
  if (debug_ring_ != nullptr) {
    debug_ring_->record(engine_.now(), src, dst, msg.type, msg.addr, msg.value);
  }
  if (send_observer_ != nullptr) {
    send_observer_(send_observer_ctx_, engine_.now(), src, dst, msg);
  }
  if (node_slice_ != nullptr && node_slice_[dst] != my_slice_) {
    // Cross-slice: buffer as a time-stamped channel send; the Machine
    // forwards it into the destination slice at the merge barrier, with
    // the merged seq deciding equal-time ordering exactly as in serial.
    engine_.log_channel(channel_.size());
    channel_.push_back({dst, msg, engine_.now() + delay});
    return;
  }
  auto& handler = handlers_[static_cast<std::size_t>(dst)];
  assert(handler);
  engine_.schedule(delay, [&handler, msg] { handler(msg); });
}

Interconnect::State Interconnect::save_state() const {
  State s;
  s.sent = sent_;
  s.link_msgs = link_msgs_;
  s.link_wait_cycles = link_wait_cycles_;
  s.link_bp_stalls = link_bp_stalls_;
  s.link_queue_peak = link_queue_peak_;
  s.link_busy_until.reserve(links_.size());
  for (const Link& l : links_) s.link_busy_until.push_back(l.busy_until);
  s.jitter_rng_state = jitter_rng_state_;
  s.jittered_msgs = jittered_msgs_;
  s.jitter_cycles = jitter_cycles_;
  s.last_arrival = last_arrival_;
  return s;
}

void Interconnect::restore_state(const State& s) {
  assert(s.link_busy_until.size() == links_.size() &&
         "snapshot taken under a different interconnect topology");
  assert(s.last_arrival.size() == last_arrival_.size() &&
         "snapshot taken under a different jitter configuration");
  sent_ = s.sent;
  link_msgs_ = s.link_msgs;
  link_wait_cycles_ = s.link_wait_cycles;
  link_bp_stalls_ = s.link_bp_stalls;
  link_queue_peak_ = s.link_queue_peak;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    links_[i].busy_until = s.link_busy_until[i];
  }
  jitter_rng_state_ = s.jitter_rng_state;
  jittered_msgs_ = s.jittered_msgs;
  jitter_cycles_ = s.jitter_cycles;
  last_arrival_ = s.last_arrival;
}

}  // namespace sbq::sim
