#include "sim/interconnect.hpp"

#include <cassert>

#include "sim/trace.hpp"

namespace sbq::sim {

const char* msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kGetS: return "GetS";
    case MsgType::kGetM: return "GetM";
    case MsgType::kFwdGetS: return "Fwd-GetS";
    case MsgType::kFwdGetM: return "Fwd-GetM";
    case MsgType::kInv: return "Inv";
    case MsgType::kInvAck: return "Inv-Ack";
    case MsgType::kData: return "Data";
    case MsgType::kWbData: return "WB-Data";
  }
  return "?";
}

Interconnect::Interconnect(Engine& engine, const MachineConfig& cfg, Trace* trace)
    : engine_(engine), cfg_(cfg), trace_(trace), handlers_(cfg.cores + 1) {}

void Interconnect::set_handler(CoreId node, MessageHandlerFn handler) {
  assert(node >= 0 && node <= cfg_.cores);
  handlers_[static_cast<std::size_t>(node)] = std::move(handler);
}

int Interconnect::socket_of(CoreId node) const noexcept {
  if (node >= cfg_.cores) return 0;  // directory/LLC homed on socket 0
  const int per_socket = (cfg_.cores + cfg_.sockets - 1) / cfg_.sockets;
  return node / per_socket;
}

Time Interconnect::latency(CoreId src, CoreId dst) const noexcept {
  return socket_of(src) == socket_of(dst) ? cfg_.intra_latency
                                          : cfg_.inter_latency;
}

void Interconnect::send(CoreId src, CoreId dst, Message msg) {
  msg.src = src;
  ++sent_;
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->record(engine_.now(), src,
                   std::string("send ") + msg_type_name(msg.type) + " -> " +
                       std::to_string(dst),
                   msg.addr, msg.requester);
  }
  auto& handler = handlers_[static_cast<std::size_t>(dst)];
  assert(handler);
  engine_.schedule(latency(src, dst), [&handler, msg] { handler(msg); });
}

}  // namespace sbq::sim
