#include "sim/machine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/invariants.hpp"

namespace sbq::sim {

namespace {

// Per-core allocation arenas carve the 40-bit packed-pointer address space
// (see SimSbq's pack_link) into 2^30-word regions: region 0 is the shared
// setup cursor, regions 1..cores belong to the cores, and regions beyond
// are handed out by alloc_region().
constexpr int kArenaBits = 30;
constexpr Addr kMaxRegions = Addr{1} << 10;  // 2^40 / 2^30

constexpr Time kNever = std::numeric_limits<Time>::max();

MachineConfig normalized(MachineConfig cfg) {
  if (cfg.cores < 1) cfg.cores = 1;
  if (cfg.sockets < 1) cfg.sockets = 1;
  if (cfg.dir_slices < 1) cfg.dir_slices = 1;
  if (cfg.dir_slices > cfg.cores) cfg.dir_slices = cfg.cores;
  if (cfg.machine_threads < 1) cfg.machine_threads = 1;
  // A single slice has nothing to run in parallel; normalize before any
  // component copies the config so Core::sharded() agrees machine-wide.
  if (cfg.dir_slices <= 1) cfg.machine_threads = 1;
  if (cfg.machine_threads > cfg.dir_slices) {
    cfg.machine_threads = cfg.dir_slices;
  }
  return cfg;
}

void add_counters(ProtocolCounters& a, const ProtocolCounters& b) {
  a.gets += b.gets;
  a.getm += b.getm;
  a.fwd_gets += b.fwd_gets;
  a.fwd_getm += b.fwd_getm;
  a.inv += b.inv;
  a.inv_ack += b.inv_ack;
  a.wb_data += b.wb_data;
}

void add_counters(HtmCounters& a, const HtmCounters& b) {
  a.calls += b.calls;
  a.attempts += b.attempts;
  a.commits += b.commits;
  a.fallbacks += b.fallbacks;
  a.fallback_cas += b.fallback_cas;
  a.uarch_fix_stalls += b.uarch_fix_stalls;
  for (std::size_t i = 0; i < a.aborts.size(); ++i) a.aborts[i] += b.aborts[i];
  for (std::size_t i = 0; i < a.retry_histogram.size(); ++i) {
    a.retry_histogram[i] += b.retry_histogram[i];
  }
}

void add_counters(PolicyCounters& a, const PolicyCounters& b) {
  a.txn_steps += b.txn_steps;
  a.budget_fallbacks += b.budget_fallbacks;
  a.degraded_fallbacks += b.degraded_fallbacks;
  a.intra_delay_cycles += b.intra_delay_cycles;
  a.post_delay_cycles += b.post_delay_cycles;
}

void add_counters(BasketCounters& a, const BasketCounters& b) {
  a.appends_won += b.appends_won;
  a.appends_lost += b.appends_lost;
  a.stale_tails += b.stale_tails;
  a.closes += b.closes;
  a.occupancy_sum += b.occupancy_sum;
  if (b.occupancy_min < a.occupancy_min) a.occupancy_min = b.occupancy_min;
  if (b.occupancy_max > a.occupancy_max) a.occupancy_max = b.occupancy_max;
  a.extracted += b.extracted;
  a.empty_swaps += b.empty_swaps;
  a.node_reuses += b.node_reuses;
  a.fresh_allocs += b.fresh_allocs;
}

}  // namespace

// Persistent worker pool for the sharded event loop. Windows are short
// (one conservative-lookahead band, tens of microseconds of host work), so
// the handshake is spin-first: run_window() publishes a horizon and bumps
// an atomic epoch; workers spin (with a park-on-cv fallback after a long
// idle stretch, so an idle Machine burns no CPU between run() phases) and
// then run their slice stride. The calling thread participates as the last
// worker — with P participants only P-1 threads are pooled — and then
// spin-waits for the workers' done-counter. Exceptions thrown inside a
// slice (protocol asserts, simulated deadlock detection) are captured and
// rethrown on the coordinating thread.
struct Machine::Pool {
  Pool(Machine* m, int participants) : machine(m) {
    // Never oversubscribe the host: parallel slice execution is a wall-
    // clock optimization, not a semantic one (the merge barrier fixes the
    // event order regardless of who runs which slice), so on a host with
    // fewer CPUs than machine_threads we run fewer — or zero — workers
    // and keep byte-identical results. With 0 workers the caller runs
    // every slice inline and the handshake disappears entirely.
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw < 1) hw = 1;
    nworkers = std::min(participants, hw) - 1;
    threads.reserve(static_cast<std::size_t>(nworkers));
    for (int w = 0; w < nworkers; ++w) {
      threads.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop.store(true, std::memory_order_relaxed);
    }
    cv_start.notify_all();
    for (auto& t : threads) t.join();
  }

  void run_window(Time h) {
    horizon.store(h, std::memory_order_relaxed);
    pending.store(nworkers, std::memory_order_relaxed);
    epoch.fetch_add(1, std::memory_order_release);
    if (sleepers.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(mu);
      cv_start.notify_all();
    }
    // The caller is participant `nworkers`.
    run_stride(nworkers, h);
    while (pending.load(std::memory_order_acquire) != 0) {
      cpu_pause();
    }
    if (error) {
      std::exception_ptr e = error;
      error = nullptr;
      std::rethrow_exception(e);
    }
  }

  void run_stride(int w, Time h) {
    try {
      auto& slices = machine->slices_;
      const std::size_t stride = static_cast<std::size_t>(nworkers) + 1;
      for (std::size_t s = static_cast<std::size_t>(w); s < slices.size();
           s += stride) {
        slices[s].engine->run_until(h);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!error) error = std::current_exception();
    }
  }

  void worker_loop(int w) {
    // The FramePool is thread_local: frames for this worker's slices are
    // allocated and freed here, so the prewarm must run here too.
    if (machine->cfg_.prewarm_frames > 0) {
      detail::FramePool::prewarm(machine->cfg_.prewarm_frames);
    }
    std::uint64_t seen = 0;
    for (;;) {
      // Spin briefly — back-to-back windows arrive within microseconds —
      // then park so an idle machine releases its cores.
      int spins = 0;
      while (epoch.load(std::memory_order_acquire) == seen &&
             !stop.load(std::memory_order_relaxed)) {
        if (++spins < kSpinLimit) {
          cpu_pause();
        } else {
          std::unique_lock<std::mutex> lock(mu);
          sleepers.fetch_add(1, std::memory_order_relaxed);
          cv_start.wait(lock, [&] {
            return stop.load(std::memory_order_relaxed) ||
                   epoch.load(std::memory_order_relaxed) != seen;
          });
          sleepers.fetch_sub(1, std::memory_order_relaxed);
          break;
        }
      }
      if (stop.load(std::memory_order_relaxed)) return;
      seen = epoch.load(std::memory_order_acquire);
      run_stride(w, horizon.load(std::memory_order_relaxed));
      pending.fetch_sub(1, std::memory_order_release);
    }
  }

  static void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  }

  static constexpr int kSpinLimit = 1 << 14;

  Machine* machine;
  int nworkers;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<int> pending{0};
  std::atomic<Time> horizon{0};
  std::atomic<bool> stop{false};
  std::atomic<int> sleepers{0};
  std::mutex mu;
  std::condition_variable cv_start;
  std::exception_ptr error;
};

Machine::Machine(MachineConfig cfg)
    : cfg_(normalized(cfg)), trace_(cfg_.record_trace, cfg_.trace_capacity) {
  if (cfg_.prewarm_frames > 0) {
    detail::FramePool::prewarm(cfg_.prewarm_frames);
  }
  if (cfg_.prewarm_event_nodes > 0 && cfg_.machine_threads == 1) {
    engine_.prewarm_nodes(cfg_.prewarm_event_nodes);
  }
  if (cfg_.check_invariants && cfg_.machine_threads > 1) {
    throw std::runtime_error(
        "Machine: check_invariants is serial-only (slice-local state is "
        "legitimately incoherent mid-window); run with machine_threads=1");
  }
  if (cfg_.alloc_arenas && cfg_.cores > 1000) {
    throw std::runtime_error(
        "Machine: alloc_arenas needs a 2^30-word region per core and the "
        "packed-pointer format caps the machine at 2^40 words (~1000 cores)");
  }
  if (cfg_.machine_threads > 1) {
    if (cfg_.record_trace) {
      throw std::runtime_error(
          "Machine: record_trace is serial-only (the trace ring is a single "
          "globally ordered log); run with machine_threads=1");
    }
    if (cfg_.fault_plan.enabled && cfg_.fault_plan.jitter_active()) {
      throw std::runtime_error(
          "Machine: fault jitter draws from a shared RNG keyed by delivery "
          "order and is serial-only; run with machine_threads=1");
    }
    if (!cfg_.alloc_arenas) {
      throw std::runtime_error(
          "Machine: machine_threads > 1 requires alloc_arenas (mid-run "
          "allocations must be per-core deterministic)");
    }
    if (cfg_.interconnect_model == InterconnectModel::kLink &&
        cfg_.dir_slices != cfg_.sockets) {
      throw std::runtime_error(
          "Machine: the kLink model shards only at dir_slices == sockets "
          "(each slice must own its link-queue rows)");
    }
  }
  if (cfg_.collect_stats && cfg_.machine_threads == 1) {
    stats_ = std::make_unique<Stats>(cfg_.cores, cfg_.track_lines);
  }
  if (cfg_.alloc_arenas) {
    arena_next_.resize(static_cast<std::size_t>(cfg_.cores));
    for (int i = 0; i < cfg_.cores; ++i) {
      arena_next_[static_cast<std::size_t>(i)] = (Addr{1} + static_cast<Addr>(i))
                                                 << kArenaBits;
    }
  }
  const int ds = cfg_.dir_slices;
  cores_per_slice_ = (cfg_.cores + ds - 1) / ds;
  net_ = std::make_unique<Interconnect>(engine_, cfg_, &trace_, &debug_ring_);
  if (cfg_.machine_threads == 1) {
    dirs_.reserve(static_cast<std::size_t>(ds));
    for (int s = 0; s < ds; ++s) {
      const CoreId node = static_cast<CoreId>(cfg_.cores + s);
      dirs_.push_back(
          std::make_unique<Directory>(engine_, *net_, cfg_, &trace_, node));
      Directory* d = dirs_.back().get();
      if (cfg_.check_invariants) {
        net_->set_handler(node, [this, d](const Message& m) {
          d->handle(m);
          check_invariants_now();
        });
      } else {
        net_->set_handler(node, [d](const Message& m) { d->handle(m); });
      }
    }
    cores_.reserve(static_cast<std::size_t>(cfg_.cores));
    for (int i = 0; i < cfg_.cores; ++i) {
      cores_.push_back(std::make_unique<Core>(i, engine_, *net_, cfg_, &trace_,
                                              stats_.get()));
      Core* c = cores_.back().get();
      if (cfg_.check_invariants) {
        net_->set_handler(i, [this, c](const Message& m) {
          c->handle(m);
          check_invariants_now();
        });
      } else {
        net_->set_handler(i, [c](const Message& m) { c->handle(m); });
      }
    }
  } else {
    // Sharded: node -> slice ownership table first (the per-slice
    // interconnects keep a pointer into it, so it must never reallocate).
    node_slice_.resize(static_cast<std::size_t>(cfg_.cores + ds));
    for (int i = 0; i < cfg_.cores; ++i) {
      node_slice_[static_cast<std::size_t>(i)] = i / cores_per_slice_;
    }
    for (int s = 0; s < ds; ++s) {
      node_slice_[static_cast<std::size_t>(cfg_.cores + s)] = s;
    }
    slices_.reserve(static_cast<std::size_t>(ds));
    for (int s = 0; s < ds; ++s) {
      Slice sl;
      sl.engine = std::make_unique<Engine>();
      sl.engine->enable_window_logging();
      sl.ring = std::make_unique<DebugRing>();
      sl.net = std::make_unique<Interconnect>(*sl.engine, cfg_, &trace_,
                                              sl.ring.get());
      sl.net->enable_sharding(s, node_slice_.data());
      if (cfg_.collect_stats) {
        sl.stats = std::make_unique<Stats>(cfg_.cores, cfg_.track_lines);
      }
      slices_.push_back(std::move(sl));
    }
    dirs_.reserve(static_cast<std::size_t>(ds));
    for (int s = 0; s < ds; ++s) {
      const CoreId node = static_cast<CoreId>(cfg_.cores + s);
      Slice& sl = slices_[static_cast<std::size_t>(s)];
      dirs_.push_back(
          std::make_unique<Directory>(*sl.engine, *sl.net, cfg_, &trace_, node));
      Directory* d = dirs_.back().get();
      sl.net->set_handler(node, [d](const Message& m) { d->handle(m); });
    }
    cores_.reserve(static_cast<std::size_t>(cfg_.cores));
    for (int i = 0; i < cfg_.cores; ++i) {
      Slice& sl = slices_[static_cast<std::size_t>(slice_of_core(i))];
      cores_.push_back(std::make_unique<Core>(i, *sl.engine, *sl.net, cfg_,
                                              &trace_, sl.stats.get()));
      Core* c = cores_.back().get();
      sl.net->set_handler(i, [c](const Message& m) { c->handle(m); });
    }
    // Conservative lookahead: the minimum latency any cross-slice message
    // can have. With several slices per socket the minimum hop is
    // intra-socket; with slice == socket it is the cross-socket latency.
    const int per_socket = (cfg_.cores + cfg_.sockets - 1) / cfg_.sockets;
    const auto slice_socket = [&](int s) {
      int first = s * cores_per_slice_;
      if (first > cfg_.cores - 1) first = cfg_.cores - 1;
      return first / per_socket;
    };
    bool shared_socket = false;
    for (int s = 1; s < ds; ++s) {
      if (slice_socket(s) == slice_socket(s - 1)) shared_socket = true;
    }
    lookahead_ = shared_socket ? cfg_.intra_latency : cfg_.inter_latency;
    if (lookahead_ == 0) lookahead_ = 1;
    resolved_.resize(static_cast<std::size_t>(ds));
    cursor_.resize(static_cast<std::size_t>(ds), 0);
    // Floors for the merge scratch, matching the engines' window-log
    // reserves: a steady phase must never grow these (the sharded
    // sim_microbench gate counts every heap allocation).
    for (auto& r : resolved_) r.reserve(std::size_t{1} << 13);
    deliveries_.reserve(std::size_t{1} << 12);
    pool_ = std::make_unique<Pool>(this, cfg_.machine_threads);
  }
  if (cfg_.fault_plan.enabled) {
    one_shots_pending_.store(cfg_.fault_plan.one_shots.size(),
                             std::memory_order_relaxed);
  }
}

Machine::Machine(const MachineSnapshot& snap) : Machine(snap.cfg) {
  engine_.restore_checkpoint(snap.engine);
  net_->restore_state(snap.net);
  assert(snap.directories.size() == dirs_.size());
  for (std::size_t i = 0; i < dirs_.size(); ++i) {
    dirs_[i]->restore_state(snap.directories[i]);
  }
  assert(snap.cores.size() == cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->restore_state(snap.cores[i]);
  }
  trace_ = snap.trace;
  if (stats_ && snap.stats) *stats_ = *snap.stats;
  next_addr_ = snap.next_addr;
  arena_next_ = snap.arena_next;
  region_next_ = snap.region_next;
  spawned_ = snap.spawned;
  finished_.store(snap.finished, std::memory_order_relaxed);
  started_ = snap.started;
  // A started snapshot already fired (or discarded) its one-shots in the
  // machine it was taken from; a fork must not re-fire them.
  if (started_) one_shots_pending_.store(0, std::memory_order_relaxed);
}

MachineSnapshot Machine::snapshot() const {
  if (sharded()) {
    throw std::runtime_error(
        "Machine::snapshot: sharded machines do not snapshot (per-slice "
        "engine state is not captured); warm the serial twin "
        "(machine_threads=1, same dir_slices) and fork from that");
  }
  if (!engine_.idle()) {
    throw std::runtime_error(
        "Machine::snapshot: event queue not drained (call between run() "
        "phases, not mid-simulation)");
  }
  if (!roots_.empty() || spawned_ != finished()) {
    throw std::runtime_error(
        "Machine::snapshot: spawned tasks have not finished");
  }
  if (one_shots_pending_.load(std::memory_order_relaxed) != 0) {
    throw std::runtime_error(
        "Machine::snapshot: scheduled fault one-shots are pending or in "
        "flight; run the machine past them (or drop them from the "
        "FaultPlan) before snapshotting");
  }
  for (const auto& c : cores_) {
    if (!c->quiescent()) {
      throw std::runtime_error(
          "Machine::snapshot: a core holds in-flight protocol or "
          "transaction state");
    }
  }
  MachineSnapshot snap;
  snap.cfg = cfg_;
  snap.engine = engine_.save_checkpoint();
  snap.net = net_->save_state();
  snap.directories.reserve(dirs_.size());
  for (const auto& d : dirs_) snap.directories.push_back(d->save_state());
  snap.cores.reserve(cores_.size());
  for (const auto& c : cores_) snap.cores.push_back(c->save_state());
  snap.trace = trace_;
  if (stats_) snap.stats.emplace(*stats_);
  snap.next_addr = next_addr_;
  snap.arena_next = arena_next_;
  snap.region_next = region_next_;
  snap.spawned = spawned_;
  snap.finished = finished();
  snap.started = started_;
  return snap;
}

MetricsSnapshot Machine::metrics() const {
  MetricsSnapshot snap;
  snap.machine_threads = cfg_.machine_threads;
  snap.fault_injection = cfg_.fault_plan.enabled;
  snap.backpressure = cfg_.link_queue_cap > 0 || cfg_.dir_queue_cap > 0;
  snap.cas_policy_kind = static_cast<int>(cfg_.cas_policy.kind);
  for (const auto& d : dirs_) {
    snap.dir_bp_stalls += d->stats().bp_stalls;
    if (d->stats().queue_peak > snap.dir_queue_peak) {
      snap.dir_queue_peak = d->stats().queue_peak;
    }
  }
  if (slices_.empty()) {
    if (stats_) {
      snap.protocol = stats_->protocol();
      snap.htm = stats_->htm();
      snap.basket = stats_->basket();
      snap.policy = stats_->policy();
    }
    snap.messages = net_->messages_sent();
    snap.link_messages = net_->link_messages();
    snap.link_wait_cycles = net_->link_wait_cycles();
    snap.link_bp_stalls = net_->link_bp_stalls();
    snap.link_queue_peak = net_->link_queue_peak();
    snap.events = engine_.events_processed();
    snap.final_time = engine_.now();
    if (snap.fault_injection) {
      snap.faults.jittered_messages = net_->jittered_messages();
      snap.faults.jitter_cycles = net_->jitter_cycles();
    }
  } else {
    snap.per_slice_events.reserve(slices_.size());
    for (const Slice& sl : slices_) {
      if (sl.stats) {
        add_counters(snap.protocol, sl.stats->protocol());
        add_counters(snap.htm, sl.stats->htm());
        add_counters(snap.basket, sl.stats->basket());
        add_counters(snap.policy, sl.stats->policy());
      }
      snap.messages += sl.net->messages_sent();
      snap.link_messages += sl.net->link_messages();
      snap.link_wait_cycles += sl.net->link_wait_cycles();
      snap.link_bp_stalls += sl.net->link_bp_stalls();
      if (sl.net->link_queue_peak() > snap.link_queue_peak) {
        snap.link_queue_peak = sl.net->link_queue_peak();
      }
      snap.events += sl.engine->events_processed();
      snap.per_slice_events.push_back(sl.engine->events_processed());
    }
    snap.final_time = now();
  }
  if (snap.fault_injection) {
    for (const auto& c : cores_) {
      const CoreStats& cs = c->stats();
      snap.faults.injected_capacity += cs.injected_capacity;
      snap.faults.injected_interrupt += cs.injected_interrupt;
      snap.faults.injected_spurious += cs.injected_spurious;
    }
    snap.faults.one_shots_fired =
        one_shots_fired_.load(std::memory_order_relaxed);
  }
  return snap;
}

Machine::~Machine() {
  pool_.reset();  // join workers before the slices they reference go away
  for (auto h : roots_) {
    if (h) h.destroy();
  }
}

Time Machine::now() const noexcept {
  if (slices_.empty()) return engine_.now();
  Time t = 0;
  for (const Slice& sl : slices_) {
    if (sl.engine->now() > t) t = sl.engine->now();
  }
  return t;
}

Addr Machine::alloc(std::uint64_t words) {
  const Addr base = next_addr_;
  next_addr_ += words;
  if (cfg_.alloc_arenas && next_addr_ > (Addr{1} << kArenaBits)) {
    throw std::runtime_error(
        "Machine::alloc: shared setup region exhausted (2^30 words); use "
        "the per-core overload for data-path allocations");
  }
  return base;
}

Addr Machine::alloc(std::uint64_t words, CoreId core) {
  if (!cfg_.alloc_arenas) return alloc(words);
  Addr& cur = arena_next_.at(static_cast<std::size_t>(core));
  const Addr base = cur;
  cur += words;
  if (cur > (static_cast<Addr>(core) + 2) << kArenaBits) {
    throw std::runtime_error("Machine::alloc: per-core arena exhausted");
  }
  return base;
}

Addr Machine::alloc_region() {
  if (!cfg_.alloc_arenas) {
    throw std::runtime_error(
        "Machine::alloc_region: requires MachineConfig::alloc_arenas");
  }
  const Addr idx = static_cast<Addr>(cfg_.cores) + 1 + region_next_;
  if (idx >= kMaxRegions) {
    throw std::runtime_error(
        "Machine::alloc_region: 40-bit address budget exhausted");
  }
  ++region_next_;
  return idx << kArenaBits;
}

void Machine::spawn(Task<void> task) {
  if (sharded()) {
    throw std::logic_error(
        "Machine::spawn: a sharded machine needs every root pinned to a "
        "core (use spawn(task, core))");
  }
  assert(task.valid());
  auto h = task.release();
  h.promise().on_done = [this] {
    finished_.fetch_add(1, std::memory_order_relaxed);
  };
  roots_.push_back(h);
  root_pins_.push_back(-1);
  ++spawned_;
  if (started_) {
    engine_.schedule(0, [h] { h.resume(); });
  }
}

void Machine::spawn(Task<void> task, CoreId core) {
  assert(task.valid());
  if (core < 0 || core >= cfg_.cores) {
    throw std::logic_error("Machine::spawn: pin core out of range");
  }
  auto h = task.release();
  h.promise().on_done = [this] {
    finished_.fetch_add(1, std::memory_order_relaxed);
  };
  roots_.push_back(h);
  root_pins_.push_back(core);
  ++spawned_;
  if (started_) {
    if (sharded()) {
      Engine& e = *slices_[static_cast<std::size_t>(slice_of_core(core))].engine;
      e.insert_external(now(), global_seq_++, [h] { h.resume(); });
    } else {
      engine_.schedule(0, [h] { h.resume(); });
    }
  }
}

void Machine::start() {
  started_ = true;
  if (!sharded()) {
    for (auto h : roots_) {
      engine_.schedule(0, [h] { h.resume(); });
    }
    // Schedule the fault plan's one-shots now (not in the constructor): a
    // forked machine arrives here with started_ already true, so a warm
    // snapshot's one-shots — fired before the snapshot — never re-fire.
    if (one_shots_pending_.load(std::memory_order_relaxed) != 0) {
      const Time now = engine_.now();
      for (const FaultOneShot& shot : cfg_.fault_plan.one_shots) {
        const Time delay = shot.time > now ? shot.time - now : 0;
        const CoreId target = shot.core;
        const FaultKind kind = shot.kind;
        engine_.schedule(delay, [this, target, kind] {
          one_shots_pending_.fetch_sub(1, std::memory_order_relaxed);
          one_shots_fired_.fetch_add(1, std::memory_order_relaxed);
          if (target >= 0 && target < cfg_.cores) {
            cores_[static_cast<std::size_t>(target)]->inject_fault(kind);
          }
        });
      }
    }
    return;
  }
  // Sharded: materialize the roots into their pinned slices with globally
  // ordered sequence numbers, in spawn order — the same order the serial
  // engine would assign — then the fault one-shots.
  const Time t0 = now();
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    auto h = roots_[i];
    const int s = slice_of_core(root_pins_[i]);
    slices_[static_cast<std::size_t>(s)].engine->insert_external(
        t0, global_seq_++, [h] { h.resume(); });
  }
  if (one_shots_pending_.load(std::memory_order_relaxed) != 0) {
    for (const FaultOneShot& shot : cfg_.fault_plan.one_shots) {
      const Time at = shot.time > t0 ? shot.time : t0;
      const CoreId target = shot.core;
      const FaultKind kind = shot.kind;
      const int s = (target >= 0 && target < cfg_.cores)
                        ? slice_of_core(target)
                        : 0;
      slices_[static_cast<std::size_t>(s)].engine->insert_external(
          at, global_seq_++, [this, target, kind] {
            one_shots_pending_.fetch_sub(1, std::memory_order_relaxed);
            one_shots_fired_.fetch_add(1, std::memory_order_relaxed);
            if (target >= 0 && target < cfg_.cores) {
              cores_[static_cast<std::size_t>(target)]->inject_fault(kind);
            }
          });
    }
  }
}

bool Machine::advance_windows(Time limit) {
  static const bool timing = std::getenv("SBQ_WINDOW_TIMING") != nullptr;
  std::uint64_t n_windows = 0, n_solo = 0, n_records = 0;
  std::uint64_t ns_run = 0, ns_merge = 0;
  auto t_enter = std::chrono::steady_clock::now();
  bool drained = false;
  for (;;) {
    Time t_min = kNever;
    std::size_t active = 0, active_slice = 0;
    for (std::size_t s = 0; s < slices_.size(); ++s) {
      Time t;
      if (slices_[s].engine->peek_next_time(&t) && t < t_min) t_min = t;
    }
    if (t_min == kNever) { drained = true; break; }
    if (t_min > limit) break;
    Time horizon = t_min + (lookahead_ - 1);
    if (horizon < t_min) horizon = kNever;  // overflow guard
    if (horizon > limit) horizon = limit;
    // Slices whose next event lies inside the window. When only one slice
    // is active (convoy phases, warm-up tails) the window runs inline on
    // the coordinating thread — no handshake.
    for (std::size_t s = 0; s < slices_.size(); ++s) {
      Time t;
      if (slices_[s].engine->peek_next_time(&t) && t <= horizon) {
        ++active;
        active_slice = s;
      }
    }
    ++n_windows;
    if (timing) {
      auto t0 = std::chrono::steady_clock::now();
      if (active == 1) {
        ++n_solo;
        slices_[active_slice].engine->run_until(horizon);
      } else {
        pool_->run_window(horizon);
      }
      auto t1 = std::chrono::steady_clock::now();
      for (const Slice& sl : slices_) {
        n_records += sl.engine->window_dispatches().size();
      }
      merge_window();
      auto t2 = std::chrono::steady_clock::now();
      ns_run +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
      ns_merge +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count();
    } else {
      if (active == 1) {
        slices_[active_slice].engine->run_until(horizon);
      } else {
        pool_->run_window(horizon);
      }
      merge_window();
    }
  }
  if (timing && n_windows > 0) {
    auto total = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - t_enter).count();
    std::cerr << "[window-timing] windows=" << n_windows
              << " solo=" << n_solo << " records=" << n_records
              << " run_ms=" << ns_run / 1000000
              << " merge_ms=" << ns_merge / 1000000
              << " total_ms=" << total / 1000000 << "\n";
  }
  return drained;
}

void Machine::merge_window() {
  const std::size_t n_slices = slices_.size();
  constexpr std::uint64_t kBase = Engine::kProvisionalSeqBase;
  constexpr std::uint64_t kUnresolved =
      std::numeric_limits<std::uint64_t>::max();
  deliveries_.clear();
  std::size_t contributors = 0, contributor = 0;
  for (std::size_t s = 0; s < n_slices; ++s) {
    cursor_[s] = 0;
    resolved_[s].assign(slices_[s].engine->window_births(), kUnresolved);
    if (!slices_[s].engine->window_dispatches().empty()) {
      ++contributors;
      contributor = s;
    }
  }
  // Replay one dispatch record: assign definitive seqs to the events it
  // birthed, collect its cross-slice sends, run its ordered host effects.
  auto replay = [&](std::size_t s, const Engine::DispatchRecord& r) {
    Engine& e = *slices_[s].engine;
    for (std::uint32_t i = 0; i < r.ncalls; ++i) {
      const Engine::CallRecord c = e.window_calls()[r.first_call + i];
      switch (c.kind) {
        case Engine::CallKind::kBirth: {
          const std::uint64_t g = global_seq_++;
          resolved_[s][c.payload] = g;
          e.patch_birth(c.payload, g);
          break;
        }
        case Engine::CallKind::kChannel: {
          const Interconnect::ChannelEntry& ch =
              slices_[s].net->channel()[c.payload];
          deliveries_.push_back({ch.dst, ch.msg, ch.arrival, global_seq_++});
          break;
        }
        case Engine::CallKind::kEffect: {
          const Engine::EffectRecord& ef = e.window_effect(c.payload);
          if (effect_handler_) effect_handler_(ef.a, ef.b);
          break;
        }
      }
    }
  };
  if (contributors == 1) {
    // Single-contributor window: the merged order IS the slice's own
    // execution order — replay linearly, no k-way scan.
    for (const Engine::DispatchRecord& r :
         slices_[contributor].engine->window_dispatches()) {
      replay(contributor, r);
    }
  } else if (contributors > 1) {
    // K-way merge of the per-slice dispatch logs by (time, resolved seq) —
    // the global order the serial engine would have processed these events
    // in. Per-slice log order is execution order, so a provisional key's
    // birth record always merges before any dispatch that carries the key.
    for (;;) {
      std::size_t best = n_slices;
      Time best_time = 0;
      std::uint64_t best_key = 0;
      for (std::size_t s = 0; s < n_slices; ++s) {
        const auto& log = slices_[s].engine->window_dispatches();
        if (cursor_[s] >= log.size()) continue;
        const Engine::DispatchRecord& r = log[cursor_[s]];
        std::uint64_t key = r.key;
        if (key >= kBase) {
          key = resolved_[s][key - kBase];
          assert(key != kUnresolved && "dispatch key unresolved at merge");
        }
        if (best == n_slices || r.time < best_time ||
            (r.time == best_time && key < best_key)) {
          best = s;
          best_time = r.time;
          best_key = key;
        }
      }
      if (best == n_slices) break;
      replay(best, slices_[best].engine->window_dispatches()[cursor_[best]]);
      ++cursor_[best];
    }
  }
  // Materialize cross-slice messages into their destination slices. Every
  // arrival lies beyond the window horizon (arrival >= send + lookahead >
  // T + lookahead - 1), so no already-run slice missed one.
  for (const PendingDelivery& d : deliveries_) {
    const int s = node_slice_[static_cast<std::size_t>(d.dst)];
    MessageHandlerFn* h = slices_[static_cast<std::size_t>(s)].net->handler(d.dst);
    const Message msg = d.msg;
    slices_[static_cast<std::size_t>(s)].engine->insert_external(
        d.arrival, d.seq, [h, msg] { (*h)(msg); });
  }
  for (Slice& sl : slices_) {
    sl.engine->clear_window_log();
    sl.net->channel().clear();
  }
}

Time Machine::run() {
  if (!started_) start();
  Time t;
  if (!sharded()) {
    t = engine_.run();
  } else {
    advance_windows(kNever);
    t = now();
  }
  if (finished() != spawned_) {
    // Quiescence watchdog: the event queue drained but simulated threads
    // are still blocked — a deadlock in the simulated program (or a
    // protocol bug that dropped a wakeup). Dump what we know and throw
    // instead of asserting (the default build compiles with NDEBUG) or
    // silently returning a half-finished run.
    dump_debug_state("event queue drained with unfinished tasks");
    throw std::runtime_error(
        "Machine::run: simulated program deadlocked (" +
        std::to_string(finished()) + " of " + std::to_string(spawned_) +
        " tasks finished; debug ring dumped to stderr)");
  }
  // Every root is parked at its final suspend point now: destroy the frames
  // so the frame pool can recycle them for the next batch of spawns (keeps
  // repeated run() phases allocation-free; see bench/sim_microbench.cpp).
  for (auto h : roots_) {
    if (h) h.destroy();
  }
  roots_.clear();
  root_pins_.clear();
  return t;
}

bool Machine::run_until(Time limit) {
  if (!started_) start();
  if (!sharded()) return engine_.run_until(limit);
  return advance_windows(limit);
}

void Machine::check_invariants_now() {
  std::string violation = check_swmr_invariants(dirs_, cores_);
  if (violation.empty()) return;
  dump_debug_state(violation.c_str());
  throw std::logic_error("coherence invariant violated: " + violation);
}

void Machine::dump_debug_state(const char* why) {
  std::cerr << "=== sim debug dump (t=" << now() << "): " << why << " ===\n";
  if (slices_.empty()) {
    debug_ring_.dump(std::cerr);
  } else {
    for (std::size_t s = 0; s < slices_.size(); ++s) {
      std::cerr << "--- slice " << s << " ring ---\n";
      slices_[s].ring->dump(std::cerr);
    }
  }
  if (trace_.enabled()) {
    std::cerr << "--- trace tail ---\n";
    trace_.print(std::cerr);
  }
  std::cerr.flush();
}

}  // namespace sbq::sim
