#include "sim/machine.hpp"

#include <cassert>
#include <iostream>
#include <stdexcept>

#include "sim/invariants.hpp"

namespace sbq::sim {

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg), trace_(cfg.record_trace, cfg.trace_capacity) {
  if (cfg_.collect_stats) {
    stats_ = std::make_unique<Stats>(cfg_.cores, cfg_.track_lines);
  }
  net_ = std::make_unique<Interconnect>(engine_, cfg_, &trace_, &debug_ring_);
  directory_ = std::make_unique<Directory>(engine_, *net_, cfg_, &trace_);
  if (cfg_.check_invariants) {
    net_->set_handler(net_->directory_id(), [this](const Message& m) {
      directory_->handle(m);
      check_invariants_now();
    });
  } else {
    net_->set_handler(net_->directory_id(),
                      [this](const Message& m) { directory_->handle(m); });
  }
  cores_.reserve(static_cast<std::size_t>(cfg_.cores));
  for (int i = 0; i < cfg_.cores; ++i) {
    cores_.push_back(std::make_unique<Core>(i, engine_, *net_, cfg_, &trace_,
                                            stats_.get()));
    Core* c = cores_.back().get();
    if (cfg_.check_invariants) {
      net_->set_handler(i, [this, c](const Message& m) {
        c->handle(m);
        check_invariants_now();
      });
    } else {
      net_->set_handler(i, [c](const Message& m) { c->handle(m); });
    }
  }
  if (cfg_.fault_plan.enabled) {
    one_shots_pending_ = cfg_.fault_plan.one_shots.size();
  }
}

Machine::Machine(const MachineSnapshot& snap) : Machine(snap.cfg) {
  engine_.restore_checkpoint(snap.engine);
  net_->restore_state(snap.net);
  directory_->restore_state(snap.directory);
  assert(snap.cores.size() == cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->restore_state(snap.cores[i]);
  }
  trace_ = snap.trace;
  if (stats_ && snap.stats) *stats_ = *snap.stats;
  next_addr_ = snap.next_addr;
  spawned_ = snap.spawned;
  finished_ = snap.finished;
  started_ = snap.started;
  // A started snapshot already fired (or discarded) its one-shots in the
  // machine it was taken from; a fork must not re-fire them.
  if (started_) one_shots_pending_ = 0;
}

MachineSnapshot Machine::snapshot() const {
  if (!engine_.idle()) {
    throw std::runtime_error(
        "Machine::snapshot: event queue not drained (call between run() "
        "phases, not mid-simulation)");
  }
  if (!roots_.empty() || spawned_ != finished_) {
    throw std::runtime_error(
        "Machine::snapshot: spawned tasks have not finished");
  }
  if (one_shots_pending_ != 0) {
    throw std::runtime_error(
        "Machine::snapshot: scheduled fault one-shots are pending or in "
        "flight; run the machine past them (or drop them from the "
        "FaultPlan) before snapshotting");
  }
  for (const auto& c : cores_) {
    if (!c->quiescent()) {
      throw std::runtime_error(
          "Machine::snapshot: a core holds in-flight protocol or "
          "transaction state");
    }
  }
  MachineSnapshot snap;
  snap.cfg = cfg_;
  snap.engine = engine_.save_checkpoint();
  snap.net = net_->save_state();
  snap.directory = directory_->save_state();
  snap.cores.reserve(cores_.size());
  for (const auto& c : cores_) snap.cores.push_back(c->save_state());
  snap.trace = trace_;
  if (stats_) snap.stats.emplace(*stats_);
  snap.next_addr = next_addr_;
  snap.spawned = spawned_;
  snap.finished = finished_;
  snap.started = started_;
  return snap;
}

MetricsSnapshot Machine::metrics() const {
  MetricsSnapshot snap;
  if (stats_) {
    snap.protocol = stats_->protocol();
    snap.htm = stats_->htm();
    snap.basket = stats_->basket();
  }
  snap.messages = net_->messages_sent();
  snap.link_messages = net_->link_messages();
  snap.link_wait_cycles = net_->link_wait_cycles();
  snap.events = engine_.events_processed();
  snap.final_time = engine_.now();
  snap.fault_injection = cfg_.fault_plan.enabled;
  if (snap.fault_injection) {
    for (const auto& c : cores_) {
      const CoreStats& cs = c->stats();
      snap.faults.injected_capacity += cs.injected_capacity;
      snap.faults.injected_interrupt += cs.injected_interrupt;
      snap.faults.injected_spurious += cs.injected_spurious;
    }
    snap.faults.one_shots_fired = one_shots_fired_;
    snap.faults.jittered_messages = net_->jittered_messages();
    snap.faults.jitter_cycles = net_->jitter_cycles();
  }
  return snap;
}

Machine::~Machine() {
  for (auto h : roots_) {
    if (h) h.destroy();
  }
}

Addr Machine::alloc(std::uint64_t words) {
  const Addr base = next_addr_;
  next_addr_ += words;
  return base;
}

void Machine::spawn(Task<void> task) {
  assert(task.valid());
  auto h = task.release();
  h.promise().on_done = [this] { ++finished_; };
  roots_.push_back(h);
  ++spawned_;
  if (started_) {
    engine_.schedule(0, [h] { h.resume(); });
  }
}

void Machine::start() {
  started_ = true;
  for (auto h : roots_) {
    engine_.schedule(0, [h] { h.resume(); });
  }
  // Schedule the fault plan's one-shots now (not in the constructor): a
  // forked machine arrives here with started_ already true, so a warm
  // snapshot's one-shots — fired before the snapshot — never re-fire.
  if (one_shots_pending_ != 0) {
    const Time now = engine_.now();
    for (const FaultOneShot& shot : cfg_.fault_plan.one_shots) {
      const Time delay = shot.time > now ? shot.time - now : 0;
      const CoreId target = shot.core;
      const FaultKind kind = shot.kind;
      engine_.schedule(delay, [this, target, kind] {
        --one_shots_pending_;
        ++one_shots_fired_;
        if (target >= 0 && target < cfg_.cores) {
          cores_[static_cast<std::size_t>(target)]->inject_fault(kind);
        }
      });
    }
  }
}

Time Machine::run() {
  if (!started_) start();
  const Time t = engine_.run();
  if (finished_ != spawned_) {
    // Quiescence watchdog: the event queue drained but simulated threads
    // are still blocked — a deadlock in the simulated program (or a
    // protocol bug that dropped a wakeup). Dump what we know and throw
    // instead of asserting (the default build compiles with NDEBUG) or
    // silently returning a half-finished run.
    dump_debug_state("event queue drained with unfinished tasks");
    throw std::runtime_error(
        "Machine::run: simulated program deadlocked (" +
        std::to_string(finished_) + " of " + std::to_string(spawned_) +
        " tasks finished; debug ring dumped to stderr)");
  }
  // Every root is parked at its final suspend point now: destroy the frames
  // so the frame pool can recycle them for the next batch of spawns (keeps
  // repeated run() phases allocation-free; see bench/sim_microbench.cpp).
  for (auto h : roots_) {
    if (h) h.destroy();
  }
  roots_.clear();
  return t;
}

bool Machine::run_until(Time limit) {
  if (!started_) start();
  return engine_.run_until(limit);
}

void Machine::check_invariants_now() {
  std::string violation = check_swmr_invariants(*directory_, cores_);
  if (violation.empty()) return;
  dump_debug_state(violation.c_str());
  throw std::logic_error("coherence invariant violated: " + violation);
}

void Machine::dump_debug_state(const char* why) {
  std::cerr << "=== sim debug dump (t=" << engine_.now() << "): " << why
            << " ===\n";
  debug_ring_.dump(std::cerr);
  if (trace_.enabled()) {
    std::cerr << "--- trace tail ---\n";
    trace_.print(std::cerr);
  }
  std::cerr.flush();
}

}  // namespace sbq::sim
