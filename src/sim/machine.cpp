#include "sim/machine.hpp"

#include <cassert>

namespace sbq::sim {

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg), trace_(cfg.record_trace, cfg.trace_capacity) {
  if (cfg_.collect_stats) {
    stats_ = std::make_unique<Stats>(cfg_.cores, cfg_.track_lines);
  }
  net_ = std::make_unique<Interconnect>(engine_, cfg_, &trace_);
  directory_ = std::make_unique<Directory>(engine_, *net_, cfg_, &trace_);
  net_->set_handler(net_->directory_id(),
                    [this](const Message& m) { directory_->handle(m); });
  cores_.reserve(static_cast<std::size_t>(cfg_.cores));
  for (int i = 0; i < cfg_.cores; ++i) {
    cores_.push_back(std::make_unique<Core>(i, engine_, *net_, cfg_, &trace_,
                                            stats_.get()));
    Core* c = cores_.back().get();
    net_->set_handler(i, [c](const Message& m) { c->handle(m); });
  }
}

Machine::Machine(const MachineSnapshot& snap) : Machine(snap.cfg) {
  engine_.restore_checkpoint(snap.engine);
  net_->restore_state(snap.net);
  directory_->restore_state(snap.directory);
  assert(snap.cores.size() == cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->restore_state(snap.cores[i]);
  }
  trace_ = snap.trace;
  if (stats_ && snap.stats) *stats_ = *snap.stats;
  next_addr_ = snap.next_addr;
  spawned_ = snap.spawned;
  finished_ = snap.finished;
  started_ = snap.started;
}

MachineSnapshot Machine::snapshot() const {
  assert(engine_.idle() && "snapshot requires a drained event queue");
  assert(roots_.empty() && spawned_ == finished_ &&
         "snapshot requires every spawned task to have finished");
  MachineSnapshot snap;
  snap.cfg = cfg_;
  snap.engine = engine_.save_checkpoint();
  snap.net = net_->save_state();
  snap.directory = directory_->save_state();
  snap.cores.reserve(cores_.size());
  for (const auto& c : cores_) snap.cores.push_back(c->save_state());
  snap.trace = trace_;
  if (stats_) snap.stats.emplace(*stats_);
  snap.next_addr = next_addr_;
  snap.spawned = spawned_;
  snap.finished = finished_;
  snap.started = started_;
  return snap;
}

MetricsSnapshot Machine::metrics() const {
  MetricsSnapshot snap;
  if (stats_) {
    snap.protocol = stats_->protocol();
    snap.htm = stats_->htm();
    snap.basket = stats_->basket();
  }
  snap.messages = net_->messages_sent();
  snap.link_messages = net_->link_messages();
  snap.link_wait_cycles = net_->link_wait_cycles();
  snap.events = engine_.events_processed();
  snap.final_time = engine_.now();
  return snap;
}

Machine::~Machine() {
  for (auto h : roots_) {
    if (h) h.destroy();
  }
}

Addr Machine::alloc(std::uint64_t words) {
  const Addr base = next_addr_;
  next_addr_ += words;
  return base;
}

void Machine::spawn(Task<void> task) {
  assert(task.valid());
  auto h = task.release();
  h.promise().on_done = [this] { ++finished_; };
  roots_.push_back(h);
  ++spawned_;
  if (started_) {
    engine_.schedule(0, [h] { h.resume(); });
  }
}

Time Machine::run() {
  if (!started_) {
    started_ = true;
    for (auto h : roots_) {
      engine_.schedule(0, [h] { h.resume(); });
    }
  }
  const Time t = engine_.run();
  assert(finished_ == spawned_ && "simulated program deadlocked");
  // Every root is parked at its final suspend point now: destroy the frames
  // so the frame pool can recycle them for the next batch of spawns (keeps
  // repeated run() phases allocation-free; see bench/sim_microbench.cpp).
  for (auto h : roots_) {
    if (h) h.destroy();
  }
  roots_.clear();
  return t;
}

bool Machine::run_until(Time limit) {
  if (!started_) {
    started_ = true;
    for (auto h : roots_) {
      engine_.schedule(0, [h] { h.resume(); });
    }
  }
  return engine_.run_until(limit);
}

}  // namespace sbq::sim
