// FlatMap — open-addressing hash table keyed on Addr.
//
// The simulator's per-line tables (directory lines, core-side lines,
// pending requests, waiters, per-line stats) all key on Addr and share the
// same access pattern: a small, dense, known set of lines (queue head/tail
// words, node cells) hit millions of times. std::unordered_map pays a
// node allocation per entry and a pointer chase per lookup; FlatMap keeps
// entries in one contiguous slot array with linear probing, so the hot
// lookup is typically one cache line.
//
// Design notes:
//  * Power-of-two capacity; slot index via Fibonacci hashing (the
//    multiplicative constant spreads the low entropy of word-addresses).
//  * Linear probing with tombstones; erase() marks the slot and resets the
//    value so owned resources free immediately.
//  * When live + dead slots exceed 7/8 of capacity the table either
//    doubles (live entries justify it) or compacts in place at the same
//    capacity (tombstone-heavy churn) — compaction reuses the existing
//    arrays, so unbounded insert/erase churn never allocates. Both move
//    values: like unordered_map::rehash they invalidate references, so
//    callers must not hold a mapped reference across an insertion (the
//    simulator's call sites are audited for this; the flat_map unit test
//    covers reference stability of non-rehashing ops).
//  * Iteration yields std::pair<Addr, V>& in slot order. Nothing on an
//    output path iterates these tables, so slot order is not
//    schedule-visible (asserted by the byte-identical driver check).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace sbq::sim {

template <typename V>
class FlatMap {
 public:
  using Slot = std::pair<Addr, V>;

  FlatMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  template <bool Const>
  class Iter {
   public:
    using Map = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const Slot, Slot>;
    Iter(Map* m, std::size_t i) : map_(m), i_(i) { skip(); }
    Ref& operator*() const noexcept { return map_->slots_[i_]; }
    Ref* operator->() const noexcept { return &map_->slots_[i_]; }
    Iter& operator++() noexcept {
      ++i_;
      skip();
      return *this;
    }
    bool operator==(const Iter& o) const noexcept { return i_ == o.i_; }
    bool operator!=(const Iter& o) const noexcept { return i_ != o.i_; }
    std::size_t index() const noexcept { return i_; }

   private:
    void skip() noexcept {
      while (i_ < map_->state_.size() && map_->state_[i_] != kFull) ++i_;
    }
    Map* map_;
    std::size_t i_;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() noexcept { return {this, 0}; }
  iterator end() noexcept { return {this, state_.size()}; }
  const_iterator begin() const noexcept { return {this, 0}; }
  const_iterator end() const noexcept { return {this, state_.size()}; }

  iterator find(Addr key) noexcept {
    const std::size_t i = find_index(key);
    return {this, i == kNotFound ? state_.size() : i};
  }
  const_iterator find(Addr key) const noexcept {
    const std::size_t i = find_index(key);
    return {this, i == kNotFound ? state_.size() : i};
  }

  std::size_t count(Addr key) const noexcept {
    return find_index(key) == kNotFound ? 0 : 1;
  }

  V& at(Addr key) noexcept {
    const std::size_t i = find_index(key);
    assert(i != kNotFound && "FlatMap::at: key not present");
    return slots_[i].second;
  }
  const V& at(Addr key) const noexcept {
    const std::size_t i = find_index(key);
    assert(i != kNotFound && "FlatMap::at: key not present");
    return slots_[i].second;
  }

  V& operator[](Addr key) {
    if (state_.empty() || (size_ + dead_ + 1) * 8 > state_.size() * 7) {
      grow();
    }
    const std::size_t mask = state_.size() - 1;
    std::size_t i = slot_hash(key) & mask;
    std::size_t tomb = kNotFound;
    for (;; i = (i + 1) & mask) {
      if (state_[i] == kEmpty) break;
      if (state_[i] == kTomb) {
        if (tomb == kNotFound) tomb = i;
      } else if (slots_[i].first == key) {
        return slots_[i].second;
      }
    }
    if (tomb != kNotFound) {
      i = tomb;
      --dead_;
    }
    state_[i] = kFull;
    slots_[i].first = key;
    ++size_;
    return slots_[i].second;
  }

  std::size_t erase(Addr key) noexcept {
    const std::size_t i = find_index(key);
    if (i == kNotFound) return 0;
    erase_slot(i);
    return 1;
  }

  void erase(iterator it) noexcept { erase_slot(it.index()); }

  // Pre-size so `n` entries fit without rehashing (like unordered_map::
  // reserve). The sim_microbench zero-alloc gate pre-sizes the directory
  // and core line tables for a run's whole address range this way.
  void reserve(std::size_t n) {
    std::size_t cap = state_.empty() ? kMinCapacity : state_.size();
    while ((n + 1) * 8 > cap * 7) cap *= 2;
    if (cap > state_.size()) rehash_to(cap);
  }

 private:
  // Snapshot serialization (sim/serialize.cpp) persists the exact slot
  // layout: slot indices feed probe chains, so an "equivalent" reinsertion
  // could change the capacity/probe profile vs the in-memory fork path.
  friend struct SnapshotSerde;

  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2, kUnplaced = 3 };
  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr std::size_t kMinCapacity = 16;

  static std::size_t slot_hash(Addr key) noexcept {
    return static_cast<std::size_t>(
        (key * std::uint64_t{0x9E3779B97F4A7C15}) >> 16);
  }

  std::size_t find_index(Addr key) const noexcept {
    if (state_.empty()) return kNotFound;
    const std::size_t mask = state_.size() - 1;
    for (std::size_t i = slot_hash(key) & mask;; i = (i + 1) & mask) {
      if (state_[i] == kEmpty) return kNotFound;
      if (state_[i] == kFull && slots_[i].first == key) return i;
    }
  }

  void erase_slot(std::size_t i) noexcept {
    state_[i] = kTomb;
    slots_[i].second = V{};  // release owned resources eagerly
    --size_;
    ++dead_;
    // A tombstone directly before an empty slot terminates every probe
    // chain that crosses it, so it (and any tombstone run ending there) can
    // revert to empty. This keeps erase-heavy churn (pending requests,
    // waiter lists) from reaching the compaction threshold in the common
    // case; runs pinned against a live slot are handled by the occasional
    // allocation-free compact_in_place().
    const std::size_t mask = state_.size() - 1;
    if (state_[(i + 1) & mask] == kEmpty) {
      std::size_t j = i;
      while (state_[j] == kTomb) {
        state_[j] = kEmpty;
        --dead_;
        j = (j - 1) & mask;
      }
    }
  }

  void grow() {
    std::size_t cap = state_.empty() ? kMinCapacity : state_.size();
    // Double only when live entries justify it; a tombstone-heavy table
    // compacts in place at the same capacity, without allocating.
    while ((size_ + 1) * 8 > cap * 7) cap *= 2;
    if (cap == state_.size()) {
      compact_in_place();
    } else {
      rehash_to(cap);
    }
  }

  // Drop every tombstone and re-place the live entries, reusing the
  // existing arrays: long insert/erase churn therefore never allocates
  // (the whole-machine zero-alloc gate relies on this). Like any rehash it
  // moves values, under the same no-references-across-insertion contract.
  void compact_in_place() {
    const std::size_t mask = state_.size() - 1;
    for (auto& s : state_) {
      if (s == kTomb) s = kEmpty;
      else if (s == kFull) s = kUnplaced;
    }
    dead_ = 0;
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] != kUnplaced) continue;
      Slot cur = std::move(slots_[i]);
      state_[i] = kEmpty;
      for (;;) {
        std::size_t j = slot_hash(cur.first) & mask;
        while (state_[j] == kFull) j = (j + 1) & mask;
        if (state_[j] == kEmpty) {
          slots_[j] = std::move(cur);
          state_[j] = kFull;
          break;
        }
        // An unplaced entry occupies the target slot: displace it and
        // place it next (every displacement settles one entry for good).
        Slot tmp = std::move(slots_[j]);
        slots_[j] = std::move(cur);
        state_[j] = kFull;
        cur = std::move(tmp);
      }
    }
  }

  void rehash_to(std::size_t cap) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_state = std::move(state_);
    slots_ = std::vector<Slot>(cap);  // default-construct: V may be move-only
    state_.assign(cap, kEmpty);
    dead_ = 0;
    const std::size_t mask = cap - 1;
    for (std::size_t s = 0; s < old_state.size(); ++s) {
      if (old_state[s] != kFull) continue;
      std::size_t i = slot_hash(old_slots[s].first) & mask;
      while (state_[i] != kEmpty) i = (i + 1) & mask;
      state_[i] = kFull;
      slots_[i] = std::move(old_slots[s]);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> state_;
  std::size_t size_ = 0;
  std::size_t dead_ = 0;  // tombstones
};

}  // namespace sbq::sim
