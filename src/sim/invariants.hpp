// Runtime coherence invariant checking (opt-in via
// MachineConfig::check_invariants; always compiled, so it works in the
// default RelWithDebInfo build where asserts are dead).
//
// After every delivered protocol message the machine can verify the
// single-writer/multiple-reader contract between the directory's metadata
// and the cores' private caches. The checks are written against the
// protocol's *stable plus legal-transient* states — messages in flight mean
// a core may lag the directory (an Inv not yet delivered, a hand-off GetM
// not yet completed), so the checker only asserts directions that hold at
// every message boundary:
//
//   1. SWMR: at most one core holds a line Modified; while one does, no
//      other core holds it Shared or Owned.
//   2. Directory owner validity: a line the directory tracks as M/O names
//      an in-range owner that either holds the line M/O or has its own
//      request in flight on it (the non-blocking hand-off window).
//   3. Sharer validity: every directory-tracked sharer either holds the
//      line S/O or has a request in flight on it (data still traveling).
//
// The deliberately *unchecked* direction — "core-valid implies
// directory-sharer" — is legitimately violated while Invs are in flight
// (the directory clears its sharer set when it sends the Invs, before the
// sharers drop their copies).
//
// check_swmr_invariants returns an empty string when every invariant
// holds, else a human-readable description of the first violation.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace sbq::sim {

class Core;
class Directory;

std::string check_swmr_invariants(
    const Directory& dir, const std::vector<std::unique_ptr<Core>>& cores);

// Multi-slice overload: each address is homed in exactly one directory
// slice (home_slice(a) = a % dir_slices), so checking every slice's line
// table against the full core set covers the whole address space.
std::string check_swmr_invariants(
    const std::vector<std::unique_ptr<Directory>>& dirs,
    const std::vector<std::unique_ptr<Core>>& cores);

}  // namespace sbq::sim
