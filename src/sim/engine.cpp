#include "sim/engine.hpp"

#include <utility>

namespace sbq::sim {

void Engine::schedule(Time delay, Action action) {
  queue_.push(Event{now_ + delay, next_seq_++, std::move(action)});
}

Time Engine::run() {
  while (!queue_.empty()) {
    // Moving out of the priority queue requires a const_cast dance; copy the
    // small fields and move the action via top() + pop().
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.action();
  }
  return now_;
}

bool Engine::run_until(Time limit) {
  while (!queue_.empty()) {
    if (queue_.top().time > limit) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.action();
  }
  return true;
}

}  // namespace sbq::sim
