#include "sim/engine.hpp"

#include <cassert>

namespace sbq::sim {

Engine::Engine() : wheel_(std::make_unique<Slot[]>(kWheelSlots)) {}

Engine::~Engine() {
  // Destroy (without running) any events still pending; slab storage is
  // reclaimed by the slabs_ vector.
  for (std::size_t w = 0; w < kOccWords; ++w) {
    std::uint64_t bits = occ_[w];
    while (bits != 0) {
      const std::size_t idx = (w << 6) + std::countr_zero(bits);
      bits &= bits - 1;
      for (Node* n = wheel_[idx].head; n != nullptr; n = n->next)
        n->run_and_destroy(n, /*run=*/false);
    }
  }
  for (Node* n : overflow_) n->run_and_destroy(n, /*run=*/false);
}

void Engine::refill_slab() {
  ++alloc_.slab_refills;
  slabs_.push_back(std::make_unique<Node[]>(kSlabNodes));
  Node* chunk = slabs_.back().get();
  for (std::size_t i = 0; i < kSlabNodes; ++i) release_node(&chunk[i]);
}

void Engine::prewarm_nodes(std::size_t n) {
  while (node_capacity() < n) refill_slab();
}

void Engine::insert_slot_by_seq(Node* n) noexcept {
  const std::size_t idx = static_cast<std::size_t>(n->time) & kWheelMask;
  Slot& s = wheel_[idx];
  ++wheel_count_;
  if (s.head == nullptr) {
    n->next = nullptr;
    s.head = s.tail = n;
    mark(idx);
    return;
  }
  // Same slot => same time (window invariant), so order purely by seq.
  assert(s.head->time == n->time);
  if (n->seq < s.head->seq) {
    n->next = s.head;
    s.head = n;
    return;
  }
  if (s.tail->seq < n->seq) {
    n->next = nullptr;
    s.tail->next = n;
    s.tail = n;
    return;
  }
  Node* p = s.head;
  while (p->next->seq < n->seq) p = p->next;
  n->next = p->next;
  p->next = n;
}

void Engine::drain_overflow(Time base) {
  while (!overflow_.empty() && overflow_.front()->time < base + kWheelSlots) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Node* n = overflow_.back();
    overflow_.pop_back();
    insert_slot_by_seq(n);
  }
}

std::size_t Engine::first_occupied(std::size_t from) const noexcept {
  const std::size_t w0 = from >> 6;
  if (const std::uint64_t word = occ_[w0] >> (from & 63); word != 0)
    return from + static_cast<std::size_t>(std::countr_zero(word));
  for (std::size_t i = 1; i < kOccWords; ++i) {
    const std::size_t w = (w0 + i) & (kOccWords - 1);
    if (occ_[w] != 0)
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(occ_[w]));
  }
  // Wrapped all the way: the hit is in the low bits of the starting word
  // (slots cyclically before `from`, i.e. times in the next wheel lap).
  const std::uint64_t low =
      occ_[w0] & ((std::uint64_t{1} << (from & 63)) - 1);
  assert(low != 0 && "first_occupied called with empty wheel");
  return (w0 << 6) + static_cast<std::size_t>(std::countr_zero(low));
}

Time Engine::next_event_time() {
  drain_overflow(now_);
  if (wheel_count_ != 0) {
    next_idx_ = first_occupied(static_cast<std::size_t>(now_) & kWheelMask);
    return wheel_[next_idx_].head->time;
  }
  // Every pending event is >= now_ + kWheelSlots: report the overflow
  // minimum without advancing the window (run_until must not move the
  // clock when it bails out at the limit).
  return overflow_.front()->time;
}

void Engine::dispatch_at(Time t) {
  if (wheel_count_ == 0) {
    // Far-future hop: nothing lies in (now_, t), so sliding the window
    // straight to `t` preserves the (time, seq) dispatch order.
    now_ = t;
    drain_overflow(now_);
    next_idx_ = first_occupied(static_cast<std::size_t>(now_) & kWheelMask);
  }
  step_at(next_idx_);
}

void Engine::step_at(std::size_t idx) {
  Slot& s = wheel_[idx];
  Node* n = s.head;
  s.head = n->next;
  if (s.head == nullptr) {
    s.tail = nullptr;
    clear_mark(idx);
  }
  --wheel_count_;
  now_ = n->time;
  ++processed_;
  if (logging_) {
    // Record the dispatch and the range of calls the callable makes.
    // Dispatch is not reentrant, so back() stays valid across the run.
    dispatches_.push_back(
        {n->time, n->seq, static_cast<std::uint32_t>(calls_.size()), 0});
    if (n->seq >= kProvisionalSeqBase) {
      // Born and consumed within this window: drop the patch target (the
      // node is recycled the moment the callable returns).
      birth_node_[n->seq - kProvisionalSeqBase] = nullptr;
    }
    n->run_and_destroy(n, /*run=*/true);
    dispatches_.back().ncalls =
        static_cast<std::uint32_t>(calls_.size()) - dispatches_.back().first_call;
    release_node(n);
    return;
  }
  // The callable may re-enter schedule(); the node is already off its slot
  // list and is recycled only after the callable finishes.
  n->run_and_destroy(n, /*run=*/true);
  release_node(n);
}

void Engine::enable_window_logging() {
  logging_ = true;
  // Warm the log vectors so typical windows never grow them; growth past
  // these sizes is geometric and one-time, so the steady-state alloc gates
  // still pass after the first (cold) phase.
  dispatches_.reserve(std::size_t{1} << 12);
  calls_.reserve(std::size_t{1} << 13);
  effects_.reserve(std::size_t{1} << 10);
  birth_node_.reserve(std::size_t{1} << 13);
}

Engine::Checkpoint Engine::save_checkpoint() const {
  assert(idle() && "checkpoint requires a drained event queue");
  return Checkpoint{now_, next_seq_, processed_, alloc_};
}

void Engine::restore_checkpoint(const Checkpoint& c) {
  assert(idle() && "restore requires a drained event queue");
  now_ = c.now;
  next_seq_ = c.next_seq;
  processed_ = c.processed;
  alloc_ = c.alloc;
  // Wheel and occupancy bitmap are empty at idle; slot lookup is keyed on
  // absolute time, so restoring now_ fully re-anchors the window.
  next_idx_ = static_cast<std::size_t>(now_) & kWheelMask;
}

Time Engine::run() {
  while (!idle()) dispatch_at(next_event_time());
  return now_;
}

bool Engine::run_until(Time limit) {
  while (!idle()) {
    const Time t = next_event_time();
    if (t > limit) return false;
    dispatch_at(t);
  }
  return true;
}

}  // namespace sbq::sim
