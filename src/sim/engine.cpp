#include "sim/engine.hpp"

namespace sbq::sim {

Engine::~Engine() {
  // Destroy (without running) any events still pending; slab storage is
  // reclaimed by the slabs_ vector.
  for (Entry& e : heap_) e.node->run_and_destroy(e.node, /*run=*/false);
}

void Engine::refill_slab() {
  ++alloc_.slab_refills;
  slabs_.push_back(std::make_unique<Node[]>(kSlabNodes));
  Node* chunk = slabs_.back().get();
  for (std::size_t i = 0; i < kSlabNodes; ++i) release_node(&chunk[i]);
}

void Engine::step() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  now_ = e.time;
  ++processed_;
  // The callable may re-enter schedule(); the entry is already off the heap
  // and the node is recycled only after the callable finishes.
  e.node->run_and_destroy(e.node, /*run=*/true);
  release_node(e.node);
}

Time Engine::run() {
  while (!heap_.empty()) step();
  return now_;
}

bool Engine::run_until(Time limit) {
  while (!heap_.empty()) {
    if (heap_.front().time > limit) return false;
    step();
  }
  return true;
}

}  // namespace sbq::sim
