// Point-to-point interconnect with pluggable topology.
//
// Models the paper's assumptions (§3.1): point-to-point communication,
// multiple in-flight messages (not a broadcast bus), with per-hop latency
// that is small on-chip and several times larger across sockets (§4.3).
// Ordering between a given (src, dst) pair is preserved (messages sent
// earlier arrive no later), which the protocol's stall-and-queue logic
// relies on for determinism.
//
// Two topology models, selected via MachineConfig::interconnect_model:
//
//   kFlat — the original latency matrix: every hop costs intra_latency or
//           inter_latency and bandwidth is unlimited.
//   kLink — each directed socket pair owns a link with finite bandwidth.
//           A link serializes messages: it is held for link_occupancy
//           cycles per message, and a message that finds the link busy
//           waits in a FIFO occupancy queue behind earlier traffic. The
//           queue is represented by the link's busy_until horizon — a
//           message departs at max(now, busy_until), advances busy_until
//           by link_occupancy, and arrives occupancy + inter_latency
//           cycles after departing. FIFO per link plus deterministic
//           (time, seq) event ordering keeps per-pair ordering intact.
//           Intra-socket messages still use the flat intra_latency: the
//           on-chip mesh is not the bottleneck §3.1 models.
#pragma once

#include <vector>

#include "sim/engine.hpp"
#include "sim/inline_function.hpp"
#include "sim/message.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

class Trace;
class DebugRing;

// Delivery handlers capture at most a couple of pointers ([this] of a core
// or directory, a test probe's references); keeping them inline removes
// the std::function indirection from every message hop.
using MessageHandlerFn = InlineFunction<void(const Message&), 32>;

class Interconnect {
 public:
  // Node ids 0..cores-1 are cores; id `cores` is the directory/LLC, which
  // is homed on socket 0.
  // `debug_ring`, when non-null, records every send into a small
  // preallocated POD ring for post-mortem dumps (watchdog / invariant
  // checker) independent of the opt-in Trace.
  Interconnect(Engine& engine, const MachineConfig& cfg, Trace* trace,
               DebugRing* debug_ring = nullptr);

  void set_handler(CoreId node, MessageHandlerFn handler);
  // Registered delivery handler for `node` (stable address for the machine
  // to capture in cross-slice delivery closures).
  MessageHandlerFn* handler(CoreId node) noexcept {
    return &handlers_[static_cast<std::size_t>(node)];
  }

  void send(CoreId src, CoreId dst, Message msg);

  // Divergence-bisector hook (src/replay/divergence.cpp): called on every
  // send with the same fields the DebugRing records. Null by default — one
  // predictable branch on the send path when unset, so the goldens and the
  // zero-alloc gates are unaffected. The observer must not re-enter the
  // interconnect.
  using SendObserverFn = void (*)(void* ctx, Time t, CoreId src, CoreId dst,
                                  const Message& msg);
  void set_send_observer(SendObserverFn fn, void* ctx) noexcept {
    send_observer_ = fn;
    send_observer_ctx_ = ctx;
  }

  // Sharded machine: this interconnect instance belongs to slice
  // `my_slice`; `node_slice` maps every node id (cores + directory slices)
  // to its owning slice. A send whose destination lives on another slice
  // is computed (delay, link accounting) as usual but buffered in
  // channel() instead of scheduled; the Machine forwards it at the next
  // merge barrier with its merged seq.
  void enable_sharding(int my_slice, const int* node_slice) noexcept {
    my_slice_ = my_slice;
    node_slice_ = node_slice;
    channel_.reserve(std::size_t{1} << 10);
  }
  struct ChannelEntry {
    CoreId dst = -1;
    Message msg;
    Time arrival = 0;
  };
  std::vector<ChannelEntry>& channel() noexcept { return channel_; }

  int socket_of(CoreId node) const noexcept;
  // Uncontended hop cost (the full kLink delay additionally depends on the
  // link's occupancy queue at send time).
  Time latency(CoreId src, CoreId dst) const noexcept;
  CoreId directory_id() const noexcept { return cfg_.cores; }

  std::uint64_t messages_sent() const noexcept { return sent_; }
  // kLink counters: messages that crossed a socket link, and the total
  // cycles those messages spent queued behind earlier link traffic (zero
  // under kFlat).
  std::uint64_t link_messages() const noexcept { return link_msgs_; }
  std::uint64_t link_wait_cycles() const noexcept { return link_wait_cycles_; }
  // Backpressure accounting (link_queue_cap > 0 only): sends that found
  // >= cap messages queued on their link, and the deepest queue observed.
  std::uint64_t link_bp_stalls() const noexcept { return link_bp_stalls_; }
  std::uint64_t link_queue_peak() const noexcept { return link_queue_peak_; }
  // Fault-plan message jitter (zero unless fault_plan.jitter_active()).
  std::uint64_t jittered_messages() const noexcept { return jittered_msgs_; }
  std::uint64_t jitter_cycles() const noexcept { return jitter_cycles_; }

  // Schedule-visible state for Machine::snapshot()/fork(). Restore is only
  // valid against an Interconnect built from the same MachineConfig (link
  // array shape must match).
  struct State {
    std::uint64_t sent = 0;
    std::uint64_t link_msgs = 0;
    std::uint64_t link_wait_cycles = 0;
    std::uint64_t link_bp_stalls = 0;
    std::uint64_t link_queue_peak = 0;
    std::vector<Time> link_busy_until;  // row-major [src_socket][dst_socket]
    // Jitter machinery (empty/zero unless jitter is active).
    std::uint64_t jitter_rng_state = 0;
    std::uint64_t jittered_msgs = 0;
    std::uint64_t jitter_cycles = 0;
    std::vector<Time> last_arrival;  // row-major [src_node][dst_node]
  };
  State save_state() const;
  void restore_state(const State& s);

 private:
  // One directed link per socket pair, row-major [src_socket][dst_socket].
  // Diagonal entries exist but are never used (intra-socket is flat).
  struct Link {
    Time busy_until = 0;  // cycle at which the link frees up
  };

  Link& link(int src_socket, int dst_socket) noexcept {
    return links_[static_cast<std::size_t>(src_socket) *
                      static_cast<std::size_t>(cfg_.sockets) +
                  static_cast<std::size_t>(dst_socket)];
  }

  Engine& engine_;
  MachineConfig cfg_;
  Trace* trace_;
  DebugRing* debug_ring_;
  SendObserverFn send_observer_ = nullptr;
  void* send_observer_ctx_ = nullptr;
  std::vector<MessageHandlerFn> handlers_;
  std::vector<Link> links_;  // empty under kFlat
  std::uint64_t sent_ = 0;
  std::uint64_t link_msgs_ = 0;
  std::uint64_t link_wait_cycles_ = 0;
  std::uint64_t link_bp_stalls_ = 0;
  std::uint64_t link_queue_peak_ = 0;
  // Sharding (null/-1 on a serial machine).
  int my_slice_ = -1;
  const int* node_slice_ = nullptr;
  std::vector<ChannelEntry> channel_;
  // Bounded message-latency jitter (fault_plan.jitter_active() only).
  // Jitter only ever *adds* delay, and every send clamps its arrival to
  // the pair's previous arrival, so the protocol's per-(src,dst) FIFO
  // assumption survives any jitter draw. The clamp table is preallocated
  // [(cores+1)²] and only consulted when jitter is active.
  bool jitter_on_ = false;
  std::uint64_t jitter_rng_state_ = 0;
  std::uint32_t jitter_threshold_ = 0;
  std::uint64_t jittered_msgs_ = 0;
  std::uint64_t jitter_cycles_ = 0;
  std::vector<Time> last_arrival_;  // row-major [src_node][dst_node]
};

}  // namespace sbq::sim
