// Point-to-point interconnect with a NUMA latency matrix.
//
// Models the paper's assumptions (§3.1): point-to-point communication,
// multiple in-flight messages (not a broadcast bus), with per-hop latency
// that is small on-chip and several times larger across sockets (§4.3).
// Bandwidth is unlimited; ordering between a given (src, dst) pair is
// preserved (messages sent earlier arrive no later), which the protocol's
// stall-and-queue logic relies on for determinism.
#pragma once

#include <vector>

#include "sim/engine.hpp"
#include "sim/inline_function.hpp"
#include "sim/message.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

class Trace;

// Delivery handlers capture at most a couple of pointers ([this] of a core
// or directory, a test probe's references); keeping them inline removes
// the std::function indirection from every message hop.
using MessageHandlerFn = InlineFunction<void(const Message&), 32>;

class Interconnect {
 public:
  // Node ids 0..cores-1 are cores; id `cores` is the directory/LLC, which
  // is homed on socket 0.
  Interconnect(Engine& engine, const MachineConfig& cfg, Trace* trace);

  void set_handler(CoreId node, MessageHandlerFn handler);

  void send(CoreId src, CoreId dst, Message msg);

  int socket_of(CoreId node) const noexcept;
  Time latency(CoreId src, CoreId dst) const noexcept;
  CoreId directory_id() const noexcept { return cfg_.cores; }

  std::uint64_t messages_sent() const noexcept { return sent_; }

 private:
  Engine& engine_;
  MachineConfig cfg_;
  Trace* trace_;
  std::vector<MessageHandlerFn> handlers_;
  std::uint64_t sent_ = 0;
};

}  // namespace sbq::sim
