// A simulated core with its private cache.
//
// The core executes one simulated thread (a coroutine); its memory
// operations are awaitables that drive the coherence protocol:
//
//   load/store        — GetS / GetM on miss, hit otherwise
//   cas/faa/swap      — §3.2 semantics: acquire M ownership, stall incoming
//                       forwards until the RMW completes (the serialized
//                       hand-off chain of Figure 2a)
//   txcas             — §4's TxCAS as an HTM transaction: shared-state read,
//                       intra-transaction delay, exclusive-state write;
//                       requester-wins conflicts; nested-abort distinction;
//                       post-abort delay + re-check; bounded retries with a
//                       plain-CAS fallback (wait-freedom)
//   think             — local computation (no memory traffic)
//
// Protocol reactions implemented in cache.cpp:
//   * Inv on a transactionally read line → concurrent abort (Figure 2b)
//   * Fwd-GetS on a line with a pending transactional GetM → tripped writer
//     (Figure 3); with MachineConfig::uarch_fix the forward is stalled until
//     commit instead (§3.4.1)
//   * Fwd-GetM during any pending request → stalled until the request and
//     its operation complete (the §3.2 stall that serializes RMWs)
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>

#include "sim/engine.hpp"
#include "sim/flat_map.hpp"
#include "sim/inline_function.hpp"
#include "sim/inline_vec.hpp"
#include "sim/interconnect.hpp"
#include "sim/message.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

class Trace;

// Inline callables for the request path (no heap allocation; a capture
// that outgrows its capacity is a compile error, not a silent box). The
// capacities are sized for the largest current capture with headroom:
//   Done*Fn  — operation-completion callbacks (awaiter pointer + handle).
//   ContFn   — acquire() continuations; the largest captures a Done*Fn
//              plus the operation's arguments.
//   WaiterFn — re-acquire closures parked on a pending line; each wraps a
//              full ContFn.
using DoneValFn = InlineFunction<void(Value), 32>;
using DoneVoidFn = InlineFunction<void(), 32>;
using DoneBoolFn = InlineFunction<void(bool), 32>;
using ContFn = InlineFunction<void(), 104>;
using WaiterFn = InlineFunction<void(), 192>;

struct CoreStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t rmws = 0;
  std::uint64_t txcas_calls = 0;
  std::uint64_t txcas_success = 0;
  std::uint64_t txcas_fail = 0;
  std::uint64_t txcas_attempts = 0;     // transactional attempts started
  std::uint64_t nested_aborts = 0;      // conflict during read/delay phase
  std::uint64_t tripped_aborts = 0;     // Fwd-GetS hit the commit window
  std::uint64_t uarch_fix_stalls = 0;   // §3.4.1 fix engaged
  std::uint64_t self_aborts = 0;        // value mismatch inside the txn
  std::uint64_t fallbacks = 0;          // plain-CAS fallback taken
  // Fault injection (zero unless MachineConfig::fault_plan fires here):
  std::uint64_t injected_capacity = 0;
  std::uint64_t injected_interrupt = 0;
  std::uint64_t injected_spurious = 0;
  // Graceful degradation: plain-CAS taken after K non-conflict aborts
  // (TxCasConfig::max_nonconflict_aborts) — disjoint from `fallbacks`.
  std::uint64_t fallback_cas = 0;
};

class Core {
 public:
  Core(CoreId id, Engine& engine, Interconnect& net, const MachineConfig& cfg,
       Trace* trace, Stats* metrics = nullptr);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  CoreId id() const noexcept { return id_; }
  Time now() const noexcept { return engine_.now(); }
  const CoreStats& stats() const noexcept { return stats_; }
  // Metrics registry this core reports into (the machine-wide instance on
  // a serial machine, the owning slice's instance on a sharded one).
  Stats* metrics() const noexcept { return metrics_; }
  // True on a sharded (machine_threads > 1) machine: host-side state that
  // other slices also read must go through the ordered effects log
  // (log_effect) instead of being mutated inline.
  bool sharded() const noexcept { return cfg_.machine_threads > 1; }
  // Append an ordered host effect to this slice's window log; the Machine
  // replays effects in merged global order at the next barrier.
  void log_effect(std::uint64_t a, std::uint64_t b) { engine_.log_effect(a, b); }
  // Home directory node for `a` (the single directory when dir_slices==1).
  CoreId dir_node(Addr a) const noexcept {
    return cfg_.dir_slices > 1
               ? dir_ + static_cast<CoreId>(a %
                                            static_cast<Addr>(cfg_.dir_slices))
               : dir_;
  }

  // ---- callback-style operation starters (cache/core internals) ----
  void start_load(Addr a, DoneValFn done);
  void start_store(Addr a, Value v, DoneVoidFn done);
  enum class Rmw : std::uint8_t { kCas, kFaa, kSwap };
  // CAS: arg0 = expected, arg1 = desired, completes with 1/0.
  // FAA: arg0 = addend, completes with the old value.
  // SWAP: arg0 = new value, completes with the old value.
  void start_rmw(Rmw kind, Addr a, Value arg0, Value arg1, DoneValFn done);
  void start_txcas(Addr a, Value expected, Value desired, TxCasConfig cfg,
                   DoneBoolFn done);

  // Network entry point (registered with the interconnect).
  void handle(const Message& msg);

  // Fault injection entry point (Machine one-shots; rate-based injection is
  // internal). Aborts the in-flight transaction with the given cause — a
  // no-op when the core is not mid-transaction, like a real timer interrupt
  // landing between transactions.
  void inject_fault(FaultKind kind);

  // ---- awaitables for coroutine programs ----
  struct ValueAwaiter {
    Core* core;
    int kind;  // 0=load, 1=cas, 2=faa, 3=swap
    Addr addr;
    Value a0, a1;
    Value result = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    Value await_resume() const noexcept { return result; }
  };
  struct VoidAwaiter {
    Core* core;
    int kind;  // 0=store, 1=think
    Addr addr;
    Value v;
    Time cycles;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  struct TxCasAwaiter {
    Core* core;
    Addr addr;
    Value expected, desired;
    TxCasConfig cfg;
    bool result = false;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    bool await_resume() const noexcept { return result; }
  };

  ValueAwaiter load(Addr a) { return {this, 0, a, 0, 0}; }
  ValueAwaiter cas(Addr a, Value expected, Value desired) {
    return {this, 1, a, expected, desired};
  }
  ValueAwaiter faa(Addr a, Value delta) { return {this, 2, a, delta, 0}; }
  ValueAwaiter swap(Addr a, Value v) { return {this, 3, a, v, 0}; }
  VoidAwaiter store(Addr a, Value v) { return {this, 0, a, v, 0}; }
  VoidAwaiter think(Time cycles) { return {this, 1, 0, 0, cycles}; }
  TxCasAwaiter txcas(Addr a, Value expected, Value desired,
                     TxCasConfig cfg = {}) {
    return {this, a, expected, desired, cfg};
  }

  // Pre-size the private-cache line table for `n` distinct lines (the
  // pending/waiter tables stay small: their churn is tombstone-cleaned).
  // Setup-time allocation; see Machine::reserve_lines.
  void reserve_lines(std::size_t n) { lines_.reserve(n); }

  // Test/bench introspection.
  enum class LineState : std::uint8_t { kInvalid, kShared, kModified, kOwned };
  LineState line_state(Addr a) const;
  bool has_pending(Addr a) const { return pending_.count(a) != 0; }

 private:
  friend struct ValueAwaiter;

  struct Line {
    LineState state = LineState::kInvalid;
    Value value = 0;
  };

 public:
  // True when the core holds no in-flight protocol or transaction state:
  // no pending request, no parked waiters, no active TxCAS. Only a
  // quiescent core can be snapshotted — everything else (cache lines,
  // stats, the delay-jitter PRNG) is plain value state.
  bool quiescent() const noexcept {
    return pending_.empty() && waiters_.empty() && !txn_.active &&
           txn_op_ == nullptr;
  }

  // Schedule-visible state for Machine::snapshot()/fork(); valid only at
  // quiescent(). The jitter PRNG is included because think()-delay jitter
  // draws from it in program order.
  struct State {
    FlatMap<Line> lines;
    CoreStats stats;
    std::uint64_t delay_jitter_state = 0;
    // Rate-based fault-injection PRNG (draws once per transactional
    // attempt); carried so forked repeats replay byte-identically.
    std::uint64_t fault_rng_state = 0;
    // Persistent contention-policy history (adaptive policies draw delays
    // from it in program order); carried for the same reason.
    ContentionPolicy::State policy_state;
  };
  State save_state() const;
  void restore_state(const State& s);

 private:

  // One outstanding coherence request (GetS or GetM) of this core.
  struct Pending {
    bool want_m = false;
    bool got_data = false;
    Value data = 0;
    int acks_expected = -1;  // unknown until Data arrives
    int acks_got = 0;
    bool locked = false;            // completed, op executing: stall forwards
    bool inv_after_data = false;    // Inv arrived while GetS in flight
    CoreId deferred_inv_requester = -1;
    bool txn_write = false;         // this GetM carries a transactional write
    InlineVec<Message, 16> stalled_fwds;
    ContFn on_complete;
  };

  // TxCAS transaction bookkeeping (one per core; cores run one thread).
  struct Txn {
    bool active = false;
    bool in_write_phase = false;
    Addr addr = 0;
    bool read_marked = false;  // addr is in the (single-line) read set
    std::uint64_t token = 0;   // generation; bumping cancels timers
  };

  // -- op plumbing (core.cpp) --
  void acquire(Addr a, bool want_m, ContFn cont);
  void issue_request(Addr a, bool want_m, ContFn cont);
  void finish_request(Addr a);       // data+acks all in: install the line
  void release_request(Addr a);      // op done: answer stalls, wake waiters
  void run_waiters(Addr a);

  // -- txcas state machine (core.cpp) --
  // One live TxCAS per core (each core runs one simulated thread), so the
  // operation record lives in a per-core slot instead of a shared_ptr.
  // Completion callbacks that may fire after the op finished (stale GetS /
  // GetM completions of aborted attempts) carry the addr and attempt token
  // by value and validate the token before touching the slot.
  struct TxCasOp {
    Addr addr = 0;
    Value expected = 0;
    Value desired = 0;
    TxCasConfig cfg;
    // The retry brain (common/contention.hpp): per-call counters (attempt
    // number, non-conflict aborts, fallback budget) live inside `policy`,
    // re-armed by start_txcas; `policy_state` is the *persistent* per-core
    // history (failure level, jitter stream) that survives across calls
    // and rides through snapshot/fork via Core::State.
    ContentionPolicy policy;
    ContentionPolicy::State policy_state;
    DoneBoolFn done;
  };
  void txcas_attempt(TxCasOp* op);
  void txcas_on_read_ready(TxCasOp* op, Addr a, std::uint64_t token);
  void txcas_enter_write(TxCasOp* op);
  void txcas_commit(TxCasOp* op);
  // Called from message handling on conflicts; `cause` attributes the abort
  // in the metrics registry (kind 0 = read/delay phase, 1 = write phase).
  void txcas_abort(int kind, AbortCause cause);
  void txcas_post_abort(TxCasOp* op);
  // Plain-CAS fallback; `degraded` distinguishes the non-conflict-abort
  // degradation path (fallback_cas) from the attempt-budget one (fallbacks).
  void txcas_fallback(TxCasOp* op, bool degraded);
  // Deliver an injected abort to the in-flight transaction (no-op without
  // one). Maps FaultKind to AbortCause and counts per kind.
  void deliver_injected_fault(FaultKind kind);

  // -- protocol message handling (cache.cpp) --
  void on_data(const Message& msg);
  void on_inv_ack(const Message& msg);
  void on_inv(const Message& msg);
  void on_fwd_gets(const Message& msg);
  void on_fwd_getm(const Message& msg);
  void answer_fwd_gets(const Message& msg);
  void answer_fwd_getm(const Message& msg);
  bool fwd_predates_pending_request(Addr a, const Pending& p) const;
  // True if the message concerns a line in the transaction's footprint and
  // the transaction must abort (requester-wins).
  void maybe_txn_conflict_on_loss(Addr a, bool losing_all_permissions);

  CoreId id_;
  Engine& engine_;
  Interconnect& net_;
  MachineConfig cfg_;
  Trace* trace_;
  Stats* metrics_;  // machine-wide registry; may be null
  CoreId dir_;

  FlatMap<Line> lines_;
  FlatMap<Pending> pending_;
  FlatMap<InlineVec<WaiterFn, 4>> waiters_;
  Txn txn_;
  std::uint64_t delay_jitter_state_ = 0x9e3779b97f4a7c15ULL;
  // Rate-based fault injection: per-core SplitMix64 stream seeded from
  // (fault_plan.seed, id) plus cumulative uint32 thresholds so one draw
  // per transactional attempt selects capacity / interrupt / spurious /
  // none (thresholds all zero when rates are inactive — one compare).
  std::uint64_t fault_rng_state_ = 0;
  std::uint32_t fault_cap_t_ = 0;
  std::uint32_t fault_int_t_ = 0;
  std::uint32_t fault_spur_t_ = 0;
  TxCasOp txcas_op_;          // per-core operation slot
  TxCasOp* txn_op_ = nullptr; // points at txcas_op_ while a txn is active
  CoreStats stats_;
};

}  // namespace sbq::sim
