// A simulated core with its private cache.
//
// The core executes one simulated thread (a coroutine); its memory
// operations are awaitables that drive the coherence protocol:
//
//   load/store        — GetS / GetM on miss, hit otherwise
//   cas/faa/swap      — §3.2 semantics: acquire M ownership, stall incoming
//                       forwards until the RMW completes (the serialized
//                       hand-off chain of Figure 2a)
//   txcas             — §4's TxCAS as an HTM transaction: shared-state read,
//                       intra-transaction delay, exclusive-state write;
//                       requester-wins conflicts; nested-abort distinction;
//                       post-abort delay + re-check; bounded retries with a
//                       plain-CAS fallback (wait-freedom)
//   think             — local computation (no memory traffic)
//
// Protocol reactions implemented in cache.cpp:
//   * Inv on a transactionally read line → concurrent abort (Figure 2b)
//   * Fwd-GetS on a line with a pending transactional GetM → tripped writer
//     (Figure 3); with MachineConfig::uarch_fix the forward is stalled until
//     commit instead (§3.4.1)
//   * Fwd-GetM during any pending request → stalled until the request and
//     its operation complete (the §3.2 stall that serializes RMWs)
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/interconnect.hpp"
#include "sim/message.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

class Trace;

struct CoreStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t rmws = 0;
  std::uint64_t txcas_calls = 0;
  std::uint64_t txcas_success = 0;
  std::uint64_t txcas_fail = 0;
  std::uint64_t txcas_attempts = 0;     // transactional attempts started
  std::uint64_t nested_aborts = 0;      // conflict during read/delay phase
  std::uint64_t tripped_aborts = 0;     // Fwd-GetS hit the commit window
  std::uint64_t uarch_fix_stalls = 0;   // §3.4.1 fix engaged
  std::uint64_t self_aborts = 0;        // value mismatch inside the txn
  std::uint64_t fallbacks = 0;          // plain-CAS fallback taken
};

class Core {
 public:
  Core(CoreId id, Engine& engine, Interconnect& net, const MachineConfig& cfg,
       Trace* trace, Stats* metrics = nullptr);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  CoreId id() const noexcept { return id_; }
  Time now() const noexcept { return engine_.now(); }
  const CoreStats& stats() const noexcept { return stats_; }

  // ---- callback-style operation starters (cache/core internals) ----
  void start_load(Addr a, std::function<void(Value)> done);
  void start_store(Addr a, Value v, std::function<void()> done);
  enum class Rmw : std::uint8_t { kCas, kFaa, kSwap };
  // CAS: arg0 = expected, arg1 = desired, completes with 1/0.
  // FAA: arg0 = addend, completes with the old value.
  // SWAP: arg0 = new value, completes with the old value.
  void start_rmw(Rmw kind, Addr a, Value arg0, Value arg1,
                 std::function<void(Value)> done);
  void start_txcas(Addr a, Value expected, Value desired, TxCasConfig cfg,
                   std::function<void(bool)> done);

  // Network entry point (registered with the interconnect).
  void handle(const Message& msg);

  // ---- awaitables for coroutine programs ----
  struct ValueAwaiter {
    Core* core;
    int kind;  // 0=load, 1=cas, 2=faa, 3=swap
    Addr addr;
    Value a0, a1;
    Value result = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    Value await_resume() const noexcept { return result; }
  };
  struct VoidAwaiter {
    Core* core;
    int kind;  // 0=store, 1=think
    Addr addr;
    Value v;
    Time cycles;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  struct TxCasAwaiter {
    Core* core;
    Addr addr;
    Value expected, desired;
    TxCasConfig cfg;
    bool result = false;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    bool await_resume() const noexcept { return result; }
  };

  ValueAwaiter load(Addr a) { return {this, 0, a, 0, 0}; }
  ValueAwaiter cas(Addr a, Value expected, Value desired) {
    return {this, 1, a, expected, desired};
  }
  ValueAwaiter faa(Addr a, Value delta) { return {this, 2, a, delta, 0}; }
  ValueAwaiter swap(Addr a, Value v) { return {this, 3, a, v, 0}; }
  VoidAwaiter store(Addr a, Value v) { return {this, 0, a, v, 0}; }
  VoidAwaiter think(Time cycles) { return {this, 1, 0, 0, cycles}; }
  TxCasAwaiter txcas(Addr a, Value expected, Value desired,
                     TxCasConfig cfg = {}) {
    return {this, a, expected, desired, cfg};
  }

  // Test/bench introspection.
  enum class LineState : std::uint8_t { kInvalid, kShared, kModified, kOwned };
  LineState line_state(Addr a) const;
  bool has_pending(Addr a) const { return pending_.count(a) != 0; }

 private:
  friend struct ValueAwaiter;

  struct Line {
    LineState state = LineState::kInvalid;
    Value value = 0;
  };

  // One outstanding coherence request (GetS or GetM) of this core.
  struct Pending {
    bool want_m = false;
    bool got_data = false;
    Value data = 0;
    int acks_expected = -1;  // unknown until Data arrives
    int acks_got = 0;
    bool locked = false;            // completed, op executing: stall forwards
    bool inv_after_data = false;    // Inv arrived while GetS in flight
    CoreId deferred_inv_requester = -1;
    bool txn_write = false;         // this GetM carries a transactional write
    std::vector<Message> stalled_fwds;
    std::function<void()> on_complete;
  };

  // TxCAS transaction bookkeeping (one per core; cores run one thread).
  struct Txn {
    bool active = false;
    bool in_write_phase = false;
    Addr addr = 0;
    bool read_marked = false;  // addr is in the (single-line) read set
    std::uint64_t token = 0;   // generation; bumping cancels timers
  };

  // -- op plumbing (core.cpp) --
  void acquire(Addr a, bool want_m, std::function<void()> cont);
  void issue_request(Addr a, bool want_m, std::function<void()> cont);
  void finish_request(Addr a);       // data+acks all in: install the line
  void release_request(Addr a);      // op done: answer stalls, wake waiters
  void run_waiters(Addr a);

  // -- txcas state machine (core.cpp) --
  struct TxCasOp;
  void txcas_attempt(std::shared_ptr<TxCasOp> op);
  void txcas_on_read_ready(std::shared_ptr<TxCasOp> op);
  void txcas_enter_write(std::shared_ptr<TxCasOp> op);
  void txcas_commit(std::shared_ptr<TxCasOp> op);
  // Called from message handling on conflicts; `cause` attributes the abort
  // in the metrics registry (kind 0 = read/delay phase, 1 = write phase).
  void txcas_abort(int kind, AbortCause cause);
  void txcas_post_abort(std::shared_ptr<TxCasOp> op);
  void txcas_fallback(std::shared_ptr<TxCasOp> op);

  // -- protocol message handling (cache.cpp) --
  void on_data(const Message& msg);
  void on_inv_ack(const Message& msg);
  void on_inv(const Message& msg);
  void on_fwd_gets(const Message& msg);
  void on_fwd_getm(const Message& msg);
  void answer_fwd_gets(const Message& msg);
  void answer_fwd_getm(const Message& msg);
  bool fwd_predates_pending_request(Addr a, const Pending& p) const;
  // True if the message concerns a line in the transaction's footprint and
  // the transaction must abort (requester-wins).
  void maybe_txn_conflict_on_loss(Addr a, bool losing_all_permissions);

  CoreId id_;
  Engine& engine_;
  Interconnect& net_;
  MachineConfig cfg_;
  Trace* trace_;
  Stats* metrics_;  // machine-wide registry; may be null
  CoreId dir_;

  std::unordered_map<Addr, Line> lines_;
  std::unordered_map<Addr, Pending> pending_;
  std::unordered_map<Addr, std::vector<std::function<void()>>> waiters_;
  Txn txn_;
  std::uint64_t delay_jitter_state_ = 0x9e3779b97f4a7c15ULL;
  std::shared_ptr<TxCasOp> txn_op_;  // live TxCAS operation, if any
  CoreStats stats_;
};

}  // namespace sbq::sim
