// Stable binary serialization of MachineSnapshot — the durable half of the
// warm-start story (docs/performance.md "Warm-start cache").
//
// A snapshot captured by Machine::snapshot() is a plain value; this module
// turns it into a versioned little-endian blob and back, so a warmed prefill
// can be paid once per (config, workload) *ever* instead of once per
// process. A forked machine built from a decoded snapshot replays
// byte-identically to one forked from the in-memory snapshot (gated by
// tests/snapshot_serde_test.cpp and the cached golden checks).
//
// Format: magic + schema version + cache key, then u8-tagged sections
// (config, engine checkpoint, interconnect, directories, cores, stats,
// allocator cursors, queue host words), then an FNV-1a checksum over every
// preceding byte. Explicit section tags plus the version stamp mean a
// schema bump *rejects* old blobs instead of misreading them; decode never
// throws — any structural problem (truncation, corruption, stale version,
// foreign key) returns false and the caller warms up cold.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace sbq::sim {

// Bump on ANY change to the encoding or to the schedule-visible state it
// captures (new MachineConfig fields, State-struct layout changes, …).
// Stale-version blobs are rejected at decode and garbage-collected by
// scripts/snapshot_cache.sh --prune.
inline constexpr std::uint32_t kSnapshotSchemaVersion = 3;

// True when a machine built from `cfg` produces snapshots this module can
// round-trip: serial (sharded machines refuse to snapshot anyway), no trace
// ring (debug state, deliberately not captured), canonical Inv order (the
// legacy bucket-chain side tables embed libstdc++ internals and are a
// diffing tool, not a schedule worth persisting).
bool snapshot_cacheable(const MachineConfig& cfg) noexcept;

// FNV-1a64 digest of `cfg`'s canonical encoding — the MachineConfig
// component of snapshot-cache keys. Because it hashes the exact bytes the
// blob's config section carries, any config field that affects the encoding
// automatically affects the key; there is no second field list to drift.
std::uint64_t machine_config_digest(const MachineConfig& cfg);

// Encode `snap` (plus the owning queue's host-side words — see
// simq::HostWords) into a self-checking blob stamped with `key`. Returns an
// empty vector when the snapshot holds unserializable state (non-empty
// legacy inv-order tables).
std::vector<std::uint8_t> encode_snapshot_blob(
    const MachineSnapshot& snap, const std::vector<std::uint64_t>& host_words,
    std::uint64_t key);

// Decode a blob produced by encode_snapshot_blob under the same schema
// version and `key`. On success fills `snap` + `host_words` and returns
// true; on any mismatch (magic, version, key, checksum, truncation, section
// shape) returns false without touching partial state into the outputs'
// final values being trusted — callers treat false as a cache miss.
bool decode_snapshot_blob(const std::vector<std::uint8_t>& blob,
                          std::uint64_t key, MachineSnapshot& snap,
                          std::vector<std::uint64_t>& host_words);

}  // namespace sbq::sim
