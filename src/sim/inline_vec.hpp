// InlineVec — a small vector with inline storage for the common case.
//
// Stall queues and waiter lists on the core request path hold at most a
// handful of entries (one stalled forward per contending core round, one
// waiter per simulated thread per line), but std::vector heap-allocates on
// the first push_back and re-allocates as protocol bursts churn the list.
// InlineVec keeps the first N elements in the object; longer bursts spill
// to a doubling heap buffer (counted by the sim_microbench global-alloc
// gate, so a spill that becomes steady-state traffic fails the bench).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sbq::sim {

template <typename T, std::size_t N>
class InlineVec {
 public:
  InlineVec() = default;

  InlineVec(InlineVec&& other) noexcept { steal(other); }
  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      clear_and_release();
      steal(other);
    }
    return *this;
  }
  InlineVec(const InlineVec&) = delete;
  InlineVec& operator=(const InlineVec&) = delete;
  ~InlineVec() { clear_and_release(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }
  T& operator[](std::size_t i) noexcept { return data()[i]; }

  void push_back(T value) {
    if (size_ == cap_) grow();
    ::new (static_cast<void*>(data() + size_)) T(std::move(value));
    ++size_;
  }

  void clear() noexcept {
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) d[i].~T();
    size_ = 0;
  }

 private:
  T* data() noexcept {
    return heap_ != nullptr ? heap_
                            : std::launder(reinterpret_cast<T*>(inline_));
  }
  const T* data() const noexcept {
    return heap_ != nullptr
               ? heap_
               : std::launder(reinterpret_cast<const T*>(inline_));
  }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T),
                                              std::align_val_t{alignof(T)}));
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(d[i]));
      d[i].~T();
    }
    release_heap();
    heap_ = fresh;
    cap_ = new_cap;
  }

  void release_heap() noexcept {
    if (heap_ != nullptr) {
      ::operator delete(heap_, std::align_val_t{alignof(T)});
      heap_ = nullptr;
    }
  }

  void clear_and_release() noexcept {
    clear();
    release_heap();
    cap_ = N;
  }

  void steal(InlineVec& other) noexcept {
    static_assert(std::is_nothrow_move_constructible_v<T>);
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = N;
      other.size_ = 0;
    } else {
      T* src = other.data();
      T* dst = data();
      for (std::size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(dst + i)) T(std::move(src[i]));
        src[i].~T();
      }
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace sbq::sim
