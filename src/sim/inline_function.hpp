// InlineFunction — a move-only callable wrapper that never heap-allocates.
//
// The simulator's request path used to carry continuations in
// std::function, whose small-buffer capacity (16 bytes on libstdc++) is
// exceeded by almost every protocol continuation, so steady-state traffic
// paid one heap allocation per hop. InlineFunction stores the callable in
// an in-object buffer sized by the template parameter and *refuses to
// compile* when a capture does not fit: growth of a hot-path capture is a
// build error, not a silent allocation (the same design as the engine's
// event nodes, which the whole-machine gate in sim_microbench enforces at
// run time).
//
// Semantics: move-only (captures may own move-only state), nullable,
// invocable via operator(). Moved-from objects are empty. Unlike
// std::function, invoking an empty InlineFunction is undefined (assert in
// debug builds) — the simulator never stores "maybe" callbacks.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sbq::sim {

template <typename Sig, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction& operator=(F&& fn) {
    reset();
    emplace(std::forward<F>(fn));
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()(Args... args) {
    assert(vtable_ != nullptr && "invoking empty InlineFunction");
    return vtable_->invoke(buf_, std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void* buf, Args&&... args);
    void (*destroy)(void* buf) noexcept;
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
  };

  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable capture exceeds InlineFunction capacity — grow "
                  "the capacity constant at the typedef, do not box");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    static_assert(std::is_nothrow_move_constructible_v<Fn>);
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
    static const VTable vt{
        [](void* buf, Args&&... args) -> R {
          return (*std::launder(reinterpret_cast<Fn*>(buf)))(
              std::forward<Args>(args)...);
        },
        [](void* buf) noexcept { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
        [](void* dst, void* src) noexcept {
          Fn* s = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
    };
    vtable_ = &vt;
  }

  void move_from(InlineFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(buf_, other.buf_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace sbq::sim
