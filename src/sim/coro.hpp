// Minimal lazy coroutine task used for simulated threads.
//
// Simulated programs (the queue algorithms re-expressed over simulated
// memory) are coroutines; every memory operation is an awaitable that
// suspends the coroutine until the coherence transaction completes in the
// event engine. Task<T> supports nesting with symmetric transfer, so a
// simulated basket_insert can be an ordinary sub-coroutine.
#pragma once

#include <array>
#include <coroutine>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <utility>
#include <vector>

#include "sim/inline_function.hpp"

namespace sbq::sim {

template <typename T>
class Task;

namespace detail {

// Frame pool for simulated-thread coroutines. Queue operations nest
// sub-coroutines (enqueue -> protect -> try_append ...), so steady-state
// traffic creates and destroys one frame per operation; recycling frames
// through size-class freelists removes that heap churn (the whole-machine
// allocs/event = 0 gate in sim_microbench). Pools are thread_local because
// the parallel sweep runner drives one machine per thread, and a frame is
// always freed on the thread that allocated it (machines never migrate).
class FramePool {
 public:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = 32;  // pool frames up to 2 KiB

  static void* allocate(std::size_t n) {
    const std::size_t cls = (n + kGranularity - 1) / kGranularity;
    if (cls < kClasses) {
      auto& bucket = pools().by_class[cls];
      if (!bucket.empty()) {
        void* p = bucket.back();
        bucket.pop_back();
        return p;
      }
      return ::operator new(cls * kGranularity);
    }
    return ::operator new(n);
  }

  static void deallocate(void* p, std::size_t n) noexcept {
    const std::size_t cls = (n + kGranularity - 1) / kGranularity;
    if (cls < kClasses) {
      pools().by_class[cls].push_back(p);
      return;
    }
    ::operator delete(p);
  }

  // Fill every size class of the calling thread's pool to at least
  // `frames_per_class` free frames (and reserve the freelist vectors), so
  // later phases never allocate as long as the number of live frames per
  // class stays under the floor. The cold phase only warms the pool to its
  // own high-water mark, which a differently-seeded steady phase can
  // exceed — the allocation gates (sim_microbench) prewarm instead of
  // relying on that (MachineConfig::prewarm_frames).
  static void prewarm(std::size_t frames_per_class) {
    auto& ps = pools();
    for (std::size_t cls = 1; cls < kClasses; ++cls) {
      auto& bucket = ps.by_class[cls];
      bucket.reserve(frames_per_class);
      while (bucket.size() < frames_per_class) {
        bucket.push_back(::operator new(cls * kGranularity));
      }
    }
  }

 private:
  struct Pools {
    std::array<std::vector<void*>, kClasses> by_class;
    ~Pools() {
      for (auto& bucket : by_class) {
        for (void* p : bucket) ::operator delete(p);
      }
    }
  };
  static Pools& pools() {
    static thread_local Pools tp;
    return tp;
  }
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  // Set on root tasks by the machine ([this] capture — never allocates).
  InlineFunction<void(), 16> on_done;

  // Coroutine frames are allocated through the promise: route them to the
  // per-thread frame pool.
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::deallocate(p, n);
  }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.on_done) p.on_done();
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  [[noreturn]] void unhandled_exception() const noexcept { std::terminate(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) noexcept { value = std::move(v); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  std::coroutine_handle<promise_type> handle() const noexcept { return handle_; }
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

  // Awaiting a task starts it and resumes the awaiter when it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;  // symmetric transfer into the child
      }
      T await_resume() noexcept { return std::move(child.promise().value); }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() const noexcept {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  std::coroutine_handle<promise_type> handle() const noexcept { return handle_; }
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace sbq::sim
