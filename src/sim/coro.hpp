// Minimal lazy coroutine task used for simulated threads.
//
// Simulated programs (the queue algorithms re-expressed over simulated
// memory) are coroutines; every memory operation is an awaitable that
// suspends the coroutine until the coherence transaction completes in the
// event engine. Task<T> supports nesting with symmetric transfer, so a
// simulated basket_insert can be an ordinary sub-coroutine.
#pragma once

#include <coroutine>
#include <cstdlib>
#include <exception>
#include <functional>
#include <utility>

namespace sbq::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::function<void()> on_done;  // set on root tasks by the machine

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.on_done) p.on_done();
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  [[noreturn]] void unhandled_exception() const noexcept { std::terminate(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) noexcept { value = std::move(v); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  std::coroutine_handle<promise_type> handle() const noexcept { return handle_; }
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

  // Awaiting a task starts it and resumes the awaiter when it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;  // symmetric transfer into the child
      }
      T await_resume() noexcept { return std::move(child.promise().value); }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() const noexcept {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  std::coroutine_handle<promise_type> handle() const noexcept { return handle_; }
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace sbq::sim
