#include "sim/trace.hpp"

#include <cstdio>
#include <iomanip>
#include <ostream>
#include <string_view>

namespace sbq::sim {

void Trace::push(const TraceEvent& e) {
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[next_] = e;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void Trace::record(Time t, CoreId node, const char* what, Addr addr,
                   std::int64_t detail) {
  if (!enabled_) return;
  push(TraceEvent{t, node, what, addr, detail});
}

void Trace::record_send(Time t, CoreId src, CoreId dst, MsgType type,
                        Addr addr, std::int64_t requester) {
  if (!enabled_) return;
  TraceEvent e{t, src, "send", addr, requester};
  e.is_send = true;
  e.msg_type = type;
  e.dst = dst;
  push(e);
}

std::vector<TraceEvent> Trace::events() const {
  if (dropped_ == 0) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

void Trace::print(std::ostream& os, Addr only_addr) const {
  for (const auto& e : events()) {
    if (only_addr != 0 && e.addr != only_addr) continue;
    os << std::setw(8) << e.time << "  node " << std::setw(3) << e.node
       << "  ";
    if (e.is_send) {
      os << "send " << msg_type_name(e.msg_type) << " -> " << e.dst;
    } else {
      os << e.what;
    }
    os << "  addr=" << e.addr << "  detail=" << e.detail << "\n";
  }
}

namespace {
// The event vocabulary is ASCII, but escape defensively so the JSONL stays
// well-formed whatever string a future event uses.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}
}  // namespace

void Trace::write_jsonl(std::ostream& os, Addr only_addr) const {
  for (const auto& e : events()) {
    if (only_addr != 0 && e.addr != only_addr) continue;
    os << "{\"t\":" << e.time << ",\"node\":" << e.node << ",\"event\":";
    if (e.is_send) {
      // msg_type_name() is ASCII and needs no escaping.
      os << "\"send " << msg_type_name(e.msg_type) << " -> " << e.dst << '"';
    } else {
      write_json_string(os, e.what);
    }
    os << ",\"addr\":" << e.addr << ",\"detail\":" << e.detail << "}\n";
  }
}

void DebugRing::dump(std::ostream& os) const {
  const std::uint64_t cap = ring_.size();
  const std::uint64_t n = recorded_ < cap ? recorded_ : cap;
  os << "debug ring: last " << n << " of " << recorded_
     << " interconnect messages (oldest first)\n";
  const std::uint64_t first = recorded_ - n;
  for (std::uint64_t i = first; i < recorded_; ++i) {
    const DebugRingEntry& e = ring_[i % cap];
    os << "  t=" << std::setw(8) << e.time << "  " << std::setw(3) << e.src
       << " -> " << std::setw(3) << e.dst << "  " << msg_type_name(e.type)
       << "  addr=" << e.addr << "  value=" << e.value << "\n";
  }
}

}  // namespace sbq::sim
