#include "sim/trace.hpp"

#include <iomanip>
#include <ostream>

namespace sbq::sim {

void Trace::record(Time t, CoreId node, std::string what, Addr addr,
                   std::int64_t detail) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{t, node, std::move(what), addr, detail});
}

void Trace::print(std::ostream& os, Addr only_addr) const {
  for (const auto& e : events_) {
    if (only_addr != 0 && e.addr != only_addr) continue;
    os << std::setw(8) << e.time << "  node " << std::setw(3) << e.node << "  "
       << e.what << "  addr=" << e.addr << "  detail=" << e.detail << "\n";
  }
}

}  // namespace sbq::sim
