// Machine: assembles engine + interconnect + directory + cores, provides a
// word allocator for simulated data structures, and runs simulated-thread
// coroutines to completion.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/coro.hpp"
#include "sim/core.hpp"
#include "sim/directory.hpp"
#include "sim/engine.hpp"
#include "sim/interconnect.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

// Checkpoint of a quiescent machine (see Machine::snapshot): every piece of
// schedule-visible state — clock/seq stream, interconnect link horizons,
// directory lines, per-core caches, counters, trace ring, allocator cursor.
// A snapshot is a plain value: copyable, and safe to fork from concurrently
// (fork only reads it), so one warmed prefill can seed every repeat of a
// sweep cell across worker threads.
struct MachineSnapshot {
  MachineConfig cfg;
  Engine::Checkpoint engine;
  Interconnect::State net;
  Directory::State directory;
  std::vector<Core::State> cores;
  Trace trace;
  std::optional<Stats> stats;
  Addr next_addr = 1;
  std::size_t spawned = 0;
  std::size_t finished = 0;
  bool started = false;
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg = {});
  // Fork: build a machine that continues exactly where `snap` left off —
  // same clock, same seq stream, same cache/directory/link state — so a
  // forked run replays byte-identically to the machine the snapshot was
  // taken from continuing in place.
  explicit Machine(const MachineSnapshot& snap);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Capture the machine's schedule-visible state. Requires quiescence: the
  // event queue drained (run() returned) and every core free of in-flight
  // protocol or transaction state — i.e. call it between run() phases, not
  // mid-simulation. Simulated memory contents (directory lines + caches)
  // carry over, so a queue prefilled before snapshot() is prefilled in
  // every fork. Throws std::runtime_error (always compiled, not an assert)
  // when called on a non-quiescent machine or while scheduled fault
  // one-shots are pending or in flight.
  MachineSnapshot snapshot() const;
  static std::unique_ptr<Machine> fork(const MachineSnapshot& snap) {
    return std::make_unique<Machine>(snap);
  }

  Engine& engine() noexcept { return engine_; }
  Trace& trace() noexcept { return trace_; }
  // Metrics registry; null when MachineConfig::collect_stats is false.
  Stats* stats() noexcept { return stats_.get(); }
  const Stats* stats() const noexcept { return stats_.get(); }
  // Flattened counter snapshot (all-zero blocks when stats are disabled)
  // plus engine/interconnect totals — what sweep cells put into
  // BENCH_*.json. Callable at any point; counters are cumulative.
  MetricsSnapshot metrics() const;
  Directory& directory() noexcept { return *directory_; }
  Interconnect& interconnect() noexcept { return *net_; }
  Core& core(int i) { return *cores_.at(static_cast<std::size_t>(i)); }
  int core_count() const noexcept { return cfg_.cores; }
  const MachineConfig& config() const noexcept { return cfg_; }

  // Allocate `words` consecutive simulated words (each its own line);
  // returns the address of the first. Word 0 is reserved as NULL.
  Addr alloc(std::uint64_t words = 1);

  // Register a simulated thread; it starts when run() is called.
  void spawn(Task<void> task);

  // Pre-size the root-task table (spawn() otherwise grows it, which the
  // sim_microbench allocation gate would count against the steady state).
  void reserve_tasks(std::size_t n) { roots_.reserve(n); }

  // Pre-size the directory's and every core's line table for `n` distinct
  // lines. Bounded-address-range runs (the sim_microbench zero-alloc gate)
  // call this once at setup so no line-table rehash lands mid-run.
  void reserve_lines(std::size_t n) {
    directory_->reserve_lines(n);
    for (auto& c : cores_) c->reserve_lines(n);
  }

  // Run the event loop until every spawned task finishes and the queue
  // drains. Returns the final simulated time. If the queue drains with
  // unfinished tasks (deadlock in the simulated program), the quiescence
  // watchdog dumps the debug ring + trace to stderr and throws
  // std::runtime_error instead of hanging or silently continuing — always
  // compiled, so it fires in the default (NDEBUG) build too.
  Time run();

  // Bounded run for tests; returns false on timeout.
  bool run_until(Time limit);

  // Cumulative across the machine's lifetime (run() recycles the frames of
  // finished root tasks, so these do not track the live roots_ table).
  std::size_t spawned() const noexcept { return spawned_; }
  std::size_t finished() const noexcept { return finished_; }

  // Always-on bounded ring of the last interconnect messages, for
  // post-mortem dumps (watchdog / invariant checker). Not part of
  // snapshots: it is debug state, not schedule state.
  const DebugRing& debug_ring() const noexcept { return debug_ring_; }

 private:
  // First-run setup: resume the spawned roots and schedule the fault
  // plan's one-shots.
  void start();
  // Verify SWMR + directory/cache consistency; on violation dump the debug
  // ring to stderr and throw std::logic_error. Wired behind every message
  // handler when cfg_.check_invariants.
  void check_invariants_now();
  // Dump the debug ring and (when enabled) the trace tail to stderr.
  void dump_debug_state(const char* why);

  MachineConfig cfg_;
  Engine engine_;
  Trace trace_;
  DebugRing debug_ring_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<Interconnect> net_;
  std::unique_ptr<Directory> directory_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::coroutine_handle<Task<void>::promise_type>> roots_;
  std::size_t spawned_ = 0;
  std::size_t finished_ = 0;
  Addr next_addr_ = 1;  // 0 is NULL
  bool started_ = false;
  // Fault one-shots (cfg_.fault_plan.one_shots) are scheduled lazily at the
  // first run() so forked machines (which inherit started_ = true) do not
  // re-fire them; pending counts configured-but-unfired one-shots.
  std::size_t one_shots_pending_ = 0;
  std::uint64_t one_shots_fired_ = 0;
};

// Barrier for simulated threads: all parties must arrive before any proceeds.
class SimBarrier {
 public:
  SimBarrier(Engine& engine, int parties)
      : engine_(engine), parties_(parties) {}

  auto arrive_and_wait() {
    struct Awaiter {
      SimBarrier* barrier;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        SimBarrier& b = *barrier;
        if (++b.arrived_ == b.parties_) {
          b.arrived_ = 0;
          auto waiting = std::move(b.waiting_);
          b.waiting_.clear();
          for (auto w : waiting) {
            b.engine_.schedule(0, [w] { w.resume(); });
          }
          return false;  // last arrival continues immediately
        }
        b.waiting_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine& engine_;
  int parties_;
  int arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiting_;
};

}  // namespace sbq::sim
