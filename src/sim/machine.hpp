// Machine: assembles engine + interconnect + directory + cores, provides a
// word allocator for simulated data structures, and runs simulated-thread
// coroutines to completion.
//
// Two execution modes share one protocol implementation:
//
//   * Serial (machine_threads == 1, the default): one Engine drives every
//     component, exactly as before. The directory may still be sliced
//     (dir_slices > 1): home(addr) = addr % dir_slices picks one of
//     dir_slices independent directory instances, each its own interconnect
//     node — the serial twin of a sharded run.
//
//   * Sharded (machine_threads > 1): the machine is partitioned into
//     dir_slices execution slices, each owning one directory slice, a
//     contiguous block of cores, and a private Engine + Interconnect. A
//     persistent worker pool runs the slices in parallel in conservative
//     lookahead windows: with T the earliest pending event across slices
//     and L the minimum cross-slice message latency, every slice may safely
//     run through T + L - 1 — a message sent at t >= T arrives at
//     t + L > T + L - 1, i.e. beyond the window. At the window barrier the
//     per-slice event logs are merged into the single global (time, seq)
//     order the serial engine would have produced: provisional sequence
//     numbers are patched to globally ordered ones, cross-slice messages
//     are materialized into their destination slice, and host-side effects
//     (queue bookkeeping) are replayed in merged order. Given the same
//     MachineConfig, a sharded run therefore delivers every event in the
//     same (time, seq) order as the serial engine — metrics are identical.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/coro.hpp"
#include "sim/core.hpp"
#include "sim/directory.hpp"
#include "sim/engine.hpp"
#include "sim/interconnect.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

// Checkpoint of a quiescent machine (see Machine::snapshot): every piece of
// schedule-visible state — clock/seq stream, interconnect link horizons,
// directory lines, per-core caches, counters, trace ring, allocator cursors.
// A snapshot is a plain value: copyable, and safe to fork from concurrently
// (fork only reads it), so one warmed prefill can seed every repeat of a
// sweep cell across worker threads. Sharded machines refuse to snapshot
// (Machine::snapshot throws); capture the serial twin instead.
struct MachineSnapshot {
  MachineConfig cfg;
  Engine::Checkpoint engine;
  Interconnect::State net;
  std::vector<Directory::State> directories;  // one per dir slice
  std::vector<Core::State> cores;
  Trace trace;
  std::optional<Stats> stats;
  Addr next_addr = 1;
  std::vector<Addr> arena_next;  // per-core arena cursors (alloc_arenas)
  Addr region_next = 0;          // static regions handed out (alloc_arenas)
  std::size_t spawned = 0;
  std::size_t finished = 0;
  bool started = false;
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg = {});
  // Fork: build a machine that continues exactly where `snap` left off —
  // same clock, same seq stream, same cache/directory/link state — so a
  // forked run replays byte-identically to the machine the snapshot was
  // taken from continuing in place.
  explicit Machine(const MachineSnapshot& snap);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Capture the machine's schedule-visible state. Requires quiescence: the
  // event queue drained (run() returned) and every core free of in-flight
  // protocol or transaction state — i.e. call it between run() phases, not
  // mid-simulation. Simulated memory contents (directory lines + caches)
  // carry over, so a queue prefilled before snapshot() is prefilled in
  // every fork. Throws std::runtime_error (always compiled, not an assert)
  // when called on a non-quiescent machine, while scheduled fault one-shots
  // are pending or in flight, or on a sharded machine (per-slice engine
  // state is not captured; warm the serial twin instead).
  MachineSnapshot snapshot() const;
  static std::unique_ptr<Machine> fork(const MachineSnapshot& snap) {
    return std::make_unique<Machine>(snap);
  }

  // Serial engine. Meaningful only on a serial machine; sharded workloads
  // read time via now() / Core::now() instead.
  Engine& engine() noexcept { return engine_; }
  // Machine-wide event total: the serial engine's counter, or the sum over
  // slice engines. Allocation-free (unlike metrics()), so the microbench
  // gates can sample it inside a counted phase.
  std::uint64_t events_processed() const noexcept {
    if (slices_.empty()) return engine_.events_processed();
    std::uint64_t sum = 0;
    for (const Slice& sl : slices_) sum += sl.engine->events_processed();
    return sum;
  }
  // Current simulated time: engine clock (serial) or the maximum slice
  // clock (sharded — slices only rejoin at window barriers, and the
  // machine is only observed between run() phases where all clocks agree).
  Time now() const noexcept;
  Trace& trace() noexcept { return trace_; }
  // Metrics registry; null when MachineConfig::collect_stats is false. On a
  // sharded machine this is slice 0's registry — use metrics() for merged
  // machine-wide totals.
  Stats* stats() noexcept {
    return slices_.empty() ? stats_.get() : slices_[0].stats.get();
  }
  const Stats* stats() const noexcept {
    return slices_.empty() ? stats_.get() : slices_[0].stats.get();
  }
  // Flattened counter snapshot (all-zero blocks when stats are disabled)
  // plus engine/interconnect totals — what sweep cells put into
  // BENCH_*.json. Callable at any point; counters are cumulative. On a
  // sharded machine, per-slice counters are merged (sums; occupancy
  // min/max combined) so the result matches the serial twin.
  MetricsSnapshot metrics() const;
  // Directory slice 0 — the whole directory when dir_slices == 1 (the
  // default). Sliced configs address lines via poke()/peek() instead.
  Directory& directory() noexcept { return *dirs_[0]; }
  // Home-routed simulated-memory access: addr % dir_slices picks the slice.
  Directory& home(Addr a) noexcept { return *dirs_[home_slice(a)]; }
  void poke(Addr a, Value v) { home(a).poke(a, v); }
  Value peek(Addr a) noexcept { return home(a).peek(a); }
  int dir_slice_count() const noexcept { return static_cast<int>(dirs_.size()); }
  Interconnect& interconnect() noexcept { return *net_; }
  Core& core(int i) { return *cores_.at(static_cast<std::size_t>(i)); }
  int core_count() const noexcept { return cfg_.cores; }
  const MachineConfig& config() const noexcept { return cfg_; }

  // Allocate `words` consecutive simulated words (each its own line);
  // returns the address of the first. Word 0 is reserved as NULL. The
  // no-argument form allocates from the shared setup region.
  Addr alloc(std::uint64_t words = 1);
  // Core-attributed allocation: with MachineConfig::alloc_arenas each core
  // owns a disjoint 2^30-word arena, so mid-run allocations are both
  // thread-safe under sharding and address-deterministic regardless of
  // which order cores reach their allocation sites. Without arenas this is
  // the shared cursor (serial machines only; sharded machines require
  // arenas). Throws std::runtime_error on arena exhaustion.
  Addr alloc(std::uint64_t words, CoreId core);
  // Reserve a dedicated 2^30-word static region (e.g. the FAA queue's cell
  // array) whose addresses are independent of allocation order.
  Addr alloc_region();

  // Register a simulated thread; it starts when run() is called. The
  // unpinned form is serial-only (throws std::logic_error when sharded):
  // a sharded machine must know which slice executes the root coroutine.
  void spawn(Task<void> task);
  // Pin the root to `core`: its resume events run on (and its simulated
  // time advances with) that core's slice. On a serial machine the pin is
  // recorded but changes nothing — serial twins stay byte-identical.
  void spawn(Task<void> task, CoreId core);

  // Host-side effect replay (sharded determinism): host containers fed
  // from simulated threads (e.g. SimSbq's filled-cell map) register a
  // handler here and route mutations through Core::log_effect; the machine
  // replays them in the merged global event order at each window barrier.
  // Serial machines apply effects inline and never invoke the handler.
  void set_effect_handler(std::function<void(std::uint64_t, std::uint64_t)> fn) {
    effect_handler_ = std::move(fn);
  }
  bool sharded() const noexcept { return !slices_.empty(); }

  // Pre-size the root-task table (spawn() otherwise grows it, which the
  // sim_microbench allocation gate would count against the steady state).
  void reserve_tasks(std::size_t n) {
    roots_.reserve(n);
    root_pins_.reserve(n);
  }

  // Pre-size every directory slice's and every core's line table for `n`
  // distinct lines. Bounded-address-range runs (the sim_microbench
  // zero-alloc gate) call this once at setup so no line-table rehash lands
  // mid-run.
  void reserve_lines(std::size_t n) {
    for (auto& d : dirs_) d->reserve_lines(n);
    for (auto& c : cores_) c->reserve_lines(n);
  }

  // Run the event loop until every spawned task finishes and the queue
  // drains. Returns the final simulated time. If the queue drains with
  // unfinished tasks (deadlock in the simulated program), the quiescence
  // watchdog dumps the debug ring + trace to stderr and throws
  // std::runtime_error instead of hanging or silently continuing — always
  // compiled, so it fires in the default (NDEBUG) build too.
  Time run();

  // Bounded run for tests; returns false on timeout.
  bool run_until(Time limit);

  // Cumulative across the machine's lifetime (run() recycles the frames of
  // finished root tasks, so these do not track the live roots_ table).
  std::size_t spawned() const noexcept { return spawned_; }
  std::size_t finished() const noexcept {
    return finished_.load(std::memory_order_relaxed);
  }

  // Always-on bounded ring of the last interconnect messages, for
  // post-mortem dumps (watchdog / invariant checker). Not part of
  // snapshots: it is debug state, not schedule state.
  const DebugRing& debug_ring() const noexcept { return debug_ring_; }

 private:
  // One execution slice of a sharded machine: a private engine (window
  // logging enabled), interconnect, debug ring, and metrics registry. The
  // slice's directory lives in dirs_[s]; its cores in cores_ (owner =
  // core / cores_per_slice).
  struct Slice {
    std::unique_ptr<Engine> engine;
    std::unique_ptr<DebugRing> ring;
    std::unique_ptr<Interconnect> net;
    std::unique_ptr<Stats> stats;
  };
  struct Pool;  // persistent worker pool (defined in machine.cpp)
  // A cross-slice message materialized at the window barrier, carrying the
  // globally ordered sequence number assigned during the merge.
  struct PendingDelivery {
    CoreId dst;
    Message msg;
    Time arrival;
    std::uint64_t seq;
  };

  int home_slice(Addr a) const noexcept {
    return cfg_.dir_slices > 1
               ? static_cast<int>(a % static_cast<Addr>(cfg_.dir_slices))
               : 0;
  }
  int slice_of_core(CoreId c) const noexcept {
    return static_cast<int>(c) / cores_per_slice_;
  }

  // First-run setup: resume the spawned roots and schedule the fault
  // plan's one-shots.
  void start();
  // Sharded event loop: repeat {find T = min pending time; run every slice
  // to T + lookahead - 1 in parallel; merge}. Returns true when all slices
  // drained, false when the next event lies beyond `limit`.
  bool advance_windows(Time limit);
  // Window barrier: k-way merge of the per-slice dispatch logs by
  // (time, resolved seq); assigns global seqs to births and cross-slice
  // sends, replays host effects, forwards deliveries, clears the logs.
  void merge_window();
  // Verify SWMR + directory/cache consistency; on violation dump the debug
  // ring to stderr and throw std::logic_error. Wired behind every message
  // handler when cfg_.check_invariants (serial engine only; every slice's
  // line table is checked against the full core set).
  void check_invariants_now();
  // Dump the debug ring(s) and (when enabled) the trace tail to stderr.
  void dump_debug_state(const char* why);

  MachineConfig cfg_;
  Engine engine_;  // serial mode's engine (idle under sharding)
  Trace trace_;
  DebugRing debug_ring_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<Interconnect> net_;  // serial mode's interconnect
  std::vector<std::unique_ptr<Directory>> dirs_;  // one per dir slice
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::coroutine_handle<Task<void>::promise_type>> roots_;
  std::vector<CoreId> root_pins_;  // -1 = unpinned (serial only)
  std::size_t spawned_ = 0;
  std::atomic<std::size_t> finished_{0};
  Addr next_addr_ = 1;  // 0 is NULL
  std::vector<Addr> arena_next_;  // per-core cursors (alloc_arenas)
  Addr region_next_ = 0;          // static regions handed out
  bool started_ = false;
  // Fault one-shots (cfg_.fault_plan.one_shots) are scheduled lazily at the
  // first run() so forked machines (which inherit started_ = true) do not
  // re-fire them; pending counts configured-but-unfired one-shots.
  std::atomic<std::size_t> one_shots_pending_{0};
  std::atomic<std::uint64_t> one_shots_fired_{0};

  // ---- sharded-mode state (empty/idle on a serial machine) ----
  std::vector<Slice> slices_;
  std::vector<int> node_slice_;  // node id (core or dir) -> owning slice
  int cores_per_slice_ = 1;
  Time lookahead_ = 1;  // min cross-slice latency; window = [T, T+L-1]
  std::uint64_t global_seq_ = 0;
  std::function<void(std::uint64_t, std::uint64_t)> effect_handler_;
  std::unique_ptr<Pool> pool_;
  // Merge scratch, reused across windows (no steady-state allocation).
  std::vector<std::vector<std::uint64_t>> resolved_;
  std::vector<std::size_t> cursor_;
  std::vector<PendingDelivery> deliveries_;
};

// Barrier for simulated threads: all parties must arrive before any proceeds.
// Serial-only: it schedules wakeups on one engine, so all parties must live
// on the same slice (use a serial machine, or pin all parties to one core).
class SimBarrier {
 public:
  SimBarrier(Engine& engine, int parties)
      : engine_(engine), parties_(parties) {}

  auto arrive_and_wait() {
    struct Awaiter {
      SimBarrier* barrier;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        SimBarrier& b = *barrier;
        if (++b.arrived_ == b.parties_) {
          b.arrived_ = 0;
          auto waiting = std::move(b.waiting_);
          b.waiting_.clear();
          for (auto w : waiting) {
            b.engine_.schedule(0, [w] { w.resume(); });
          }
          return false;  // last arrival continues immediately
        }
        b.waiting_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine& engine_;
  int parties_;
  int arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiting_;
};

}  // namespace sbq::sim
