// LegacyInvOrder — the pre-canonical Inv delivery order, kept as an
// escape hatch.
//
// Before MachineConfig::canonical_inv_order (default on) the directory
// walked each line's sharers in the iteration order of the seed container,
// a libstdc++ std::unordered_set<int>. That order is schedule-visible:
// replaying with ascending-id iteration changes the printed tables of 9 of
// the 11 figure drivers. The canonical schedule is now the baseline, but
// diffing against PR-3 artifacts still needs the old schedule to be
// reproducible, so the bucket-chain replica that used to live inside every
// Line's SharerSet survives here as a standalone order tracker the
// Directory keeps in a *side table* — only populated when
// canonical_inv_order is false, so per-line state in the default
// configuration is the bare bitmask (see sharer_set.hpp).
//
// The replica transcribes libstdc++'s _Hashtable algorithms: per-id `next`
// links, a before-begin head, a bucket -> "node before the bucket's first
// element" table, and the library's own
// std::__detail::_Prime_rehash_policy instance so bucket growth happens at
// exactly the same insertions (sharer_set_test fuzzes this against the
// real container). Legacy mode is exempt from the zero-alloc gates — the
// perf_smoke microbenches run the canonical schedule — but the SmallBuf
// inline sizing is kept so small machines still avoid per-line heap spill.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>  // for std::__detail::_Prime_rehash_policy

#include "sim/sharer_set.hpp"  // detail::SmallBuf
#include "sim/types.hpp"

namespace sbq::sim {

class LegacyInvOrder {
 public:
  // Inline-storage sizing: the chain links cover core ids < kInlineIds, and
  // the bucket array stays inline through _Prime_rehash_policy's first two
  // growth steps (13 then 29 buckets, good for up to 29 simultaneous
  // sharers at max load factor 1.0). So machines of up to 16 cores never
  // heap-allocate per line.
  static constexpr std::size_t kInlineIds = 16;
  static constexpr std::size_t kInlineBuckets = 32;

  LegacyInvOrder() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool contains(CoreId id) const noexcept {
    if (static_cast<std::size_t>(id) >= next_.size()) return false;
    if (head_ == id) return true;
    // Membership is encoded in the chain only; walk it. Legacy mode is a
    // diffing tool, not a hot path.
    for (std::int32_t cur = head_; cur != kEnd; cur = next_[cur]) {
      if (cur == id) return true;
    }
    return false;
  }

  void insert(CoreId id) {
    if (contains(id)) return;
    if (next_.size() <= static_cast<std::size_t>(id))
      next_.resize(static_cast<std::size_t>(id) + 1, kEnd);
    const auto need =
        policy_._M_need_rehash(bucket_count_, size_, /*n_ins=*/1);
    if (need.first) rehash(need.second);
    insert_bucket_begin(bucket_of(id), id);
    ++size_;
  }

  std::size_t erase(CoreId id) {
    if (!contains(id)) return 0;
    const std::size_t bkt = bucket_of(id);
    // Find the node before `id` in the global chain, starting from the
    // bucket's before-node (the bucket is non-empty: it holds `id`).
    const std::int32_t before = bucket_before_[bkt];
    std::int32_t prev = before;
    std::int32_t cur = (before == kBeforeBegin) ? head_ : next_[before];
    while (cur != id) {
      prev = cur;
      cur = next_[cur];
    }
    const std::int32_t next = next_[id];
    if (prev == before) {
      // Removing the bucket's first element (_M_remove_bucket_begin).
      const std::size_t next_bkt = (next == kEnd) ? 0 : bucket_of(next);
      if (next == kEnd || next_bkt != bkt) {
        if (next != kEnd) bucket_before_[next_bkt] = bucket_before_[bkt];
        if (bucket_before_[bkt] == kBeforeBegin) head_ = next;
        bucket_before_[bkt] = kEmptyBucket;
      }
    } else if (next != kEnd) {
      const std::size_t next_bkt = bucket_of(next);
      if (next_bkt != bkt) bucket_before_[next_bkt] = prev;
    }
    if (prev == kBeforeBegin) {
      head_ = next;
    } else {
      next_[prev] = next;
    }
    --size_;
    return 1;
  }

  void clear() noexcept {
    // Like unordered_set::clear(): drop the elements, keep the bucket
    // array and the rehash policy's growth state.
    head_ = kEnd;
    size_ = 0;
    bucket_before_.assign(bucket_before_.size(), kEmptyBucket);
  }

  class const_iterator {
   public:
    using value_type = CoreId;
    const_iterator(const LegacyInvOrder* s, std::int32_t id)
        : set_(s), id_(id) {}
    CoreId operator*() const noexcept { return id_; }
    const_iterator& operator++() noexcept {
      id_ = set_->next_[id_];
      return *this;
    }
    bool operator==(const const_iterator& o) const noexcept {
      return id_ == o.id_;
    }
    bool operator!=(const const_iterator& o) const noexcept {
      return id_ != o.id_;
    }

   private:
    const LegacyInvOrder* set_;
    std::int32_t id_;
  };

  const_iterator begin() const noexcept { return {this, head_}; }
  const_iterator end() const noexcept { return {this, kEnd}; }

  // Exposed for the differential test.
  std::size_t bucket_count() const noexcept { return bucket_count_; }

 private:
  static constexpr std::int32_t kEnd = -1;          // end of the chain
  static constexpr std::int32_t kBeforeBegin = -2;  // virtual head node
  static constexpr std::int32_t kEmptyBucket = -3;

  std::size_t bucket_of(std::int32_t id) const noexcept {
    // std::hash<int> is the identity; ids are non-negative.
    return static_cast<std::size_t>(id) % bucket_count_;
  }

  // _Hashtable::_M_insert_bucket_begin: new elements go to the *front* of
  // their bucket; an empty bucket hooks its chain at the global front.
  void insert_bucket_begin(std::size_t bkt, std::int32_t id) {
    if (bucket_before_[bkt] != kEmptyBucket) {
      const std::int32_t before = bucket_before_[bkt];
      if (before == kBeforeBegin) {
        next_[id] = head_;
        head_ = id;
      } else {
        next_[id] = next_[before];
        next_[before] = id;
      }
    } else {
      next_[id] = head_;
      head_ = id;
      if (next_[id] != kEnd) bucket_before_[bucket_of(next_[id])] = id;
      bucket_before_[bkt] = kBeforeBegin;
    }
  }

  // _Hashtable::_M_rehash_aux (unique keys): walk the chain in iteration
  // order, re-hooking every node with the insert-at-bucket-begin rule.
  void rehash(std::size_t new_count) {
    bucket_before_.assign(new_count, kEmptyBucket);
    bucket_count_ = new_count;
    std::int32_t cur = head_;
    head_ = kEnd;
    while (cur != kEnd) {
      const std::int32_t next = next_[cur];
      insert_bucket_begin(bucket_of(cur), cur);
      cur = next;
    }
  }

  // chain link per id (valid iff member)
  detail::SmallBuf<std::int32_t, kInlineIds> next_;
  // Per bucket: id of the chain node *before* the bucket's first element,
  // kBeforeBegin when that is the virtual head, kEmptyBucket when empty.
  // Empty until the first rehash (bucket_count_ == 1 holds no elements:
  // the policy forces a rehash on the first insertion, exactly like a
  // default-constructed unordered_set).
  detail::SmallBuf<std::int32_t, kInlineBuckets> bucket_before_;
  std::int32_t head_ = kEnd;
  std::size_t size_ = 0;
  std::size_t bucket_count_ = 1;
  std::__detail::_Prime_rehash_policy policy_;
};

}  // namespace sbq::sim
