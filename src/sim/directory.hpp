// MOSI directory + LLC model.
//
// Implements the directory behaviour §3 of the paper relies on (the paper's
// analysis uses MSI for exposition and notes it applies to the MOESI/MESIF
// protocols used commercially — we include the Owned state, which real
// directories use precisely to keep read-write-shared lines from blocking):
//
//   * GetS on an I/S line: data served from the LLC, requester added as a
//     sharer.
//   * GetS on an M/O line: Fwd-GetS to the owner, which sends the data and
//     keeps the line in Owned state; the directory never blocks (this is
//     the "tripped writer" trigger of §3.4 when the owner's own GetM is
//     still in flight).
//   * GetM on an S/O line: invalidations sent BACK-TO-BACK to all sharers
//     (the key mechanism behind scalable TxCAS failures, §3.3); sharers
//     ack to the requester; data comes from the LLC (S) or the previous
//     owner (O).
//   * GetM on an M line: non-blocking owner hand-off — the directory
//     immediately re-points the owner and sends Fwd-GetM to the previous
//     owner. Back-to-back GetMs therefore build the serialized hand-off
//     chain of Figure 2a, giving contended RMWs their linear latency.
//
// The directory has a small per-request occupancy so truly simultaneous
// requests serialize slightly, as on real hardware.
//
// Value ownership: the LLC value is authoritative in I and S; in M and O
// the owner core holds the current value and all data flows through it.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/flat_map.hpp"
#include "sim/interconnect.hpp"
#include "sim/legacy_inv_order.hpp"
#include "sim/message.hpp"
#include "sim/sharer_set.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

class Trace;

class Directory {
 public:
  // `self` is this directory's node id on the interconnect; -1 (the
  // default) means net.directory_id(), i.e. the single-directory layout.
  // A sliced machine constructs one Directory per slice with self =
  // directory_id() + slice.
  Directory(Engine& engine, Interconnect& net, const MachineConfig& cfg,
            Trace* trace, CoreId self = -1);

  // Entry point registered with the interconnect.
  void handle(const Message& msg);

  // Backing-store access for machine setup/teardown and debugging. Note:
  // valid only while the line is in I or S state.
  Value peek(Addr addr) const;
  void poke(Addr addr, Value value);

  // Pre-size the line table for `n` distinct lines (setup-time allocation,
  // so a bounded run's steady state never rehashes it — see
  // Machine::reserve_lines).
  void reserve_lines(std::size_t n) { lines_.reserve(n); }

  struct Stats {
    std::uint64_t gets = 0;
    std::uint64_t getm = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t fwd_gets = 0;
    std::uint64_t fwd_getm = 0;
    std::uint64_t wb_accepted = 0;  // owner write-back flipped the line O->S
    std::uint64_t wb_dropped = 0;   // stale write-back (a writer intervened)
    // Bandwidth/saturation accounting (dir_queue_cap > 0 only): requests
    // that arrived with >= cap requests already queued on the occupancy
    // horizon, and the deepest request queue observed. Accounting only —
    // processing times are unchanged.
    std::uint64_t bp_stalls = 0;
    std::uint64_t queue_peak = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

  // Test introspection.
  enum class LineState : std::uint8_t { kInvalid, kShared, kModified, kOwned };
  LineState line_state(Addr addr) const;
  CoreId line_owner(Addr addr) const;
  std::size_t sharer_count(Addr addr) const;

  // Invariant-checker visitor: fn(addr, state, owner, sharers) for every
  // tracked line. Read-only; `sharers` excludes the owner.
  template <typename Fn>
  void visit_lines(Fn&& fn) const {
    for (const auto& [addr, line] : lines_) {
      fn(addr, line.state, line.owner, line.sharers);
    }
  }

 private:
  struct Line {
    LineState state = LineState::kInvalid;
    CoreId owner = -1;
    SharerSet sharers;  // excludes the owner
    Value value = 0;    // authoritative in I/S only
  };

 public:
  // Schedule-visible state for Machine::snapshot()/fork(): the line table
  // (states, owners, sharer bitmasks, LLC values), the occupancy horizon,
  // the protocol counters, and — in legacy inv-order mode — the per-line
  // order chains.
  struct State {
    FlatMap<Line> lines;
    FlatMap<LegacyInvOrder> legacy_order;
    Time busy_until = 0;
    Stats stats;
  };
  State save_state() const;
  void restore_state(const State& s);

 private:
  void process(const Message& msg);
  void process_gets(Line& line, const Message& msg);
  void process_getm(Line& line, const Message& msg);
  // Invalidate all sharers except `req`; returns the ack count.
  int invalidate_sharers(Line& line, Addr addr, CoreId req);

  // Sharer mutations funnel through these so legacy mode can mirror the
  // bitmask into its side-table order chain (canonical mode, the default,
  // touches only the bitmask).
  void add_sharer(Line& line, Addr addr, CoreId id);
  void drop_sharer(Line& line, Addr addr, CoreId id);

  Engine& engine_;
  Interconnect& net_;
  MachineConfig cfg_;
  Trace* trace_;
  CoreId self_;
  Time busy_until_ = 0;
  FlatMap<Line> lines_;
  // Legacy inv-order side table (addr -> bucket-chain order replica);
  // empty and untouched when cfg_.canonical_inv_order (the default).
  FlatMap<LegacyInvOrder> legacy_order_;
  Stats stats_;
};

}  // namespace sbq::sim
