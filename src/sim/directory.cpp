#include "sim/directory.hpp"

#include <cassert>

#include "sim/trace.hpp"

namespace sbq::sim {

Directory::Directory(Engine& engine, Interconnect& net, const MachineConfig& cfg,
                     Trace* trace, CoreId self)
    : engine_(engine), net_(net), cfg_(cfg), trace_(trace),
      self_(self >= 0 ? self : net.directory_id()) {}

Value Directory::peek(Addr addr) const {
  auto it = lines_.find(addr);
  return it == lines_.end() ? 0 : it->second.value;
}

void Directory::poke(Addr addr, Value value) {
  Line& line = lines_[addr];
  assert(line.state == LineState::kInvalid || line.state == LineState::kShared);
  line.value = value;
}

Directory::LineState Directory::line_state(Addr addr) const {
  auto it = lines_.find(addr);
  return it == lines_.end() ? LineState::kInvalid : it->second.state;
}

CoreId Directory::line_owner(Addr addr) const {
  auto it = lines_.find(addr);
  return it == lines_.end() ? -1 : it->second.owner;
}

std::size_t Directory::sharer_count(Addr addr) const {
  auto it = lines_.find(addr);
  return it == lines_.end() ? 0 : it->second.sharers.size();
}

Directory::State Directory::save_state() const {
  return State{lines_, legacy_order_, busy_until_, stats_};
}

void Directory::restore_state(const State& s) {
  lines_ = s.lines;
  legacy_order_ = s.legacy_order;
  busy_until_ = s.busy_until;
  stats_ = s.stats;
}

void Directory::add_sharer(Line& line, Addr addr, CoreId id) {
  line.sharers.insert(id);
  if (!cfg_.canonical_inv_order) legacy_order_[addr].insert(id);
}

void Directory::drop_sharer(Line& line, Addr addr, CoreId id) {
  line.sharers.erase(id);
  if (!cfg_.canonical_inv_order) {
    auto it = legacy_order_.find(addr);
    if (it != legacy_order_.end()) it->second.erase(id);
  }
}

void Directory::handle(const Message& msg) {
  // Model a per-request occupancy: simultaneous arrivals serialize a bit.
  if (cfg_.dir_queue_cap > 0) {
    // Bandwidth model: the backlog on the occupancy horizon, in requests.
    const Time now = engine_.now();
    const Time backlog = busy_until_ > now ? busy_until_ - now : 0;
    const std::uint64_t depth =
        (backlog + cfg_.dir_occupancy - 1) / cfg_.dir_occupancy;
    if (depth >= cfg_.dir_queue_cap) ++stats_.bp_stalls;
    if (depth + 1 > stats_.queue_peak) stats_.queue_peak = depth + 1;
  }
  const Time start = std::max(engine_.now(), busy_until_);
  busy_until_ = start + cfg_.dir_occupancy;
  const Time wait = start - engine_.now() + cfg_.dir_occupancy;
  if (wait == 0) {
    process(msg);
  } else {
    engine_.schedule(wait, [this, msg] { process(msg); });
  }
}

void Directory::process(const Message& msg) {
  Line& line = lines_[msg.addr];
  switch (msg.type) {
    case MsgType::kGetS:
      ++stats_.gets;
      process_gets(line, msg);
      return;
    case MsgType::kGetM:
      ++stats_.getm;
      process_getm(line, msg);
      return;
    case MsgType::kWbData:
      // Owner write-back after an M->shared transition. Non-blocking: while
      // the WB was in flight, reads were served by the (still-Owned) owner.
      // If a writer intervened (state no longer Owned with this owner), the
      // write-back is stale and dropped.
      if (line.state == LineState::kOwned && line.owner == msg.src) {
        ++stats_.wb_accepted;
        line.value = msg.value;
        add_sharer(line, msg.addr, line.owner);
        line.owner = -1;
        line.state = LineState::kShared;
      } else {
        ++stats_.wb_dropped;
      }
      return;
    default:
      assert(false && "unexpected message at directory");
  }
}

void Directory::process_gets(Line& line, const Message& msg) {
  const CoreId req = msg.requester;
  switch (line.state) {
    case LineState::kInvalid:
    case LineState::kShared: {
      line.state = LineState::kShared;
      add_sharer(line, msg.addr, req);
      Message data{MsgType::kData, msg.addr, self_, req, line.value, 0};
      net_.send(self_, req, data);
      return;
    }
    case LineState::kModified:
    case LineState::kOwned: {
      // Forward to the owner; it serves the data and keeps the line in
      // Owned state, so subsequent reads keep flowing without any
      // write-back or directory blocking (MOESI behaviour).
      ++stats_.fwd_gets;
      Message fwd{MsgType::kFwdGetS, msg.addr, self_, req, 0, 0};
      net_.send(self_, line.owner, fwd);
      add_sharer(line, msg.addr, req);
      line.state = LineState::kOwned;
      return;
    }
  }
}

int Directory::invalidate_sharers(Line& line, Addr addr, CoreId req) {
  int acks = 0;
  const auto send_inv = [&](CoreId sharer) {
    if (sharer == req) return;
    ++acks;
    ++stats_.invalidations;
    Message inv{MsgType::kInv, addr, self_, req, 0, 0};
    net_.send(self_, sharer, inv);
  };
  if (cfg_.canonical_inv_order) {
    // Canonical schedule: ascending core-id walk of the bitmask.
    for (CoreId sharer : line.sharers) send_inv(sharer);
  } else {
    // Legacy schedule: replay the pre-canonical bucket-chain order.
    auto it = legacy_order_.find(addr);
    if (it != legacy_order_.end()) {
      for (CoreId sharer : it->second) send_inv(sharer);
      it->second.clear();
    }
  }
  line.sharers.clear();
  return acks;
}

void Directory::process_getm(Line& line, const Message& msg) {
  const CoreId req = msg.requester;
  switch (line.state) {
    case LineState::kInvalid: {
      line.state = LineState::kModified;
      line.owner = req;
      Message data{MsgType::kData, msg.addr, self_, req, line.value, 0};
      net_.send(self_, req, data);
      return;
    }
    case LineState::kShared: {
      // Data + ack count to the requester; back-to-back invalidations to
      // every other sharer, which ack directly to the requester. This is
      // the concurrent-abort shower of Figure 2b.
      const int acks = invalidate_sharers(line, msg.addr, req);
      Message data{MsgType::kData, msg.addr, self_, req, line.value, acks};
      net_.send(self_, req, data);
      line.state = LineState::kModified;
      line.owner = req;
      return;
    }
    case LineState::kOwned: {
      const CoreId owner = line.owner;
      if (owner == req) {
        // Owner upgrade O -> M: it already holds the current data; the
        // Data message only carries the ack count (the core keeps its own
        // valid copy — the LLC value is stale in Owned state).
        const int acks = invalidate_sharers(line, msg.addr, req);
        Message data{MsgType::kData, msg.addr, self_, req, 0, acks};
        net_.send(self_, req, data);
      } else {
        // Data comes from the previous owner (Fwd-GetM carries the ack
        // count so the owner's response can convey it); the remaining
        // sharers are invalidated back-to-back.
        drop_sharer(line, msg.addr, owner);  // owner is not in sharers, but be safe
        const int acks = invalidate_sharers(line, msg.addr, req);
        ++stats_.fwd_getm;
        Message fwd{MsgType::kFwdGetM, msg.addr, self_, req, 0, acks};
        net_.send(self_, owner, fwd);
      }
      line.state = LineState::kModified;
      line.owner = req;
      return;
    }
    case LineState::kModified: {
      // Non-blocking owner hand-off: re-point ownership immediately and
      // forward; the data travels previous-owner -> new owner. Chains of
      // these are the serialized hand-offs of Figure 2a.
      ++stats_.fwd_getm;
      Message fwd{MsgType::kFwdGetM, msg.addr, self_, req, 0, 0};
      net_.send(self_, line.owner, fwd);
      line.owner = req;
      return;
    }
  }
}

}  // namespace sbq::sim
