// Optional event trace: records protocol-level events for the coherence-
// dynamics benchmark (Figure 2a/2b) and for debugging protocol behaviour.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

struct TraceEvent {
  Time time;
  CoreId node;        // acting node (core or directory)
  std::string what;   // e.g. "send GetM", "abort(txn)", "commit"
  Addr addr;
  std::int64_t detail;  // event-specific (value, requester id, ...)
};

class Trace {
 public:
  explicit Trace(bool enabled = false) : enabled_(enabled) {}

  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  void record(Time t, CoreId node, std::string what, Addr addr,
              std::int64_t detail = 0);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() noexcept { events_.clear(); }

  // Pretty-print, optionally filtered to one address.
  void print(std::ostream& os, Addr only_addr = 0) const;

 private:
  bool enabled_;
  std::vector<TraceEvent> events_;
};

}  // namespace sbq::sim
