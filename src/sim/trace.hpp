// Optional event trace: records protocol-level events for the coherence-
// dynamics benchmark (Figure 2a/2b), for debugging protocol behaviour, and
// for machine-readable export (`--trace=FILE` on the bench drivers).
//
// The buffer is a bounded ring: once `capacity` events are recorded the
// oldest are overwritten and `dropped()` counts how many were lost — long
// simulations keep the *tail* of their history instead of growing without
// bound. events() returns the retained events in record order.
//
// Recording is allocation-free on the steady path: `what` is an interned
// string literal (static storage duration) rather than a per-event
// std::string, interconnect sends store their payload as POD fields and the
// "send <type> -> <dst>" text is synthesized at print/export time, and the
// ring is reserved to capacity up front when tracing is enabled. The
// sim_microbench alloc gate runs a trace-enabled phase to pin this.
//
// write_jsonl() emits one JSON object per line; the schema (field meanings
// and the vocabulary of `event` strings) is documented in
// docs/observability.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

struct TraceEvent {
  Time time;
  CoreId node;        // acting node (core or directory)
  const char* what;   // interned literal, e.g. "GetM complete", "txcas commit"
  Addr addr;
  std::int64_t detail;  // event-specific (value, requester id, ...)
  // Interconnect sends carry their message as POD so the hot path never
  // builds a per-message string; consumers see the synthesized
  // "send <type> -> <dst>" text via print()/write_jsonl().
  bool is_send = false;
  MsgType msg_type = MsgType::kGetS;
  CoreId dst = -1;
};

class Trace {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit Trace(bool enabled = false,
                 std::size_t capacity = kDefaultCapacity)
      : enabled_(enabled), capacity_(capacity == 0 ? 1 : capacity) {
    // Reserve eagerly so steady-state recording never reallocates.
    if (enabled_) ring_.reserve(capacity_);
  }

  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }
  std::size_t capacity() const noexcept { return capacity_; }

  // `what` must be a string literal (or otherwise outlive the trace); the
  // ring stores the pointer, not a copy.
  void record(Time t, CoreId node, const char* what, Addr addr,
              std::int64_t detail = 0);

  // Interconnect send: POD-only fast path (no string assembly).
  void record_send(Time t, CoreId src, CoreId dst, MsgType type, Addr addr,
                   std::int64_t requester);

  // Retained events, oldest first. Until the ring wraps this is a cheap
  // reference-like copy of the underlying buffer; after wrapping it stitches
  // the two halves back into record order.
  std::vector<TraceEvent> events() const;
  std::size_t size() const noexcept { return ring_.size(); }
  // Events overwritten after the ring filled up.
  std::uint64_t dropped() const noexcept { return dropped_; }
  void clear() noexcept {
    ring_.clear();
    next_ = 0;
    dropped_ = 0;
  }

  // Pretty-print, optionally filtered to one address.
  void print(std::ostream& os, Addr only_addr = 0) const;

  // One JSON object per line:
  //   {"t":<cycles>,"node":<id>,"event":"<what>","addr":<a>,"detail":<d>}
  // filtered to `only_addr` when non-zero. Schema: docs/observability.md.
  void write_jsonl(std::ostream& os, Addr only_addr = 0) const;

 private:
  void push(const TraceEvent& e);

  bool enabled_;
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring insertion point once |ring_| == capacity_
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> ring_;
};

// Always-on last-messages ring for post-mortem dumps. Unlike Trace (opt-in
// via --trace), this is a small fixed buffer of POD records filled on every
// interconnect send — cheap enough to leave on unconditionally (a handful
// of stores per message, zero steady-state allocations), so the quiescence
// watchdog, the invariant checker, and the divergence bisector can dump the
// tail of the message history even when no trace was requested.
struct DebugRingEntry {
  Time time = 0;
  CoreId src = -1;
  CoreId dst = -1;
  MsgType type = MsgType::kGetS;
  Addr addr = 0;
  Value value = 0;
};

class DebugRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit DebugRing(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  void record(Time t, CoreId src, CoreId dst, MsgType type, Addr addr,
              Value value) noexcept {
    DebugRingEntry& e = ring_[recorded_ % ring_.size()];
    e.time = t;
    e.src = src;
    e.dst = dst;
    e.type = type;
    e.addr = addr;
    e.value = value;
    ++recorded_;
  }

  std::uint64_t recorded() const noexcept { return recorded_; }

  // Human-readable dump of the retained tail, oldest first.
  void dump(std::ostream& os) const;

 private:
  std::vector<DebugRingEntry> ring_;
  std::uint64_t recorded_ = 0;
};

}  // namespace sbq::sim
