// Optional event trace: records protocol-level events for the coherence-
// dynamics benchmark (Figure 2a/2b), for debugging protocol behaviour, and
// for machine-readable export (`--trace=FILE` on the bench drivers).
//
// The buffer is a bounded ring: once `capacity` events are recorded the
// oldest are overwritten and `dropped()` counts how many were lost — long
// simulations keep the *tail* of their history instead of growing without
// bound. events() returns the retained events in record order.
//
// write_jsonl() emits one JSON object per line; the schema (field meanings
// and the vocabulary of `event` strings) is documented in
// docs/observability.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

struct TraceEvent {
  Time time;
  CoreId node;        // acting node (core or directory)
  std::string what;   // e.g. "send GetM", "abort(txn)", "commit"
  Addr addr;
  std::int64_t detail;  // event-specific (value, requester id, ...)
};

class Trace {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit Trace(bool enabled = false,
                 std::size_t capacity = kDefaultCapacity)
      : enabled_(enabled), capacity_(capacity == 0 ? 1 : capacity) {}

  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }
  std::size_t capacity() const noexcept { return capacity_; }

  void record(Time t, CoreId node, std::string what, Addr addr,
              std::int64_t detail = 0);

  // Retained events, oldest first. Until the ring wraps this is a cheap
  // reference-like copy of the underlying buffer; after wrapping it stitches
  // the two halves back into record order.
  std::vector<TraceEvent> events() const;
  std::size_t size() const noexcept { return ring_.size(); }
  // Events overwritten after the ring filled up.
  std::uint64_t dropped() const noexcept { return dropped_; }
  void clear() noexcept {
    ring_.clear();
    next_ = 0;
    dropped_ = 0;
  }

  // Pretty-print, optionally filtered to one address.
  void print(std::ostream& os, Addr only_addr = 0) const;

  // One JSON object per line:
  //   {"t":<cycles>,"node":<id>,"event":"<what>","addr":<a>,"detail":<d>}
  // filtered to `only_addr` when non-zero. Schema: docs/observability.md.
  void write_jsonl(std::ostream& os, Addr only_addr = 0) const;

 private:
  bool enabled_;
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring insertion point once |ring_| == capacity_
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> ring_;
};

// Always-on last-messages ring for post-mortem dumps. Unlike Trace (string
// events, opt-in via --trace), this is a small fixed buffer of POD records
// filled on every interconnect send — cheap enough to leave on
// unconditionally (a handful of stores per message, zero steady-state
// allocations), so the quiescence watchdog and the invariant checker can
// dump the tail of the message history even when no trace was requested.
struct DebugRingEntry {
  Time time = 0;
  CoreId src = -1;
  CoreId dst = -1;
  MsgType type = MsgType::kGetS;
  Addr addr = 0;
  Value value = 0;
};

class DebugRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit DebugRing(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  void record(Time t, CoreId src, CoreId dst, MsgType type, Addr addr,
              Value value) noexcept {
    DebugRingEntry& e = ring_[recorded_ % ring_.size()];
    e.time = t;
    e.src = src;
    e.dst = dst;
    e.type = type;
    e.addr = addr;
    e.value = value;
    ++recorded_;
  }

  std::uint64_t recorded() const noexcept { return recorded_; }

  // Human-readable dump of the retained tail, oldest first.
  void dump(std::ostream& os) const;

 private:
  std::vector<DebugRingEntry> ring_;
  std::uint64_t recorded_ = 0;
};

}  // namespace sbq::sim
