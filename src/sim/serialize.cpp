#include "sim/serialize.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace sbq::sim {

namespace {

// Blob layout constants. The magic doubles as an endianness probe: the
// encoder is explicitly little-endian, so a big-endian reader sees a
// mismatched magic and falls back to a cold warm-up instead of misreading.
constexpr std::uint32_t kMagic = 0x31514253;  // "SBQ1"

enum Tag : std::uint8_t {
  kTagConfig = 1,
  kTagEngine = 2,
  kTagNet = 3,
  kTagDirs = 4,
  kTagCores = 5,
  kTagStats = 6,
  kTagCursors = 7,
  kTagHostWords = 8,
  kTagEnd = 0xFF,
};

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

struct Writer {
  std::vector<std::uint8_t> buf;

  void u8(std::uint8_t v) { buf.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
};

// Bounds-checked little-endian reader: every accessor returns false instead
// of reading past the end, so truncated blobs fail cleanly.
struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t pos = 0;

  bool u8(std::uint8_t& v) {
    if (pos + 1 > n) return false;
    v = p[pos++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos + 4 > n) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[pos++]} << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos + 8 > n) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[pos++]} << (8 * i);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  bool b(bool& v) {
    std::uint8_t byte;
    if (!u8(byte)) return false;
    if (byte > 1) return false;
    v = byte != 0;
    return true;
  }
  bool i(int& v) {
    std::uint64_t raw;
    if (!u64(raw)) return false;
    if (raw > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
      return false;
    }
    v = static_cast<int>(raw);
    return true;
  }
  bool tag(Tag expected) {
    std::uint8_t t;
    return u8(t) && t == expected;
  }
};

// Count limits: a blob that claims more entries than could possibly fit in
// the remaining bytes is corrupt — reject before allocating for it.
bool plausible(const Reader& r, std::uint64_t count, std::size_t min_entry) {
  return count <= (r.n - r.pos) / (min_entry == 0 ? 1 : min_entry);
}

}  // namespace

// Serialization backdoor: the one friend FlatMap / SharerSet / Stats grant,
// so the encoder can persist their exact slot layout (FlatMap iteration
// order is not schedule-visible, but slot indices feed probe chains — an
// "equivalent" reinsertion could place keys differently and change nothing
// observable *today* while silently diverging from the in-memory fork's
// capacity profile; exact restore keeps the two paths bit-for-bit equal,
// including the zero-alloc behavior the perf_smoke gates measure).
struct SnapshotSerde {
  template <typename V, typename EncodeV>
  static void encode_flat_map(Writer& w, const FlatMap<V>& m, EncodeV enc) {
    w.u64(m.state_.size());
    for (std::size_t i = 0; i < m.state_.size(); ++i) {
      w.u8(m.state_[i]);
      if (m.state_[i] == FlatMap<V>::kFull) {
        w.u64(m.slots_[i].first);
        enc(w, m.slots_[i].second);
      }
    }
  }

  template <typename V, typename DecodeV>
  static bool decode_flat_map(Reader& r, FlatMap<V>& m, DecodeV dec) {
    std::uint64_t cap;
    if (!r.u64(cap)) return false;
    // Capacity is 0 (never grown) or a power of two >= kMinCapacity;
    // anything else cannot have come from a real FlatMap.
    if (cap != 0 &&
        (cap < FlatMap<V>::kMinCapacity || (cap & (cap - 1)) != 0)) {
      return false;
    }
    if (!plausible(r, cap, 1)) return false;
    m.slots_ = std::vector<typename FlatMap<V>::Slot>(cap);
    m.state_.assign(cap, FlatMap<V>::kEmpty);
    m.size_ = 0;
    m.dead_ = 0;
    for (std::uint64_t i = 0; i < cap; ++i) {
      std::uint8_t s;
      if (!r.u8(s)) return false;
      if (s > FlatMap<V>::kTomb) return false;  // kUnplaced is transient
      m.state_[i] = s;
      if (s == FlatMap<V>::kFull) {
        if (!r.u64(m.slots_[i].first)) return false;
        if (!dec(r, m.slots_[i].second)) return false;
        ++m.size_;
      } else if (s == FlatMap<V>::kTomb) {
        ++m.dead_;
      }
    }
    return true;
  }

  static void encode_sharers(Writer& w, const SharerSet& s) {
    w.u64(s.words_.size());
    for (std::size_t i = 0; i < s.words_.size(); ++i) w.u64(s.words_[i]);
  }

  static bool decode_sharers(Reader& r, SharerSet& s) {
    std::uint64_t nwords;
    if (!r.u64(nwords)) return false;
    if (!plausible(r, nwords, 8)) return false;
    s.words_.assign(static_cast<std::size_t>(nwords), 0);
    s.size_ = 0;
    for (std::uint64_t i = 0; i < nwords; ++i) {
      if (!r.u64(s.words_[static_cast<std::size_t>(i)])) return false;
      s.size_ += static_cast<std::size_t>(
          std::popcount(s.words_[static_cast<std::size_t>(i)]));
    }
    return true;
  }

  static void encode_protocol(Writer& w, const ProtocolCounters& c) {
    w.u64(c.gets);
    w.u64(c.getm);
    w.u64(c.fwd_gets);
    w.u64(c.fwd_getm);
    w.u64(c.inv);
    w.u64(c.inv_ack);
    w.u64(c.wb_data);
  }
  static bool decode_protocol(Reader& r, ProtocolCounters& c) {
    return r.u64(c.gets) && r.u64(c.getm) && r.u64(c.fwd_gets) &&
           r.u64(c.fwd_getm) && r.u64(c.inv) && r.u64(c.inv_ack) &&
           r.u64(c.wb_data);
  }

  static void encode_htm(Writer& w, const HtmCounters& c) {
    w.u64(c.calls);
    w.u64(c.attempts);
    w.u64(c.commits);
    w.u64(c.fallbacks);
    w.u64(c.fallback_cas);
    w.u64(c.uarch_fix_stalls);
    for (std::uint64_t a : c.aborts) w.u64(a);
    for (std::uint64_t b : c.retry_histogram) w.u64(b);
  }
  static bool decode_htm(Reader& r, HtmCounters& c) {
    if (!(r.u64(c.calls) && r.u64(c.attempts) && r.u64(c.commits) &&
          r.u64(c.fallbacks) && r.u64(c.fallback_cas) &&
          r.u64(c.uarch_fix_stalls))) {
      return false;
    }
    for (std::uint64_t& a : c.aborts) {
      if (!r.u64(a)) return false;
    }
    for (std::uint64_t& b : c.retry_histogram) {
      if (!r.u64(b)) return false;
    }
    return true;
  }

  static void encode_basket(Writer& w, const BasketCounters& c) {
    w.u64(c.appends_won);
    w.u64(c.appends_lost);
    w.u64(c.stale_tails);
    w.u64(c.closes);
    w.u64(c.occupancy_sum);
    w.u64(c.occupancy_min);
    w.u64(c.occupancy_max);
    w.u64(c.extracted);
    w.u64(c.empty_swaps);
    w.u64(c.node_reuses);
    w.u64(c.fresh_allocs);
  }
  static bool decode_basket(Reader& r, BasketCounters& c) {
    return r.u64(c.appends_won) && r.u64(c.appends_lost) &&
           r.u64(c.stale_tails) && r.u64(c.closes) && r.u64(c.occupancy_sum) &&
           r.u64(c.occupancy_min) && r.u64(c.occupancy_max) &&
           r.u64(c.extracted) && r.u64(c.empty_swaps) && r.u64(c.node_reuses) &&
           r.u64(c.fresh_allocs);
  }

  static void encode_policy(Writer& w, const PolicyCounters& c) {
    w.u64(c.txn_steps);
    w.u64(c.budget_fallbacks);
    w.u64(c.degraded_fallbacks);
    w.u64(c.intra_delay_cycles);
    w.u64(c.post_delay_cycles);
  }
  static bool decode_policy(Reader& r, PolicyCounters& c) {
    return r.u64(c.txn_steps) && r.u64(c.budget_fallbacks) &&
           r.u64(c.degraded_fallbacks) && r.u64(c.intra_delay_cycles) &&
           r.u64(c.post_delay_cycles);
  }

  static void encode_stats(Writer& w, const Stats& s) {
    w.b(s.track_lines_);
    encode_protocol(w, s.protocol_);
    encode_htm(w, s.htm_);
    encode_basket(w, s.basket_);
    encode_policy(w, s.policy_);
    w.u64(s.per_core_protocol_.size());
    for (const auto& c : s.per_core_protocol_) encode_protocol(w, c);
    for (const auto& c : s.per_core_htm_) encode_htm(w, c);
    encode_flat_map(w, s.lines_, [](Writer& ww, const ProtocolCounters& c) {
      encode_protocol(ww, c);
    });
  }

  // `stats` was emplaced from (cores, track_lines), so the per-core tables
  // are already sized; the blob's count must agree with the config.
  static bool decode_stats(Reader& r, Stats& s, int cores) {
    if (!r.b(s.track_lines_)) return false;
    if (!decode_protocol(r, s.protocol_)) return false;
    if (!decode_htm(r, s.htm_)) return false;
    if (!decode_basket(r, s.basket_)) return false;
    if (!decode_policy(r, s.policy_)) return false;
    std::uint64_t n;
    if (!r.u64(n)) return false;
    if (n != static_cast<std::uint64_t>(cores)) return false;
    for (auto& c : s.per_core_protocol_) {
      if (!decode_protocol(r, c)) return false;
    }
    for (auto& c : s.per_core_htm_) {
      if (!decode_htm(r, c)) return false;
    }
    return decode_flat_map(r, s.lines_, [](Reader& rr, ProtocolCounters& c) {
      return decode_protocol(rr, c);
    });
  }
};

namespace {

void encode_config(Writer& w, const MachineConfig& cfg) {
  w.u64(static_cast<std::uint64_t>(cfg.cores));
  w.u64(static_cast<std::uint64_t>(cfg.sockets));
  w.u64(cfg.intra_latency);
  w.u64(cfg.inter_latency);
  w.u8(static_cast<std::uint8_t>(cfg.interconnect_model));
  w.u64(cfg.link_occupancy);
  w.b(cfg.canonical_inv_order);
  w.u64(cfg.dir_occupancy);
  w.u64(cfg.hit_latency);
  w.u64(cfg.rmw_latency);
  w.b(cfg.uarch_fix);
  w.b(cfg.record_trace);
  w.u64(cfg.trace_capacity);
  w.b(cfg.collect_stats);
  w.b(cfg.track_lines);
  w.b(cfg.fault_plan.enabled);
  w.u64(cfg.fault_plan.seed);
  w.f64(cfg.fault_plan.capacity_rate);
  w.f64(cfg.fault_plan.interrupt_rate);
  w.f64(cfg.fault_plan.spurious_rate);
  w.f64(cfg.fault_plan.message_jitter_rate);
  w.u64(cfg.fault_plan.max_message_jitter);
  w.u64(cfg.fault_plan.one_shots.size());
  for (const FaultOneShot& shot : cfg.fault_plan.one_shots) {
    w.u64(shot.time);
    w.u64(static_cast<std::uint64_t>(shot.core));
    w.u8(static_cast<std::uint8_t>(shot.kind));
  }
  w.b(cfg.check_invariants);
  w.u64(static_cast<std::uint64_t>(cfg.dir_slices));
  w.u64(static_cast<std::uint64_t>(cfg.machine_threads));
  w.b(cfg.alloc_arenas);
  w.u64(cfg.prewarm_frames);
  w.u64(cfg.prewarm_event_nodes);
  w.u64(cfg.link_queue_cap);
  w.u64(cfg.dir_queue_cap);
  // Contention policy: part of the canonical config bytes, so the policy
  // kind and every tuning knob key machine_config_digest (and thus the
  // snapshot cache) automatically.
  w.u8(static_cast<std::uint8_t>(cfg.cas_policy.kind));
  w.u64(cfg.cas_policy.seed);
  w.u64(cfg.cas_policy.backoff_floor_shift);
  w.u64(cfg.cas_policy.backoff_ceil_mult);
  w.u64(cfg.cas_policy.fallback_budget);
  w.u64(cfg.cas_policy.conflict_cost);
  w.u64(cfg.cas_policy.nonconflict_cost);
  w.u8(cfg.cas_policy.commit_decay);
}

bool decode_config(Reader& r, MachineConfig& cfg) {
  std::uint8_t model;
  if (!(r.i(cfg.cores) && r.i(cfg.sockets) && r.u64(cfg.intra_latency) &&
        r.u64(cfg.inter_latency) && r.u8(model))) {
    return false;
  }
  if (model > static_cast<std::uint8_t>(InterconnectModel::kLink)) return false;
  cfg.interconnect_model = static_cast<InterconnectModel>(model);
  if (!(r.u64(cfg.link_occupancy) && r.b(cfg.canonical_inv_order) &&
        r.u64(cfg.dir_occupancy) && r.u64(cfg.hit_latency) &&
        r.u64(cfg.rmw_latency) && r.b(cfg.uarch_fix) &&
        r.b(cfg.record_trace))) {
    return false;
  }
  std::uint64_t cap;
  if (!r.u64(cap)) return false;
  cfg.trace_capacity = static_cast<std::size_t>(cap);
  if (!(r.b(cfg.collect_stats) && r.b(cfg.track_lines))) return false;
  if (!(r.b(cfg.fault_plan.enabled) && r.u64(cfg.fault_plan.seed) &&
        r.f64(cfg.fault_plan.capacity_rate) &&
        r.f64(cfg.fault_plan.interrupt_rate) &&
        r.f64(cfg.fault_plan.spurious_rate) &&
        r.f64(cfg.fault_plan.message_jitter_rate) &&
        r.u64(cfg.fault_plan.max_message_jitter))) {
    return false;
  }
  std::uint64_t nshots;
  if (!r.u64(nshots) || !plausible(r, nshots, 17)) return false;
  cfg.fault_plan.one_shots.resize(static_cast<std::size_t>(nshots));
  for (FaultOneShot& shot : cfg.fault_plan.one_shots) {
    std::uint8_t kind;
    if (!(r.u64(shot.time) && r.i(shot.core) && r.u8(kind))) return false;
    if (kind >= kFaultKindCount) return false;
    shot.kind = static_cast<FaultKind>(kind);
  }
  if (!(r.b(cfg.check_invariants) && r.i(cfg.dir_slices) &&
        r.i(cfg.machine_threads) && r.b(cfg.alloc_arenas))) {
    return false;
  }
  std::uint64_t frames, nodes;
  if (!(r.u64(frames) && r.u64(nodes))) return false;
  cfg.prewarm_frames = static_cast<std::size_t>(frames);
  cfg.prewarm_event_nodes = static_cast<std::size_t>(nodes);
  if (!(r.u64(cfg.link_queue_cap) && r.u64(cfg.dir_queue_cap))) return false;
  std::uint8_t policy_kind;
  if (!r.u8(policy_kind)) return false;
  // Unknown policy kinds are rejected, not misread: a blob from a future
  // schema cannot silently decode into the wrong retry behavior.
  if (policy_kind >= kContentionPolicyKindCount) return false;
  cfg.cas_policy.kind = static_cast<ContentionPolicyKind>(policy_kind);
  std::uint64_t floor_shift, ceil_mult, budget, ccost, nccost;
  if (!(r.u64(cfg.cas_policy.seed) && r.u64(floor_shift) &&
        r.u64(ceil_mult) && r.u64(budget) && r.u64(ccost) &&
        r.u64(nccost))) {
    return false;
  }
  cfg.cas_policy.backoff_floor_shift = static_cast<std::uint32_t>(floor_shift);
  cfg.cas_policy.backoff_ceil_mult = static_cast<std::uint32_t>(ceil_mult);
  cfg.cas_policy.fallback_budget = static_cast<std::uint32_t>(budget);
  cfg.cas_policy.conflict_cost = static_cast<std::uint32_t>(ccost);
  cfg.cas_policy.nonconflict_cost = static_cast<std::uint32_t>(nccost);
  std::uint8_t decay;
  if (!r.u8(decay)) return false;
  if (decay > ContentionPolicyParams::kCommitDecayHalfLife) return false;
  cfg.cas_policy.commit_decay = decay;
  return true;
}

void encode_dir_line(Writer& w, const Directory::State& d) {
  SnapshotSerde::encode_flat_map(
      w, d.lines, [](Writer& ww, const auto& line) {
        ww.u8(static_cast<std::uint8_t>(line.state));
        ww.u64(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(line.owner)));
        SnapshotSerde::encode_sharers(ww, line.sharers);
        ww.u64(line.value);
      });
  w.u64(d.busy_until);
  w.u64(d.stats.gets);
  w.u64(d.stats.getm);
  w.u64(d.stats.invalidations);
  w.u64(d.stats.fwd_gets);
  w.u64(d.stats.fwd_getm);
  w.u64(d.stats.wb_accepted);
  w.u64(d.stats.wb_dropped);
  w.u64(d.stats.bp_stalls);
  w.u64(d.stats.queue_peak);
}

bool decode_dir_line(Reader& r, Directory::State& d) {
  const bool ok = SnapshotSerde::decode_flat_map(
      r, d.lines, [](Reader& rr, auto& line) {
        std::uint8_t state;
        std::uint64_t owner;
        if (!(rr.u8(state) && rr.u64(owner))) return false;
        if (state > static_cast<std::uint8_t>(Directory::LineState::kOwned)) {
          return false;
        }
        line.state = static_cast<Directory::LineState>(state);
        line.owner = static_cast<CoreId>(static_cast<std::int64_t>(owner));
        return SnapshotSerde::decode_sharers(rr, line.sharers) &&
               rr.u64(line.value);
      });
  return ok && r.u64(d.busy_until) && r.u64(d.stats.gets) &&
         r.u64(d.stats.getm) && r.u64(d.stats.invalidations) &&
         r.u64(d.stats.fwd_gets) && r.u64(d.stats.fwd_getm) &&
         r.u64(d.stats.wb_accepted) && r.u64(d.stats.wb_dropped) &&
         r.u64(d.stats.bp_stalls) && r.u64(d.stats.queue_peak);
}

void encode_core_stats(Writer& w, const CoreStats& s) {
  w.u64(s.loads);
  w.u64(s.stores);
  w.u64(s.rmws);
  w.u64(s.txcas_calls);
  w.u64(s.txcas_success);
  w.u64(s.txcas_fail);
  w.u64(s.txcas_attempts);
  w.u64(s.nested_aborts);
  w.u64(s.tripped_aborts);
  w.u64(s.uarch_fix_stalls);
  w.u64(s.self_aborts);
  w.u64(s.fallbacks);
  w.u64(s.injected_capacity);
  w.u64(s.injected_interrupt);
  w.u64(s.injected_spurious);
  w.u64(s.fallback_cas);
}

bool decode_core_stats(Reader& r, CoreStats& s) {
  return r.u64(s.loads) && r.u64(s.stores) && r.u64(s.rmws) &&
         r.u64(s.txcas_calls) && r.u64(s.txcas_success) &&
         r.u64(s.txcas_fail) && r.u64(s.txcas_attempts) &&
         r.u64(s.nested_aborts) && r.u64(s.tripped_aborts) &&
         r.u64(s.uarch_fix_stalls) && r.u64(s.self_aborts) &&
         r.u64(s.fallbacks) && r.u64(s.injected_capacity) &&
         r.u64(s.injected_interrupt) && r.u64(s.injected_spurious) &&
         r.u64(s.fallback_cas);
}

void encode_core(Writer& w, const Core::State& c) {
  SnapshotSerde::encode_flat_map(w, c.lines, [](Writer& ww, const auto& line) {
    ww.u8(static_cast<std::uint8_t>(line.state));
    ww.u64(line.value);
  });
  encode_core_stats(w, c.stats);
  w.u64(c.delay_jitter_state);
  w.u64(c.fault_rng_state);
  w.u64(c.policy_state.rng);
  w.u64(c.policy_state.failure_level);
}

bool decode_core(Reader& r, Core::State& c) {
  const bool ok = SnapshotSerde::decode_flat_map(
      r, c.lines, [](Reader& rr, auto& line) {
        std::uint8_t state;
        if (!rr.u8(state)) return false;
        if (state > static_cast<std::uint8_t>(Core::LineState::kOwned)) {
          return false;
        }
        line.state = static_cast<Core::LineState>(state);
        return rr.u64(line.value);
      });
  if (!(ok && decode_core_stats(r, c.stats) && r.u64(c.delay_jitter_state) &&
        r.u64(c.fault_rng_state) && r.u64(c.policy_state.rng))) {
    return false;
  }
  std::uint64_t level;
  if (!r.u64(level)) return false;
  c.policy_state.failure_level = static_cast<std::uint32_t>(level);
  return true;
}

void encode_net(Writer& w, const Interconnect::State& s) {
  w.u64(s.sent);
  w.u64(s.link_msgs);
  w.u64(s.link_wait_cycles);
  w.u64(s.link_bp_stalls);
  w.u64(s.link_queue_peak);
  w.u64(s.link_busy_until.size());
  for (Time t : s.link_busy_until) w.u64(t);
  w.u64(s.jitter_rng_state);
  w.u64(s.jittered_msgs);
  w.u64(s.jitter_cycles);
  w.u64(s.last_arrival.size());
  for (Time t : s.last_arrival) w.u64(t);
}

bool decode_net(Reader& r, Interconnect::State& s) {
  if (!(r.u64(s.sent) && r.u64(s.link_msgs) && r.u64(s.link_wait_cycles) &&
        r.u64(s.link_bp_stalls) && r.u64(s.link_queue_peak))) {
    return false;
  }
  std::uint64_t n;
  if (!r.u64(n) || !plausible(r, n, 8)) return false;
  s.link_busy_until.resize(static_cast<std::size_t>(n));
  for (Time& t : s.link_busy_until) {
    if (!r.u64(t)) return false;
  }
  if (!(r.u64(s.jitter_rng_state) && r.u64(s.jittered_msgs) &&
        r.u64(s.jitter_cycles))) {
    return false;
  }
  if (!r.u64(n) || !plausible(r, n, 8)) return false;
  s.last_arrival.resize(static_cast<std::size_t>(n));
  for (Time& t : s.last_arrival) {
    if (!r.u64(t)) return false;
  }
  return true;
}

}  // namespace

bool snapshot_cacheable(const MachineConfig& cfg) noexcept {
  return cfg.canonical_inv_order && !cfg.record_trace &&
         cfg.machine_threads <= 1;
}

std::uint64_t machine_config_digest(const MachineConfig& cfg) {
  Writer w;
  encode_config(w, cfg);
  return fnv1a(w.buf.data(), w.buf.size());
}

std::vector<std::uint8_t> encode_snapshot_blob(
    const MachineSnapshot& snap, const std::vector<std::uint64_t>& host_words,
    std::uint64_t key) {
  // Legacy inv-order side tables transcribe libstdc++ internals; refusing
  // them here (rather than encoding a lossy approximation) keeps the
  // round-trip guarantee absolute. The cacheable() gate filters these
  // configs before warm-up, so a non-empty table indicates a caller bug.
  for (const Directory::State& d : snap.directories) {
    if (!d.legacy_order.empty()) return {};
  }
  if (snap.cfg.record_trace || snap.trace.enabled() || snap.trace.size() != 0) {
    return {};
  }

  Writer w;
  w.buf.reserve(1 << 16);
  w.u32(kMagic);
  w.u32(kSnapshotSchemaVersion);
  w.u64(key);

  w.u8(kTagConfig);
  encode_config(w, snap.cfg);

  w.u8(kTagEngine);
  w.u64(snap.engine.now);
  w.u64(snap.engine.next_seq);
  w.u64(snap.engine.processed);
  w.u64(snap.engine.alloc.scheduled);
  w.u64(snap.engine.alloc.slab_refills);
  w.u64(snap.engine.alloc.boxed_allocs);
  w.u64(snap.engine.alloc.overflow_events);

  w.u8(kTagNet);
  encode_net(w, snap.net);

  w.u8(kTagDirs);
  w.u64(snap.directories.size());
  for (const Directory::State& d : snap.directories) encode_dir_line(w, d);

  w.u8(kTagCores);
  w.u64(snap.cores.size());
  for (const Core::State& c : snap.cores) encode_core(w, c);

  w.u8(kTagStats);
  w.b(snap.stats.has_value());
  if (snap.stats.has_value()) SnapshotSerde::encode_stats(w, *snap.stats);

  w.u8(kTagCursors);
  w.u64(snap.next_addr);
  w.u64(snap.region_next);
  w.u64(snap.spawned);
  w.u64(snap.finished);
  w.b(snap.started);
  w.u64(snap.arena_next.size());
  for (Addr a : snap.arena_next) w.u64(a);

  w.u8(kTagHostWords);
  w.u64(host_words.size());
  for (std::uint64_t v : host_words) w.u64(v);

  w.u8(kTagEnd);
  w.u64(fnv1a(w.buf.data(), w.buf.size()));
  return w.buf;
}

bool decode_snapshot_blob(const std::vector<std::uint8_t>& blob,
                          std::uint64_t key, MachineSnapshot& snap,
                          std::vector<std::uint64_t>& host_words) {
  if (blob.size() < 4 + 4 + 8 + 8) return false;
  const std::size_t body = blob.size() - 8;
  std::uint64_t stored_sum = 0;
  for (int i = 0; i < 8; ++i) {
    stored_sum |= std::uint64_t{blob[body + static_cast<std::size_t>(i)]}
                  << (8 * i);
  }
  if (fnv1a(blob.data(), body) != stored_sum) return false;

  Reader r{blob.data(), body};
  std::uint32_t magic, version;
  std::uint64_t stored_key;
  if (!(r.u32(magic) && r.u32(version) && r.u64(stored_key))) return false;
  if (magic != kMagic) return false;
  if (version != kSnapshotSchemaVersion) return false;
  if (stored_key != key) return false;

  if (!r.tag(kTagConfig) || !decode_config(r, snap.cfg)) return false;
  if (snap.cfg.cores < 1 || snap.cfg.dir_slices < 1) return false;

  if (!r.tag(kTagEngine)) return false;
  if (!(r.u64(snap.engine.now) && r.u64(snap.engine.next_seq) &&
        r.u64(snap.engine.processed) && r.u64(snap.engine.alloc.scheduled) &&
        r.u64(snap.engine.alloc.slab_refills) &&
        r.u64(snap.engine.alloc.boxed_allocs) &&
        r.u64(snap.engine.alloc.overflow_events))) {
    return false;
  }

  if (!r.tag(kTagNet) || !decode_net(r, snap.net)) return false;

  std::uint64_t n;
  if (!r.tag(kTagDirs) || !r.u64(n)) return false;
  if (n != static_cast<std::uint64_t>(snap.cfg.dir_slices)) return false;
  snap.directories.clear();
  snap.directories.resize(static_cast<std::size_t>(n));
  for (Directory::State& d : snap.directories) {
    if (!decode_dir_line(r, d)) return false;
  }

  if (!r.tag(kTagCores) || !r.u64(n)) return false;
  if (n != static_cast<std::uint64_t>(snap.cfg.cores)) return false;
  snap.cores.clear();
  snap.cores.resize(static_cast<std::size_t>(n));
  for (Core::State& c : snap.cores) {
    if (!decode_core(r, c)) return false;
  }

  bool have_stats;
  if (!r.tag(kTagStats) || !r.b(have_stats)) return false;
  snap.stats.reset();
  if (have_stats) {
    snap.stats.emplace(snap.cfg.cores, snap.cfg.track_lines);
    if (!SnapshotSerde::decode_stats(r, *snap.stats, snap.cfg.cores)) {
      return false;
    }
  }

  if (!r.tag(kTagCursors)) return false;
  std::uint64_t spawned, finished;
  if (!(r.u64(snap.next_addr) && r.u64(snap.region_next) && r.u64(spawned) &&
        r.u64(finished) && r.b(snap.started))) {
    return false;
  }
  snap.spawned = static_cast<std::size_t>(spawned);
  snap.finished = static_cast<std::size_t>(finished);
  if (!r.u64(n) || !plausible(r, n, 8)) return false;
  snap.arena_next.resize(static_cast<std::size_t>(n));
  for (Addr& a : snap.arena_next) {
    if (!r.u64(a)) return false;
  }
  // The machine restores arenas only when configured; a count mismatch
  // would desynchronize alloc() addressing.
  if (snap.cfg.alloc_arenas &&
      n != static_cast<std::uint64_t>(snap.cfg.cores)) {
    return false;
  }

  if (!r.tag(kTagHostWords) || !r.u64(n) || !plausible(r, n, 8)) return false;
  host_words.resize(static_cast<std::size_t>(n));
  for (std::uint64_t& v : host_words) {
    if (!r.u64(v)) return false;
  }

  if (!r.tag(kTagEnd)) return false;
  if (r.pos != body) return false;  // trailing garbage
  // The trace is debug state, deliberately not persisted: rebuild the
  // disabled ring a fresh machine of this config would carry.
  snap.trace = Trace(false, snap.cfg.trace_capacity);
  return true;
}

}  // namespace sbq::sim
