// SharerSet — bitmask sharer tracking with schedule-stable iteration.
//
// Membership lives in uint64_t words indexed by core id, so contains() is
// one bit test and size() is a counter: the §3.3 invalidate-all-sharers
// broadcast no longer hashes per sharer. The subtle part is iteration
// order. The order in which the directory walks the sharer set decides the
// delivery order of back-to-back invalidations, which (through per-core
// abort/retry timing) is *schedule-visible*: replaying the seed with
// sharers iterated in ascending id order changes the printed tables of
// 9 of the 11 figure drivers. Since this refactor must keep every driver
// byte-identical, SharerSet carries — next to the bitmask — a compact
// replica of the seed container's (libstdc++ std::unordered_set<int>)
// bucket chain: per-id `next` links, a before-begin head, a bucket ->
// "node before the bucket's first element" table, and the library's own
// std::__detail::_Prime_rehash_policy instance so bucket growth happens at
// exactly the same insertions. insert/erase/rehash transcribe the
// _Hashtable insert-at-bucket-begin / unlink / rehash algorithms
// (sharer_set_test fuzzes the replica against the real container).
//
// The chain costs three small per-line arrays that grow to the largest
// core id seen. Each array carries inline storage (SmallBuf) sized so that
// machines of up to kInlineIds cores never heap-allocate per line — fresh
// lines (every new basket node) would otherwise charge a handful of
// allocations against the sim_microbench whole-machine zero-alloc gate.
// Larger machines spill to the heap transparently. A future PR can drop
// the chain entirely behind a MachineConfig switch once canonical
// ascending-order invalidation is an accepted (re-baselined) schedule; see
// ROADMAP "Open items".
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <unordered_set>  // for std::__detail::_Prime_rehash_policy
#include <utility>

#include "sim/types.hpp"

namespace sbq::sim {

namespace detail {

// Fixed-fill resizable buffer of a trivial T with N elements inline.
// Covers exactly what SharerSet needs (resize-with-fill, assign-with-fill,
// indexing); spills to the heap beyond N and never shrinks.
template <typename T, std::size_t N>
class SmallBuf {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SmallBuf() noexcept = default;
  SmallBuf(const SmallBuf& o) { copy_from(o); }
  SmallBuf& operator=(const SmallBuf& o) {
    if (this != &o) {
      size_ = 0;
      copy_from(o);
    }
    return *this;
  }
  SmallBuf(SmallBuf&& o) noexcept { steal(o); }
  SmallBuf& operator=(SmallBuf&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  ~SmallBuf() { release(); }

  std::size_t size() const noexcept { return size_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  // Grow to `n` elements, new slots set to `fill` (no-op shrink excluded:
  // SharerSet only ever grows these buffers).
  void resize(std::size_t n, T fill) {
    ensure(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  void assign(std::size_t n, T fill) {
    ensure(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

 private:
  void ensure(std::size_t n) {
    if (n <= cap_) return;
    const std::size_t cap = std::max(n, cap_ * 2);
    T* heap = new T[cap];
    std::copy(data_, data_ + size_, heap);
    release();
    data_ = heap;
    cap_ = cap;
  }
  void release() noexcept {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    cap_ = N;
  }
  void copy_from(const SmallBuf& o) {
    ensure(o.size_);
    std::copy(o.data_, o.data_ + o.size_, data_);
    size_ = o.size_;
  }
  void steal(SmallBuf& o) noexcept {
    if (o.data_ == o.inline_) {
      std::copy(o.inline_, o.inline_ + o.size_, inline_);
      size_ = o.size_;
    } else {
      data_ = std::exchange(o.data_, o.inline_);
      cap_ = std::exchange(o.cap_, N);
      size_ = o.size_;
    }
    o.size_ = 0;
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace detail

class SharerSet {
 public:
  // Inline-storage sizing: the chain links cover core ids < kInlineIds, and
  // the bucket array stays inline through _Prime_rehash_policy's first two
  // growth steps (13 then 29 buckets, good for up to 29 simultaneous
  // sharers at max load factor 1.0). So machines of up to 16 cores never
  // heap-allocate per line; one bitmask word covers 64 cores — more than
  // any evaluated configuration.
  static constexpr std::size_t kInlineIds = 16;
  static constexpr std::size_t kInlineBuckets = 32;
  static constexpr std::size_t kInlineWords = 1;

  SharerSet() = default;

  bool contains(CoreId id) const noexcept {
    const auto w = static_cast<std::size_t>(id) >> 6;
    return w < words_.size() &&
           (words_[w] >> (static_cast<std::size_t>(id) & 63)) & 1;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  // One word per 64 cores; popcount over words() gives the sharer count
  // without touching the order chain.
  const detail::SmallBuf<std::uint64_t, kInlineWords>& words() const noexcept {
    return words_;
  }

  void insert(CoreId id) {
    assert(id >= 0 && "sharer ids are non-negative core ids");
    if (contains(id)) return;
    ensure_capacity(id);
    const auto need =
        policy_._M_need_rehash(bucket_count_, size_, /*n_ins=*/1);
    if (need.first) rehash(need.second);
    insert_bucket_begin(bucket_of(id), id);
    words_[static_cast<std::size_t>(id) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(id) & 63);
    ++size_;
  }

  std::size_t erase(CoreId id) {
    if (!contains(id)) return 0;
    const std::size_t bkt = bucket_of(id);
    // Find the node before `id` in the global chain, starting from the
    // bucket's before-node (the bucket is non-empty: it holds `id`).
    const std::int32_t before = bucket_before_[bkt];
    std::int32_t prev = before;
    std::int32_t cur = (before == kBeforeBegin) ? head_ : next_[before];
    while (cur != id) {
      prev = cur;
      cur = next_[cur];
    }
    const std::int32_t next = next_[id];
    if (prev == before) {
      // Removing the bucket's first element (_M_remove_bucket_begin).
      const std::size_t next_bkt = (next == kEnd) ? 0 : bucket_of(next);
      if (next == kEnd || next_bkt != bkt) {
        if (next != kEnd) bucket_before_[next_bkt] = bucket_before_[bkt];
        if (bucket_before_[bkt] == kBeforeBegin) head_ = next;
        bucket_before_[bkt] = kEmptyBucket;
      }
    } else if (next != kEnd) {
      const std::size_t next_bkt = bucket_of(next);
      if (next_bkt != bkt) bucket_before_[next_bkt] = prev;
    }
    if (prev == kBeforeBegin) {
      head_ = next;
    } else {
      next_[prev] = next;
    }
    words_[static_cast<std::size_t>(id) >> 6] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(id) & 63));
    --size_;
    return 1;
  }

  void clear() noexcept {
    // Like unordered_set::clear(): drop the elements, keep the bucket
    // array and the rehash policy's growth state.
    head_ = kEnd;
    size_ = 0;
    bucket_before_.assign(bucket_before_.size(), kEmptyBucket);
    words_.assign(words_.size(), 0);
  }

  class const_iterator {
   public:
    using value_type = CoreId;
    const_iterator(const SharerSet* s, std::int32_t id) : set_(s), id_(id) {}
    CoreId operator*() const noexcept { return id_; }
    const_iterator& operator++() noexcept {
      id_ = set_->next_[id_];
      return *this;
    }
    bool operator==(const const_iterator& o) const noexcept {
      return id_ == o.id_;
    }
    bool operator!=(const const_iterator& o) const noexcept {
      return id_ != o.id_;
    }

   private:
    const SharerSet* set_;
    std::int32_t id_;
  };

  const_iterator begin() const noexcept { return {this, head_}; }
  const_iterator end() const noexcept { return {this, kEnd}; }

  // Exposed for the differential test.
  std::size_t bucket_count() const noexcept { return bucket_count_; }

 private:
  static constexpr std::int32_t kEnd = -1;          // end of the chain
  static constexpr std::int32_t kBeforeBegin = -2;  // virtual head node
  static constexpr std::int32_t kEmptyBucket = -3;

  std::size_t bucket_of(std::int32_t id) const noexcept {
    // std::hash<int> is the identity; ids are non-negative.
    return static_cast<std::size_t>(id) % bucket_count_;
  }

  void ensure_capacity(CoreId id) {
    const auto need_words = (static_cast<std::size_t>(id) >> 6) + 1;
    if (words_.size() < need_words) words_.resize(need_words, 0);
    if (next_.size() <= static_cast<std::size_t>(id))
      next_.resize(static_cast<std::size_t>(id) + 1, kEnd);
  }

  // _Hashtable::_M_insert_bucket_begin: new elements go to the *front* of
  // their bucket; an empty bucket hooks its chain at the global front.
  void insert_bucket_begin(std::size_t bkt, std::int32_t id) {
    if (bucket_before_[bkt] != kEmptyBucket) {
      const std::int32_t before = bucket_before_[bkt];
      if (before == kBeforeBegin) {
        next_[id] = head_;
        head_ = id;
      } else {
        next_[id] = next_[before];
        next_[before] = id;
      }
    } else {
      next_[id] = head_;
      head_ = id;
      if (next_[id] != kEnd) bucket_before_[bucket_of(next_[id])] = id;
      bucket_before_[bkt] = kBeforeBegin;
    }
  }

  // _Hashtable::_M_rehash_aux (unique keys): walk the chain in iteration
  // order, re-hooking every node with the insert-at-bucket-begin rule.
  void rehash(std::size_t new_count) {
    bucket_before_.assign(new_count, kEmptyBucket);
    bucket_count_ = new_count;
    std::int32_t cur = head_;
    head_ = kEnd;
    while (cur != kEnd) {
      const std::int32_t next = next_[cur];
      insert_bucket_begin(bucket_of(cur), cur);
      cur = next;
    }
  }

  // membership bitmask, bit = core id
  detail::SmallBuf<std::uint64_t, kInlineWords> words_;
  // chain link per id (valid iff member)
  detail::SmallBuf<std::int32_t, kInlineIds> next_;
  // Per bucket: id of the chain node *before* the bucket's first element,
  // kBeforeBegin when that is the virtual head, kEmptyBucket when empty.
  // Empty until the first rehash (bucket_count_ == 1 holds no elements:
  // the policy forces a rehash on the first insertion, exactly like a
  // default-constructed unordered_set).
  detail::SmallBuf<std::int32_t, kInlineBuckets> bucket_before_;
  std::int32_t head_ = kEnd;
  std::size_t size_ = 0;
  std::size_t bucket_count_ = 1;
  std::__detail::_Prime_rehash_policy policy_;
};

}  // namespace sbq::sim
