// SharerSet — bare-bitmask sharer tracking with canonical ascending-order
// iteration.
//
// Membership lives in uint64_t words indexed by core id, so contains() is
// one bit test and size() is a counter: the §3.3 invalidate-all-sharers
// broadcast never hashes per sharer. Iteration — which decides the Inv
// delivery order the directory produces, and through per-core abort/retry
// timing is *schedule-visible* — walks the bitmask in ascending core-id
// order. This canonical order is the default machine schedule
// (MachineConfig::canonical_inv_order); the pre-canonical libstdc++
// bucket-chain order survives as an opt-out escape hatch in
// legacy_inv_order.hpp, kept *outside* the per-line state so a Line carries
// nothing but this bitmask (see docs/protocol.md "Invalidation order").
//
// The word array carries inline storage (SmallBuf) sized so machines of up
// to 64 cores — more than any evaluated configuration — never heap-allocate
// per line; fresh lines (every new basket node) would otherwise charge
// allocations against the sim_microbench whole-machine zero-alloc gate.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "sim/types.hpp"

namespace sbq::sim {

namespace detail {

// Fixed-fill resizable buffer of a trivial T with N elements inline.
// Covers exactly what the sharer structures need (resize-with-fill,
// assign-with-fill, indexing); spills to the heap beyond N and never
// shrinks.
template <typename T, std::size_t N>
class SmallBuf {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SmallBuf() noexcept = default;
  SmallBuf(const SmallBuf& o) { copy_from(o); }
  SmallBuf& operator=(const SmallBuf& o) {
    if (this != &o) {
      size_ = 0;
      copy_from(o);
    }
    return *this;
  }
  SmallBuf(SmallBuf&& o) noexcept { steal(o); }
  SmallBuf& operator=(SmallBuf&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  ~SmallBuf() { release(); }

  std::size_t size() const noexcept { return size_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  // Grow to `n` elements, new slots set to `fill` (no-op shrink excluded:
  // the sharer structures only ever grow these buffers).
  void resize(std::size_t n, T fill) {
    ensure(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  void assign(std::size_t n, T fill) {
    ensure(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

 private:
  void ensure(std::size_t n) {
    if (n <= cap_) return;
    const std::size_t cap = std::max(n, cap_ * 2);
    T* heap = new T[cap];
    std::copy(data_, data_ + size_, heap);
    release();
    data_ = heap;
    cap_ = cap;
  }
  void release() noexcept {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    cap_ = N;
  }
  void copy_from(const SmallBuf& o) {
    ensure(o.size_);
    std::copy(o.data_, o.data_ + o.size_, data_);
    size_ = o.size_;
  }
  void steal(SmallBuf& o) noexcept {
    if (o.data_ == o.inline_) {
      std::copy(o.inline_, o.inline_ + o.size_, inline_);
      size_ = o.size_;
    } else {
      data_ = std::exchange(o.data_, o.inline_);
      cap_ = std::exchange(o.cap_, N);
      size_ = o.size_;
    }
    o.size_ = 0;
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace detail

class SharerSet {
 public:
  // One word covers 64 cores — more than any evaluated configuration — so
  // per-line sharer state is a single inline word in the common case.
  static constexpr std::size_t kInlineWords = 1;

  SharerSet() = default;

  bool contains(CoreId id) const noexcept {
    const auto w = static_cast<std::size_t>(id) >> 6;
    return w < words_.size() &&
           (words_[w] >> (static_cast<std::size_t>(id) & 63)) & 1;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  // One word per 64 cores, bit = core id.
  const detail::SmallBuf<std::uint64_t, kInlineWords>& words() const noexcept {
    return words_;
  }

  void insert(CoreId id) {
    assert(id >= 0 && "sharer ids are non-negative core ids");
    if (contains(id)) return;
    const auto need_words = (static_cast<std::size_t>(id) >> 6) + 1;
    if (words_.size() < need_words) words_.resize(need_words, 0);
    words_[static_cast<std::size_t>(id) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(id) & 63);
    ++size_;
  }

  std::size_t erase(CoreId id) {
    if (!contains(id)) return 0;
    words_[static_cast<std::size_t>(id) >> 6] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(id) & 63));
    --size_;
    return 1;
  }

  void clear() noexcept {
    words_.assign(words_.size(), 0);
    size_ = 0;
  }

  // Iteration in ascending core-id order (the canonical Inv order): a
  // word-by-word bit scan, no per-sharer hashing or chain chasing.
  class const_iterator {
   public:
    using value_type = CoreId;
    const_iterator(const SharerSet* s, std::size_t word) : set_(s), w_(word) {
      if (w_ < set_->words_.size()) {
        bits_ = set_->words_[w_];
        settle();
      }
    }
    CoreId operator*() const noexcept {
      return static_cast<CoreId>((w_ << 6) +
                                 static_cast<std::size_t>(
                                     std::countr_zero(bits_)));
    }
    const_iterator& operator++() noexcept {
      bits_ &= bits_ - 1;  // clear the lowest set bit
      settle();
      return *this;
    }
    bool operator==(const const_iterator& o) const noexcept {
      return w_ == o.w_ && bits_ == o.bits_;
    }
    bool operator!=(const const_iterator& o) const noexcept {
      return !(*this == o);
    }

   private:
    void settle() noexcept {
      while (bits_ == 0 && ++w_ < set_->words_.size()) {
        bits_ = set_->words_[w_];
      }
      if (bits_ == 0) w_ = set_->words_.size();
    }
    const SharerSet* set_;
    std::size_t w_;
    std::uint64_t bits_ = 0;
  };

  const_iterator begin() const noexcept { return {this, 0}; }
  const_iterator end() const noexcept { return {this, words_.size()}; }

 private:
  // Snapshot serialization (sim/serialize.cpp) restores the word array
  // verbatim and recomputes size_ by popcount.
  friend struct SnapshotSerde;

  // membership bitmask, bit = core id
  detail::SmallBuf<std::uint64_t, kInlineWords> words_;
  std::size_t size_ = 0;
};

}  // namespace sbq::sim
