// sim::Stats — the simulator's metrics registry.
//
// One Stats instance per Machine collects, while the simulation runs:
//   * protocol counters (GetS/GetM issues, Fwd-GetS/Fwd-GetM, Inv, Inv-Ack,
//     write-backs), machine-wide, per-core, and (optionally) per cache line;
//   * HTM counters: transactional attempts, commits, abort causes broken
//     down by the paper's §3 taxonomy (conflict, capacity, tripped writer,
//     explicit), the §3.4.1 fix engaging, fallbacks, and a retry histogram
//     (attempts needed per TxCAS call);
//   * queue-level basket counters fed by the simulated SBQ (append
//     won/lost, basket close events with occupancy, extraction outcomes).
//
// Every hook is attributed to the acting core and the affected line, so a
// figure's claim ("the losers abort on back-to-back invalidations") can be
// traced to exact event counts — see docs/observability.md for the full
// taxonomy and how each counter maps to the paper's terminology.
//
// Overhead: collection is plain counter increments behind a null-check on
// the owning component's `Stats*` (disabled ⇒ no Stats object ⇒ one
// predictable branch). Per-line counters add a hash-map lookup per protocol
// event and are therefore off by default (MachineConfig::track_lines). The
// discrete-event engine itself has no hooks at all — its fast path is
// byte-for-byte the one engine_microbench gates.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/flat_map.hpp"
#include "sim/types.hpp"

namespace sbq::sim {

// HTM abort causes, mapped to the paper's §3/§4 terminology:
//   kConflict      — requester-wins data conflict (an Inv or Fwd-GetM hit
//                    the transaction's footprint; §3.3 "concurrent aborts").
//   kCapacity      — transactional footprint overflow. The simulated TxCAS
//                    touches a single line, so this never fires; it is kept
//                    so reports share one schema with real-HTM runs.
//   kTrippedWriter — a Fwd-GetS hit the commit window (§3.4).
//   kExplicit      — _xabort(1): the value check failed inside the
//                    transaction (Algorithm 1's self-abort).
//   kInterrupt     — timer interrupt / context switch hit the transaction.
//                    In the simulator this only arises from fault injection
//                    (MachineConfig::fault_plan).
//   kSpurious      — unexplained abort (real HTM reports these; injection
//                    only).
enum class AbortCause : std::uint8_t {
  kConflict = 0,
  kCapacity = 1,
  kTrippedWriter = 2,
  kExplicit = 3,
  kInterrupt = 4,
  kSpurious = 5,
};
// The §3 taxonomy the protocol itself can produce — always serialized to
// JSON. The injected causes above it are serialized only when the machine
// ran with fault injection enabled, so default artifacts stay byte-stable.
inline constexpr int kBaseAbortCauseCount = 4;
inline constexpr int kAbortCauseCount = 6;
const char* abort_cause_name(AbortCause c) noexcept;

// Coherence-protocol event counts. Each event is counted exactly once, at
// the acting core (see docs/observability.md for the attribution rules).
struct ProtocolCounters {
  std::uint64_t gets = 0;      // GetS requests issued (read misses)
  std::uint64_t getm = 0;      // GetM requests issued (write/RMW misses)
  std::uint64_t fwd_gets = 0;  // Fwd-GetS received by an owner
  std::uint64_t fwd_getm = 0;  // Fwd-GetM received by an owner (hand-off)
  std::uint64_t inv = 0;       // Inv received by a sharer
  std::uint64_t inv_ack = 0;   // Inv-Ack received by a requester
  std::uint64_t wb_data = 0;   // WB-Data sent on an M->O downgrade
};

// HTM/TxCAS counters (machine-wide and per-core).
struct HtmCounters {
  std::uint64_t calls = 0;     // TxCAS invocations
  std::uint64_t attempts = 0;  // transactional attempts started
  std::uint64_t commits = 0;   // attempts that committed
  std::uint64_t fallbacks = 0; // plain-CAS fallback taken (wait-freedom)
  // Graceful degradation: plain-CAS fallback taken early because the call
  // accumulated TxCasConfig::max_nonconflict_aborts non-conflict aborts
  // (capacity/interrupt/spurious) — disjoint from `fallbacks`.
  std::uint64_t fallback_cas = 0;
  std::uint64_t uarch_fix_stalls = 0;  // §3.4.1 fix engaged
  std::array<std::uint64_t, kAbortCauseCount> aborts{};

  // Retry histogram: bucket i counts TxCAS calls resolved after exactly
  // i+1 transactional attempts; the last bucket collects calls needing
  // >= kRetryBuckets attempts (including fallback-resolved calls).
  static constexpr int kRetryBuckets = 17;
  std::array<std::uint64_t, kRetryBuckets> retry_histogram{};

  std::uint64_t aborts_total() const noexcept {
    std::uint64_t n = 0;
    for (std::uint64_t a : aborts) n += a;
    return n;
  }
};

// Queue-level basket dynamics, fed by the simulated SBQ (§5). "Occupancy"
// of a close event is the number of cells holding a real element when the
// basket's empty bit was set.
struct BasketCounters {
  std::uint64_t appends_won = 0;    // try_append CAS/TxCAS succeeded
  std::uint64_t appends_lost = 0;   // lost the append race (joined a basket)
  std::uint64_t stale_tails = 0;    // try_append saw tail->next != NULL
  std::uint64_t closes = 0;         // baskets sealed (empty bit set)
  std::uint64_t occupancy_sum = 0;  // summed over close events
  std::uint64_t occupancy_min = UINT64_MAX;
  std::uint64_t occupancy_max = 0;
  std::uint64_t extracted = 0;      // swaps that yielded a real element
  std::uint64_t empty_swaps = 0;    // swaps that hit an unfilled cell
  std::uint64_t node_reuses = 0;    // failed appender's node recycled
  std::uint64_t fresh_allocs = 0;   // baskets initialized from scratch
};

// Contention-policy decision counters (common/contention.hpp), machine-wide.
// Every TxCAS scheduling decision the policy makes is recorded here:
//   txn_steps + budget_fallbacks + degraded_fallbacks == decisions taken,
//   txn_steps == HtmCounters::attempts,
//   budget_fallbacks == HtmCounters::fallbacks,
//   degraded_fallbacks == HtmCounters::fallback_cas
// (the conservation identities json_validate --policy-cells checks). Only
// serialized when the machine runs a non-fixed policy, keeping default
// artifacts byte-stable.
struct PolicyCounters {
  std::uint64_t txn_steps = 0;           // "retry transactionally" verdicts
  std::uint64_t budget_fallbacks = 0;    // attempt/abort budget exhausted
  std::uint64_t degraded_fallbacks = 0;  // non-conflict degradation taken
  std::uint64_t intra_delay_cycles = 0;  // policy-issued intra-txn delay
  std::uint64_t post_delay_cycles = 0;   // policy-issued post-abort delay

  std::uint64_t decisions() const noexcept {
    return txn_steps + budget_fallbacks + degraded_fallbacks;
  }
};

// Fault-injection counters (all zero — and not serialized — unless the
// machine ran with MachineConfig::fault_plan enabled).
struct FaultCounters {
  std::uint64_t injected_capacity = 0;   // rate/one-shot capacity aborts
  std::uint64_t injected_interrupt = 0;  // rate/one-shot interrupt aborts
  std::uint64_t injected_spurious = 0;   // rate/one-shot spurious aborts
  std::uint64_t one_shots_fired = 0;     // scheduled one-shots delivered
  std::uint64_t jittered_messages = 0;   // messages that drew extra latency
  std::uint64_t jitter_cycles = 0;       // total extra cycles added

  std::uint64_t injected_total() const noexcept {
    return injected_capacity + injected_interrupt + injected_spurious;
  }
};

// One machine's counters flattened into a copyable value — what a sweep
// cell carries into BENCH_*.json (see benchsupport/BenchReport).
struct MetricsSnapshot {
  ProtocolCounters protocol;
  HtmCounters htm;
  BasketCounters basket;
  std::uint64_t messages = 0;   // interconnect messages delivered
  // kLink interconnect: cross-socket messages and the cycles they spent
  // queued behind earlier link traffic (both zero under kFlat).
  std::uint64_t link_messages = 0;
  std::uint64_t link_wait_cycles = 0;
  std::uint64_t events = 0;     // engine events processed
  Time final_time = 0;          // simulated cycles at snapshot
  // Config-derived (not data-derived) flag: true iff the machine ran with
  // fault injection enabled. Gates the extra JSON fields so that default
  // runs serialize exactly as before (golden byte-identity).
  bool fault_injection = false;
  FaultCounters faults;
  // Parallel (sharded) machine: worker-thread count and per-slice engine
  // event totals. machine_threads stays 1 (and per_slice_events empty) on
  // a serial machine, gating the extra JSON fields.
  int machine_threads = 1;
  std::vector<std::uint64_t> per_slice_events;
  // Backpressure accounting (config-gated on the queue caps; all zero and
  // unserialized when both caps are 0).
  bool backpressure = false;
  std::uint64_t link_bp_stalls = 0;
  std::uint64_t link_queue_peak = 0;
  std::uint64_t dir_bp_stalls = 0;
  std::uint64_t dir_queue_peak = 0;
  // Contention policy the machine ran (ContentionPolicyKind as int).
  // Non-fixed kinds gate the extra "cas_policy" JSON block.
  int cas_policy_kind = 0;
  PolicyCounters policy;
};

class Stats {
 public:
  // `cores` sizes the per-core tables; `track_lines` additionally keys
  // protocol counters by cache line (hash lookup per event — off by
  // default, see MachineConfig::track_lines).
  explicit Stats(int cores, bool track_lines = false);

  bool track_lines() const noexcept { return track_lines_; }

  // ---- protocol hooks (called from the core/cache layer) ----
  void on_request(CoreId core, Addr a, bool want_m);  // GetS / GetM issued
  void on_fwd(CoreId owner, Addr a, bool getm);       // Fwd-Get[S|M] received
  void on_inv(CoreId sharer, Addr a);                 // Inv received
  void on_inv_ack(CoreId requester, Addr a);          // Inv-Ack received
  void on_wb(CoreId owner, Addr a);                   // WB-Data sent

  // ---- HTM hooks (called from the TxCAS state machine) ----
  void on_txcas_call(CoreId c);
  void on_txn_attempt(CoreId c);
  void on_txn_commit(CoreId c);
  void on_txn_abort(CoreId c, AbortCause cause);
  void on_txn_fallback(CoreId c);
  void on_fallback_cas(CoreId c);  // degraded to plain CAS (non-conflict K)
  void on_uarch_fix_stall(CoreId c);
  // Call resolution: `attempts` transactional attempts were used (feeds
  // the retry histogram; fallback-resolved calls land in the last bucket).
  void on_txcas_done(CoreId c, int attempts, bool success);

  // ---- contention-policy hooks (called from the TxCAS state machine) ----
  // One scheduling verdict (CasStep as int: 0 txn, 1 budget, 2 degraded).
  void on_policy_step(CoreId c, int step);
  // One policy-issued delay (`intra` selects the counter), in cycles.
  void on_policy_delay(CoreId c, bool intra, Time cycles);

  // ---- basket hooks (called from the simulated SBQ) ----
  void on_basket_append(bool won);
  void on_basket_stale_tail();
  void on_basket_close(std::uint64_t occupancy);
  void on_basket_extract(bool got_element);
  void on_basket_node(bool reused);

  // ---- views ----
  const ProtocolCounters& protocol() const noexcept { return protocol_; }
  const ProtocolCounters& core_protocol(CoreId c) const {
    return per_core_protocol_.at(static_cast<std::size_t>(c));
  }
  const HtmCounters& htm() const noexcept { return htm_; }
  const HtmCounters& core_htm(CoreId c) const {
    return per_core_htm_.at(static_cast<std::size_t>(c));
  }
  const BasketCounters& basket() const noexcept { return basket_; }
  const PolicyCounters& policy() const noexcept { return policy_; }
  // Per-line counters (empty unless track_lines). line(a) returns a zero
  // block for lines that saw no events.
  const FlatMap<ProtocolCounters>& lines() const noexcept { return lines_; }
  const ProtocolCounters& line(Addr a) const;

  int core_count() const noexcept {
    return static_cast<int>(per_core_protocol_.size());
  }

 private:
  // Snapshot serialization (sim/serialize.cpp) restores the registry
  // member-by-member into an instance emplaced from (cores, track_lines).
  friend struct SnapshotSerde;

  ProtocolCounters* line_slot(Addr a) {
    return track_lines_ ? &lines_[a] : nullptr;
  }

  bool track_lines_;
  ProtocolCounters protocol_;
  HtmCounters htm_;
  BasketCounters basket_;
  PolicyCounters policy_;
  std::vector<ProtocolCounters> per_core_protocol_;
  std::vector<HtmCounters> per_core_htm_;
  FlatMap<ProtocolCounters> lines_;
};

}  // namespace sbq::sim
