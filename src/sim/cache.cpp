// Protocol message handling for a core's private cache: data/ack collection,
// invalidations, owner forwards, stalls, and the HTM conflict reactions
// (requester-wins aborts, tripped writer, §3.4.1 fix).
//
// Owned-state subtlety: a core that holds a line in O (valid data) and has
// its own GetM upgrade in flight can receive forwards for requests the
// directory ordered *before* its upgrade. Directory-to-core delivery is
// FIFO, so "our GetM's directory response has not arrived yet"
// (p.got_data == false) identifies exactly those forwards — they must be
// answered immediately from the valid O copy (stalling them would deadlock
// the hand-off chain). Forwards that arrive after our response are ordered
// after our request and stall until our operation completes, which is the
// §3.2 stall that serializes RMW chains.
#include "sim/core.hpp"

#include "sim/trace.hpp"

namespace sbq::sim {

void Core::handle(const Message& msg) {
  switch (msg.type) {
    case MsgType::kData: on_data(msg); return;
    case MsgType::kInvAck: on_inv_ack(msg); return;
    case MsgType::kInv: on_inv(msg); return;
    case MsgType::kFwdGetS: on_fwd_gets(msg); return;
    case MsgType::kFwdGetM: on_fwd_getm(msg); return;
    default: assert(false && "unexpected message at core");
  }
}

void Core::on_data(const Message& msg) {
  auto it = pending_.find(msg.addr);
  assert(it != pending_.end() && "Data with no pending request");
  Pending& p = it->second;
  p.got_data = true;
  p.data = msg.value;
  p.acks_expected = msg.ack_count;
  if (!p.want_m || p.acks_got >= p.acks_expected) finish_request(msg.addr);
}

void Core::on_inv_ack(const Message& msg) {
  if (metrics_) metrics_->on_inv_ack(id_, msg.addr);
  auto it = pending_.find(msg.addr);
  assert(it != pending_.end() && "Inv-Ack with no pending request");
  Pending& p = it->second;
  ++p.acks_got;
  if (p.got_data && p.acks_got >= p.acks_expected && !p.locked) {
    finish_request(msg.addr);
  }
}

void Core::on_inv(const Message& msg) {
  const Addr a = msg.addr;
  if (metrics_) metrics_->on_inv(id_, a);
  auto it = pending_.find(a);
  if (it != pending_.end() && !it->second.want_m && !it->second.got_data) {
    // Inv raced ahead of the data for our GetS (the data is coming from an
    // owner, the Inv straight from the directory): observe the data once,
    // then invalidate and ack when the load releases the line.
    it->second.inv_after_data = true;
    it->second.deferred_inv_requester = msg.requester;
    return;
  }
  // Invalidate our shared copy (if any) and ack the requesting writer.
  // This is the concurrent-abort path of Figure 2b: every transactional
  // reader of the line receives its Inv back-to-back and aborts without
  // any serialization.
  auto lit = lines_.find(a);
  if (lit != lines_.end() && (lit->second.state == LineState::kShared ||
                              lit->second.state == LineState::kOwned)) {
    // An Owned copy can be invalidated too: after its write-back landed the
    // directory treats the ex-owner as an ordinary sharer.
    lit->second.state = LineState::kInvalid;
  }
  maybe_txn_conflict_on_loss(a, /*losing_all_permissions=*/true);
  Message ack{MsgType::kInvAck, a, id_, msg.requester, 0, 0};
  net_.send(id_, msg.requester, ack);
}

// True if we hold a valid Owned copy while our own GetM's directory
// response has not arrived — i.e. the incoming forward belongs to a request
// ordered before ours and must be served right away.
bool Core::fwd_predates_pending_request(Addr a, const Pending& p) const {
  if (p.got_data) return false;
  auto it = lines_.find(a);
  return it != lines_.end() && it->second.state == LineState::kOwned;
}

void Core::on_fwd_gets(const Message& msg) {
  const Addr a = msg.addr;
  if (metrics_) metrics_->on_fwd(id_, a, /*getm=*/false);
  auto it = pending_.find(a);
  if (it != pending_.end()) {
    if (fwd_predates_pending_request(a, it->second)) {
      // The read was ordered before our own upgrade: serve it from the
      // valid Owned copy right away, with no transactional conflict — a
      // transactional write is still store-buffered (invisible), and the
      // reader is ordered before it. Stalling here can deadlock: the
      // reader may owe a deferred Inv-Ack that our upgrade is waiting on.
      answer_fwd_gets(msg);
      return;
    }
    const bool txn_window = it->second.txn_write && txn_.active &&
                            txn_.in_write_phase && txn_.addr == a &&
                            !it->second.locked;
    if (txn_window && cfg_.uarch_fix) {
      // §3.4.1: the core is blocked in _xend with a single pending GetM and
      // the conflicting request is a read — stall it until commit. (Safe:
      // the reader is not one of the sharers whose acks we are waiting on.)
      ++stats_.uarch_fix_stalls;
      if (metrics_) metrics_->on_uarch_fix_stall(id_);
      if (trace_ && trace_->enabled()) {
        trace_->record(engine_.now(), id_, "uarch-fix stall Fwd-GetS", a,
                       msg.requester);
      }
      it->second.stalled_fwds.push_back(msg);
      return;
    }
    if (txn_window) {
      // Tripped writer (§3.4): the read hit our commit window.
      ++stats_.tripped_aborts;
      txcas_abort(/*kind=*/1, AbortCause::kTrippedWriter);
    }
    if (fwd_predates_pending_request(a, it->second)) {
      // Ordered before our upgrade: serve from the valid Owned copy now.
      answer_fwd_gets(msg);
      return;
    }
    it->second.stalled_fwds.push_back(msg);
    return;
  }
  answer_fwd_gets(msg);
}

void Core::on_fwd_getm(const Message& msg) {
  const Addr a = msg.addr;
  if (metrics_) metrics_->on_fwd(id_, a, /*getm=*/true);
  auto it = pending_.find(a);
  if (it != pending_.end()) {
    if (fwd_predates_pending_request(a, it->second)) {
      // Ordered before our upgrade: the writer takes our Owned copy now
      // (requester-wins: this also aborts a transaction using the line —
      // handled inside answer_fwd_getm).
      answer_fwd_getm(msg);
      return;
    }
    // Standard §3.2 behaviour: a core stalls an incoming Fwd-GetM until its
    // own GetM (and the RMW on top of it) completes. This builds the
    // serialized hand-off chain of Figure 2a. Transactional writers are
    // not aborted by stalled writes — in line with the paper's observation
    // that write-phase conflicts are overwhelmingly caused by reads.
    it->second.stalled_fwds.push_back(msg);
    return;
  }
  answer_fwd_getm(msg);
}

void Core::answer_fwd_gets(const Message& msg) {
  const Addr a = msg.addr;
  Line& line = lines_.at(a);
  assert(line.state == LineState::kModified || line.state == LineState::kOwned);
  if (txn_.active && txn_.addr == a && txn_.in_write_phase &&
      pending_.count(a) == 0) {
    // Rare hit-window case: transaction writing an already-owned line when
    // the read arrives. Requester-wins: abort (the commit had not applied).
    ++stats_.tripped_aborts;
    txcas_abort(/*kind=*/1, AbortCause::kTrippedWriter);
  }
  // Serve the reader and stay in Owned state (able to serve more readers)
  // while the write-back travels to the LLC; once it lands, the directory
  // flips the line to Shared and the LLC serves subsequent reads — the
  // MESIF-style behaviour of Intel parts (forwarding + inclusive LLC copy),
  // with no directory blocking.
  const bool first_downgrade = line.state == LineState::kModified;
  line.state = LineState::kOwned;
  Message data{MsgType::kData, a, id_, msg.requester, line.value, 0};
  net_.send(id_, msg.requester, data);
  if (first_downgrade) {
    if (metrics_) metrics_->on_wb(id_, a);
    Message wb{MsgType::kWbData, a, id_, id_, line.value, 0};
    net_.send(id_, dir_node(a), wb);
  }
}

void Core::answer_fwd_getm(const Message& msg) {
  const Addr a = msg.addr;
  Line& line = lines_.at(a);
  assert(line.state == LineState::kModified || line.state == LineState::kOwned);
  maybe_txn_conflict_on_loss(a, /*losing_all_permissions=*/true);
  line.state = LineState::kInvalid;
  // The Fwd-GetM carries the invalidation-ack count the new owner expects
  // (non-zero when the directory invalidated sharers of an Owned line).
  Message data{MsgType::kData, a, id_, msg.requester, line.value,
               msg.ack_count};
  net_.send(id_, msg.requester, data);
}

void Core::maybe_txn_conflict_on_loss(Addr a, bool losing_all_permissions) {
  if (!txn_.active || txn_.addr != a) return;
  if (txn_.in_write_phase) {
    // Conflict in the outer transaction: immediate retry (Algorithm 1
    // lines 16–18). Fwd-GetS tripping is handled by on_fwd_gets; this path
    // covers Inv (another writer won while we were upgrading) and
    // Fwd-GetM on an owned line.
    txcas_abort(/*kind=*/1, AbortCause::kConflict);
    return;
  }
  if (txn_.read_marked && losing_all_permissions) {
    // Conflict in the nested (read) phase: Figure 2b's concurrent abort.
    txcas_abort(/*kind=*/0, AbortCause::kConflict);
  }
  // A downgrade (losing only write permission) does not disturb a reader.
}

}  // namespace sbq::sim
