// Core operation plumbing and the TxCAS state machine.
#include "sim/core.hpp"

#include "common/rng.hpp"
#include "sim/trace.hpp"

namespace sbq::sim {

namespace {
// Probability in [0,1] → uint32 threshold for a `draw < t` test on the top
// 32 bits of a 64-bit random word. Saturates so rate=1.0 always fires.
std::uint32_t rate_to_threshold(double rate) noexcept {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return 0xffffffffu;
  return static_cast<std::uint32_t>(rate * 4294967296.0);
}
}  // namespace

Core::Core(CoreId id, Engine& engine, Interconnect& net,
           const MachineConfig& cfg, Trace* trace, Stats* metrics)
    : id_(id), engine_(engine), net_(net), cfg_(cfg), trace_(trace),
      metrics_(metrics), dir_(net.directory_id()) {
  const FaultPlan& plan = cfg_.fault_plan;
  if (plan.rates_active()) {
    // Per-core stream: decorrelate cores by mixing the id into the seed.
    SplitMix64 sm(plan.seed ^
                  (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id_) + 1)));
    fault_rng_state_ = sm.next();
    // Cumulative thresholds: one draw selects capacity / interrupt /
    // spurious / none.
    const std::uint64_t cap = rate_to_threshold(plan.capacity_rate);
    const std::uint64_t intr = rate_to_threshold(plan.interrupt_rate);
    const std::uint64_t spur = rate_to_threshold(plan.spurious_rate);
    const auto sat = [](std::uint64_t v) {
      return static_cast<std::uint32_t>(v > 0xffffffffu ? 0xffffffffu : v);
    };
    fault_cap_t_ = sat(cap);
    fault_int_t_ = sat(cap + intr);
    fault_spur_t_ = sat(cap + intr + spur);
  }
  // Per-core contention-policy stream, decorrelated by core id. Seeded
  // unconditionally (cheap, deterministic) so switching the policy kind
  // never perturbs any other stream.
  txcas_op_.policy_state = ContentionPolicy::seeded_state(
      cfg_.cas_policy.seed, static_cast<std::uint64_t>(id_));
  // Pre-size the small request-path tables to their minimum capacity now.
  // Both are bounded by concurrent in-flight requests (a handful), but a
  // core whose first parked waiter lands mid-run would otherwise pay the
  // table's lazy first rehash inside a measured phase — observed under
  // adaptive contention policies, whose reshaped retry schedules can make
  // a retry acquire overlap the same core's background abort-GetM for the
  // first time phases after warm-up (sim_microbench zero-alloc gate).
  pending_.reserve(1);
  waiters_.reserve(1);
}

Core::LineState Core::line_state(Addr a) const {
  auto it = lines_.find(a);
  return it == lines_.end() ? LineState::kInvalid : it->second.state;
}

Core::State Core::save_state() const {
  assert(quiescent() && "cannot snapshot a core with in-flight state");
  return State{lines_, stats_, delay_jitter_state_, fault_rng_state_,
               txcas_op_.policy_state};
}

void Core::restore_state(const State& s) {
  assert(quiescent() && "cannot restore onto a core with in-flight state");
  lines_ = s.lines;
  stats_ = s.stats;
  delay_jitter_state_ = s.delay_jitter_state;
  fault_rng_state_ = s.fault_rng_state;
  txcas_op_.policy_state = s.policy_state;
}

// ---------------------------------------------------------------------------
// Generic acquire: ensure the line is present with the needed permission,
// then run `cont` (synchronously within the completing event).
// ---------------------------------------------------------------------------

void Core::acquire(Addr a, bool want_m, ContFn cont) {
  if (pending_.count(a) != 0) {
    // Our own request on this line is in flight (e.g. the background GetM of
    // an aborted transaction). Wait for it to settle, then try again.
    waiters_[a].push_back(
        WaiterFn([this, a, want_m, cont = std::move(cont)]() mutable {
          acquire(a, want_m, std::move(cont));
        }));
    return;
  }
  auto it = lines_.find(a);
  const bool hit =
      it != lines_.end() &&
      (it->second.state == LineState::kModified ||
       (!want_m && (it->second.state == LineState::kShared ||
                    it->second.state == LineState::kOwned)));
  if (hit) {
    cont();
    return;
  }
  issue_request(a, want_m, std::move(cont));
}

void Core::issue_request(Addr a, bool want_m, ContFn cont) {
  if (metrics_) metrics_->on_request(id_, a, want_m);
  Pending& p = pending_[a];
  p.want_m = want_m;
  p.on_complete = std::move(cont);
  Message req{want_m ? MsgType::kGetM : MsgType::kGetS, a, id_, id_, 0, 0};
  net_.send(id_, dir_node(a), req);
}

void Core::finish_request(Addr a) {
  Line& line = lines_[a];
  Pending& p = pending_.at(a);
  // Owned-to-Modified upgrade: our copy is the authoritative one; the
  // directory's response only carried the ack count (its value is stale).
  const bool keep_own_value =
      p.want_m && line.state == LineState::kOwned;
  line.state = p.want_m ? LineState::kModified : LineState::kShared;
  if (!keep_own_value) line.value = p.data;
  p.locked = true;  // forwards stay stalled until the op releases the line
  if (trace_ && trace_->enabled()) {
    trace_->record(engine_.now(), id_,
                   p.want_m ? "GetM complete" : "GetS complete", a,
                   static_cast<std::int64_t>(p.data));
  }
  // Hand control to the operation that issued the request. It must call
  // release_request(a) when its atomic step is done.
  auto cont = std::move(p.on_complete);
  if (cont) {
    cont();
  } else {
    // Operation no longer cares (aborted transaction): release immediately.
    release_request(a);
  }
}

void Core::release_request(Addr a) {
  auto it = pending_.find(a);
  assert(it != pending_.end());
  // Answer forwards stalled behind this request, in arrival order. Each may
  // change the line's state (downgrade/invalidate).
  InlineVec<Message, 16> stalls = std::move(it->second.stalled_fwds);
  const bool deferred_inv = it->second.inv_after_data;
  const CoreId inv_req = it->second.deferred_inv_requester;
  pending_.erase(it);

  if (deferred_inv) {
    // An Inv raced with our GetS: the load observed the data once; the line
    // is invalid from now on and the invalidating writer gets its ack.
    Line& line = lines_[a];
    line.state = LineState::kInvalid;
    maybe_txn_conflict_on_loss(a, true);
    Message ack{MsgType::kInvAck, a, id_, inv_req, 0, 0};
    net_.send(id_, inv_req, ack);
  }
  for (const Message& fwd : stalls) {
    if (fwd.type == MsgType::kFwdGetS) {
      answer_fwd_gets(fwd);
    } else {
      answer_fwd_getm(fwd);
    }
  }
  run_waiters(a);
}

void Core::run_waiters(Addr a) {
  auto it = waiters_.find(a);
  if (it == waiters_.end()) return;
  InlineVec<WaiterFn, 4> ws = std::move(it->second);
  waiters_.erase(it);
  for (auto& w : ws) w();
}

// ---------------------------------------------------------------------------
// Plain operations.
// ---------------------------------------------------------------------------

void Core::start_load(Addr a, DoneValFn done) {
  ++stats_.loads;
  acquire(a, /*want_m=*/false, ContFn([this, a, done = std::move(done)]() mutable {
    const Value v = lines_.at(a).value;
    const bool was_miss = pending_.count(a) != 0;
    engine_.schedule(cfg_.hit_latency,
                     [this, a, v, was_miss, done = std::move(done)]() mutable {
      if (was_miss) release_request(a);
      done(v);
    });
  }));
}

void Core::start_store(Addr a, Value v, DoneVoidFn done) {
  ++stats_.stores;
  acquire(a, /*want_m=*/true,
          ContFn([this, a, v, done = std::move(done)]() mutable {
    lines_.at(a).value = v;
    const bool was_miss = pending_.count(a) != 0;
    engine_.schedule(cfg_.hit_latency,
                     [this, a, was_miss, done = std::move(done)]() mutable {
      if (was_miss) release_request(a);
      done();
    });
  }));
}

void Core::start_rmw(Rmw kind, Addr a, Value arg0, Value arg1, DoneValFn done) {
  ++stats_.rmws;
  acquire(a, /*want_m=*/true,
          ContFn([this, kind, a, arg0, arg1, done = std::move(done)]() mutable {
    // We own the line: perform the read-modify-write atomically. Incoming
    // forwards are stalled (pending entry is locked) until rmw_latency has
    // elapsed — the §3.2 stall that serializes contended RMWs.
    Line& line = lines_.at(a);
    const Value old = line.value;
    Value result = old;
    switch (kind) {
      case Rmw::kCas:
        if (old == arg0) {
          line.value = arg1;
          result = 1;
        } else {
          result = 0;
        }
        break;
      case Rmw::kFaa:
        line.value = old + arg0;
        break;
      case Rmw::kSwap:
        line.value = arg0;
        break;
    }
    const bool was_miss = pending_.count(a) != 0;
    engine_.schedule(cfg_.rmw_latency,
                     [this, a, was_miss, result, done = std::move(done)]() mutable {
      if (was_miss) release_request(a);
      done(result);
    });
  }));
}

// ---------------------------------------------------------------------------
// TxCAS (§4, Algorithm 1) as an explicit state machine. One live TxCAS per
// core (each core runs one simulated thread), so the operation record is a
// per-core slot (txcas_op_) reused across calls. Callbacks belonging to a
// finished attempt may still fire (a stale GetS/GetM completing); they must
// not read the possibly-reused slot, so they carry the addr and the
// attempt's txn token by value and bail out on a token mismatch. Tokens are
// monotonically increasing across attempts and operations, which makes the
// token check equivalent to the old shared_ptr identity + token pair.
// ---------------------------------------------------------------------------

void Core::start_txcas(Addr a, Value expected, Value desired, TxCasConfig cfg,
                       DoneBoolFn done) {
  ++stats_.txcas_calls;
  if (metrics_) metrics_->on_txcas_call(id_);
  TxCasOp* op = &txcas_op_;
  op->addr = a;
  op->expected = expected;
  op->desired = desired;
  op->cfg = cfg;
  // Re-arm the retry brain for this call: machine-wide policy params, this
  // op's §4 knobs. The persistent policy_state is deliberately untouched.
  op->policy = make_contention_policy(cfg_.cas_policy, cfg);
  op->policy.begin_call();
  op->done = std::move(done);
  txcas_attempt(op);
}

void Core::txcas_attempt(TxCasOp* op) {
  // The policy decides: retry transactionally, fall back on attempt-budget
  // exhaustion, or degrade after persistent non-conflict aborts (capacity,
  // interrupt, spurious — retrying those buys nothing).
  const CasStep step = op->policy.next_step();
  if (metrics_) metrics_->on_policy_step(id_, static_cast<int>(step));
  if (step != CasStep::kTxn) {
    txcas_fallback(op, /*degraded=*/step == CasStep::kFallbackDegraded);
    return;
  }
  op->policy.note_attempt();
  ++stats_.txcas_attempts;
  if (metrics_) metrics_->on_txn_attempt(id_);
  txn_.active = true;
  txn_.in_write_phase = false;
  txn_.addr = op->addr;
  txn_.read_marked = false;
  ++txn_.token;
  txn_op_ = op;
  // Transactional read: needs the line in S (or M). The read itself is a
  // plain GetS if we miss.
  acquire(op->addr, /*want_m=*/false,
          ContFn([this, op, a = op->addr, token = txn_.token] {
            txcas_on_read_ready(op, a, token);
          }));
}

void Core::txcas_on_read_ready(TxCasOp* op, Addr a, std::uint64_t token) {
  // The acquire may complete after an asynchronous abort already tore the
  // transaction down (e.g. deferred Inv) — or, with the per-core slot,
  // after the whole operation finished. Detect via the token; the stale
  // path must use the captured addr (the slot may describe a newer op).
  if (!txn_.active || txn_.token != token) {
    if (pending_.count(a) != 0) release_request(a);
    return;
  }
  const Value v = lines_.at(a).value;
  txn_.read_marked = true;
  const bool was_miss = pending_.count(a) != 0;
  if (was_miss) release_request(a);
  if (!txn_.active || txn_.token != token) {
    return;  // releasing answered a deferred Inv that aborted us
  }

  if (v != op->expected) {
    // Self-abort (_xabort(1) in Algorithm 1): the CAS fails outright.
    ++stats_.self_aborts;
    ++stats_.txcas_fail;
    if (metrics_) {
      metrics_->on_txn_abort(id_, AbortCause::kExplicit);
      metrics_->on_txcas_done(id_, static_cast<int>(op->policy.attempts()),
                              false);
    }
    txn_ = Txn{.token = txn_.token};
    txn_op_ = nullptr;
    engine_.schedule(cfg_.hit_latency, [op] {
      auto done = std::move(op->done);
      done(false);
    });
    return;
  }

  // Intra-transaction delay (§4.1). A conflicting invalidation during the
  // delay aborts the transaction (the timer notices via the token).
  //
  // The delay carries a deterministic per-attempt variance of up to ~50%.
  // Real spin-loop delays have exactly this kind of spread (PAUSE latency
  // varies with SMT and power state, _xbegin cost varies, the preceding
  // read may hit or miss), and §4.1's argument depends on it: the winner's
  // write must land while other transactions are still reading/delaying.
  // A cycle-exact simulator without the variance locks all contenders into
  // synchronized rounds in which every delay expires before the first
  // invalidation arrives, so every transaction reaches its write — a
  // lockstep artifact no real machine sustains.
  // The policy supplies the delay base (== cfg.intra_txn_delay under the
  // fixed policy; failure-history-scaled under adaptive-backoff). The
  // schedule jitter keeps drawing from the core's own LCG stream either
  // way, so switching policies never desynchronizes other draws.
  const Time delay_base = op->policy.intra_delay(op->policy_state);
  delay_jitter_state_ = delay_jitter_state_ * 6364136223846793005ULL +
                        1442695040888963407ULL +
                        static_cast<std::uint64_t>(id_);
  const Time jitter_range = delay_base / 2 + 16;
  const Time jitter = (delay_jitter_state_ >> 33) % jitter_range;
  if (metrics_) metrics_->on_policy_delay(id_, /*intra=*/true, delay_base + jitter);
  engine_.schedule(delay_base + jitter, [this, op, token] {
    if (!txn_.active || txn_.token != token) return;
    txcas_enter_write(op);
  });

  // Rate-based fault injection (MachineConfig::fault_plan): one draw per
  // transactional attempt; a hit schedules an injected abort at a
  // deterministic offset inside the attempt's vulnerability window. The
  // callback is token-guarded, so an attempt that already ended (committed
  // or aborted on a real conflict) ignores the stale fault.
  if ((fault_cap_t_ | fault_int_t_ | fault_spur_t_) != 0) {
    std::uint64_t z = (fault_rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const auto draw = static_cast<std::uint32_t>(z >> 32);
    if (draw < fault_spur_t_) {
      const FaultKind kind = draw < fault_cap_t_    ? FaultKind::kCapacity
                             : draw < fault_int_t_ ? FaultKind::kInterrupt
                                                   : FaultKind::kSpurious;
      const Time window = delay_base + jitter;
      const Time offset =
          1 + static_cast<Time>(z & 0xffffffffu) % (window == 0 ? 1 : window);
      engine_.schedule(offset, [this, kind, token] {
        if (!txn_.active || txn_.token != token) return;
        deliver_injected_fault(kind);
      });
    }
  }
}

void Core::txcas_enter_write(TxCasOp* op) {
  txn_.in_write_phase = true;
  const std::uint64_t token = txn_.token;
  if (pending_.count(op->addr) == 0 &&
      line_state(op->addr) == LineState::kModified) {
    // Already own the line: the write hits and the transaction commits with
    // (almost) no vulnerability window.
    engine_.schedule(cfg_.hit_latency, [this, op, token] {
      if (!txn_.active || txn_.token != token) return;
      txcas_commit(op);
    });
    return;
  }
  // Issue the transactional GetM. The write value stays in the store buffer
  // (we only apply it at commit). Mark the pending request as transactional
  // so the cache side can detect tripped-writer forwards. The token guard
  // matters: if this attempt aborts and the op retries, the stale GetM
  // completion must release the line instead of committing the new attempt.
  acquire(op->addr, /*want_m=*/true,
          ContFn([this, op, a = op->addr, token] {
    if (!txn_.active || txn_.token != token) {
      // Aborted while the GetM was in flight: ownership still arrives; the
      // buffered write is discarded. Release to answer stalled forwards.
      if (pending_.count(a) != 0) release_request(a);
      return;
    }
    txcas_commit(op);
  }));
  auto it = pending_.find(op->addr);
  if (it != pending_.end()) it->second.txn_write = true;
}

void Core::txcas_commit(TxCasOp* op) {
  // _xend: all transactional writes propagate to the cache.
  lines_.at(op->addr).value = op->desired;
  ++stats_.txcas_success;
  op->policy.on_commit(op->policy_state);
  if (metrics_) {
    metrics_->on_txn_commit(id_);
    metrics_->on_txcas_done(id_, static_cast<int>(op->policy.attempts()),
                            true);
  }
  txn_ = Txn{.token = txn_.token};
  txn_op_ = nullptr;
  if (trace_ && trace_->enabled()) {
    trace_->record(engine_.now(), id_, "txcas commit", op->addr,
                   static_cast<std::int64_t>(op->desired));
  }
  const bool was_miss = pending_.count(op->addr) != 0;
  engine_.schedule(cfg_.hit_latency, [this, op, was_miss] {
    // done() resumes the simulated thread, which may start a new TxCAS in
    // the same slot — move the callback out before invoking, and touch no
    // op field afterwards.
    if (was_miss) release_request(op->addr);
    auto done = std::move(op->done);
    done(true);
  });
}

// Called from the protocol side when a conflicting message hits the
// transaction's footprint. kind: 0 = conflict in the read/delay ("nested")
// phase, 1 = conflict that tripped the write.
void Core::txcas_abort(int kind, AbortCause cause) {
  assert(txn_.active);
  TxCasOp* op = txn_op_;
  if (metrics_) metrics_->on_txn_abort(id_, cause);
  txn_.active = false;
  txn_.read_marked = false;
  ++txn_.token;  // cancels any scheduled delay timer
  txn_op_ = nullptr;
  if (trace_ && trace_->enabled()) {
    trace_->record(engine_.now(), id_,
                   kind == 0 ? "txcas abort (nested)" : "txcas abort (tripped)",
                   op->addr, static_cast<std::int64_t>(op->policy.attempts()));
  }
  // Feed the abort-cause taxonomy into the policy: injected causes are
  // non-conflict (they spend the degradation budget), real conflicts split
  // into read-phase vs write-phase (adaptive-fallback charges both the
  // conflict cost; adaptive-backoff escalates its failure history).
  const bool nonconflict = cause == AbortCause::kCapacity ||
                           cause == AbortCause::kInterrupt ||
                           cause == AbortCause::kSpurious;
  op->policy.on_abort(op->policy_state,
                      nonconflict ? CasAbort::kNonConflict
                      : kind == 0 ? CasAbort::kReadConflict
                                  : CasAbort::kWriteConflict);
  // The op has not completed (done not yet called), so the slot stays valid
  // until the scheduled retry/post-abort step runs.
  if (kind == 0) {
    ++stats_.nested_aborts;
    // Conflict during the read step: a writer's GetM is in flight. Delay so
    // our re-read does not trip it, then check whether the value changed
    // (Algorithm 1 lines 19–20). The delay length is the policy's call
    // (== cfg.post_abort_delay under fixed; scaled + jittered from the
    // serialized per-core stream under adaptive-backoff).
    const Time post = op->policy.post_abort_delay(op->policy_state);
    if (metrics_) metrics_->on_policy_delay(id_, /*intra=*/false, post);
    engine_.schedule(post, [this, op] { txcas_post_abort(op); });
  } else {
    // Conflict after the nested transaction (we may be the tripped writer):
    // retry immediately (Algorithm 1 lines 16–18). The caller attributes
    // the abort (tripped_aborts for Fwd-GetS, plain retry otherwise).
    engine_.schedule(1, [this, op] { txcas_attempt(op); });
  }
}

void Core::txcas_post_abort(TxCasOp* op) {
  start_load(op->addr, DoneValFn([this, op](Value v) {
    if (v != op->expected) {
      ++stats_.txcas_fail;
      if (metrics_) {
        metrics_->on_txcas_done(id_, static_cast<int>(op->policy.attempts()),
                                false);
      }
      auto done = std::move(op->done);
      done(false);
    } else {
      txcas_attempt(op);
    }
  }));
}

void Core::inject_fault(FaultKind kind) { deliver_injected_fault(kind); }

void Core::deliver_injected_fault(FaultKind kind) {
  if (!txn_.active) return;  // landed between transactions: harmless
  AbortCause cause = AbortCause::kSpurious;
  switch (kind) {
    case FaultKind::kCapacity:
      cause = AbortCause::kCapacity;
      ++stats_.injected_capacity;
      break;
    case FaultKind::kInterrupt:
      cause = AbortCause::kInterrupt;
      ++stats_.injected_interrupt;
      break;
    case FaultKind::kSpurious:
      cause = AbortCause::kSpurious;
      ++stats_.injected_spurious;
      break;
  }
  TxCasOp* op = txn_op_;
  if (trace_ && trace_->enabled() && op) {
    trace_->record(engine_.now(), id_, "txcas fault injected", op->addr,
                   static_cast<std::int64_t>(kind));
  }
  // Tear the attempt down like a write-phase conflict: no post-abort
  // re-read is needed (the shared value did not change under us), just
  // retry — or degrade, once the non-conflict budget is spent.
  txcas_abort(/*kind=*/1, cause);
}

void Core::txcas_fallback(TxCasOp* op, bool degraded) {
  if (degraded) {
    ++stats_.fallback_cas;
    if (metrics_) metrics_->on_fallback_cas(id_);
  } else {
    ++stats_.fallbacks;
    if (metrics_) metrics_->on_txn_fallback(id_);
  }
  start_rmw(Rmw::kCas, op->addr, op->expected, op->desired,
            DoneValFn([this, op](Value ok) {
    if (ok != 0) {
      ++stats_.txcas_success;
    } else {
      ++stats_.txcas_fail;
    }
    if (metrics_) {
      metrics_->on_txcas_done(id_, static_cast<int>(op->policy.attempts()),
                              ok != 0);
    }
    auto done = std::move(op->done);
    done(ok != 0);
  }));
}

// ---------------------------------------------------------------------------
// Awaitable glue.
// ---------------------------------------------------------------------------

void Core::ValueAwaiter::await_suspend(std::coroutine_handle<> h) {
  DoneValFn done([this, h](Value v) {
    result = v;
    h.resume();
  });
  switch (kind) {
    case 0: core->start_load(addr, std::move(done)); break;
    case 1: core->start_rmw(Rmw::kCas, addr, a0, a1, std::move(done)); break;
    case 2: core->start_rmw(Rmw::kFaa, addr, a0, a1, std::move(done)); break;
    case 3: core->start_rmw(Rmw::kSwap, addr, a0, a1, std::move(done)); break;
    default: assert(false);
  }
}

void Core::VoidAwaiter::await_suspend(std::coroutine_handle<> h) {
  if (kind == 0) {
    core->start_store(addr, v, DoneVoidFn([h] { h.resume(); }));
  } else {
    core->engine_.schedule(cycles == 0 ? 1 : cycles, [h] { h.resume(); });
  }
}

void Core::TxCasAwaiter::await_suspend(std::coroutine_handle<> h) {
  core->start_txcas(addr, expected, desired, cfg,
                    DoneBoolFn([this, h](bool ok) {
    result = ok;
    h.resume();
  }));
}

}  // namespace sbq::sim
