#include "sim/invariants.hpp"

#include <sstream>

#include "sim/core.hpp"
#include "sim/directory.hpp"
#include "sim/sharer_set.hpp"

namespace sbq::sim {

namespace {

const char* core_state_name(Core::LineState s) noexcept {
  switch (s) {
    case Core::LineState::kInvalid: return "I";
    case Core::LineState::kShared: return "S";
    case Core::LineState::kModified: return "M";
    case Core::LineState::kOwned: return "O";
  }
  return "?";
}

}  // namespace

std::string check_swmr_invariants(
    const Directory& dir, const std::vector<std::unique_ptr<Core>>& cores) {
  std::string violation;
  const int n = static_cast<int>(cores.size());

  dir.visit_lines([&](Addr addr, Directory::LineState state, CoreId owner,
                      const SharerSet& sharers) {
    if (!violation.empty()) return;  // report the first violation only

    // 1. SWMR across the private caches.
    CoreId modified_holder = -1;
    for (int c = 0; c < n; ++c) {
      const Core::LineState cs = cores[static_cast<std::size_t>(c)]->line_state(addr);
      if (cs == Core::LineState::kModified) {
        if (modified_holder >= 0) {
          std::ostringstream os;
          os << "SWMR violated: addr " << addr << " Modified in cores "
             << modified_holder << " and " << c;
          violation = os.str();
          return;
        }
        modified_holder = c;
      }
    }
    if (modified_holder >= 0) {
      for (int c = 0; c < n; ++c) {
        if (c == modified_holder) continue;
        const Core::LineState cs =
            cores[static_cast<std::size_t>(c)]->line_state(addr);
        if (cs == Core::LineState::kShared || cs == Core::LineState::kOwned) {
          std::ostringstream os;
          os << "SWMR violated: addr " << addr << " Modified in core "
             << modified_holder << " but " << core_state_name(cs)
             << " in core " << c;
          violation = os.str();
          return;
        }
      }
    }

    // 2. Directory owner validity.
    if (state == Directory::LineState::kModified ||
        state == Directory::LineState::kOwned) {
      if (owner < 0 || owner >= n) {
        std::ostringstream os;
        os << "stale owner: addr " << addr << " dir state "
           << (state == Directory::LineState::kModified ? "M" : "O")
           << " but owner id " << owner << " out of range";
        violation = os.str();
        return;
      }
      const Core& oc = *cores[static_cast<std::size_t>(owner)];
      const Core::LineState os_ = oc.line_state(addr);
      if (os_ != Core::LineState::kModified &&
          os_ != Core::LineState::kOwned && !oc.has_pending(addr)) {
        std::ostringstream os;
        os << "stale owner: addr " << addr << " dir owner " << owner
           << " holds the line " << core_state_name(os_)
           << " with no request in flight";
        violation = os.str();
        return;
      }
    }

    // 3. Sharer validity.
    for (CoreId s : sharers) {
      if (s < 0 || s >= n) {
        std::ostringstream os;
        os << "sharer set inconsistent: addr " << addr << " sharer id " << s
           << " out of range";
        violation = os.str();
        return;
      }
      const Core& sc = *cores[static_cast<std::size_t>(s)];
      const Core::LineState ss = sc.line_state(addr);
      if (ss != Core::LineState::kShared && ss != Core::LineState::kOwned &&
          ss != Core::LineState::kModified && !sc.has_pending(addr)) {
        std::ostringstream os;
        os << "sharer set inconsistent: addr " << addr << " dir sharer " << s
           << " holds the line " << core_state_name(ss)
           << " with no request in flight";
        violation = os.str();
        return;
      }
    }
  });

  return violation;
}

std::string check_swmr_invariants(
    const std::vector<std::unique_ptr<Directory>>& dirs,
    const std::vector<std::unique_ptr<Core>>& cores) {
  for (const auto& d : dirs) {
    std::string v = check_swmr_invariants(*d, cores);
    if (!v.empty()) return v;
  }
  return {};
}

}  // namespace sbq::sim
