// Transactional lock elision on top of the HTM facade.
//
// A general-purpose utility in the spirit of the paper's HTM usage: run a
// critical section as a hardware transaction subscribed to a fallback
// spinlock; on repeated aborts (or on hosts without RTM), take the lock for
// real. This gives library users a second, simpler way to profit from HTM
// beyond TxCAS, with identical semantics either way.
//
// Usage:
//   ElidableLock lock;
//   elide(lock, [&] { /* critical section */ });
#pragma once

#include <atomic>
#include <cstdint>

#include "common/backoff.hpp"
#include "common/cacheline.hpp"
#include "htm/htm.hpp"

namespace sbq {

// Test-and-test-and-set spinlock whose state is readable inside a
// transaction (the elision subscription read).
class ElidableLock {
 public:
  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_acquire);
  }

  void lock() noexcept {
    Backoff backoff;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
      backoff.reset();
    }
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  alignas(kCacheLineSize) std::atomic<bool> locked_{false};
};

struct ElisionStats {
  std::uint64_t transactional_commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t lock_acquisitions = 0;
};

// Runs `critical_section` under elision of `lock`. Returns how the section
// ultimately executed. `max_attempts` transactional tries, then the lock.
template <typename F>
void elide(ElidableLock& lock, F&& critical_section, int max_attempts = 8,
           ElisionStats* stats = nullptr) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const unsigned ret = htm::begin();
    if (htm::started(ret)) {
      // Subscribe to the lock: if someone holds it, we must not run
      // transactionally alongside them; abort and wait.
      if (lock.is_locked()) htm::abort_with(0xfe);
      critical_section();
      htm::end();
      if (stats != nullptr) ++stats->transactional_commits;
      return;
    }
    if (stats != nullptr) ++stats->aborts;
    // Explicit lock-subscription abort: spin until free before retrying,
    // otherwise the transaction would just abort again immediately.
    if (htm::is_explicit(ret) && htm::explicit_code(ret) == 0xfe) {
      while (lock.is_locked()) cpu_relax();
      continue;
    }
    // Non-retryable abort classes go straight to the lock.
    if (!(ret & (htm::kAbortRetry | htm::kAbortConflict))) break;
  }
  lock.lock();
  critical_section();
  lock.unlock();
  if (stats != nullptr) ++stats->lock_acquisitions;
}

}  // namespace sbq
