// Portable hardware-transactional-memory facade.
//
// When compiled with SBQ_ENABLE_RTM (and -mrtm) on a TSX-capable Intel part,
// begin/end/abort map to the RTM intrinsics. Everywhere else the backend is
// `Unsupported`: begin() always reports a non-conflict abort, which makes
// every algorithm built on the facade (TxCAS in particular) fall through to
// its plain-CAS fallback path. This keeps the *native* library correct on
// any host; the paper's HTM *performance* behaviour is reproduced on the
// coherence simulator (src/sim), not here.
//
// The status word mirrors Intel RTM's EAX abort-reason bits so that code
// written against this facade matches Algorithm 1's structure (conflict /
// nested / explicit abort tests).
#pragma once

#include <cstdint>

namespace sbq::htm {

// Abort-status bits, matching Intel RTM's layout.
enum Status : unsigned {
  kStarted = ~0u,          // sentinel: transaction started successfully
  kAbortExplicit = 1u << 0,  // _xabort was called; code in bits 24..31
  kAbortRetry = 1u << 1,     // transient; retry may succeed
  kAbortConflict = 1u << 2,  // memory conflict with another core
  kAbortCapacity = 1u << 3,  // read/write set overflowed
  kAbortDebug = 1u << 4,
  kAbortNested = 1u << 5,    // abort occurred inside a nested transaction
};

constexpr bool started(unsigned status) noexcept { return status == kStarted; }
constexpr bool is_conflict(unsigned status) noexcept { return (status & kAbortConflict) != 0; }
constexpr bool is_nested(unsigned status) noexcept { return (status & kAbortNested) != 0; }
constexpr bool is_explicit(unsigned status) noexcept { return (status & kAbortExplicit) != 0; }
constexpr unsigned explicit_code(unsigned status) noexcept { return (status >> 24) & 0xffu; }

// True if the binary carries a real RTM backend *and* the CPU reports RTM.
bool hardware_available() noexcept;

#if defined(SBQ_HAVE_RTM)

unsigned begin() noexcept;                 // returns kStarted or an abort status
void end() noexcept;                       // commit
[[noreturn]] void abort_with(std::uint8_t code) noexcept;
bool in_transaction() noexcept;

#else

// Unsupported backend: every begin() is an immediate non-conflict,
// non-retryable abort, so callers take their fallback path exactly once.
inline unsigned begin() noexcept { return 0u; }
inline void end() noexcept {}
inline void abort_with(std::uint8_t) noexcept {}
inline bool in_transaction() noexcept { return false; }

#endif

}  // namespace sbq::htm
