#include "htm/htm.hpp"

#if defined(SBQ_HAVE_RTM)
#include <immintrin.h>
#endif

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace sbq::htm {

namespace {

bool cpuid_reports_rtm() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  constexpr unsigned kRtmBit = 1u << 11;  // CPUID.07H.EBX.RTM
  return (ebx & kRtmBit) != 0;
#else
  return false;
#endif
}

}  // namespace

bool hardware_available() noexcept {
#if defined(SBQ_HAVE_RTM)
  static const bool available = cpuid_reports_rtm();
  return available;
#else
  // Keep the symbol meaningful even without the RTM backend compiled in:
  // report what the CPU claims, though begin() will still take the fallback.
  static const bool available = cpuid_reports_rtm();
  return available && false;
#endif
}

#if defined(SBQ_HAVE_RTM)

unsigned begin() noexcept { return _xbegin(); }

void end() noexcept { _xend(); }

void abort_with(std::uint8_t code) noexcept {
  // _xabort requires an immediate; dispatch over the codes we use.
  switch (code) {
    case 1: _xabort(1); break;
    default: _xabort(0xff); break;
  }
  __builtin_unreachable();
}

bool in_transaction() noexcept { return _xtest() != 0; }

#endif

}  // namespace sbq::htm
