// CAS policies pluggable into the modular baskets queue's try_append.
//
// The paper evaluates SBQ-HTM (TxCAS) against SBQ-CAS (plain CAS with the
// same delay inserted before the attempt). Both are expressed here as
// policies satisfying the CasPolicy concept, so sbq::Queue is instantiated
// once and measured with either.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

#include "common/backoff.hpp"
#include "htm/txcas.hpp"

namespace sbq {

template <typename P, typename T>
concept CasPolicy = requires(const P& p, std::atomic<T>& a, T v) {
  { p(a, v, v) } noexcept -> std::same_as<bool>;
};

// Plain hardware CAS.
struct NativeCas {
  template <typename T>
  bool operator()(std::atomic<T>& target, T expected, T desired) const noexcept {
    return target.compare_exchange_strong(expected, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }
};

// SBQ-CAS from §6.1: plain CAS preceded by the same delay TxCAS performs
// between its read and write. The delay widens the window in which multiple
// enqueuers observe the same tail, which grows the baskets and is why
// SBQ-CAS tracks SBQ-HTM at low concurrency (Figure 5).
struct DelayedCas {
  std::uint32_t delay_iterations = 64;

  template <typename T>
  bool operator()(std::atomic<T>& target, T expected, T desired) const noexcept {
    if (target.load(std::memory_order_acquire) != expected) return false;
    spin_iterations(delay_iterations);
    return target.compare_exchange_strong(expected, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }
};

// TxCAS policy wrapper (degrades to a delayed plain CAS without RTM).
// The embedded TxCasConfig carries the full retry/fallback policy,
// including max_nonconflict_aborts — set it to make the queue's appends
// degrade to plain CAS under persistent capacity/interrupt aborts instead
// of burning the whole transactional attempt budget.
struct HtmCas {
  TxCasConfig config{};

  template <typename T>
  bool operator()(std::atomic<T>& target, T expected, T desired) const noexcept {
    return TxCas<T>(config)(target, expected, desired);
  }
};

// Adaptive variants for native SBQ (see common/contention.hpp): the same
// TxCAS with a non-fixed ContentionPolicy baked into the config. Usable
// anywhere HtmCas is, e.g. sbq::Queue<T, Basket, HtmCas> with
// `q.cas = adaptive_backoff_cas(seed)`.

// Dice–Hendler–Mirsky failure-history delay scaling: intra-txn/post-abort
// delays start below the fixed constants and double toward a cap while the
// calling thread keeps aborting on conflicts.
inline HtmCas adaptive_backoff_cas(std::uint64_t seed = 1) noexcept {
  HtmCas c{};
  c.config.policy.kind = ContentionPolicyKind::kAdaptiveBackoff;
  c.config.policy.seed = seed;
  return c;
}

// Brown-style abort-cause-aware fallback budget: non-conflict aborts spend
// the retry budget faster than conflict aborts. Enables the shared
// degradation default, which the plain native config keeps disabled.
inline HtmCas adaptive_fallback_cas() noexcept {
  HtmCas c{};
  c.config.policy.kind = ContentionPolicyKind::kAdaptiveFallback;
  c.config.max_nonconflict_aborts = kDefaultNonconflictAbortBudget;
  return c;
}

static_assert(CasPolicy<NativeCas, void*>);
static_assert(CasPolicy<DelayedCas, void*>);
static_assert(CasPolicy<HtmCas, void*>);

}  // namespace sbq
