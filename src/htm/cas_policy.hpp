// CAS policies pluggable into the modular baskets queue's try_append.
//
// The paper evaluates SBQ-HTM (TxCAS) against SBQ-CAS (plain CAS with the
// same delay inserted before the attempt). Both are expressed here as
// policies satisfying the CasPolicy concept, so sbq::Queue is instantiated
// once and measured with either.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

#include "common/backoff.hpp"
#include "htm/txcas.hpp"

namespace sbq {

template <typename P, typename T>
concept CasPolicy = requires(const P& p, std::atomic<T>& a, T v) {
  { p(a, v, v) } noexcept -> std::same_as<bool>;
};

// Plain hardware CAS.
struct NativeCas {
  template <typename T>
  bool operator()(std::atomic<T>& target, T expected, T desired) const noexcept {
    return target.compare_exchange_strong(expected, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }
};

// SBQ-CAS from §6.1: plain CAS preceded by the same delay TxCAS performs
// between its read and write. The delay widens the window in which multiple
// enqueuers observe the same tail, which grows the baskets and is why
// SBQ-CAS tracks SBQ-HTM at low concurrency (Figure 5).
struct DelayedCas {
  std::uint32_t delay_iterations = 64;

  template <typename T>
  bool operator()(std::atomic<T>& target, T expected, T desired) const noexcept {
    if (target.load(std::memory_order_acquire) != expected) return false;
    spin_iterations(delay_iterations);
    return target.compare_exchange_strong(expected, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }
};

// TxCAS policy wrapper (degrades to a delayed plain CAS without RTM).
// The embedded TxCasConfig carries the full retry/fallback policy,
// including max_nonconflict_aborts — set it to make the queue's appends
// degrade to plain CAS under persistent capacity/interrupt aborts instead
// of burning the whole transactional attempt budget.
struct HtmCas {
  TxCasConfig config{};

  template <typename T>
  bool operator()(std::atomic<T>& target, T expected, T desired) const noexcept {
    return TxCas<T>(config)(target, expected, desired);
  }
};

static_assert(CasPolicy<NativeCas, void*>);
static_assert(CasPolicy<DelayedCas, void*>);
static_assert(CasPolicy<HtmCas, void*>);

}  // namespace sbq
