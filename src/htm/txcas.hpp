// TxCAS: compare-and-set implemented as a hardware transaction (Algorithm 1
// of the paper), with the wait-free plain-CAS fallback the paper describes
// in prose ("Progress", §4).
//
// Structure of one attempt:
//   outer xbegin
//     nested xbegin            -- so conflict aborts report the NESTED bit
//       value = *ptr
//       if value != old: xabort(1)   -- explicit self-abort => return false
//       delay()                -- intra-transaction delay (§4.1)
//     nested xend
//     *ptr = new               -- the CAS write
//   outer xend  => return true
//
// Abort handling (§4.2):
//   * explicit self-abort  -> false (value mismatch observed in the txn)
//   * non-conflict abort, or conflict after the nested txn (we may be the
//     tripped writer) -> retry immediately
//   * conflict inside the nested txn -> post-abort delay, then re-read the
//     target; if it changed, fail; else retry.
//
// On hosts without RTM, htm::begin() always reports a non-conflict abort,
// so attempts fall straight through to the bounded-retry fallback, making
// TxCas semantically a (delayed) plain CAS — the paper's SBQ-CAS variant.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/backoff.hpp"
#include "common/contention.hpp"
#include "htm/htm.hpp"

namespace sbq {

struct TxCasConfig {
  // Intra-transaction delay between the read and the write, in spin
  // iterations (§4.1; ~270 ns on the paper's Broadwell).
  std::uint32_t intra_txn_delay = 64;
  // Post-abort delay before re-reading the target (§4.2): long enough for
  // an in-flight writer's GetM to complete so that our read does not trip it.
  std::uint32_t post_abort_delay = 16;
  // After this many transactional attempts, fall back to plain CAS. This is
  // what makes TxCAS wait-free despite HTM offering no progress guarantee.
  std::uint32_t max_attempts = 32;
  // Graceful degradation: after this many NON-conflict aborts within one
  // call (capacity, interrupt, spurious — anything but a data conflict or
  // the explicit self-abort), stop retrying transactionally and take the
  // plain-CAS fallback immediately. Persistent non-conflict aborts recur
  // (a capacity overflow is deterministic; an interrupt storm starves the
  // commit window), so burning the remaining attempt budget buys nothing.
  // The native default deliberately overrides the shared
  // kDefaultNonconflictAbortBudget: on hosts without RTM every abort
  // reports as non-conflict, and the bounded retry loop IS the intended
  // delayed-CAS behavior there (see common/contention.hpp).
  std::uint32_t max_nonconflict_aborts = kNativeNonconflictAbortOverride;
  // Retry/delay policy (fixed by default; see common/contention.hpp for
  // the adaptive alternatives).
  ContentionPolicyParams policy{};
};

// Per-thread persistent contention history for native TxCAS (the DHM
// failure level and jitter stream). The first TxCAS call on a thread pins
// that thread's stream id; `seed` only matters for that first call.
inline ContentionPolicy::State& native_contention_state(
    std::uint64_t seed) noexcept {
  static std::atomic<std::uint64_t> next_stream{0};
  thread_local ContentionPolicy::State state = ContentionPolicy::seeded_state(
      seed, next_stream.fetch_add(1, std::memory_order_relaxed));
  return state;
}

// Explicit-abort code used by the value-mismatch self-abort.
inline constexpr std::uint8_t kTxCasMismatchCode = 1;

template <typename T>
class TxCas {
 public:
  explicit TxCas(TxCasConfig cfg = {}) noexcept : cfg_(cfg) {}

  // The policy object this config resolves to — the exact construction the
  // retry loop below uses. Exposed so the cross-backend differential test
  // can drive the native decision logic directly.
  static ContentionPolicy make_policy(const TxCasConfig& cfg) noexcept {
    return ContentionPolicy(
        cfg.policy, ContentionKnobs{cfg.intra_txn_delay, cfg.post_abort_delay,
                                    cfg.max_attempts,
                                    cfg.max_nonconflict_aborts});
  }

  // CAS(target, expected, desired) with TxCAS failure scalability.
  bool operator()(std::atomic<T>& target, T expected, T desired) const noexcept {
    ContentionPolicy policy = make_policy(cfg_);
    ContentionPolicy::State& history = native_contention_state(cfg_.policy.seed);
    policy.begin_call();
    while (policy.next_step() == CasStep::kTxn) {
      policy.note_attempt();
      const unsigned ret = htm::begin();
      if (htm::started(ret)) {
        // Nested transaction wraps the read+check+delay so that a conflict
        // there is distinguishable from one that trips the write.
        const unsigned nested = htm::begin();
        if (htm::started(nested)) {
          const T value = target.load(std::memory_order_relaxed);
          if (value != expected) htm::abort_with(kTxCasMismatchCode);
          spin_delay(policy.intra_delay(history));
          htm::end();
        }
        target.store(desired, std::memory_order_relaxed);
        htm::end();
        policy.on_commit(history);
        return true;
      }
      // Aborted. Execution resumes here with the abort status in `ret`.
      if (htm::is_explicit(ret) && htm::explicit_code(ret) == kTxCasMismatchCode) {
        return false;  // observed a different value inside the transaction
      }
      if (!(htm::is_conflict(ret) && htm::is_nested(ret))) {
        // Either a non-conflict abort, or a conflict that tripped our write:
        // retry immediately (delaying would only waste the commit window).
        // The policy decides when non-conflict aborts have exhausted the
        // degradation budget, making further transactional retries futile.
        const bool nonconflict = !htm::is_conflict(ret) && !htm::is_explicit(ret);
        policy.on_abort(history, nonconflict ? CasAbort::kNonConflict
                                             : CasAbort::kWriteConflict);
        continue;
      }
      // Conflict during the read step: someone's write is in flight. Wait
      // for their GetM to finish before reading, to avoid tripping them.
      policy.on_abort(history, CasAbort::kReadConflict);
      spin_delay(policy.post_abort_delay(history));
      if (target.load(std::memory_order_acquire) != expected) return false;
    }
    // Wait-free fallback: a plain CAS always terminates.
    return target.compare_exchange_strong(expected, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  const TxCasConfig& config() const noexcept { return cfg_; }

 private:
  // Policy delays are 64-bit (sim cycles elsewhere); native spin counts
  // stay within u32 but clamp defensively.
  static void spin_delay(std::uint64_t iters) noexcept {
    spin_iterations(iters > 0xffffffffULL ? 0xffffffffU
                                          : static_cast<std::uint32_t>(iters));
  }

  TxCasConfig cfg_;
};

}  // namespace sbq
