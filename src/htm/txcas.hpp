// TxCAS: compare-and-set implemented as a hardware transaction (Algorithm 1
// of the paper), with the wait-free plain-CAS fallback the paper describes
// in prose ("Progress", §4).
//
// Structure of one attempt:
//   outer xbegin
//     nested xbegin            -- so conflict aborts report the NESTED bit
//       value = *ptr
//       if value != old: xabort(1)   -- explicit self-abort => return false
//       delay()                -- intra-transaction delay (§4.1)
//     nested xend
//     *ptr = new               -- the CAS write
//   outer xend  => return true
//
// Abort handling (§4.2):
//   * explicit self-abort  -> false (value mismatch observed in the txn)
//   * non-conflict abort, or conflict after the nested txn (we may be the
//     tripped writer) -> retry immediately
//   * conflict inside the nested txn -> post-abort delay, then re-read the
//     target; if it changed, fail; else retry.
//
// On hosts without RTM, htm::begin() always reports a non-conflict abort,
// so attempts fall straight through to the bounded-retry fallback, making
// TxCas semantically a (delayed) plain CAS — the paper's SBQ-CAS variant.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/backoff.hpp"
#include "htm/htm.hpp"

namespace sbq {

struct TxCasConfig {
  // Intra-transaction delay between the read and the write, in spin
  // iterations (§4.1; ~270 ns on the paper's Broadwell).
  std::uint32_t intra_txn_delay = 64;
  // Post-abort delay before re-reading the target (§4.2): long enough for
  // an in-flight writer's GetM to complete so that our read does not trip it.
  std::uint32_t post_abort_delay = 16;
  // After this many transactional attempts, fall back to plain CAS. This is
  // what makes TxCAS wait-free despite HTM offering no progress guarantee.
  std::uint32_t max_attempts = 32;
  // Graceful degradation: after this many NON-conflict aborts within one
  // call (capacity, interrupt, spurious — anything but a data conflict or
  // the explicit self-abort), stop retrying transactionally and take the
  // plain-CAS fallback immediately. Persistent non-conflict aborts recur
  // (a capacity overflow is deterministic; an interrupt storm starves the
  // commit window), so burning the remaining attempt budget buys nothing.
  // 0 (default) disables degradation — on hosts without RTM every abort
  // reports as non-conflict, and the bounded retry loop IS the intended
  // delayed-CAS behavior there.
  std::uint32_t max_nonconflict_aborts = 0;
};

// Explicit-abort code used by the value-mismatch self-abort.
inline constexpr std::uint8_t kTxCasMismatchCode = 1;

template <typename T>
class TxCas {
 public:
  explicit TxCas(TxCasConfig cfg = {}) noexcept : cfg_(cfg) {}

  // CAS(target, expected, desired) with TxCAS failure scalability.
  bool operator()(std::atomic<T>& target, T expected, T desired) const noexcept {
    std::uint32_t nonconflict_aborts = 0;
    for (std::uint32_t attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
      const unsigned ret = htm::begin();
      if (htm::started(ret)) {
        // Nested transaction wraps the read+check+delay so that a conflict
        // there is distinguishable from one that trips the write.
        const unsigned nested = htm::begin();
        if (htm::started(nested)) {
          const T value = target.load(std::memory_order_relaxed);
          if (value != expected) htm::abort_with(kTxCasMismatchCode);
          spin_iterations(cfg_.intra_txn_delay);
          htm::end();
        }
        target.store(desired, std::memory_order_relaxed);
        htm::end();
        return true;
      }
      // Aborted. Execution resumes here with the abort status in `ret`.
      if (htm::is_explicit(ret) && htm::explicit_code(ret) == kTxCasMismatchCode) {
        return false;  // observed a different value inside the transaction
      }
      if (!(htm::is_conflict(ret) && htm::is_nested(ret))) {
        // Either a non-conflict abort, or a conflict that tripped our write:
        // retry immediately (delaying would only waste the commit window) —
        // unless true non-conflict aborts have exhausted the degradation
        // budget, in which case retrying is futile and we take the CAS.
        if (!htm::is_conflict(ret) && !htm::is_explicit(ret) &&
            cfg_.max_nonconflict_aborts != 0 &&
            ++nonconflict_aborts >= cfg_.max_nonconflict_aborts) {
          break;
        }
        continue;
      }
      // Conflict during the read step: someone's write is in flight. Wait
      // for their GetM to finish before reading, to avoid tripping them.
      spin_iterations(cfg_.post_abort_delay);
      if (target.load(std::memory_order_acquire) != expected) return false;
    }
    // Wait-free fallback: a plain CAS always terminates.
    return target.compare_exchange_strong(expected, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  const TxCasConfig& config() const noexcept { return cfg_; }

 private:
  TxCasConfig cfg_;
};

}  // namespace sbq
