// Bounded exponential backoff and calibrated busy-wait delays.
//
// TxCAS (§4.1 of the paper) requires a *timed* intra-transaction delay
// (~270 ns on the authors' Broadwell) and a short post-abort delay (§4.2).
// Inside a hardware transaction one cannot call clock functions (they may
// abort the transaction), so the delay must be a calibrated spin loop.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace sbq {

// One "relax" hint to the pipeline (PAUSE on x86).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Spin for approximately `iters` relax iterations. Transaction-safe: touches
// no memory and makes no calls that could abort an HTM transaction.
inline void spin_iterations(std::uint32_t iters) noexcept {
  for (std::uint32_t i = 0; i < iters; ++i) cpu_relax();
}

// Bounded exponential delay ladder: base << level, saturating at cap.
// Shared by SeededBackoff and the adaptive contention policies so both
// agree on what "level k" means.
inline constexpr std::uint64_t bounded_exp_delay(std::uint64_t base,
                                                 std::uint32_t level,
                                                 std::uint64_t cap) noexcept {
  if (base == 0) return 0;
  if (level >= 63) return cap;
  const std::uint64_t d = base << level;
  // Detect shift overflow as well as a plain overshoot.
  return (d < base || d > cap) ? cap : d;
}

// Seedable bounded exponential backoff with a private deterministic PRNG
// stream. Unlike `Backoff` below, the delay at each level is jittered
// uniformly over [half, full] of the ladder value, so threads seeded
// differently desynchronize instead of colliding again in lockstep; the
// same (seed, stream) pair always reproduces the same delay sequence.
class SeededBackoff {
 public:
  explicit SeededBackoff(std::uint64_t seed, std::uint64_t stream = 0,
                         std::uint32_t base_iters = 1,
                         std::uint64_t cap_iters = 1024) noexcept
      : rng_(seed ^ (stream * 0x9e3779b97f4a7c15ULL)),
        base_(base_iters == 0 ? 1 : base_iters),
        cap_(cap_iters) {}

  // Delay for the current level, then escalate. Returns the iteration
  // count actually spun so callers (and tests) can observe the sequence.
  std::uint64_t pause() noexcept {
    const std::uint64_t iters = next_delay();
    // Chunked so a pathological cap can't overflow spin_iterations' u32.
    std::uint64_t left = iters;
    while (left > 0) {
      const std::uint32_t chunk =
          left > 0xffffffffULL ? 0xffffffffU : static_cast<std::uint32_t>(left);
      spin_iterations(chunk);
      left -= chunk;
    }
    return iters;
  }

  // The delay the next pause() would use (advances the PRNG and the level).
  std::uint64_t next_delay() noexcept {
    const std::uint64_t full = bounded_exp_delay(base_, level_, cap_);
    if (level_ < 63) ++level_;
    const std::uint64_t half = full / 2;
    const std::uint64_t span = full - half + 1;
    return half + rng_.next() % span;
  }

  void reset() noexcept { level_ = 0; }
  std::uint32_t level() const noexcept { return level_; }

 private:
  SplitMix64 rng_;
  std::uint32_t base_;
  std::uint32_t level_ = 0;
  std::uint64_t cap_;
};

// Classic bounded exponential backoff for CAS retry loops.
class Backoff {
 public:
  explicit Backoff(std::uint32_t min_iters = 1, std::uint32_t max_iters = 1024) noexcept
      : cur_(min_iters), max_(max_iters) {}

  void pause() noexcept {
    spin_iterations(cur_);
    if (cur_ < max_) cur_ *= 2;
  }

  void reset(std::uint32_t min_iters = 1) noexcept { cur_ = min_iters; }

 private:
  std::uint32_t cur_;
  std::uint32_t max_;
};

}  // namespace sbq
