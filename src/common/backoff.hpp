// Bounded exponential backoff and calibrated busy-wait delays.
//
// TxCAS (§4.1 of the paper) requires a *timed* intra-transaction delay
// (~270 ns on the authors' Broadwell) and a short post-abort delay (§4.2).
// Inside a hardware transaction one cannot call clock functions (they may
// abort the transaction), so the delay must be a calibrated spin loop.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace sbq {

// One "relax" hint to the pipeline (PAUSE on x86).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Spin for approximately `iters` relax iterations. Transaction-safe: touches
// no memory and makes no calls that could abort an HTM transaction.
inline void spin_iterations(std::uint32_t iters) noexcept {
  for (std::uint32_t i = 0; i < iters; ++i) cpu_relax();
}

// Classic bounded exponential backoff for CAS retry loops.
class Backoff {
 public:
  explicit Backoff(std::uint32_t min_iters = 1, std::uint32_t max_iters = 1024) noexcept
      : cur_(min_iters), max_(max_iters) {}

  void pause() noexcept {
    spin_iterations(cur_);
    if (cur_ < max_) cur_ *= 2;
  }

  void reset(std::uint32_t min_iters = 1) noexcept { cur_ = min_iters; }

 private:
  std::uint32_t cur_;
  std::uint32_t max_;
};

}  // namespace sbq
