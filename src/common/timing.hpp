// Wall-clock timing helpers for the native benchmarks.
#pragma once

#include <chrono>
#include <cstdint>

namespace sbq {

class StopWatch {
 public:
  using clock = std::chrono::steady_clock;

  StopWatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(clock::now() - start_).count();
  }
  double elapsed_us() const { return elapsed_ns() / 1e3; }
  double elapsed_ms() const { return elapsed_ns() / 1e6; }
  double elapsed_s() const { return elapsed_ns() / 1e9; }

 private:
  clock::time_point start_;
};

}  // namespace sbq
