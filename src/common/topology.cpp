#include "common/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sbq {
namespace {

// Reads a small integer from a sysfs file; returns fallback on any failure.
int read_int_file(const std::string& path, int fallback) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return fallback;
  int v = fallback;
  if (std::fscanf(f, "%d", &v) != 1) v = fallback;
  std::fclose(f);
  return v;
}

}  // namespace

Topology Topology::discover() {
  Topology topo;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::set<int> sockets;
  std::map<std::pair<int, int>, int> core_seen;  // (socket, core) -> count

  for (unsigned cpu = 0; cpu < hw; ++cpu) {
    const std::string base =
        "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    CpuInfo info{};
    info.os_cpu = static_cast<int>(cpu);
    info.socket = read_int_file(base + "physical_package_id", 0);
    info.core = read_int_file(base + "core_id", static_cast<int>(cpu));
    info.smt_sibling = false;
    sockets.insert(info.socket);
    const auto key = std::make_pair(info.socket, info.core);
    info.smt_sibling = core_seen[key] > 0;
    ++core_seen[key];
    topo.cpus_.push_back(info);
  }
  topo.sockets_ = sockets.empty() ? 1 : sockets.size();
  return topo;
}

std::vector<int> Topology::socket_cpus(int socket) const {
  std::vector<int> primary;
  std::vector<int> siblings;
  for (const auto& c : cpus_) {
    if (c.socket != socket) continue;
    (c.smt_sibling ? siblings : primary).push_back(c.os_cpu);
  }
  primary.insert(primary.end(), siblings.begin(), siblings.end());
  return primary;
}

bool pin_current_thread(int os_cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(os_cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)os_cpu;
  return false;
#endif
}

}  // namespace sbq
