// Per-thread freelist arena for queue nodes.
//
// The paper's evaluation uses the Memkind scalable allocator so that malloc
// is never the bottleneck. We substitute a per-thread arena: nodes are
// carved from thread-local slabs and recycled through a thread-local
// freelist, so the allocation fast path is a pointer bump with no shared
// state. Cross-thread frees (a dequeuer freeing an enqueuer's node) go to
// the *owning* thread's lock-free remote freelist, exactly like classic
// slab "remote free" designs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/cacheline.hpp"

namespace sbq {

// Fixed-size-block arena. Not a general allocator: every allocation from a
// given arena has the same size/alignment (the node type's).
class Arena {
 public:
  // block_size must be >= sizeof(void*); alignment must divide block offsets.
  explicit Arena(std::size_t block_size,
                 std::size_t alignment = kCacheLineSize,
                 std::size_t blocks_per_slab = 1024)
      : block_size_(round_up(block_size, alignment)),
        alignment_(alignment),
        blocks_per_slab_(blocks_per_slab) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (void* slab : slabs_) ::operator delete(slab, std::align_val_t(alignment_));
  }

  void* allocate() {
    // 1. Local freelist.
    if (local_free_ != nullptr) {
      void* p = local_free_;
      local_free_ = *static_cast<void**>(p);
      return p;
    }
    // 2. Drain remote frees (other threads returning our blocks).
    if (void* head = remote_free_.exchange(nullptr, std::memory_order_acquire)) {
      local_free_ = *static_cast<void**>(head);
      return head;
    }
    // 3. Bump-allocate from the current slab.
    if (bump_ == slab_end_) new_slab();
    void* p = bump_;
    bump_ += block_size_;
    return p;
  }

  // Free from the owning thread.
  void deallocate_local(void* p) noexcept {
    *static_cast<void**>(p) = local_free_;
    local_free_ = p;
  }

  // Free from any thread (lock-free Treiber push onto the remote list).
  void deallocate_remote(void* p) noexcept {
    void* head = remote_free_.load(std::memory_order_relaxed);
    do {
      *static_cast<void**>(p) = head;
    } while (!remote_free_.compare_exchange_weak(head, p, std::memory_order_release,
                                                 std::memory_order_relaxed));
  }

  std::size_t block_size() const noexcept { return block_size_; }
  std::size_t slab_count() const noexcept { return slabs_.size(); }

 private:
  static std::size_t round_up(std::size_t v, std::size_t a) noexcept {
    return (v + a - 1) / a * a;
  }

  void new_slab() {
    const std::size_t bytes = block_size_ * blocks_per_slab_;
    void* slab = ::operator new(bytes, std::align_val_t(alignment_));
    slabs_.push_back(slab);
    bump_ = static_cast<std::byte*>(slab);
    slab_end_ = bump_ + bytes;
  }

  const std::size_t block_size_;
  const std::size_t alignment_;
  const std::size_t blocks_per_slab_;
  std::byte* bump_ = nullptr;
  std::byte* slab_end_ = nullptr;
  void* local_free_ = nullptr;
  std::vector<void*> slabs_;
  alignas(kCacheLineSize) std::atomic<void*> remote_free_{nullptr};
};

// Typed convenience wrapper.
template <typename T>
class TypedArena {
 public:
  explicit TypedArena(std::size_t blocks_per_slab = 1024)
      : arena_(sizeof(T) < sizeof(void*) ? sizeof(void*) : sizeof(T),
               alignof(T) > kCacheLineSize ? alignof(T) : kCacheLineSize,
               blocks_per_slab) {}

  template <typename... Args>
  T* create(Args&&... args) {
    return new (arena_.allocate()) T(static_cast<Args&&>(args)...);
  }

  void destroy_local(T* p) noexcept {
    p->~T();
    arena_.deallocate_local(p);
  }

  void destroy_remote(T* p) noexcept {
    p->~T();
    arena_.deallocate_remote(p);
  }

  std::size_t slab_count() const noexcept { return arena_.slab_count(); }

 private:
  Arena arena_;
};

}  // namespace sbq
