// Sense-reversing spin barrier for benchmark thread start/stop alignment.
//
// std::barrier parks threads in the kernel; for latency benchmarks we want
// every thread to leave the barrier within a few cycles of each other, so we
// spin. Contention is consistent throughout each experiment (§6.1).
#pragma once

#include <atomic>
#include <cstddef>

#include "common/backoff.hpp"
#include "common/cacheline.hpp"

namespace sbq {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) cpu_relax();
    }
  }

 private:
  const std::size_t parties_;
  alignas(kCacheLineSize) std::atomic<std::size_t> remaining_;
  alignas(kCacheLineSize) std::atomic<bool> sense_{false};
};

}  // namespace sbq
