// Padded<T>: wraps a value so it occupies (at least) a whole cache line.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "common/cacheline.hpp"

namespace sbq {

// A T aligned to and padded out to a cache line. Used for per-thread slots
// (e.g. SBQ basket cells, the protectors array) where false sharing would
// otherwise dominate the measurement.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};

  Padded() = default;
  explicit Padded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(Padded<int>) == kCacheLineSize);
static_assert(sizeof(Padded<int>) % kCacheLineSize == 0);

}  // namespace sbq
