// Host CPU topology discovery and thread pinning.
//
// The paper pins every benchmark thread to a hardware thread, with all
// threads of the same type (producer/consumer) on the same socket (§4.3,
// §6.1). On the host we expose the same controls; the simulator has its own
// explicit topology (sim/machine.hpp).
#pragma once

#include <cstddef>
#include <thread>
#include <vector>

namespace sbq {

struct CpuInfo {
  int os_cpu;   // OS CPU id to pass to the affinity mask
  int socket;   // physical package id, -1 if unknown
  int core;     // physical core id within socket, -1 if unknown
  bool smt_sibling;  // true if another CpuInfo shares the same (socket, core)
};

class Topology {
 public:
  // Reads /sys/devices/system/cpu; falls back to a flat topology of
  // hardware_concurrency() CPUs when sysfs is unavailable.
  static Topology discover();

  std::size_t cpu_count() const noexcept { return cpus_.size(); }
  std::size_t socket_count() const noexcept { return sockets_; }
  const std::vector<CpuInfo>& cpus() const noexcept { return cpus_; }

  // CPUs of a socket, physical cores first, SMT siblings after — matching
  // the paper's pinning order (fill cores, then hyperthreads).
  std::vector<int> socket_cpus(int socket) const;

 private:
  std::vector<CpuInfo> cpus_;
  std::size_t sockets_ = 1;
};

// Pin the calling thread to one OS CPU. Returns false if unsupported.
bool pin_current_thread(int os_cpu) noexcept;

}  // namespace sbq
