// ContentionPolicy: the shared TxCAS retry brain (paper §4, PAPERS.md).
//
// The paper's retry design has four knobs — intra-txn delay (§4.1),
// post-abort delay (§4.2), bounded attempts, plain-CAS fallback — and both
// backends (native `TxCas` in src/htm/txcas.hpp, sim `TxCasOp` in
// src/sim/core.cpp) used to hardcode the resulting decision logic
// independently. This header centralizes it: given the attempt number, the
// classified abort cause and the per-thread failure history, a
// ContentionPolicy answers *what next* — how long to delay inside the
// transaction, how long to wait after a read-phase abort, whether to retry
// transactionally, or which fallback lane to take (budget-exhausted vs
// degraded).
//
// Three policies ship behind the same interface:
//  - kFixed            today's constants; byte-identical to the historical
//                      behavior of both backends (the default).
//  - kAdaptiveBackoff  Dice–Hendler–Mirsky-style per-thread failure-history
//                      delay scaling: the intra-txn delay starts below the
//                      paper's fixed value and doubles toward a cap while
//                      conflicts persist, decaying again on commits. The
//                      post-abort delay is scaled the same way and jittered
//                      from a seeded PRNG stream (deterministic in the sim,
//                      where the stream is serialized with the core).
//  - kAdaptiveFallback Brown-style fallback budget: every abort spends from
//                      a per-call budget, and non-conflict aborts (capacity,
//                      interrupt, spurious — the existing abort-cause
//                      taxonomy) spend faster than conflict aborts, so a
//                      sick core degrades to the plain-CAS path quickly
//                      while a merely contended one keeps retrying.
//
// The object is allocation-free and trivially copyable. Per-call counters
// (attempt number, abort mix, budget spent) live in the policy object
// itself; the *persistent* cross-call history (PRNG stream, failure level)
// lives in a separate POD `ContentionPolicy::State` owned by the caller —
// a thread_local in the native backend, a field of the per-core `TxCasOp`
// slot in the sim (serialized by src/sim/serialize.cpp so snapshot/fork
// identity holds).
#pragma once

#include <cstdint>

#include "common/backoff.hpp"
#include "common/rng.hpp"

namespace sbq {

enum class ContentionPolicyKind : std::uint8_t {
  kFixed = 0,
  kAdaptiveBackoff = 1,
  kAdaptiveFallback = 2,
};

inline constexpr int kContentionPolicyKindCount = 3;

inline constexpr const char* contention_policy_name(
    ContentionPolicyKind k) noexcept {
  switch (k) {
    case ContentionPolicyKind::kFixed: return "fixed";
    case ContentionPolicyKind::kAdaptiveBackoff: return "adaptive-backoff";
    case ContentionPolicyKind::kAdaptiveFallback: return "adaptive-fallback";
  }
  return "unknown";
}

// Parse a policy name; returns false (and leaves `out` alone) on junk.
inline bool contention_policy_from_name(const char* name,
                                        ContentionPolicyKind& out) noexcept {
  const auto eq = [](const char* a, const char* b) noexcept {
    while (*a && *a == *b) { ++a; ++b; }
    return *a == *b;
  };
  for (int i = 0; i < kContentionPolicyKindCount; ++i) {
    const auto k = static_cast<ContentionPolicyKind>(i);
    if (eq(name, contention_policy_name(k))) {
      out = k;
      return true;
    }
  }
  return false;
}

// Graceful-degradation default shared by both backends: after this many
// non-conflict aborts in one TxCAS call, give up on HTM and take the
// plain-CAS path (counted separately as `fallback_cas`). The sim uses this
// value as-is; the native backend overrides it to
// kNativeNonconflictAbortOverride below. tests/contention_policy_test.cpp
// asserts both defaults so they cannot silently drift again.
inline constexpr std::uint32_t kDefaultNonconflictAbortBudget = 8;

// Native override: 0 (degradation disabled). On hosts without RTM the
// htm:: facade reports every abort as non-conflict, so any nonzero budget
// would instantly shunt every TxCAS to the plain-CAS path; the bounded
// retry loop *is* the delayed-CAS behavior there. Real-RTM deployments can
// opt back into kDefaultNonconflictAbortBudget explicitly.
inline constexpr std::uint32_t kNativeNonconflictAbortOverride = 0;

// Tuning parameters selecting and configuring a policy. Plumbed through
// sim::MachineConfig (and thus into machine_config_digest / the snapshot
// cache key) and native htm::TxCasConfig.
struct ContentionPolicyParams {
  ContentionPolicyKind kind = ContentionPolicyKind::kFixed;

  // Root of the deterministic jitter stream (adaptive-backoff). Each
  // thread/core derives its own stream from (seed, stream id).
  std::uint64_t seed = 1;

  // adaptive-backoff: the intra-txn delay ladder spans
  //   [fixed_delay >> backoff_floor_shift, fixed_delay * backoff_ceil_mult]
  // indexed by the per-thread failure level.
  std::uint32_t backoff_floor_shift = 3;
  std::uint32_t backoff_ceil_mult = 2;

  // adaptive-fallback: total abort budget per TxCAS call (0 = derive from
  // max_attempts) and the per-abort costs. Defaults reproduce the shared
  // degradation bound: nonconflict_cost * kDefaultNonconflictAbortBudget
  // == the sim's default max_attempts (64).
  std::uint32_t fallback_budget = 0;
  std::uint32_t conflict_cost = 1;
  std::uint32_t nonconflict_cost = 8;

  // adaptive-backoff hysteresis: how the failure level decays on commit.
  // 0 = linear (level - 1, the original DHM step), 1 = half-life
  // (level / 2 — a thread that just won under heavy contention sheds its
  // pessimism geometrically instead of one rung per commit). The default
  // keeps the golden schedules byte-identical.
  std::uint8_t commit_decay = kCommitDecayLinear;
  static constexpr std::uint8_t kCommitDecayLinear = 0;
  static constexpr std::uint8_t kCommitDecayHalfLife = 1;

  friend bool operator==(const ContentionPolicyParams& a,
                         const ContentionPolicyParams& b) noexcept {
    return a.kind == b.kind && a.seed == b.seed &&
           a.backoff_floor_shift == b.backoff_floor_shift &&
           a.backoff_ceil_mult == b.backoff_ceil_mult &&
           a.fallback_budget == b.fallback_budget &&
           a.conflict_cost == b.conflict_cost &&
           a.nonconflict_cost == b.nonconflict_cost &&
           a.commit_decay == b.commit_decay;
  }
};

// The backend-supplied §4 knobs, in whatever time unit the backend uses
// (spin iterations natively, cycles in the sim). The policy scales and
// bounds its answers relative to these.
struct ContentionKnobs {
  std::uint64_t intra_txn_delay = 0;
  std::uint64_t post_abort_delay = 0;
  std::uint32_t max_attempts = 0;
  std::uint32_t max_nonconflict_aborts = 0;
};

// Classified abort cause, collapsing each backend's taxonomy to what the
// policy cares about:
//  - kReadConflict   the nested read transaction aborted on a conflict
//                    (someone is about to write; wait out the post-abort
//                    delay, re-validate, then retry).
//  - kWriteConflict  the outer transaction's write was tripped (a plain
//                    CAS or another winner hit the line; retry at once).
//  - kNonConflict    capacity / interrupt / spurious — HTM is unhappy for
//                    reasons unrelated to contention.
enum class CasAbort : std::uint8_t {
  kReadConflict = 0,
  kWriteConflict = 1,
  kNonConflict = 2,
};

// Verdict before each attempt: retry transactionally, or which fallback
// lane to take. The two fallback lanes map to the existing counters:
// kFallbackBudget -> `fallbacks`, kFallbackDegraded -> `fallback_cas`
// (disjoint by construction).
enum class CasStep : std::uint8_t {
  kTxn = 0,
  kFallbackBudget = 1,
  kFallbackDegraded = 2,
};

class ContentionPolicy {
 public:
  // Persistent per-thread/per-core history. POD so the sim can serialize
  // it field-by-field (encode_core/decode_core) and fork byte-identically.
  struct State {
    std::uint64_t rng = 0;          // SplitMix64 stream position
    std::uint32_t failure_level = 0;  // DHM failure history (bounded)
  };

  static constexpr std::uint32_t kMaxFailureLevel = 16;

  static State seeded_state(std::uint64_t seed, std::uint64_t stream) noexcept {
    // Decorrelate streams with one SplitMix64 scramble of (seed, stream).
    SplitMix64 sm(seed ^ (stream * 0x9e3779b97f4a7c15ULL));
    return State{sm.next(), 0};
  }

  ContentionPolicy() = default;
  ContentionPolicy(const ContentionPolicyParams& p,
                   const ContentionKnobs& k) noexcept
      : params_(p), knobs_(k) {}

  // Reset the per-call counters (persistent State is untouched).
  void begin_call() noexcept {
    attempts_ = 0;
    nonconflict_aborts_ = 0;
    budget_spent_ = 0;
    last_abort_nonconflict_ = false;
  }

  // Decide before each transactional attempt. Order matches the historical
  // checks in both backends: the attempt bound first, then degradation.
  CasStep next_step() const noexcept {
    if (attempts_ >= knobs_.max_attempts) return CasStep::kFallbackBudget;
    if (params_.kind == ContentionPolicyKind::kAdaptiveFallback) {
      if (budget_spent_ >= fallback_budget()) {
        return last_abort_nonconflict_ ? CasStep::kFallbackDegraded
                                       : CasStep::kFallbackBudget;
      }
      return CasStep::kTxn;
    }
    if (knobs_.max_nonconflict_aborts > 0 &&
        nonconflict_aborts_ >= knobs_.max_nonconflict_aborts) {
      return CasStep::kFallbackDegraded;
    }
    return CasStep::kTxn;
  }

  // Record that a transactional attempt is being made.
  void note_attempt() noexcept { ++attempts_; }

  // Intra-transaction delay for the current attempt (§4.1). Pure function
  // of the persistent failure level — no PRNG draw, so the sim can keep
  // layering its own schedule jitter on top without disturbing streams.
  std::uint64_t intra_delay(const State& s) const noexcept {
    if (params_.kind != ContentionPolicyKind::kAdaptiveBackoff) {
      return knobs_.intra_txn_delay;
    }
    return scaled_delay(knobs_.intra_txn_delay, s.failure_level);
  }

  // Post-abort delay after a read-phase (nested) conflict abort (§4.2).
  // adaptive-backoff jitters it from the persistent stream: deterministic
  // given State, desynchronized across threads/cores.
  std::uint64_t post_abort_delay(State& s) const noexcept {
    if (params_.kind != ContentionPolicyKind::kAdaptiveBackoff) {
      return knobs_.post_abort_delay;
    }
    const std::uint64_t full =
        scaled_delay(knobs_.post_abort_delay, s.failure_level);
    if (full == 0) return 0;
    SplitMix64 sm(s.rng);
    const std::uint64_t draw = sm.next();
    s.rng += 0x9e3779b97f4a7c15ULL;  // advance the stream position
    const std::uint64_t half = full / 2;
    return half + draw % (full - half + 1);
  }

  // Record an abort of the given class.
  void on_abort(State& s, CasAbort a) noexcept {
    const bool nonconflict = a == CasAbort::kNonConflict;
    if (nonconflict) ++nonconflict_aborts_;
    last_abort_nonconflict_ = nonconflict;
    budget_spent_ +=
        nonconflict ? params_.nonconflict_cost : params_.conflict_cost;
    if (!nonconflict && s.failure_level < kMaxFailureLevel) ++s.failure_level;
  }

  // Record a transactional commit (decays the failure history per
  // params.commit_decay — the ROADMAP "policy hysteresis" knob; the decay
  // schedules are pinned by contention_policy_test).
  void on_commit(State& s) const noexcept {
    if (params_.commit_decay == ContentionPolicyParams::kCommitDecayHalfLife) {
      s.failure_level /= 2;
    } else if (s.failure_level > 0) {
      --s.failure_level;
    }
  }

  // Effective adaptive-fallback budget (0 in params derives max_attempts).
  std::uint32_t fallback_budget() const noexcept {
    return params_.fallback_budget > 0 ? params_.fallback_budget
                                       : knobs_.max_attempts;
  }

  std::uint32_t attempts() const noexcept { return attempts_; }
  std::uint32_t nonconflict_aborts() const noexcept {
    return nonconflict_aborts_;
  }
  std::uint32_t budget_spent() const noexcept { return budget_spent_; }
  const ContentionPolicyParams& params() const noexcept { return params_; }
  const ContentionKnobs& knobs() const noexcept { return knobs_; }

 private:
  // DHM ladder relative to the fixed knob: starts at knob >> floor_shift,
  // doubles per failure level, saturates at knob * ceil_mult.
  std::uint64_t scaled_delay(std::uint64_t fixed,
                             std::uint32_t level) const noexcept {
    if (fixed == 0) return 0;
    std::uint64_t base = fixed >> params_.backoff_floor_shift;
    if (base == 0) base = 1;
    const std::uint64_t cap =
        fixed * (params_.backoff_ceil_mult == 0 ? 1 : params_.backoff_ceil_mult);
    return bounded_exp_delay(base, level, cap);
  }

  ContentionPolicyParams params_{};
  ContentionKnobs knobs_{};
  // Per-call counters (reset by begin_call).
  std::uint32_t attempts_ = 0;
  std::uint32_t nonconflict_aborts_ = 0;
  std::uint32_t budget_spent_ = 0;
  bool last_abort_nonconflict_ = false;
};

}  // namespace sbq
