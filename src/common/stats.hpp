// Summary statistics for benchmark reporting (mean, stddev, percentiles).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbq {

// Accumulates samples and produces the summary values the paper's plots use
// (averages over 5 executions with stddev error bars, latency percentiles).
class Summary {
 public:
  void add(double sample);
  void clear() noexcept { samples_.clear(); sorted_ = true; }

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  double stddev() const noexcept;  // sample standard deviation (n-1)
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept;
  // Nearest-rank percentile. Total on any input: an empty sample set
  // yields 0.0 (consistent with mean/min/max — a service cell whose every
  // offered op was rejected has no latency samples but still reports), and
  // p is clamped into [0, 100] (NaN clamps to 0). Never throws.
  double percentile(double p) const noexcept;

 private:
  void sort_if_needed() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Online Welford accumulator for streaming settings (simulator counters).
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace sbq
