// Cache-line geometry constants used to avoid false sharing.
//
// The paper's algorithms (SBQ basket cells, queue head/tail, the TxCAS target
// word) all assume that distinct shared variables live on distinct cache
// lines; contention analysis in §3 is per-line. Everything contended in this
// library is padded with these helpers.
#pragma once

#include <cstddef>
#include <new>

namespace sbq {

// Fixed at 64 bytes (x86-64, common ARM64) rather than
// std::hardware_destructive_interference_size: the standard constant varies
// with tuning flags, which would make the padded struct layouts part of an
// unstable ABI (GCC's -Winterference-size says as much).
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace sbq
