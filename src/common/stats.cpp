#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sbq {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Summary::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Summary::sum() const noexcept {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double Summary::stddev() const noexcept {
  const std::size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(n - 1));
}

double Summary::min() const noexcept {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  return samples_.front();
}

double Summary::max() const noexcept {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  return samples_.back();
}

double Summary::percentile(double p) const noexcept {
  if (samples_.empty()) return 0.0;
  if (!(p >= 0.0)) p = 0.0;  // negative or NaN
  if (p > 100.0) p = 100.0;
  sort_if_needed();
  // Nearest-rank method.
  const std::size_t n = samples_.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace sbq
