// FAA-only queue on the coherence simulator — the model of the paper's
// WF-Queue/LCRQ comparison point (§6.1, [41]/[31]).
//
// The simulator's memory is unbounded, so we use the idealized infinite-
// array formulation those papers build from: one shared enqueue counter,
// one shared dequeue counter, and an unbounded cell array.
//   enqueue: ticket = FAA(enq); CAS(cell[ticket], 0, element); retry on a
//            poisoned cell.
//   dequeue: emptiness check; ticket = FAA(deq); SWAP(cell[ticket], TAKEN);
//            retry (or report empty) on a cell whose enqueuer was overtaken.
// Per operation: exactly one *contended* FAA plus uncontended cell traffic —
// the §3 cost model for this family. The cell array is grown in host-side
// chunks; chunk allocation is free (it models pre-faulted memory).
//
// Queue layout: [0] enq counter, [1] deq counter; cells in detached chunks.
#pragma once

#include <cassert>
#include <vector>

#include "simqueue/sim_queue_base.hpp"

namespace sbq::simq {

class SimFaaQueue {
 public:
  struct Config {
    int enqueuers = 1;   // unused; kept for a uniform constructor shape
    int dequeuers = 1;
  };

  SimFaaQueue(Machine& m, Config cfg) : machine_(&m), cfg_(cfg) {
    counters_ = m.alloc(2);
    if (m.config().alloc_arenas) {
      // Arena mode: the whole cell array lives in one dedicated region, so
      // cell addresses depend only on the ticket — not on which core first
      // touched a chunk (which is schedule-dependent and, under sharding,
      // raced by worker threads).
      region_ = m.alloc_region();
    }
  }

  // Rebuild around a machine forked from a deserialized snapshot (see
  // HostWords). Chunk bases and the per-dequeuer empty hints are restored
  // verbatim: cell addressing and the hint-gated counter polls are both
  // schedule-visible.
  SimFaaQueue(Machine& m, Config cfg, const HostWords& w)
      : machine_(&m), cfg_(cfg), counters_(w.at(0)), region_(w.at(1)) {
    std::size_t i = 2;
    chunks_.assign(static_cast<std::size_t>(w.at(i++)), 0);
    for (Addr& c : chunks_) c = w.at(i++);
    empty_hint_.assign(static_cast<std::size_t>(w.at(i++)), 0);
    for (char& h : empty_hint_) h = static_cast<char>(w.at(i++));
  }

  void save_host_state(std::vector<std::uint64_t>& out) const {
    out.push_back(counters_);
    out.push_back(region_);
    out.push_back(chunks_.size());
    out.insert(out.end(), chunks_.begin(), chunks_.end());
    out.push_back(empty_hint_.size());
    for (char h : empty_hint_) {
      out.push_back(static_cast<std::uint64_t>(static_cast<unsigned char>(h)));
    }
  }

  // Re-point at a forked machine (see SimSbq::rebind).
  void rebind(Machine& m) { machine_ = &m; }

  Addr enq_counter() const { return counters_; }
  Addr deq_counter() const { return counters_ + 1; }

  Task<void> enqueue(Core& c, Value element, int /*id*/) {
    assert(element >= kFirstElement);
    for (;;) {
      const Value ticket = co_await c.faa(enq_counter(), 1);
      const Addr cell = cell_addr(ticket);
      if (co_await c.cas(cell, 0, element) != 0) co_return;
      // Poisoned by an overtaking dequeuer: take a fresh ticket.
    }
  }

  Task<Value> dequeue(Core& c, int id) {
    // After observing emptiness, poll the counters with plain loads before
    // burning another dequeue ticket — modeling LCRQ's ring closing, which
    // keeps empty-polling consumers from racing the dequeue index
    // arbitrarily far ahead of the enqueue index (which would force
    // enqueuers to chew through the poisoned range).
    auto& was_empty = empty_hint_[static_cast<std::size_t>(id) %
                                  empty_hint_.size()];
    if (was_empty) {
      const Value deq = co_await c.load(deq_counter());
      const Value enq = co_await c.load(enq_counter());
      if (deq >= enq) co_return 0;
      was_empty = false;
    }
    for (;;) {
      // One contended FAA per dequeue (the defining property of this
      // family); emptiness is checked only after a poisoned cell, like
      // LCRQ/WF-Queue do.
      const Value ticket = co_await c.faa(deq_counter(), 1);
      const Value v = co_await c.swap(cell_addr(ticket), kTakenMark);
      if (v != 0) co_return v;
      // Either we overtook the owning enqueuer (it will retry elsewhere)
      // or the queue is empty: empty iff no enqueuer has claimed our
      // ticket yet.
      if (co_await c.load(enq_counter()) <= ticket) {
        was_empty = true;
        co_return 0;
      }
    }
  }

  Task<void> prefill(Core& c, Value first_element, Value count) {
    for (Value i = 0; i < count; ++i) {
      co_await enqueue(c, first_element + i, 0);
    }
  }

 private:
  static constexpr Value kChunk = 4096;

  Addr cell_addr(Value ticket) {
    if (region_ != 0) {
      return region_ + static_cast<Addr>(ticket);
    }
    const std::size_t chunk = static_cast<std::size_t>(ticket / kChunk);
    while (chunks_.size() <= chunk) chunks_.push_back(machine_->alloc(kChunk));
    return chunks_[chunk] + (ticket % kChunk);
  }

  Machine* machine_;
  Config cfg_;
  Addr counters_ = 0;
  Addr region_ = 0;  // fixed cell-array base in arena mode
  std::vector<Addr> chunks_;
  // Host-side per-dequeuer empty hints (each slot used by one thread).
  std::vector<char> empty_hint_ = std::vector<char>(256, 0);
};

}  // namespace sbq::simq
