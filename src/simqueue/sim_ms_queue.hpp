// Michael–Scott queue on the coherence simulator: the CAS-retry baseline.
// Contended enqueues retry their tail-link CAS until they win, which under
// §3.2's cost model costs multiple serialized ownership acquisitions per
// operation.
//
// Node layout: [0] value, [1] next. Queue layout: [0] head, [1] tail.
#pragma once

#include <cassert>

#include "simqueue/sim_queue_base.hpp"

namespace sbq::simq {

class SimMsQueue {
 public:
  struct Config {
    int enqueuers = 1;
    int dequeuers = 1;
  };

  SimMsQueue(Machine& m, Config cfg) : machine_(&m), cfg_(cfg) {
    queue_ = m.alloc(2);
    const Addr sentinel = m.alloc(2);
    m.poke(head_addr(), sentinel);
    m.poke(tail_addr(), sentinel);
  }

  // Rebuild around a machine forked from a deserialized snapshot: the list
  // nodes and head/tail words already live in the machine state, so no
  // allocation or poke happens here (see HostWords).
  SimMsQueue(Machine& m, Config cfg, const HostWords& w)
      : machine_(&m), cfg_(cfg), queue_(w.at(0)) {}

  void save_host_state(std::vector<std::uint64_t>& out) const {
    out.push_back(queue_);
  }

  // Re-point at a forked machine (see SimSbq::rebind).
  void rebind(Machine& m) { machine_ = &m; }

  Addr head_addr() const { return queue_; }
  Addr tail_addr() const { return queue_ + 1; }
  static Addr node_value(Addr n) { return n; }
  static Addr node_next(Addr n) { return n + 1; }

  Task<void> enqueue(Core& c, Value element, int /*id*/) {
    assert(element >= kFirstElement);
    const Addr node = machine_->alloc(2, c.id());
    co_await c.store(node_value(node), element);
    for (;;) {
      const Addr tail = co_await c.load(tail_addr());
      const Addr next = co_await c.load(node_next(tail));
      if (tail != co_await c.load(tail_addr())) continue;
      if (next != 0) {
        co_await c.cas(tail_addr(), tail, next);  // help swing the tail
        continue;
      }
      if (co_await c.cas(node_next(tail), 0, node) != 0) {
        co_await c.cas(tail_addr(), tail, node);
        co_return;
      }
    }
  }

  Task<Value> dequeue(Core& c, int /*id*/) {
    for (;;) {
      const Addr head = co_await c.load(head_addr());
      const Addr tail = co_await c.load(tail_addr());
      const Addr next = co_await c.load(node_next(head));
      if (head != co_await c.load(head_addr())) continue;
      if (next == 0) co_return 0;  // empty
      if (head == tail) {
        co_await c.cas(tail_addr(), tail, next);
        continue;
      }
      const Value element = co_await c.load(node_value(next));
      if (co_await c.cas(head_addr(), head, next) != 0) co_return element;
    }
  }

  Task<void> prefill(Core& c, Value first_element, Value count) {
    for (Value i = 0; i < count; ++i) {
      co_await enqueue(c, first_element + i, 0);
    }
  }

 private:
  Machine* machine_;
  Config cfg_;
  Addr queue_ = 0;
};

}  // namespace sbq::simq
