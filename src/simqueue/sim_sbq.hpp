// SBQ on the coherence simulator (Algorithms 2–9 of the paper).
//
// Node layout (word addresses; each word its own simulated cache line):
//   [0 .. B-1]  basket cells (INSERT=0 / EMPTY=1 / element), one per
//               inserter, padded to a line each — as in Algorithm 8.
//   [B .. B+S-1] basket extraction counters, one per stripe (their own
//               lines: the counters are the dequeue-side FAA hot spots and
//               must not share a line with read-mostly fields, or every
//               emptiness check would join the FAA hand-off chain). S = 1
//               is the paper's basket; S > 1 is the striped scalable-
//               dequeue extension (our take on the paper's §8 future work).
//   [B+S]       drained-stripe counter (S > 1 only).
//   [B+S+1]     basket empty flag (read-mostly; written once per basket).
//   [B+S+2]     link word: (node index << kIndexShift) | next pointer.
//               node_t's next and index are adjacent header fields sharing
//               a line; the index is fixed before the node is published, so
//               packing them is exact. try_append's CAS/TxCAS targets this
//               word (expected: index bits with next == NULL).
// Queue layout:
//   [0] head  [1] tail  [2 .. 2+P-1] protector slots (enqueuers, dequeuers)
//
// try_append uses either TxCAS (SBQ-HTM) or a delayed plain CAS (SBQ-CAS),
// selected by Variant — mirroring §6.1's SBQ-HTM vs SBQ-CAS comparison.
//
// Fresh-node basket initialization is modeled as local think time
// (kInitCyclesPerCell per cell): initializing B private, freshly allocated
// lines is store-buffered work with no coherence contention. Node reuse
// after a FAILURE (§5.2.2) keeps this amortized at O(B/T) fresh
// initializations per append, exactly as the paper argues.
#pragma once

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "simqueue/sim_queue_base.hpp"

namespace sbq::simq {

enum class SbqVariant { kHtm, kCas };

class SimSbq {
 public:
  struct Config {
    int enqueuers = 1;
    int dequeuers = 1;
    int basket_capacity = 0;  // 0 => enqueuers (the paper fixes B=44)
    SbqVariant variant = SbqVariant::kHtm;
    sim::TxCasConfig txcas{};  // also supplies the SBQ-CAS delay
    // Extraction stripes (1 = the paper's single-counter basket; more
    // stripes shard the dequeue FAA — the scalable-dequeue extension).
    int extraction_stripes = 1;
  };

  SimSbq(Machine& m, Config cfg)
      : machine_(&m), cfg_(cfg),
        basket_cap_(cfg.basket_capacity == 0 ? cfg.enqueuers
                                             : cfg.basket_capacity),
        stripes_(cfg.extraction_stripes < 1 ? 1
                 : cfg.extraction_stripes > cfg.enqueuers
                     ? cfg.enqueuers
                     : cfg.extraction_stripes),
        reusable_(static_cast<std::size_t>(cfg.enqueuers), 0) {
    assert(cfg_.enqueuers <= basket_cap_);
    queue_ = m.alloc(2 + static_cast<Addr>(cfg.enqueuers + cfg.dequeuers));
    const Addr sentinel = alloc_node_raw();
    // Initial state set directly in the LLC (home-routed when the directory
    // is sliced): the queue is constructed before the simulation starts.
    // Sentinel has index 0 and next NULL.
    m.poke(head_addr(), sentinel);
    m.poke(tail_addr(), sentinel);
    m.poke(node_link(sentinel), pack_link(0, 0));
    if (m.sharded() && m.stats() != nullptr) {
      // Sharded: the host-side occupancy map must be mutated in the global
      // event order, not whichever worker thread gets there first. Fills
      // and closes are logged as engine effects and replayed here — in the
      // merged serial-equivalent order — at each window barrier.
      m.set_effect_handler([this](std::uint64_t node, std::uint64_t kind) {
        if (kind == kEffFill) {
          ++filled_[static_cast<Addr>(node)];
        } else {
          machine_->stats()->on_basket_close(filled_[static_cast<Addr>(node)]);
        }
      });
    }
  }

  // Rebuild around a machine forked from a deserialized snapshot (see
  // HostWords): the sentinel and all basket nodes already live in the
  // machine state — no allocation, no poke. The per-enqueuer reuse cache
  // and the occupancy map are restored verbatim (both schedule-visible:
  // reuse decides fresh-alloc think time, the map feeds close occupancies).
  // Snapshot-cacheable machines are serial, so the sharded effect handler
  // is never needed on this path.
  SimSbq(Machine& m, Config cfg, const HostWords& w)
      : machine_(&m), cfg_(cfg),
        basket_cap_(cfg.basket_capacity == 0 ? cfg.enqueuers
                                             : cfg.basket_capacity),
        stripes_(cfg.extraction_stripes < 1 ? 1
                 : cfg.extraction_stripes > cfg.enqueuers
                     ? cfg.enqueuers
                     : cfg.extraction_stripes),
        reusable_(static_cast<std::size_t>(cfg.enqueuers), 0) {
    std::size_t i = 0;
    queue_ = w.at(i++);
    if (w.at(i++) != reusable_.size()) {
      throw std::out_of_range("SimSbq: reusable count mismatch");
    }
    for (Addr& r : reusable_) r = w.at(i++);
    const std::uint64_t entries = w.at(i++);
    for (std::uint64_t k = 0; k < entries; ++k) {
      const Addr node = w.at(i);
      filled_[node] = w.at(i + 1);
      i += 2;
    }
  }

  void save_host_state(std::vector<std::uint64_t>& out) const {
    out.push_back(queue_);
    out.push_back(reusable_.size());
    out.insert(out.end(), reusable_.begin(), reusable_.end());
    // The occupancy map is unordered; emit entries sorted by node address
    // so the blob (and its checksum/cache key interplay) is deterministic.
    std::vector<std::pair<Addr, std::uint64_t>> entries(filled_.begin(),
                                                        filled_.end());
    std::sort(entries.begin(), entries.end());
    out.push_back(entries.size());
    for (const auto& [node, count] : entries) {
      out.push_back(node);
      out.push_back(count);
    }
  }

  // Re-point the queue at a forked machine (Machine::fork). The queue's
  // own state is host-side values plus simulated addresses, which are
  // machine-independent; sweep cells copy the warmed prototype queue and
  // rebind the copy to their fork.
  void rebind(Machine& m) { machine_ = &m; }

  static constexpr int kInitCyclesPerCell = 2;

  // ---- packed-word helpers ----
  static constexpr int kIndexShift = 40;  // next pointers are < 2^40 words
  static constexpr Value kNextMask = (Value{1} << kIndexShift) - 1;

  static constexpr Value pack_link(Value index, Addr next) {
    return (index << kIndexShift) | next;
  }
  static constexpr Addr link_next(Value link) { return link & kNextMask; }
  static constexpr Value link_index(Value link) { return link >> kIndexShift; }

  // ---- address helpers ----
  Addr head_addr() const { return queue_; }
  Addr tail_addr() const { return queue_ + 1; }
  Addr enq_protector(int id) const { return queue_ + 2 + static_cast<Addr>(id); }
  Addr deq_protector(int id) const {
    return queue_ + 2 + static_cast<Addr>(cfg_.enqueuers + id);
  }
  Addr node_cell(Addr node, Value i) const { return node + i; }
  Addr node_counter(Addr node, int stripe = 0) const {
    return node + static_cast<Addr>(basket_cap_) + static_cast<Addr>(stripe);
  }
  Addr node_drained(Addr node) const {
    return node + static_cast<Addr>(basket_cap_) + static_cast<Addr>(stripes_);
  }
  Addr node_empty(Addr node) const {
    return node + static_cast<Addr>(basket_cap_) + static_cast<Addr>(stripes_) + 1;
  }
  Addr node_link(Addr node) const {
    return node + static_cast<Addr>(basket_cap_) + static_cast<Addr>(stripes_) + 2;
  }

  // Convenience for tests: follow a node's next pointer.
  Task<Addr> load_next(Core& c, Addr node) {
    co_return link_next(co_await c.load(node_link(node)));
  }

  // ---- operations (Algorithms 3 and 5) ----

  Task<void> enqueue(Core& c, Value element, int id) {
    assert(element >= kFirstElement);
    Addr t = co_await protect(c, tail_addr(), enq_protector(id));
    Addr new_node = co_await take_or_allocate(c, id);
    co_await c.store(node_cell(new_node, static_cast<Value>(id)), element);
    for (;;) {
      const Value t_link = co_await c.load(node_link(t));
      const Value my_index = link_index(t_link) + 1;
      co_await c.store(node_link(new_node), pack_link(my_index, 0));
      const int status = co_await try_append(c, t, t_link, new_node, my_index);
      if (status == kSuccess) {
        if (auto* st = c.metrics()) {
          st->on_basket_append(/*won=*/true);
          note_fill(c, new_node);  // the winner's own cell, stored above
        }
        co_await c.cas(tail_addr(), t, new_node);
        break;
      }
      if (status == kFailure) {
        if (auto* st = c.metrics()) st->on_basket_append(/*won=*/false);
        // Another node was appended; join the winner's basket.
        t = link_next(co_await c.load(node_link(t)));
        if (co_await c.cas(node_cell(t, static_cast<Value>(id)), kInsertMark,
                           element) != 0) {
          if (c.metrics() != nullptr) note_fill(c, t);  // joined the basket
          // Keep our node for reuse; undo its single insertion (O(1)).
          co_await c.store(node_cell(new_node, static_cast<Value>(id)),
                           kInsertMark);
          for (int st = 0; st < stripes_; ++st) {
            co_await c.store(node_counter(new_node, st), 0);
          }
          if (stripes_ > 1) co_await c.store(node_drained(new_node), 0);
          co_await c.store(node_empty(new_node), 0);
          reusable_[static_cast<std::size_t>(id)] = new_node;
          break;
        }
      }
      // BAD_TAIL or basket insert failed: chase the real tail and retry.
      for (;;) {
        const Addr next = link_next(co_await c.load(node_link(t)));
        if (next == 0) break;
        t = next;
      }
      co_await advance(c, tail_addr(), t);
    }
    co_await unprotect(c, enq_protector(id));
  }

  Task<Value> dequeue(Core& c, int id) {
    Addr h = co_await protect(c, head_addr(), deq_protector(id));
    Value element = 0;
    for (;;) {
      // Find the first possibly-non-empty basket.
      for (;;) {
        if (co_await c.load(node_empty(h)) == 0) break;
        const Addr next = link_next(co_await c.load(node_link(h)));
        if (next == 0) break;
        h = next;
      }
      element = co_await basket_extract(c, h, id);
      if (element != 0) break;
      if (link_next(co_await c.load(node_link(h))) == 0) break;
    }
    co_await advance(c, head_addr(), h);
    co_await unprotect(c, deq_protector(id));
    co_return element;
  }

  // Queue must be quiescent; used by benches to pre-fill via core 0.
  Task<void> prefill(Core& c, Value first_element, Value count) {
    for (Value i = 0; i < count; ++i) {
      co_await enqueue(c, first_element + i, 0);
    }
  }

 private:
  static constexpr int kSuccess = 0;
  static constexpr int kFailure = 1;
  static constexpr int kBadTail = 2;

  // Effect-log payloads (sharded occupancy replay; see the constructor).
  static constexpr std::uint64_t kEffFill = 0;
  static constexpr std::uint64_t kEffClose = 1;

  Addr node_words() const {
    return static_cast<Addr>(basket_cap_) + static_cast<Addr>(stripes_) + 3;
  }

  Addr alloc_node_raw() { return machine_->alloc(node_words()); }

  // Occupancy bookkeeping: inline on a serial machine; an ordered engine
  // effect on a sharded one (replayed at the window barrier so the map sees
  // fills and closes in the global event order). Callers gate on
  // c.metrics() — with stats off there is nothing to account.
  void note_fill(Core& c, Addr node) {
    if (c.sharded()) {
      c.log_effect(node, kEffFill);
    } else {
      ++filled_[node];
    }
  }
  void note_close(Core& c, Addr node) {
    if (c.sharded()) {
      c.log_effect(node, kEffClose);
    } else {
      c.metrics()->on_basket_close(filled_[node]);
    }
  }

  Task<Addr> take_or_allocate(Core& c, int id) {
    Addr& slot = reusable_[static_cast<std::size_t>(id)];
    if (slot != 0) {
      if (auto* st = c.metrics()) st->on_basket_node(/*reused=*/true);
      const Addr node = slot;
      slot = 0;
      co_return node;
    }
    if (auto* st = c.metrics()) st->on_basket_node(/*reused=*/false);
    // Fresh allocation: model the basket initialization as local work. The
    // core-attributed overload keeps mid-run addresses deterministic (and
    // race-free) when the machine runs with per-core arenas.
    co_await c.think(static_cast<Time>(kInitCyclesPerCell * basket_cap_));
    co_return machine_->alloc(node_words(), c.id());
  }

  // Algorithm 4 with the pluggable CAS (TxCAS or delayed plain CAS). The
  // CAS target is the tail's link word: expected = (tail index, NULL next).
  Task<int> try_append(Core& c, Addr tail, Value tail_link, Addr new_node,
                       Value my_index) {
    if (link_next(tail_link) != 0) {
      if (auto* st = c.metrics()) st->on_basket_stale_tail();
      co_return kBadTail;
    }
    const Value expected = pack_link(my_index - 1, 0);
    const Value desired = pack_link(my_index - 1, new_node);
    if (cfg_.variant == SbqVariant::kHtm) {
      const bool ok =
          co_await c.txcas(node_link(tail), expected, desired, cfg_.txcas);
      co_return ok ? kSuccess : kFailure;
    }
    // SBQ-CAS: the same delay placed before a plain CAS (§6.1).
    co_await c.think(cfg_.txcas.intra_txn_delay);
    const bool ok = co_await c.cas(node_link(tail), expected, desired) != 0;
    co_return ok ? kSuccess : kFailure;
  }

  // Algorithm 9: FAA-claimed extraction with the empty-bit short-circuit.
  // With stripes_ > 1 the counter is sharded per stripe (the §8 extension):
  // an extractor claims from its home stripe and falls over to the others;
  // whoever claims the last index of the last live stripe sets the empty
  // bit (tracked by the drained counter).
  Task<Value> basket_extract(Core& c, Addr node, int id) {
    if (co_await c.load(node_empty(node)) != 0) co_return 0;
    const Value live = static_cast<Value>(cfg_.enqueuers);
    if (stripes_ == 1) {
      for (;;) {
        const Value index = co_await c.faa(node_counter(node), 1);
        if (index >= live) co_return 0;
        if (index == live - 1) {
          if (c.metrics() != nullptr) note_close(c, node);
          co_await c.store(node_empty(node), 1);
        }
        const Value v = co_await c.swap(node_cell(node, index), kEmptyMark);
        if (auto* st = c.metrics()) st->on_basket_extract(v != kInsertMark);
        if (v != kInsertMark) co_return v;
      }
    }
    const int n = stripes_;
    const int start = id % n;
    for (int hop = 0; hop < n; ++hop) {
      const int st = (start + hop) % n;
      const Value size = stripe_size(st);
      const Value base = stripe_base(st);
      for (;;) {
        const Value index = co_await c.faa(node_counter(node, st), 1);
        if (index >= size) break;
        if (index == size - 1) {
          const Value drained = co_await c.faa(node_drained(node), 1);
          if (drained + 1 == static_cast<Value>(n)) {
            if (c.metrics() != nullptr) note_close(c, node);
            co_await c.store(node_empty(node), 1);
          }
        }
        const Value v =
            co_await c.swap(node_cell(node, base + index), kEmptyMark);
        if (auto* st = c.metrics()) st->on_basket_extract(v != kInsertMark);
        if (v != kInsertMark) co_return v;
      }
    }
    co_return 0;
  }

  Value stripe_size(int s) const {
    const Value live = static_cast<Value>(cfg_.enqueuers);
    const Value n = static_cast<Value>(stripes_);
    return live / n + (static_cast<Value>(s) < live % n ? 1 : 0);
  }
  Value stripe_base(int s) const {
    const Value live = static_cast<Value>(cfg_.enqueuers);
    const Value n = static_cast<Value>(stripes_);
    const Value base = live / n;
    const Value rem = live % n;
    const Value sv = static_cast<Value>(s);
    return sv * base + (sv < rem ? sv : rem);
  }

  // Algorithm 6 over packed link words.
  Task<void> advance(Core& c, Addr ptr, Addr node) {
    const Value node_index = link_index(co_await c.load(node_link(node)));
    for (;;) {
      const Addr old_node = co_await c.load(ptr);
      if (old_node == node) co_return;
      const Value old_index = link_index(co_await c.load(node_link(old_node)));
      if (old_index >= node_index) co_return;
      if (co_await c.cas(ptr, old_node, node) != 0) co_return;
    }
  }

  Machine* machine_;
  Config cfg_;
  int basket_cap_;
  int stripes_;
  Addr queue_ = 0;
  std::vector<Addr> reusable_;  // host-side per-enqueuer node cache
  // Host-side occupancy bookkeeping for the metrics registry (elements that
  // actually landed in each appended basket); only maintained when the
  // machine collects stats.
  std::unordered_map<Addr, std::uint64_t> filled_;
};

}  // namespace sbq::simq
