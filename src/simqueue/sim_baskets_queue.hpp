// The original baskets queue (Hoffman–Shalev–Shavit) on the coherence
// simulator: BQ-Original in the paper's evaluation (§6.1).
//
// Enqueues that lose the tail-link CAS retry *at the same node* — the
// implicit LIFO basket — by CASing themselves between the tail node and its
// successor. Dequeues logically delete nodes by setting a deleted bit in the
// next pointer (bit 63 of the word) and periodically swing the head across
// the deleted prefix. All the contended operations are CASes on shared
// lines, so under §3.2's cost model the queue serializes exactly like the
// other CAS-retry queues.
//
// Node layout: [0] value, [1] next (bit 63 = deleted).
// Queue layout: [0] head, [1] tail.
#pragma once

#include <cassert>

#include "simqueue/sim_queue_base.hpp"

namespace sbq::simq {

class SimBasketsQueue {
 public:
  struct Config {
    int enqueuers = 1;
    int dequeuers = 1;
  };

  SimBasketsQueue(Machine& m, Config cfg) : machine_(&m), cfg_(cfg) {
    queue_ = m.alloc(2);
    const Addr sentinel = m.alloc(2);
    m.poke(head_addr(), sentinel);
    m.poke(tail_addr(), sentinel);
  }

  // Rebuild around a machine forked from a deserialized snapshot (see
  // HostWords). Restores deq_ops_ verbatim — the hop counters decide when
  // head swings happen, so they are schedule-visible — which is why callers
  // must NOT follow this constructor with set_dequeuers().
  SimBasketsQueue(Machine& m, Config cfg, const HostWords& w)
      : machine_(&m), cfg_(cfg), queue_(w.at(0)) {
    deq_ops_.assign(static_cast<std::size_t>(w.at(1)), 0);
    for (std::size_t i = 0; i < deq_ops_.size(); ++i) {
      deq_ops_[i] = w.at(2 + i);
    }
  }

  void save_host_state(std::vector<std::uint64_t>& out) const {
    out.push_back(queue_);
    out.push_back(deq_ops_.size());
    out.insert(out.end(), deq_ops_.begin(), deq_ops_.end());
  }

  // Re-point at a forked machine (see SimSbq::rebind).
  void rebind(Machine& m) { machine_ = &m; }

  Addr head_addr() const { return queue_; }
  Addr tail_addr() const { return queue_ + 1; }
  static Addr node_value(Addr n) { return n; }
  static Addr node_next(Addr n) { return n + 1; }

  static constexpr Value kDeletedBit = Value{1} << 63;
  static Addr ptr(Value next_word) { return next_word & ~kDeletedBit; }
  static bool deleted(Value next_word) { return (next_word & kDeletedBit) != 0; }

  Task<void> enqueue(Core& c, Value element, int /*id*/) {
    assert(element >= kFirstElement && element < kDeletedBit);
    const Addr node = machine_->alloc(2, c.id());
    co_await c.store(node_value(node), element);
    // A failed basket attempt leaves node.next pointing back into the list
    // (the succ_w stored before the lost CAS). The original algorithm's E7
    // resets nd->next to NULL before every tail-append attempt; without it
    // a later *winning* append would link a backward edge — a cycle.
    bool next_dirty = false;
    for (;;) {
      const Addr tail = co_await c.load(tail_addr());
      const Value next_w = co_await c.load(node_next(tail));
      if (tail != co_await c.load(tail_addr())) continue;
      if (ptr(next_w) == 0 && !deleted(next_w)) {
        if (next_dirty) {
          co_await c.store(node_next(node), 0);
          next_dirty = false;
        }
        if (co_await c.cas(node_next(tail), next_w, node) != 0) {
          co_await c.cas(tail_addr(), tail, node);
          co_return;
        }
        // CAS failed: we belong to the winner's basket. Retry insertion at
        // the same node, between `tail` and its current successor.
        for (;;) {
          const Value succ_w = co_await c.load(node_next(tail));
          if (deleted(succ_w) || tail != co_await c.load(tail_addr())) break;
          co_await c.store(node_next(node), succ_w);
          next_dirty = true;
          if (co_await c.cas(node_next(tail), succ_w, node) != 0) co_return;
        }
      } else {
        // Stale tail: chase the last node and swing the tail pointer.
        Addr last = tail;
        Value ln = next_w;
        while (ptr(ln) != 0) {
          last = ptr(ln);
          ln = co_await c.load(node_next(last));
        }
        co_await c.cas(tail_addr(), tail, last);
      }
    }
  }

  Task<Value> dequeue(Core& c, int id) {
    for (;;) {
      const Addr head = co_await c.load(head_addr());
      const Addr tail = co_await c.load(tail_addr());
      // Skip the logically deleted prefix.
      Addr iter = head;
      Value next_w = co_await c.load(node_next(iter));
      while (deleted(next_w) && ptr(next_w) != 0) {
        iter = ptr(next_w);
        next_w = co_await c.load(node_next(iter));
      }
      if (head != co_await c.load(head_addr())) continue;

      if (ptr(next_w) == 0) {
        if (iter != head) co_await c.cas(head_addr(), head, iter);
        if (iter == co_await c.load(tail_addr())) co_return 0;  // empty
        continue;  // tail lags behind the deleted chain
      }
      if (head == tail) {
        // Help the stale tail forward.
        Addr last = iter;
        Value ln = next_w;
        while (ptr(ln) != 0) {
          last = ptr(ln);
          ln = co_await c.load(node_next(last));
        }
        co_await c.cas(tail_addr(), tail, last);
        continue;
      }
      const Addr next = ptr(next_w);
      const Value element = co_await c.load(node_value(next));
      if (co_await c.cas(node_next(iter), next_w, next | kDeletedBit) != 0) {
        // Periodically swing the head over the deleted prefix.
        if (++deq_ops_[static_cast<std::size_t>(id)] % kHopFrequency == 0) {
          co_await c.cas(head_addr(), head, next);
        }
        co_return element;
      }
    }
  }

  Task<void> prefill(Core& c, Value first_element, Value count) {
    for (Value i = 0; i < count; ++i) {
      co_await enqueue(c, first_element + i, 0);
    }
  }

  void set_dequeuers(int n) {
    deq_ops_.assign(static_cast<std::size_t>(n), 0);
  }

 private:
  static constexpr std::uint64_t kHopFrequency = 8;

  Machine* machine_;
  Config cfg_;
  Addr queue_ = 0;
  std::vector<std::uint64_t> deq_ops_ = std::vector<std::uint64_t>(64, 0);
};

}  // namespace sbq::simq
