// Common conventions and helpers for the simulated queue implementations.
//
// Simulated memory is a flat array of 64-bit words, one word per cache
// line. Queues lay out their structures explicitly:
//   * "pointers" are word addresses (0 = NULL),
//   * elements are values >= kFirstElement so the reserved small values
//     (NULL / INSERT / EMPTY / TAKEN marks) can never collide with data.
//
// Memory reclamation is intentionally *not* simulated: the simulator's
// memory is unbounded and reclamation costs the paper measures (a handful
// of uncontended loads/stores per operation) are represented by the
// protector announce/validate accesses that remain in the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/coro.hpp"
#include "sim/core.hpp"
#include "sim/machine.hpp"
#include "sim/types.hpp"

namespace sbq::simq {

using sim::Addr;
using sim::Core;
using sim::Machine;
using sim::Task;
using sim::Time;
using sim::Value;

// Host-side queue state for snapshot persistence (sim/serialize.hpp): each
// simulated queue keeps a few host words beside the simulated memory —
// root addresses, per-thread node caches, bookkeeping maps. save_host_state
// flattens them into a deterministic word list stored inside the snapshot
// blob; the matching restore constructor (Machine&, Config, const
// HostWords&) rebuilds the queue around an already-warm forked machine
// without allocating or poking simulated memory (the simulated side of the
// queue is inside the machine state).
//
// at() is bounds-checked and throws std::out_of_range — a blob whose word
// list is shorter than the config implies is treated by callers as a cache
// miss (cold fallback), never silent truncation.
struct HostWords {
  const std::uint64_t* words = nullptr;
  std::size_t count = 0;

  std::uint64_t at(std::size_t i) const {
    if (i >= count) throw std::out_of_range("HostWords: truncated word list");
    return words[i];
  }
};

// Reserved cell markers (must stay below kFirstElement).
inline constexpr Value kInsertMark = 0;  // SBQ basket: cell open for insert
inline constexpr Value kEmptyMark = 1;   // SBQ basket: cell closed by extract
inline constexpr Value kTakenMark = 1;   // FAA queue: cell poisoned
inline constexpr Value kFirstElement = 16;

// Spin on a simulated location until it holds `until_value`, re-reading
// with a small backoff so the spin does not flood the interconnect.
inline Task<void> spin_until_equals(Core& c, Addr a, Value until_value,
                                    Time poll_gap = 8) {
  for (;;) {
    if (co_await c.load(a) == until_value) co_return;
    co_await c.think(poll_gap);
  }
}

// advance_node (Algorithm 6): advance *ptr at least to `node`, comparing by
// the index stored at offset `index_off` within each node.
inline Task<void> advance_node(Core& c, Addr ptr, Addr node, int index_off) {
  const Value node_index =
      co_await c.load(node + static_cast<Addr>(index_off));
  for (;;) {
    const Addr old_node = co_await c.load(ptr);
    const Value old_index =
        co_await c.load(old_node + static_cast<Addr>(index_off));
    if (old_index >= node_index) co_return;
    if (co_await c.cas(ptr, old_node, node) != 0) co_return;
  }
}

// protect (Algorithm 7): announce a snapshot of *src in the protector slot
// and validate. The announcement is an uncontended store to the thread's
// own line; the validation re-read usually hits.
inline Task<Addr> protect(Core& c, Addr src, Addr protector_slot) {
  Addr snapshot = co_await c.load(src);
  for (;;) {
    co_await c.store(protector_slot, snapshot);
    const Addr current = co_await c.load(src);
    if (current == snapshot) co_return snapshot;
    snapshot = current;
  }
}

inline Task<void> unprotect(Core& c, Addr protector_slot) {
  co_await c.store(protector_slot, 0);
  co_return;
}

}  // namespace sbq::simq
