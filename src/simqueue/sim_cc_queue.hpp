// CC-Queue (Fatourou–Kallimanis CC-Synch combining) on the coherence
// simulator. Every operation performs one contended SWAP on the combining
// list's tail; the thread that lands at the head becomes the combiner and
// executes everyone's pending operations on a combiner-private sequential
// queue. Waiters spin locally on their own record's line; the combiner's
// completion store invalidates it and wakes them — exactly the two-message
// hand-off CC-Synch is designed around.
//
// Record layout: [0] op (1=enq, 2=deq), [1] argument, [2] result,
//                [3] status (0=pending, 1=completed, 2=lock passed),
//                [4] next record.
// Queue layout:  [0] combining tail, [1] seq head, [2] seq tail.
// Seq node:      [0] value, [1] next.
#pragma once

#include <cassert>
#include <vector>

#include "simqueue/sim_queue_base.hpp"

namespace sbq::simq {

class SimCcQueue {
 public:
  struct Config {
    int threads = 2;  // total operating threads (single id space)
  };

  SimCcQueue(Machine& m, Config cfg) : machine_(&m), cfg_(cfg) {
    queue_ = m.alloc(3);
    const Addr dummy = alloc_record();
    m.poke(rec_status(dummy), 2);  // dummy holds the lock
    m.poke(combining_tail(), dummy);
    const Addr sentinel = m.alloc(2);
    m.poke(seq_head(), sentinel);
    m.poke(seq_tail(), sentinel);
    spare_.assign(static_cast<std::size_t>(cfg.threads), 0);
  }

  // Rebuild around a machine forked from a deserialized snapshot (see
  // HostWords). The spare-record cache is restored verbatim: whether a
  // thread reuses or allocates its next record is schedule-visible.
  SimCcQueue(Machine& m, Config cfg, const HostWords& w)
      : machine_(&m), cfg_(cfg), queue_(w.at(0)) {
    spare_.assign(static_cast<std::size_t>(w.at(1)), 0);
    for (std::size_t i = 0; i < spare_.size(); ++i) {
      spare_[i] = w.at(2 + i);
    }
  }

  void save_host_state(std::vector<std::uint64_t>& out) const {
    out.push_back(queue_);
    out.push_back(spare_.size());
    out.insert(out.end(), spare_.begin(), spare_.end());
  }

  // Re-point at a forked machine (see SimSbq::rebind).
  void rebind(Machine& m) { machine_ = &m; }

  Addr combining_tail() const { return queue_; }
  Addr seq_head() const { return queue_ + 1; }
  Addr seq_tail() const { return queue_ + 2; }

  static Addr rec_op(Addr r) { return r; }
  static Addr rec_arg(Addr r) { return r + 1; }
  static Addr rec_result(Addr r) { return r + 2; }
  static Addr rec_status(Addr r) { return r + 3; }
  static Addr rec_next(Addr r) { return r + 4; }

  Task<void> enqueue(Core& c, Value element, int id) {
    assert(element >= kFirstElement);
    co_await apply(c, /*op=*/1, element, id);
  }

  Task<Value> dequeue(Core& c, int id) {
    co_return co_await apply(c, /*op=*/2, 0, id);
  }

  Task<void> prefill(Core& c, Value first_element, Value count) {
    for (Value i = 0; i < count; ++i) {
      co_await enqueue(c, first_element + i, 0);
    }
  }

 private:
  static constexpr std::size_t kHelpBound = 64;

  Addr alloc_record() { return machine_->alloc(5); }

  Addr take_spare(Core& c, int id) {
    Addr& slot = spare_[static_cast<std::size_t>(id)];
    if (slot != 0) {
      const Addr r = slot;
      slot = 0;
      return r;
    }
    // Mid-run allocation: core-attributed so arena machines (and their
    // sharded runs) hand out schedule-independent addresses.
    return machine_->alloc(5, c.id());
  }

  Task<Value> apply(Core& c, Value op, Value arg, int id) {
    const Addr next_dummy = take_spare(c, id);
    co_await c.store(rec_next(next_dummy), 0);
    co_await c.store(rec_status(next_dummy), 0);

    const Addr cur = co_await c.swap(combining_tail(), next_dummy);
    co_await c.store(rec_op(cur), op);
    co_await c.store(rec_arg(cur), arg);
    co_await c.store(rec_result(cur), 0);
    co_await c.store(rec_next(cur), next_dummy);

    // Local spin on our own record's status word.
    Value status;
    for (;;) {
      status = co_await c.load(rec_status(cur));
      if (status != 0) break;
      co_await c.think(12);
    }
    if (status == 1) {
      // Combined by someone else.
      const Value result = co_await c.load(rec_result(cur));
      spare_[static_cast<std::size_t>(id)] = cur;
      co_return result;
    }

    // status == 2: we hold the combiner lock. Serve the list: every node
    // with a non-null next pointer holds a fully posted request (posting
    // stores next last). The node we stop at — the tail dummy, or a posted
    // request past the help bound — receives the lock; its owner becomes
    // the next combiner and serves itself first.
    Addr node = cur;
    std::size_t helped = 0;
    for (;;) {
      const Addr next = co_await c.load(rec_next(node));
      if (next == 0 || helped >= kHelpBound) break;
      co_await execute(c, node);
      co_await c.store(rec_status(node), 1);
      ++helped;
      node = next;
    }
    co_await c.store(rec_status(node), 2);  // pass the lock
    const Value result = co_await c.load(rec_result(cur));
    spare_[static_cast<std::size_t>(id)] = cur;
    co_return result;
  }

  Task<void> execute(Core& c, Addr record) {
    const Value op = co_await c.load(rec_op(record));
    if (op == 1) {
      const Addr n = machine_->alloc(2, c.id());
      co_await c.store(n, co_await c.load(rec_arg(record)));
      const Addr tail = co_await c.load(seq_tail());
      co_await c.store(tail + 1, n);
      co_await c.store(seq_tail(), n);
    } else {
      const Addr head = co_await c.load(seq_head());
      const Addr first = co_await c.load(head + 1);
      if (first == 0) {
        co_await c.store(rec_result(record), 0);
      } else {
        co_await c.store(rec_result(record), co_await c.load(first));
        co_await c.store(seq_head(), first);
      }
    }
  }

  Machine* machine_;
  Config cfg_;
  Addr queue_ = 0;
  std::vector<Addr> spare_;
};

}  // namespace sbq::simq
