// Example: a burst-tolerant work distributor.
//
// A realistic producer-heavy scenario (the regime where SBQ shines, §6.2):
// many request threads enqueue bursts of tasks; a small pool of workers
// drains them. We report end-to-end latency percentiles per burst mode and
// verify exactly-once execution.
//
// Run: ./build/examples/work_distributor [bursts] [burst_size]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "basket/sbq_basket.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"
#include "htm/cas_policy.hpp"
#include "queues/sbq.hpp"

namespace {

struct Task {
  std::uint64_t id;
  std::chrono::steady_clock::time_point submitted;
  std::atomic<int> executions{0};
};

using Queue = sbq::Queue<Task, sbq::SbqBasket<Task>, sbq::HtmCas>;

}  // namespace

int main(int argc, char** argv) {
  const int bursts = argc > 1 ? std::atoi(argv[1]) : 50;
  const int burst_size = argc > 2 ? std::atoi(argv[2]) : 400;
  constexpr int kSubmitters = 6;
  constexpr int kWorkers = 2;

  Queue::Config cfg;
  cfg.max_enqueuers = kSubmitters;
  cfg.max_dequeuers = kWorkers;
  Queue queue(cfg);

  const long total = static_cast<long>(bursts) * burst_size * kSubmitters;
  std::vector<Task> tasks(static_cast<std::size_t>(total));
  std::atomic<long> next_task{0};
  std::atomic<long> executed{0};
  std::atomic<bool> done{false};

  // Latency samples collected per worker, merged at the end.
  std::vector<sbq::Summary> worker_latency(kWorkers);

  std::vector<std::thread> threads;
  for (int s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      for (int b = 0; b < bursts; ++b) {
        for (int i = 0; i < burst_size; ++i) {
          const long idx = next_task.fetch_add(1, std::memory_order_relaxed);
          Task* t = &tasks[static_cast<std::size_t>(idx)];
          t->id = static_cast<std::uint64_t>(idx);
          t->submitted = std::chrono::steady_clock::now();
          queue.enqueue(t, s);
        }
        // Small gap between bursts.
        std::this_thread::yield();
      }
    });
  }
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      while (!done.load(std::memory_order_acquire) ||
             executed.load(std::memory_order_acquire) < total) {
        Task* t = queue.dequeue(w);
        if (t == nullptr) continue;
        t->executions.fetch_add(1, std::memory_order_relaxed);
        const auto now = std::chrono::steady_clock::now();
        worker_latency[static_cast<std::size_t>(w)].add(
            std::chrono::duration<double, std::micro>(now - t->submitted)
                .count());
        executed.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }
  for (int i = 0; i < kSubmitters; ++i) {
    threads[static_cast<std::size_t>(i)].join();
  }
  done.store(true, std::memory_order_release);
  for (int i = 0; i < kWorkers; ++i) {
    threads[static_cast<std::size_t>(kSubmitters + i)].join();
  }

  // Exactly-once check.
  long violations = 0;
  for (const Task& t : tasks) {
    if (t.executions.load() != 1) ++violations;
  }

  std::printf("executed %ld/%ld tasks, exactly-once violations: %ld\n",
              executed.load(), total, violations);
  for (int w = 0; w < kWorkers; ++w) {
    auto& s = worker_latency[static_cast<std::size_t>(w)];
    if (s.count() == 0) continue;
    std::printf("worker %d: %zu tasks, queueing latency p50 %.1f us, "
                "p99 %.1f us, max %.1f us\n",
                w, s.count(), s.percentile(50), s.percentile(99), s.max());
  }
  return violations == 0 ? 0 : 1;
}
