// Quickstart: the SBQ public API in 60 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// SBQ is a linearizable lock-free MPMC queue of pointers. You configure the
// maximum number of enqueuer and dequeuer threads up front (they index
// per-thread basket cells and reclamation slots) and pass each thread's id
// to the operations. The CAS policy is a template parameter: HtmCas uses
// TxCAS on machines with Intel RTM and transparently degrades to a delayed
// plain CAS elsewhere.
#include <cstdio>
#include <thread>
#include <vector>

#include "basket/sbq_basket.hpp"
#include "htm/cas_policy.hpp"
#include "htm/htm.hpp"
#include "queues/sbq.hpp"

int main() {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 10000;

  using Queue = sbq::Queue<int, sbq::SbqBasket<int>, sbq::HtmCas>;
  Queue::Config cfg;
  cfg.max_enqueuers = kProducers;
  cfg.max_dequeuers = kConsumers;
  Queue queue(cfg);

  std::printf("RTM hardware available: %s\n",
              sbq::htm::hardware_available() ? "yes (TxCAS active)"
                                             : "no (plain-CAS fallback)");

  std::vector<int> payloads(kProducers * kPerProducer);
  std::vector<std::thread> threads;
  std::atomic<long> consumed{0};
  std::atomic<long> checksum{0};

  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int* item = &payloads[p * kPerProducer + i];
        *item = p * kPerProducer + i;
        queue.enqueue(item, /*enqueuer id=*/p);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      while (consumed.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (int* item = queue.dequeue(/*dequeuer id=*/c)) {
          checksum.fetch_add(*item, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  const long n = kProducers * kPerProducer;
  std::printf("consumed %ld items, checksum %ld (expected %ld)\n",
              consumed.load(), checksum.load(), n * (n - 1) / 2);
  return checksum.load() == n * (n - 1) / 2 ? 0 : 1;
}
