// Example: a multi-stage processing pipeline built on SBQ.
//
// The workload the paper's introduction motivates: MPMC queues as the glue
// between stages of a parallel system. Here a three-stage pipeline
// (generate -> transform -> aggregate) passes work items through two SBQ
// instances. Stage threads are both consumers of the upstream queue and
// producers into the downstream one.
//
//   stage 0 (2 threads): generate random records
//   stage 1 (3 threads): hash/transform each record
//   stage 2 (2 threads): aggregate the results
//
// Run: ./build/examples/pipeline [records]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "basket/sbq_basket.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"
#include "htm/cas_policy.hpp"
#include "queues/sbq.hpp"

namespace {

struct Record {
  std::uint64_t key;
  std::uint64_t value;
  std::uint64_t hashed;
};

using Queue = sbq::Queue<Record, sbq::SbqBasket<Record>, sbq::HtmCas>;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  const long total = argc > 1 ? std::atol(argv[1]) : 200000;
  constexpr int kGen = 2, kXform = 3, kAgg = 2;

  Queue::Config q1cfg;
  q1cfg.max_enqueuers = kGen;
  q1cfg.max_dequeuers = kXform;
  Queue raw_queue(q1cfg);

  Queue::Config q2cfg;
  q2cfg.max_enqueuers = kXform;
  q2cfg.max_dequeuers = kAgg;
  Queue done_queue(q2cfg);

  std::vector<Record> pool(static_cast<std::size_t>(total));
  std::atomic<long> generated{0}, transformed{0}, aggregated{0};
  std::atomic<std::uint64_t> digest{0};
  std::atomic<bool> gen_done{false}, xform_done{false};

  sbq::StopWatch watch;
  std::vector<std::thread> threads;

  for (int g = 0; g < kGen; ++g) {
    threads.emplace_back([&, g] {
      sbq::Xoshiro256 rng(1234 + static_cast<std::uint64_t>(g));
      for (;;) {
        const long i = generated.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        Record* r = &pool[static_cast<std::size_t>(i)];
        r->key = static_cast<std::uint64_t>(i);
        r->value = rng.next();
        raw_queue.enqueue(r, g);
      }
    });
  }
  for (int x = 0; x < kXform; ++x) {
    threads.emplace_back([&, x] {
      for (;;) {
        Record* r = raw_queue.dequeue(x);
        if (r == nullptr) {
          // Only exit once the upstream stage has finished AND the queue
          // has been observed empty afterwards.
          if (gen_done.load(std::memory_order_acquire)) {
            r = raw_queue.dequeue(x);
            if (r == nullptr) break;
          } else {
            continue;
          }
        }
        r->hashed = mix(r->key ^ r->value);
        done_queue.enqueue(r, x);
        transformed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int a = 0; a < kAgg; ++a) {
    threads.emplace_back([&, a] {
      for (;;) {
        Record* r = done_queue.dequeue(a);
        if (r == nullptr) {
          if (xform_done.load(std::memory_order_acquire)) {
            r = done_queue.dequeue(a);
            if (r == nullptr) break;
          } else {
            continue;
          }
        }
        digest.fetch_xor(r->hashed, std::memory_order_relaxed);
        aggregated.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Join stage by stage, signalling downstream completion.
  for (int i = 0; i < kGen; ++i) threads[static_cast<std::size_t>(i)].join();
  gen_done.store(true, std::memory_order_release);
  for (int i = 0; i < kXform; ++i) {
    threads[static_cast<std::size_t>(kGen + i)].join();
  }
  xform_done.store(true, std::memory_order_release);
  for (int i = 0; i < kAgg; ++i) {
    threads[static_cast<std::size_t>(kGen + kXform + i)].join();
  }

  // Verify against a sequential recomputation.
  std::uint64_t expected = 0;
  for (const Record& r : pool) expected ^= mix(r.key ^ r.value);

  std::printf("pipeline: %ld generated, %ld transformed, %ld aggregated "
              "in %.1f ms\n",
              generated.load() > total ? total : generated.load(),
              transformed.load(), aggregated.load(), watch.elapsed_ms());
  std::printf("digest %016llx, expected %016llx -> %s\n",
              static_cast<unsigned long long>(digest.load()),
              static_cast<unsigned long long>(expected),
              digest.load() == expected ? "OK" : "MISMATCH");
  return digest.load() == expected ? 0 : 1;
}
