// Example: driving the coherence simulator directly.
//
// The simulator is a first-class part of this library's public API: it lets
// you watch the cache-coherence dynamics of §3 of the paper at message
// granularity. This example runs a tiny 4-core contention scenario twice —
// once with standard CAS, once with TxCAS — with protocol tracing enabled,
// and prints the message timeline for the contended word.
//
// Run: ./build/examples/sim_explorer [cores]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sim/machine.hpp"

using namespace sbq::sim;

namespace {

void run_scenario(int cores, bool use_txcas) {
  MachineConfig cfg;
  cfg.cores = cores;
  cfg.record_trace = true;
  Machine m(cfg);
  const Addr x = m.alloc();

  // Warm every core's cache so all start from Shared state, like Figure 2.
  for (int c = 0; c < cores; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      co_await m.core(c).load(x);
    }(m, c, x));
  }
  m.run();
  m.trace().clear();

  std::printf("\n=== %s, %d cores, one contended round ===\n",
              use_txcas ? "TxCAS (HTM)" : "standard CAS", cores);
  for (int c = 0; c < cores; ++c) {
    m.spawn([](Machine& m, int c, Addr x, bool use_txcas) -> Task<void> {
      if (use_txcas) {
        TxCasConfig tx;
        tx.intra_txn_delay = 30;
        const bool ok = co_await m.core(c).txcas(x, 0, Value(c) + 1, tx);
        std::printf("[%6lu] core %d txcas -> %s\n",
                    static_cast<unsigned long>(m.engine().now()), c,
                    ok ? "SUCCESS" : "failed");
      } else {
        const Value ok = co_await m.core(c).cas(x, 0, Value(c) + 1);
        std::printf("[%6lu] core %d cas   -> %s\n",
                    static_cast<unsigned long>(m.engine().now()), c,
                    ok ? "SUCCESS" : "failed");
      }
    }(m, c, x, use_txcas));
  }
  m.run();

  std::printf("--- protocol trace (addr %lu) ---\n",
              static_cast<unsigned long>(x));
  m.trace().print(std::cout, x);

  std::printf("--- per-core stats ---\n");
  for (int c = 0; c < cores; ++c) {
    const CoreStats& s = m.core(c).stats();
    std::printf("core %d: txcas attempts %lu, nested aborts %lu, tripped %lu\n",
                c, static_cast<unsigned long>(s.txcas_attempts),
                static_cast<unsigned long>(s.nested_aborts),
                static_cast<unsigned long>(s.tripped_aborts));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int cores = argc > 1 ? std::atoi(argv[1]) : 4;
  run_scenario(cores, /*use_txcas=*/false);
  run_scenario(cores, /*use_txcas=*/true);
  std::printf("\nNote how the standard-CAS round serializes Fwd-GetM "
              "hand-offs, while the\nTxCAS round aborts all losers with "
              "back-to-back invalidations (Figure 2 of\nthe paper).\n");
  return 0;
}
