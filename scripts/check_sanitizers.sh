#!/usr/bin/env bash
# Build and run the unit-test suite under AddressSanitizer + UBSan in a
# dedicated build tree (the SANITIZE CMake option). The benchmark harness
# and examples are skipped: golden byte-identity and timing gates are
# meaningless under sanitizer instrumentation — this run exists to catch
# memory errors and UB in the simulator and queue implementations.
#
# Usage: scripts/check_sanitizers.sh [build-dir]   (default: build-asan)
# Env:   CTEST_PARALLEL_LEVEL (default 2), SBQ_SAN_JOBS (build jobs)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build-asan}
JOBS=${SBQ_SAN_JOBS:-$(nproc 2>/dev/null || echo 2)}

cmake -B "$BUILD_DIR" -S . \
  -DSANITIZE=ON \
  -DSBQ_BUILD_BENCH=OFF \
  -DSBQ_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$JOBS"

# Exclude the label families that need the bench harness or compare against
# timing/golden baselines; everything else runs instrumented.
export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -j "${CTEST_PARALLEL_LEVEL:-2}" \
  -LE "bench|golden_rebaseline|perf_smoke|docs"

echo "check_sanitizers: ASan+UBSan test run passed ($BUILD_DIR)"
