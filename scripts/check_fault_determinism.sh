#!/usr/bin/env bash
# Verify that the fault-injection sweep is reproducible: two runs of
# ablation_fault_sweep with the same --fault-seed must produce byte-identical
# stdout and --json artifacts, and the sweep must actually exercise the
# degradation path (nonzero fallback_cas at nonzero injection rates).
#
# Usage: scripts/check_fault_determinism.sh <path-to-ablation_fault_sweep>
#        [extra driver args...]
# Defaults to the smoke sweep arguments with --fault-seed 7.
set -euo pipefail

if [ $# -lt 1 ]; then
  echo "usage: $0 <ablation_fault_sweep binary> [args...]" >&2
  exit 2
fi
bin=$1
shift
if [ ! -x "$bin" ]; then
  echo "check_fault_determinism: $bin not built" >&2
  exit 1
fi
args=("$@")
if [ ${#args[@]} -eq 0 ]; then
  args=(--threads 1,2 --ops 20 --repeats 1 --jobs 2 --fault-seed 7)
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

"$bin" "${args[@]}" --json "$tmpdir/a.json" > "$tmpdir/a.stdout"
"$bin" "${args[@]}" --json "$tmpdir/b.json" > "$tmpdir/b.stdout"

fail=0
if ! diff -u "$tmpdir/a.stdout" "$tmpdir/b.stdout"; then
  echo "check_fault_determinism: stdout differs between identical runs" >&2
  fail=1
fi
if ! diff -u "$tmpdir/a.json" "$tmpdir/b.json"; then
  echo "check_fault_determinism: --json artifact differs between runs" >&2
  fail=1
fi

# On a mismatch, pre-localize the first divergent interconnect message with
# the bisector (docs/replay.md) if it was built next to the driver.
# Best-effort: the diff above is the authoritative failure.
if [ "$fail" -ne 0 ]; then
  divergence=$(dirname "$bin")/../tools/sbq_divergence
  if [ -x "$divergence" ]; then
    echo "check_fault_determinism: bisecting the two runs' schedules..." >&2
    "$divergence" --queue SBQ-HTM --workload prod --threads 2 --ops 20 \
      --a-fault-rate 0.1 --b-fault-rate 0.1 \
      --a-fault-seed 7 --b-fault-seed 7 >&2 || true
  fi
fi

# At least one swept cell at a nonzero injection rate must have degraded a
# TxCAS to a plain CAS — otherwise the sweep is not exercising the fallback.
if ! grep -Eq '"fallback_cas_fraction": (0\.[0-9]*[1-9]|1)' "$tmpdir/a.json"; then
  echo "check_fault_determinism: no cell reports a nonzero" \
       "fallback_cas_fraction — degradation path not exercised" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_fault_determinism: two runs byte-identical, fallback path exercised"
