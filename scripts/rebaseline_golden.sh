#!/usr/bin/env bash
# Regenerate or verify the golden stdout+JSON baselines of every figure and
# ablation driver (tests/golden/<driver>.{stdout,json}), captured at the
# smoke sweep arguments (--threads 1,2 --ops 20 --repeats 1 --jobs 2, the
# drivers' default seed 42). Driver output is fully deterministic, so the
# baselines are compared byte-for-byte.
#
# The goldens pin the exact simulated schedule: any schedule-visible change
# (invalidation delivery order, interconnect timing, workload seeding)
# surfaces as a diff in every affected driver. After an intentional change,
# run this script with no arguments, inspect `git diff tests/golden/`,
# justify the drift in the PR, and commit the regenerated files. The
# `golden_rebaseline` ctest label runs the --check modes.
#
# Usage:
#   scripts/rebaseline_golden.sh                    # regenerate all goldens
#   scripts/rebaseline_golden.sh --check [drv...]   # verify; exit 1 on drift
#   scripts/rebaseline_golden.sh --check-cold-start fig6_dequeue
#       # re-run with --cold-start and verify against the same (fork-path)
#       # golden — the checkpoint/fork byte-identity gate
#   scripts/rebaseline_golden.sh --check-fault-off fig5_enqueue
#       # re-run with fault injection explicitly disabled (--fault-rate 0
#       # --fault-jitter 0 --fault-seed 1) and verify against the same
#       # golden — the golden-safety gate for the fault-injection plumbing
#   scripts/rebaseline_golden.sh --check-cached [drv...]
#       # run each driver TWICE against one fresh snapshot-cache directory
#       # (--snapshot-cache=rw, SBQ_SNAPSHOT_CACHE=<tmp>): the first pass
#       # fills the cache, the second warms from it. Both passes' stdout
#       # must match the golden byte-for-byte, the --json artifact must
#       # match after dropping its snapshot_cache counter block, and the
#       # second pass must report cache hits — the warm-start-cache
#       # byte-identity gate (docs/performance.md "Warm-start cache")
#
# Env: BUILD_DIR (default: build).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
GOLDEN_DIR=tests/golden
SMOKE_ARGS=(--threads 1,2 --ops 20 --repeats 1 --jobs 2)
DRIVERS=(
  fig1_txcas_vs_faa
  fig2_coherence_dynamics
  fig3_tripped_writer
  fig5_enqueue
  fig6_dequeue
  fig7_mixed
  ablation_delay_sweep
  ablation_numa
  ablation_basket_size
  ablation_uarch_fix
  ablation_striped_basket
)

mode=write
extra_args=()
case "${1:-}" in
  --check)
    mode=check
    shift
    ;;
  --check-cold-start)
    mode=check
    extra_args=(--cold-start)
    shift
    ;;
  --check-fault-off)
    mode=check
    extra_args=(--fault-rate 0 --fault-jitter 0 --fault-seed 1)
    shift
    ;;
  --check-cached)
    mode=check_cached
    shift
    ;;
esac

drivers=("$@")
if [ ${#drivers[@]} -eq 0 ]; then
  drivers=("${DRIVERS[@]}")
fi

require_built() {
  if [ ! -x "$1" ]; then
    echo "rebaseline_golden: $1 not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
}

# Names of every (driver, aspect) pair that drifted, so the final FAILED
# line says exactly what to look at instead of just "something diverged".
failed=()

# compare_golden <driver> <label> <stdout-file> <json-file> [strip-cache]
# Byte-compares a run against tests/golden/<driver>.{stdout,json}; with
# strip-cache the artifact's snapshot_cache block (counters depend on cache
# occupancy) is dropped from BOTH sides before structural comparison.
compare_golden() {
  local drv=$1 label=$2 out=$3 json=$4 strip=${5:-}
  if ! diff -u "$GOLDEN_DIR/$drv.stdout" "$out"; then
    echo "rebaseline_golden: $label: stdout drifted from $GOLDEN_DIR/$drv.stdout" >&2
    failed+=("$label:stdout")
  fi
  if [ -n "$strip" ]; then
    if ! python3 - "$GOLDEN_DIR/$drv.json" "$json" <<'EOF'
import json, sys
golden = json.load(open(sys.argv[1]))
got = json.load(open(sys.argv[2]))
golden.pop("snapshot_cache", None)
got.pop("snapshot_cache", None)
sys.exit(0 if golden == got else 1)
EOF
    then
      echo "rebaseline_golden: $label: --json drifted from $GOLDEN_DIR/$drv.json (snapshot_cache block ignored)" >&2
      failed+=("$label:json")
    fi
  elif ! diff -u "$GOLDEN_DIR/$drv.json" "$json"; then
    echo "rebaseline_golden: $label: --json drifted from $GOLDEN_DIR/$drv.json" >&2
    failed+=("$label:json")
  fi
}

if [ "$mode" = check_cached ]; then
  # A caller-provided SBQ_SNAPSHOT_CACHE is used (and kept) as the shared
  # cache directory — CI persists it across runs via actions/cache, so the
  # first pass may already hit. Otherwise use a throwaway temp directory.
  if [ -n "${SBQ_SNAPSHOT_CACHE:-}" ]; then
    cache_dir=$SBQ_SNAPSHOT_CACHE
    mkdir -p "$cache_dir"
  else
    cache_dir=$(mktemp -d)
    trap 'rm -rf "$cache_dir"' EXIT
  fi
  for drv in "${drivers[@]}"; do
    exe="$BUILD_DIR/bench/$drv"
    require_built "$exe"
    for pass in 1 2; do
      label="$drv (cached pass $pass)"
      tmp_out=$(mktemp)
      tmp_json=$(mktemp)
      if ! SBQ_SNAPSHOT_CACHE="$cache_dir" "$exe" "${SMOKE_ARGS[@]}" \
          --snapshot-cache=rw --json "$tmp_json" > "$tmp_out"; then
        echo "rebaseline_golden: $label: driver exited nonzero" >&2
        exit 1
      fi
      compare_golden "$drv" "$label" "$tmp_out" "$tmp_json" strip-cache
      if [ "$pass" = 2 ]; then
        hits=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get("snapshot_cache",{}).get("hits",0))' "$tmp_json")
        if [ "$hits" -le 0 ]; then
          echo "rebaseline_golden: $label: expected cache hits on the second pass, got $hits" >&2
          failed+=("$label:hits")
        fi
      fi
      rm -f "$tmp_out" "$tmp_json"
    done
  done
  if [ ${#failed[@]} -ne 0 ]; then
    echo "rebaseline_golden: FAILED (cached) — ${failed[*]}" >&2
    exit 1
  fi
  echo "rebaseline_golden: ${#drivers[@]} driver(s) byte-identical through the snapshot cache"
  exit 0
fi

for drv in "${drivers[@]}"; do
  exe="$BUILD_DIR/bench/$drv"
  require_built "$exe"
  tmp_out=$(mktemp)
  tmp_json=$(mktemp)
  if ! "$exe" "${SMOKE_ARGS[@]}" ${extra_args[@]+"${extra_args[@]}"} \
      --json "$tmp_json" > "$tmp_out"; then
    echo "rebaseline_golden: $drv${extra_args[0]:+ ${extra_args[*]}}: driver exited nonzero at the smoke arguments" >&2
    exit 1
  fi
  if [ "$mode" = write ]; then
    mkdir -p "$GOLDEN_DIR"
    mv "$tmp_out" "$GOLDEN_DIR/$drv.stdout"
    mv "$tmp_json" "$GOLDEN_DIR/$drv.json"
    echo "rebaseline_golden: wrote $GOLDEN_DIR/$drv.{stdout,json}"
  else
    label="$drv${extra_args[0]:+ ${extra_args[*]}}"
    compare_golden "$drv" "$label" "$tmp_out" "$tmp_json"
    rm -f "$tmp_out" "$tmp_json"
  fi
done

if [ "$mode" = check ]; then
  if [ ${#failed[@]} -ne 0 ]; then
    echo "rebaseline_golden: FAILED — drifted: ${failed[*]} — run" \
         "scripts/rebaseline_golden.sh and commit tests/golden/ if the" \
         "drift is intentional" >&2
    exit 1
  fi
  echo "rebaseline_golden: ${#drivers[@]} driver(s) match the goldens"
fi
