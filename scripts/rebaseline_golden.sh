#!/usr/bin/env bash
# Regenerate or verify the golden stdout+JSON baselines of every figure and
# ablation driver (tests/golden/<driver>.{stdout,json}), captured at the
# smoke sweep arguments (--threads 1,2 --ops 20 --repeats 1 --jobs 2, the
# drivers' default seed 42). Driver output is fully deterministic, so the
# baselines are compared byte-for-byte.
#
# The goldens pin the exact simulated schedule: any schedule-visible change
# (invalidation delivery order, interconnect timing, workload seeding)
# surfaces as a diff in every affected driver. After an intentional change,
# run this script with no arguments, inspect `git diff tests/golden/`,
# justify the drift in the PR, and commit the regenerated files. The
# `golden_rebaseline` ctest label runs the --check mode.
#
# Usage:
#   scripts/rebaseline_golden.sh                    # regenerate all goldens
#   scripts/rebaseline_golden.sh --check [drv...]   # verify; exit 1 on drift
#   scripts/rebaseline_golden.sh --check-cold-start fig6_dequeue
#       # re-run with --cold-start and verify against the same (fork-path)
#       # golden — the checkpoint/fork byte-identity gate
#   scripts/rebaseline_golden.sh --check-fault-off fig5_enqueue
#       # re-run with fault injection explicitly disabled (--fault-rate 0
#       # --fault-jitter 0 --fault-seed 1) and verify against the same
#       # golden — the golden-safety gate for the fault-injection plumbing
#
# Env: BUILD_DIR (default: build).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
GOLDEN_DIR=tests/golden
SMOKE_ARGS=(--threads 1,2 --ops 20 --repeats 1 --jobs 2)
DRIVERS=(
  fig1_txcas_vs_faa
  fig2_coherence_dynamics
  fig3_tripped_writer
  fig5_enqueue
  fig6_dequeue
  fig7_mixed
  ablation_delay_sweep
  ablation_numa
  ablation_basket_size
  ablation_uarch_fix
  ablation_striped_basket
)

mode=write
extra_args=()
case "${1:-}" in
  --check)
    mode=check
    shift
    ;;
  --check-cold-start)
    mode=check
    extra_args=(--cold-start)
    shift
    ;;
  --check-fault-off)
    mode=check
    extra_args=(--fault-rate 0 --fault-jitter 0 --fault-seed 1)
    shift
    ;;
esac

drivers=("$@")
if [ ${#drivers[@]} -eq 0 ]; then
  drivers=("${DRIVERS[@]}")
fi

fail=0
for drv in "${drivers[@]}"; do
  exe="$BUILD_DIR/bench/$drv"
  if [ ! -x "$exe" ]; then
    echo "rebaseline_golden: $exe not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
  tmp_out=$(mktemp)
  tmp_json=$(mktemp)
  "$exe" "${SMOKE_ARGS[@]}" ${extra_args[@]+"${extra_args[@]}"} \
      --json "$tmp_json" > "$tmp_out"
  if [ "$mode" = write ]; then
    mkdir -p "$GOLDEN_DIR"
    mv "$tmp_out" "$GOLDEN_DIR/$drv.stdout"
    mv "$tmp_json" "$GOLDEN_DIR/$drv.json"
    echo "rebaseline_golden: wrote $GOLDEN_DIR/$drv.{stdout,json}"
  else
    label="$drv${extra_args[0]:+ ${extra_args[*]}}"
    if ! diff -u "$GOLDEN_DIR/$drv.stdout" "$tmp_out"; then
      echo "rebaseline_golden: $label stdout drifted from golden" >&2
      fail=1
    fi
    if ! diff -u "$GOLDEN_DIR/$drv.json" "$tmp_json"; then
      echo "rebaseline_golden: $label --json drifted from golden" >&2
      fail=1
    fi
    rm -f "$tmp_out" "$tmp_json"
  fi
done

if [ "$mode" = check ]; then
  if [ "$fail" -ne 0 ]; then
    echo "rebaseline_golden: FAILED — run scripts/rebaseline_golden.sh and" \
         "commit tests/golden/ if the drift is intentional" >&2
    exit 1
  fi
  echo "rebaseline_golden: ${#drivers[@]} driver(s) match the goldens"
fi
