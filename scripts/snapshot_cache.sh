#!/usr/bin/env bash
# Manage the persistent warm-start snapshot cache (docs/performance.md
# "Warm-start cache"). The cache directory is $SBQ_SNAPSHOT_CACHE if set,
# else ./.sbq-cache; entries are content-addressed files named
# v<schema>-<16-hex-key>.snap, so stale entries are never *read* — this
# script only reports on and reclaims the disk they occupy.
#
# Usage:
#   scripts/snapshot_cache.sh --stats   # entry count + bytes, per schema
#   scripts/snapshot_cache.sh --prune   # delete stale-schema + temp files
#   scripts/snapshot_cache.sh --clear   # delete the whole cache directory
#
# --prune keeps entries of the CURRENT schema version (read from
# src/sim/serialize.hpp) and removes everything else: blobs from older
# schema versions (unreadable by the current decoder) and orphaned .tmp.*
# files from interrupted writers.
set -euo pipefail
cd "$(dirname "$0")/.."

CACHE_DIR=${SBQ_SNAPSHOT_CACHE:-.sbq-cache}

current_schema() {
  sed -n 's/.*kSnapshotSchemaVersion = \([0-9][0-9]*\);.*/\1/p' \
      src/sim/serialize.hpp | head -n 1
}

case "${1:-}" in
  --stats)
    if [ ! -d "$CACHE_DIR" ]; then
      echo "snapshot_cache: $CACHE_DIR does not exist (cache is empty)"
      exit 0
    fi
    echo "snapshot_cache: $CACHE_DIR"
    total_n=0
    total_b=0
    # Group by schema prefix (v1-, v2-, ...).
    for prefix in $(find "$CACHE_DIR" -maxdepth 1 -name 'v*-*.snap' \
        -exec basename {} \; 2>/dev/null | sed 's/-.*//' | sort -u); do
      n=0
      b=0
      for f in "$CACHE_DIR/$prefix"-*.snap; do
        [ -f "$f" ] || continue
        n=$((n + 1))
        b=$((b + $(wc -c < "$f")))
      done
      echo "  schema $prefix: $n entries, $b bytes"
      total_n=$((total_n + n))
      total_b=$((total_b + b))
    done
    tmp_n=$(find "$CACHE_DIR" -maxdepth 1 -name '.tmp.*' 2>/dev/null | wc -l)
    echo "  total: $total_n entries, $total_b bytes, $tmp_n orphaned temp file(s)"
    ;;
  --prune)
    if [ ! -d "$CACHE_DIR" ]; then
      echo "snapshot_cache: $CACHE_DIR does not exist (nothing to prune)"
      exit 0
    fi
    schema=$(current_schema)
    if [ -z "$schema" ]; then
      echo "snapshot_cache: cannot read kSnapshotSchemaVersion from src/sim/serialize.hpp" >&2
      exit 1
    fi
    removed=0
    for f in "$CACHE_DIR"/v*-*.snap; do
      [ -f "$f" ] || continue
      case "$(basename "$f")" in
        "v$schema"-*) ;;  # current schema: keep
        *)
          rm -f "$f"
          removed=$((removed + 1))
          ;;
      esac
    done
    for f in "$CACHE_DIR"/.tmp.*; do
      [ -f "$f" ] || continue
      rm -f "$f"
      removed=$((removed + 1))
    done
    echo "snapshot_cache: pruned $removed file(s) (kept schema v$schema entries)"
    ;;
  --clear)
    rm -rf "$CACHE_DIR"
    echo "snapshot_cache: removed $CACHE_DIR"
    ;;
  *)
    echo "usage: scripts/snapshot_cache.sh --stats | --prune | --clear" >&2
    exit 2
    ;;
esac
