#!/usr/bin/env bash
# Fails (exit 1) if any markdown file in the repo contains a relative link
# to a file that does not exist. Absolute URLs (http/https/mailto) and
# pure in-page anchors (#...) are ignored; a link's own #fragment is
# stripped before the existence check.
#
# Usage: scripts/check_docs_links.sh [repo_root]
# Registered as the `docs_links` ctest (label: docs).
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 1

fail=0
checked=0

# All tracked/normal markdown files, excluding build trees.
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Extract inline markdown link targets: [text](target)
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;  # external
      \#*) continue ;;                          # in-page anchor
    esac
    # Strip a trailing #fragment and surrounding whitespace.
    path="${target%%#*}"
    path="$(printf '%s' "$path" | sed 's/^ *//; s/ *$//')"
    [ -z "$path" ] && continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ] && [ ! -e "$root/$path" ]; then
      echo "DEAD LINK: $md -> $target" >&2
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null \
             | sed 's/^\[[^]]*\](//; s/)$//')
done < <(find . -name '*.md' -not -path './build*' -not -path './.git/*')

if [ "$fail" -ne 0 ]; then
  echo "check_docs_links: dead relative links found" >&2
  exit 1
fi
echo "check_docs_links: $checked relative links ok"
