#!/usr/bin/env bash
# Capture the simulator performance baseline into BENCH_sim.json.
#
# Runs the two allocation-gated microbenches (engine_microbench,
# sim_microbench) at their gate sizes and wall-clock-times the three
# queue-sweep drivers the paper's headline figures use (fig5/fig6/fig7,
# canonical args: --threads 2,4,8,16,32 --ops 100 --repeats 2 --jobs 1,
# best of $RUNS runs) plus the open-loop service_latency driver
# (docs/service.md). Results land in BENCH_sim.json at the repo root.
#
# Usage:
#   scripts/bench_baseline.sh [before.json]
#
#   before.json — optional timings of an earlier build in the same format
#                 (a prior BENCH_sim.json, or a bare {driver: {best_s}}
#                 map); embedded under "before" with per-driver speedups.
#
# Env: BUILD_DIR (default: build), RUNS (default: 3).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
RUNS=${RUNS:-3}
BEFORE=${1:-}

for bin in fig5_enqueue fig6_dequeue fig7_mixed ablation_fault_sweep \
           service_latency engine_microbench sim_microbench; do
  if [ ! -x "$BUILD_DIR/bench/$bin" ]; then
    echo "bench_baseline: $BUILD_DIR/bench/$bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

python3 - "$BUILD_DIR" "$RUNS" "$BEFORE" <<'EOF'
import json, os, platform, re, subprocess, sys, tempfile, time

build, runs, before_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]

def sim_config():
    # The machine-model configuration the timed drivers run under: the
    # MachineConfig defaults, read from the source of truth so the record
    # can't drift from the code.
    src = open("src/sim/types.hpp").read()
    model = re.search(r"interconnect_model\s*=\s*InterconnectModel::k(\w+)",
                      src).group(1).lower()
    canonical = re.search(r"canonical_inv_order\s*=\s*(true|false)",
                          src).group(1) == "true"
    occupancy = int(re.search(r"link_occupancy\s*=\s*(\d+)", src).group(1))
    # Robustness defaults (docs/robustness.md): the runtime invariant
    # checker and the fault-injection master switch. Both must default to
    # off for this baseline to be comparable across builds.
    invariants = re.search(r"check_invariants\s*=\s*(true|false)",
                           src).group(1) == "true"
    faults = re.search(r"bool enabled\s*=\s*(true|false)",
                       src).group(1) == "true"
    machine_threads = int(re.search(r"machine_threads\s*=\s*(\d+)",
                                    src).group(1))
    # Warm-start cache defaults (docs/performance.md "Warm-start cache"):
    # the drivers' default cache mode and the blob schema version, read
    # from their sources of truth. The timed legs below pass
    # --snapshot-cache=off regardless, so the figure timings stay
    # comparable across builds and cache states.
    cache_default = re.search(
        r"mode = CacheMode::k(\w+)",
        open("bench/sim_queue_bench_util.hpp").read()).group(1)
    cache_schema = int(re.search(
        r"kSnapshotSchemaVersion = (\d+)",
        open("src/sim/serialize.hpp").read()).group(1))
    # Contention-policy default (docs/architecture.md "Contention policy
    # layer"): every timed leg except the dedicated policy sweep runs the
    # default policy, so the baseline records which one that is. Read from
    # ContentionPolicyParams' initializer — kFixed keeps the goldens
    # byte-identical, and this record catches an accidental default flip.
    cas_policy = re.search(
        r"ContentionPolicyKind kind = ContentionPolicyKind::k(\w+)",
        open("src/common/contention.hpp").read()).group(1)
    cas_policy = re.sub(r"(?<!^)([A-Z])", r"-\1", cas_policy).lower()
    return {"interconnect_model": model,
            "cas_policy_default": cas_policy,
            "link_occupancy": occupancy,
            "inv_order": "canonical" if canonical else "legacy",
            "check_invariants": invariants,
            "fault_injection_default": faults,
            "machine_threads": machine_threads,
            "snapshot_cache_default":
                {"ReadWrite": "rw", "ReadOnly": "ro", "Off": "off"}
                [cache_default],
            "snapshot_schema_version": cache_schema,
            # Load model of the timed service leg (docs/service.md), so the
            # baseline records what traffic its service numbers were taken
            # under.
            "service_arrival": SERVICE_ARRIVAL,
            "service_rates_per_kcycle": SERVICE_RATES}

def run_checked(cmd, env=None):
    # A driver that dies mid-baseline must fail the whole capture loudly,
    # naming the culprit — a partial BENCH_sim.json is worse than none.
    r = subprocess.run(cmd, stdout=subprocess.DEVNULL, env=env)
    if r.returncode != 0:
        sys.exit("bench_baseline: driver %s exited with status %d (args: %s)"
                 % (os.path.basename(cmd[0]), r.returncode,
                    " ".join(cmd[1:])))
# --snapshot-cache=off on every timed leg: the drivers default to rw, and a
# best-of-N timing that silently warmed from (or filled) a cache on disk
# would not be comparable across builds. The cached-vs-cold pair below
# measures the cache deliberately, against its own throwaway directory.
FIG_ARGS = ["--threads", "2,4,8,16,32", "--ops", "100", "--repeats", "2",
            "--jobs", "1", "--snapshot-cache=off"]
# ablation_fault_sweep rides along: its fault-injected cells stress the
# TxCAS abort/retry machinery far harder than the clean figures, so its
# wall-clock is the early-warning row for injection-path regressions.
FIGS = ["fig5_enqueue", "fig6_dequeue", "fig7_mixed", "ablation_fault_sweep"]

def run_timed(drv):
    exe = os.path.join(build, "bench", drv)
    samples = []
    for _ in range(runs):
        t0 = time.monotonic()
        run_checked([exe, *FIG_ARGS])
        samples.append(round(time.monotonic() - t0, 3))
    return {"args": " ".join(FIG_ARGS), "runs_s": samples,
            "best_s": min(samples)}

# Open-loop service leg (docs/service.md): poisson arrivals across an
# underloaded / near-capacity / overloaded rate triple, default 4p/2c
# broker with a depth-64 drop gate. Timed like the figure drivers.
SERVICE_ARRIVAL = "poisson"
SERVICE_RATES = [2, 8, 32]
SERVICE_ARGS = ["--rates", ",".join(str(r) for r in SERVICE_RATES),
                "--arrival", SERVICE_ARRIVAL, "--ops", "200",
                "--repeats", "2", "--jobs", "1", "--snapshot-cache=off"]

def run_service_leg():
    exe = os.path.join(build, "bench", "service_latency")
    samples = []
    for _ in range(runs):
        t0 = time.monotonic()
        run_checked([exe, *SERVICE_ARGS])
        samples.append(round(time.monotonic() - t0, 3))
    return {"args": " ".join(SERVICE_ARGS), "runs_s": samples,
            "best_s": min(samples)}

# Sharded-machine headline: one 512-core fig5-style cell (2 sockets, 4
# directory slices), serial vs --machine-threads 4. The serial leg passes
# the same --dir-slices/--sockets flags so both legs simulate the *same*
# machine — the wall-clock ratio isolates the parallel engine.
SHARD_ARGS = ["--threads", "512", "--ops", "20", "--sockets", "2",
              "--dir-slices", "4", "--repeats", "1", "--jobs", "1",
              "--snapshot-cache=off"]

def run_shard_sweep():
    exe = os.path.join(build, "bench", "fig5_enqueue")
    legs = {}
    for name, extra in (("serial", []), ("mt4", ["--machine-threads", "4"])):
        samples = []
        for _ in range(runs):
            t0 = time.monotonic()
            run_checked([exe, *SHARD_ARGS, *extra])
            samples.append(round(time.monotonic() - t0, 3))
        legs[name] = {"args": " ".join(SHARD_ARGS + extra),
                      "runs_s": samples, "best_s": min(samples)}
    legs["speedup_mt4_vs_serial"] = round(
        legs["serial"]["best_s"] / legs["mt4"]["best_s"], 2)
    return legs

# Contention-policy leg: the delay-sweep ablation's opt-in policy
# dimension, adaptive-backoff vs the fixed default at the paper's optimal
# intra-txn delay (675 cycles). Timed like the figure drivers; the JSON
# artifact additionally supplies the throughput comparison at the
# highest-contention cell — the adaptive policy earning its keep (or not)
# is part of the baseline record.
POLICY_ARGS = ["--threads", "2,8,16,32", "--ops", "100", "--jobs", "1",
               "--policies", "fixed,adaptive-backoff", "--snapshot-cache=off"]

def run_policy_sweep():
    exe = os.path.join(build, "bench", "ablation_delay_sweep")
    samples = []
    cells = []
    for _ in range(runs):
        with tempfile.NamedTemporaryFile(suffix=".json") as f:
            t0 = time.monotonic()
            run_checked([exe, *POLICY_ARGS, "--json", f.name])
            samples.append(round(time.monotonic() - t0, 3))
            cells = json.load(open(f.name))["cells"]
    pol = [c for c in cells if "policy" in c]
    top = max(c["threads"] for c in pol)
    tput = {c["policy"]: c["throughput_mops"]
            for c in pol if c["threads"] == top}
    leg = {"args": " ".join(POLICY_ARGS), "runs_s": samples,
           "best_s": min(samples), "top_cell_threads": top,
           "top_cell_throughput_mops":
               {k: round(v, 3) for k, v in tput.items()}}
    if tput.get("fixed"):
        leg["adaptive_backoff_vs_fixed"] = round(
            tput.get("adaptive-backoff", 0.0) / tput["fixed"], 2)
    return leg

def run_cached_pair():
    # Warm-start-cache payoff (docs/performance.md "Warm-start cache"):
    # fig5 and fig6 timed cold (cache off), then twice against one fresh
    # cache directory — the fill pass writes every warm group's snapshot,
    # the warm pass loads them all back instead of replaying prefill. The
    # warm pass's --json artifact supplies the hit/miss/store counters, so
    # the speedup row is self-certifying: zero hits would mean the warm
    # pass never actually used the cache.
    legs = {}
    with tempfile.TemporaryDirectory() as cache_dir:
        env = dict(os.environ, SBQ_SNAPSHOT_CACHE=cache_dir)
        base = [a for a in FIG_ARGS if a != "--snapshot-cache=off"]
        for drv in ("fig5_enqueue", "fig6_dequeue"):
            exe = os.path.join(build, "bench", drv)
            cold = []
            for _ in range(runs):
                t0 = time.monotonic()
                run_checked([exe, *base, "--snapshot-cache=off"])
                cold.append(round(time.monotonic() - t0, 3))
            # Fill pass (untimed): populate the cache for this driver.
            run_checked([exe, *base, "--snapshot-cache=rw"], env)
            warm = []
            counters = {}
            for _ in range(runs):
                with tempfile.NamedTemporaryFile(suffix=".json") as f:
                    t0 = time.monotonic()
                    run_checked([exe, *base, "--snapshot-cache=rw",
                                 "--json", f.name], env)
                    warm.append(round(time.monotonic() - t0, 3))
                    counters = json.load(open(f.name)).get(
                        "snapshot_cache", {})
            leg = {"args": " ".join(base),
                   "cold_runs_s": cold, "cold_best_s": min(cold),
                   "warm_runs_s": warm, "warm_best_s": min(warm),
                   "counters": counters}
            if min(warm) > 0:
                leg["speedup_warm_vs_cold"] = round(min(cold) / min(warm), 2)
            legs[drv] = leg
    return legs

def run_micro(drv, args):
    exe = os.path.join(build, "bench", drv)
    with tempfile.NamedTemporaryFile(suffix=".json") as f:
        # A nonzero exit IS the gate: a steady phase allocated.
        run_checked([exe, *args, "--json", f.name])
        cells = json.load(open(f.name))["cells"]
    steady = [c for c in cells if str(c.get("phase", "")).startswith("steady")]
    out = {"args": " ".join(args),
           "steady_mevents_per_s":
               round(max(c["events_per_sec"] for c in steady) / 1e6, 2)}
    alloc_keys = [k for k in ("allocs", "slab_refills", "boxed_allocs")
                  if k in steady[0]]
    out["steady_allocs"] = sum(int(c[k]) for c in steady for k in alloc_keys)
    return out

report = {
    "schema": "sbq.bench-baseline/1",
    "machine": {"platform": platform.platform(),
                "cpus": os.cpu_count()},
    "sim_config": sim_config(),
    "figures": {d: run_timed(d) for d in FIGS},
    "snapshot_cache": run_cached_pair(),
    "policy_sweep": run_policy_sweep(),
    "service_latency": run_service_leg(),
    "sharded_fig5_512c": run_shard_sweep(),
    "microbench": {
        "engine_microbench": run_micro(
            "engine_microbench", ["--ops", "200000", "--repeats", "2"]),
        "sim_microbench": run_micro(
            "sim_microbench",
            ["--threads", "4", "--ops", "250", "--repeats", "2"]),
    },
}

if before_path:
    before = json.load(open(before_path))
    before_figs = before.get("figures", before)  # bare map accepted
    report["before"] = before_figs
    for d in FIGS:
        if d in before_figs and "best_s" in before_figs[d]:
            report["figures"][d]["speedup_vs_before"] = round(
                before_figs[d]["best_s"] / report["figures"][d]["best_s"], 2)

with open("BENCH_sim.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report["figures"], indent=2))
EOF
echo "bench_baseline: wrote BENCH_sim.json"
