// Aspect-oriented linearizability testing of the simulated queues.
//
// §5.3.2 proves SBQ linearizable by showing the four Henzinger–Sezgin–
// Vafeiadis violations cannot occur. Here we *test* the same condition:
// run each queue under contention — including transient-empty phases, the
// hardest part (VWit) — record every operation's exact simulated
// invocation/response interval, and run the violation checker over the
// merged history. Simulated timestamps are exact, so the precedence
// relation is precise.
#include <gtest/gtest.h>

#include <memory>

#include "verify/history_checker.hpp"
#include "simqueue/sim_baskets_queue.hpp"
#include "simqueue/sim_cc_queue.hpp"
#include "simqueue/sim_faa_queue.hpp"
#include "simqueue/sim_ms_queue.hpp"
#include "simqueue/sim_sbq.hpp"

namespace sbq::simq {
namespace {

using histcheck::History;

// Producers enqueue with pauses (creating empty windows); consumers spin
// with short backoffs so plenty of NULL dequeues are recorded.
template <typename QueueT>
History run_recorded(Machine& m, QueueT& q, int producers, int consumers,
                     Value per_producer, bool single_id_space) {
  auto hist = std::make_shared<History>();
  auto remaining =
      std::make_shared<Value>(Value(producers) * per_producer);
  for (int p = 0; p < producers; ++p) {
    m.spawn([](Machine& m, QueueT& q, int p, Value n,
               std::shared_ptr<History> hist) -> Task<void> {
      Core& c = m.core(p);
      co_await c.think(Time(1 + p * 13));
      for (Value i = 0; i < n; ++i) {
        const Value elem = kFirstElement + (Value(p) << 32) + i;
        const Time inv = m.engine().now();
        co_await q.enqueue(c, elem, p);
        hist->record_enq(inv, m.engine().now(), elem);
        // Bursty production: longer gaps sometimes, so the queue drains.
        co_await c.think(i % 7 == 0 ? 900 : 30);
      }
    }(m, q, p, per_producer, hist));
  }
  for (int ci = 0; ci < consumers; ++ci) {
    const int core = producers + ci;
    const int id = single_id_space ? producers + ci : ci;
    m.spawn([](Machine& m, QueueT& q, int core, int id,
               std::shared_ptr<Value> remaining,
               std::shared_ptr<History> hist) -> Task<void> {
      Core& c = m.core(core);
      co_await c.think(Time(2 + id * 11));
      while (*remaining > 0) {
        const Time inv = m.engine().now();
        const Value e = co_await q.dequeue(c, id);
        hist->record_deq(inv, m.engine().now(), e);
        if (e != 0) {
          --*remaining;
        } else {
          co_await c.think(120);
        }
      }
    }(m, q, core, id, remaining, hist));
  }
  m.run();
  return *hist;
}

void expect_no_violations(const History& h) {
  const auto violations = h.check();
  for (const auto& v : violations) {
    ADD_FAILURE() << v.kind << ": " << v.detail;
  }
  EXPECT_GT(h.size(), 0u);
}

sim::MachineConfig machine_for(int cores) {
  sim::MachineConfig cfg;
  cfg.cores = cores;
  return cfg;
}

TEST(SimLinearizability, SbqHtm) {
  Machine m(machine_for(6));
  SimSbq q(m, {.enqueuers = 3, .dequeuers = 3});
  expect_no_violations(run_recorded(m, q, 3, 3, 40, false));
}

TEST(SimLinearizability, SbqCas) {
  Machine m(machine_for(6));
  SimSbq q(m, {.enqueuers = 3, .dequeuers = 3, .variant = SbqVariant::kCas});
  expect_no_violations(run_recorded(m, q, 3, 3, 40, false));
}

TEST(SimLinearizability, SbqStriped) {
  Machine m(machine_for(8));
  SimSbq q(m, {.enqueuers = 4, .dequeuers = 4, .basket_capacity = 44,
               .extraction_stripes = 4});
  expect_no_violations(run_recorded(m, q, 4, 4, 40, false));
}

TEST(SimLinearizability, FaaQueue) {
  Machine m(machine_for(6));
  SimFaaQueue q(m, {});
  expect_no_violations(run_recorded(m, q, 3, 3, 40, true));
}

TEST(SimLinearizability, MsQueue) {
  Machine m(machine_for(6));
  SimMsQueue q(m, {});
  expect_no_violations(run_recorded(m, q, 3, 3, 40, true));
}

TEST(SimLinearizability, BasketsQueue) {
  Machine m(machine_for(6));
  SimBasketsQueue q(m, {});
  q.set_dequeuers(6);
  expect_no_violations(run_recorded(m, q, 3, 3, 40, true));
}

TEST(SimLinearizability, CcQueue) {
  Machine m(machine_for(6));
  SimCcQueue q(m, {.threads = 6});
  expect_no_violations(run_recorded(m, q, 3, 3, 40, true));
}

}  // namespace
}  // namespace sbq::simq
