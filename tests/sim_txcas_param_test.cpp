// Parameterized property sweeps for the simulated TxCAS: CAS semantics and
// accounting invariants must hold across delay configurations, contention
// levels, and socket placements.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/rng.hpp"
#include "sim/machine.hpp"

namespace sbq::sim {
namespace {

// (cores, sockets, intra_txn_delay, post_abort_delay)
using Param = std::tuple<int, int, Time, Time>;

class SimTxCasSweep : public ::testing::TestWithParam<Param> {};

TEST_P(SimTxCasSweep, CounterEndsExact) {
  const auto [cores, sockets, delay, post] = GetParam();
  MachineConfig mcfg;
  mcfg.cores = cores;
  mcfg.sockets = sockets;
  Machine m(mcfg);
  const Addr x = m.alloc();
  TxCasConfig tx;
  tx.intra_txn_delay = delay;
  tx.post_abort_delay = post;
  constexpr int kIncrementsPerCore = 25;

  for (int c = 0; c < cores; ++c) {
    m.spawn([](Machine& m, int c, Addr x, TxCasConfig tx) -> Task<void> {
      Xoshiro256 rng(911 + static_cast<std::uint64_t>(c));
      co_await m.core(c).think(1 + rng.next_below(48));
      for (int i = 0; i < kIncrementsPerCore; ++i) {
        Value v = co_await m.core(c).load(x);
        while (!co_await m.core(c).txcas(x, v, v + 1, tx)) {
          co_await m.core(c).think(1 + rng.next_below(16));
          v = co_await m.core(c).load(x);
        }
      }
    }(m, c, x, tx));
  }
  m.run();

  Value final = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    *out = co_await m.core(0).load(x);
  }(m, x, &final));
  m.run();
  EXPECT_EQ(final, static_cast<Value>(cores * kIncrementsPerCore));

  // Accounting invariants: successes + failures == calls; attempts >= calls
  // (each call makes at least one attempt unless it went straight to the
  // wait-free fallback, which still counts as a call resolution).
  std::uint64_t calls = 0, success = 0, fail = 0, attempts = 0, fallbacks = 0;
  for (int c = 0; c < cores; ++c) {
    const CoreStats& s = m.core(c).stats();
    calls += s.txcas_calls;
    success += s.txcas_success;
    fail += s.txcas_fail;
    attempts += s.txcas_attempts;
    fallbacks += s.fallbacks;
  }
  EXPECT_EQ(success + fail, calls);
  EXPECT_EQ(success, static_cast<std::uint64_t>(cores * kIncrementsPerCore));
  EXPECT_GE(attempts + fallbacks, calls);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SimTxCasSweep,
    ::testing::Values(Param{1, 1, 675, 130}, Param{2, 1, 675, 130},
                      Param{4, 1, 40, 20}, Param{4, 1, 0, 0},
                      Param{8, 1, 200, 60}, Param{8, 2, 675, 130},
                      Param{6, 2, 40, 400}, Param{12, 1, 675, 130},
                      Param{5, 1, 1500, 130}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "c" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param)) + "_p" +
             std::to_string(std::get<3>(info.param));
    });

// Mixed TxCAS / plain-RMW traffic on the same word: the two must compose
// linearizably (TxCAS's store-buffered commit is atomic w.r.t. RMWs).
class SimTxCasMixedOps : public ::testing::TestWithParam<int> {};

TEST_P(SimTxCasMixedOps, TxCasAndFaaCompose) {
  const int cores = GetParam();
  MachineConfig mcfg;
  mcfg.cores = cores;
  Machine m(mcfg);
  const Addr x = m.alloc();
  constexpr int kOps = 30;
  // Even cores FAA(+1); odd cores TxCAS-increment. Total must be exact.
  for (int c = 0; c < cores; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      Xoshiro256 rng(5 + static_cast<std::uint64_t>(c));
      TxCasConfig tx;
      tx.intra_txn_delay = 60;
      tx.post_abort_delay = 60;
      co_await m.core(c).think(1 + rng.next_below(32));
      for (int i = 0; i < kOps; ++i) {
        if (c % 2 == 0) {
          co_await m.core(c).faa(x, 1);
        } else {
          Value v = co_await m.core(c).load(x);
          while (!co_await m.core(c).txcas(x, v, v + 1, tx)) {
            v = co_await m.core(c).load(x);
          }
        }
        co_await m.core(c).think(1 + rng.next_below(8));
      }
    }(m, c, x));
  }
  m.run();
  Value final = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    *out = co_await m.core(0).load(x);
  }(m, x, &final));
  m.run();
  EXPECT_EQ(final, static_cast<Value>(cores * kOps));
}

INSTANTIATE_TEST_SUITE_P(Cores, SimTxCasMixedOps,
                         ::testing::Values(2, 3, 4, 6, 8, 10));

}  // namespace
}  // namespace sbq::sim
