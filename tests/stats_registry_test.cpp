// sim::Stats registry: scripted coherence rounds with exact expected
// counter values (the Figure 2 setup from bench/fig2_coherence_dynamics),
// abort-cause attribution, per-core and per-line breakdowns, and the
// queue-level basket counters fed by the simulated SBQ.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "benchsupport/sim_workload.hpp"
#include "sim/machine.hpp"
#include "sim/stats.hpp"
#include "simqueue/sim_sbq.hpp"

namespace sbq::sim {
namespace {

// All C cores load `x` into Shared state; returns after quiescence.
void warm_up_shared(Machine& m, Addr x, int cores) {
  for (int c = 0; c < cores; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      co_await m.core(c).load(x);
    }(m, c, x));
  }
  m.run();
}

// Figure 2a: C cores in Shared state all CAS the same old value. The RMWs
// serialize through M-state hand-offs: the first writer invalidates the
// other C-1 sharers, every later writer takes the line from the current
// owner via one Fwd-GetM.
TEST(StatsRegistry, StandardCasRoundExactCounts) {
  constexpr int kCores = 4;
  MachineConfig mcfg;
  mcfg.cores = kCores;
  mcfg.track_lines = true;
  Machine m(mcfg);
  ASSERT_NE(m.stats(), nullptr);
  const Addr x = m.alloc();

  warm_up_shared(m, x, kCores);
  EXPECT_EQ(m.stats()->protocol().gets, kCores);
  EXPECT_EQ(m.stats()->protocol().getm, 0u);

  for (int c = 0; c < kCores; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      co_await m.core(c).think(static_cast<Time>(1 + c * 2));
      co_await m.core(c).cas(x, 0, static_cast<Value>(c) + 1);
    }(m, c, x));
  }
  m.run();

  const ProtocolCounters& p = m.stats()->protocol();
  EXPECT_EQ(p.gets, kCores);          // warm-up only; CAS never re-reads
  EXPECT_EQ(p.getm, kCores);          // every core upgrades to M once
  EXPECT_EQ(p.inv, kCores - 1);       // first writer invalidates the rest
  EXPECT_EQ(p.inv_ack, kCores - 1);   // ...and collects their acks
  EXPECT_EQ(p.fwd_getm, kCores - 1);  // later writers: owner hand-offs
  EXPECT_EQ(p.fwd_gets, 0u);

  // Per-line view matches the machine-wide one (single line in play).
  const ProtocolCounters& lp = m.stats()->line(x);
  EXPECT_EQ(lp.getm, kCores);
  EXPECT_EQ(lp.inv, kCores - 1);
  // Untouched lines read as zero.
  EXPECT_EQ(m.stats()->line(x + 1).getm, 0u);

  // The snapshot flattens the same counters.
  const MetricsSnapshot snap = m.metrics();
  EXPECT_EQ(snap.protocol.getm, kCores);
  EXPECT_EQ(snap.htm.calls, 0u);
  EXPECT_GT(snap.events, 0u);
  EXPECT_GT(snap.messages, 0u);
}

// Figure 2b: the same round with TxCAS. One winner commits; every loser is
// sitting in its intra-transaction delay when the winner's invalidations
// land, so all C-1 abort with cause kConflict on their first attempt and
// the post-abort value check fails without a retry.
TEST(StatsRegistry, HtmCasRoundExactAbortCounts) {
  constexpr int kCores = 4;
  MachineConfig mcfg;
  mcfg.cores = kCores;
  Machine m(mcfg);
  const Addr x = m.alloc();
  warm_up_shared(m, x, kCores);

  TxCasConfig tx;
  tx.intra_txn_delay = 300;
  for (int c = 0; c < kCores; ++c) {
    m.spawn([](Machine& m, int c, Addr x, TxCasConfig tx) -> Task<void> {
      co_await m.core(c).think(static_cast<Time>(1 + c * 2));
      co_await m.core(c).txcas(x, 0, static_cast<Value>(c) + 1, tx);
    }(m, c, x, tx));
  }
  m.run();

  const HtmCounters& h = m.stats()->htm();
  EXPECT_EQ(h.calls, kCores);
  EXPECT_EQ(h.commits, 1u);  // exactly one winner per round
  EXPECT_EQ(h.fallbacks, 0u);
  EXPECT_EQ(h.uarch_fix_stalls, 0u);
  // Every loser's first attempt dies on the winner's write — a data
  // conflict, whichever phase it was caught in. A loser whose retry read
  // then sees the changed value self-aborts (kExplicit) and gives up.
  EXPECT_EQ(h.aborts[static_cast<int>(AbortCause::kConflict)], kCores - 1);
  EXPECT_EQ(h.aborts[static_cast<int>(AbortCause::kCapacity)], 0u);
  EXPECT_EQ(h.aborts[static_cast<int>(AbortCause::kTrippedWriter)], 0u);
  EXPECT_LE(h.aborts[static_cast<int>(AbortCause::kExplicit)], kCores - 1);
  // Bookkeeping identities: every attempt either commits or aborts once,
  // and the retry histogram partitions the calls.
  EXPECT_EQ(h.aborts_total() + h.commits, h.attempts);
  std::uint64_t hist_calls = 0, hist_attempts = 0;
  for (int b = 0; b < HtmCounters::kRetryBuckets; ++b) {
    hist_calls += h.retry_histogram[b];
    hist_attempts +=
        h.retry_histogram[b] * static_cast<std::uint64_t>(b + 1);
  }
  EXPECT_EQ(hist_calls, h.calls);
  EXPECT_EQ(hist_attempts, h.attempts);

  // The losers were all in Shared state, so the winner's GetM invalidated
  // exactly C-1 sharers, each of which acked.
  const ProtocolCounters& p = m.stats()->protocol();
  EXPECT_GE(p.getm, 1u);
  EXPECT_EQ(p.inv, kCores - 1);
  EXPECT_EQ(p.inv_ack, kCores - 1);

  // Per-core attribution: exactly one core committed cleanly; every loser
  // carries exactly one conflict abort, and per-core counters sum to the
  // machine-wide view.
  int winners = 0;
  std::uint64_t abort_sum = 0;
  for (int c = 0; c < kCores; ++c) {
    const HtmCounters& hc = m.stats()->core_htm(c);
    abort_sum += hc.aborts_total();
    if (hc.commits == 1) {
      ++winners;
      EXPECT_EQ(hc.aborts_total(), 0u) << "core " << c;
    } else {
      EXPECT_EQ(hc.aborts[static_cast<int>(AbortCause::kConflict)], 1u)
          << "core " << c;
    }
  }
  EXPECT_EQ(winners, 1);
  EXPECT_EQ(abort_sum, h.aborts_total());
}

// Algorithm 1's in-transaction value check: a TxCAS whose expected value is
// already stale self-aborts with _xabort(1) — cause kExplicit.
TEST(StatsRegistry, ExplicitAbortAttribution) {
  MachineConfig mcfg;
  mcfg.cores = 1;
  Machine m(mcfg);
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(0).load(x);
    co_await m.core(0).txcas(x, /*expected=*/99, /*desired=*/5, {});
  }(m, x));
  m.run();

  const HtmCounters& h = m.stats()->htm();
  EXPECT_EQ(h.calls, 1u);
  EXPECT_EQ(h.attempts, 1u);
  EXPECT_EQ(h.commits, 0u);
  EXPECT_EQ(h.aborts[static_cast<int>(AbortCause::kExplicit)], 1u);
  EXPECT_EQ(h.aborts_total(), 1u);
  EXPECT_EQ(h.retry_histogram[0], 1u);
}

// §3.4: a remote reader's GetS landing in the writer's commit window trips
// the writer (cause kTrippedWriter); with the §3.4.1 fix the forward is
// stalled instead and no abort happens. Mirrors bench/fig3_tripped_writer.
TEST(StatsRegistry, TrippedWriterVsUarchFix) {
  for (const bool fix : {false, true}) {
    MachineConfig mcfg;
    mcfg.cores = 10;
    mcfg.sockets = 2;
    mcfg.uarch_fix = fix;
    Machine m(mcfg);
    const Addr x = m.alloc();
    for (int c = 5; c < 10; ++c) {
      m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
        co_await m.core(c).load(x);
      }(m, c, x));
    }
    m.run();

    TxCasConfig tx;
    tx.intra_txn_delay = 10;
    tx.post_abort_delay = 90;
    m.spawn([](Machine& m, Addr x, TxCasConfig tx) -> Task<void> {
      co_await m.core(0).load(x);
      co_await m.core(0).txcas(x, 0, 1, tx);
    }(m, x, tx));
    m.spawn([](Machine& m, Addr x) -> Task<void> {
      // Offset 180 lands the Fwd-GetS inside the writer's cross-socket
      // commit window (bench/fig3_tripped_writer's sweep trips at 140-260).
      co_await m.core(1).think(180);
      co_await m.core(1).load(x);
    }(m, x));
    m.run();

    const HtmCounters& h = m.stats()->htm();
    if (fix) {
      EXPECT_EQ(h.aborts[static_cast<int>(AbortCause::kTrippedWriter)], 0u);
      EXPECT_GE(h.uarch_fix_stalls, 1u);
    } else {
      EXPECT_GE(h.aborts[static_cast<int>(AbortCause::kTrippedWriter)], 1u);
      EXPECT_EQ(h.uarch_fix_stalls, 0u);
    }
  }
}

// collect_stats=false: no registry object, snapshot counters all zero, the
// simulation itself unaffected.
TEST(StatsRegistry, DisabledCollection) {
  MachineConfig mcfg;
  mcfg.cores = 2;
  mcfg.collect_stats = false;
  Machine m(mcfg);
  const Addr x = m.alloc();
  warm_up_shared(m, x, 2);
  EXPECT_EQ(m.stats(), nullptr);
  const MetricsSnapshot snap = m.metrics();
  EXPECT_EQ(snap.protocol.gets, 0u);
  EXPECT_EQ(snap.htm.calls, 0u);
  EXPECT_GT(snap.events, 0u);  // engine/interconnect tallies still work
}

// Basket counters fed by the simulated SBQ on a drain workload: every
// successful dequeue is one extraction, every element entered a basket via
// a won or joined append, and draining seals baskets with a consistent
// occupancy summary.
TEST(StatsRegistry, BasketCountersFromSimSbq) {
  constexpr int kThreads = 4;
  constexpr simq::Value kOps = 10;
  MachineConfig mcfg;
  mcfg.cores = kThreads;
  Machine m(mcfg);
  simq::SimSbq::Config qc;
  qc.enqueuers = kThreads;
  qc.dequeuers = kThreads;
  qc.basket_capacity = 44;
  simq::SimSbq q(m, qc);
  const simq::SimRunResult r =
      simq::run_consumer_only(m, q, /*prefill_producers=*/kThreads,
                              /*consumers=*/kThreads, kOps, /*seed=*/42);
  const std::uint64_t total_enq =
      static_cast<std::uint64_t>(kThreads) * kOps;  // exact pre-fill count
  ASSERT_EQ(r.deq_ops, total_enq);  // the drain consumed everything

  const BasketCounters& b = m.stats()->basket();
  EXPECT_GE(b.appends_won, 1u);
  // Every element entered via a won append or a join; a failed join retries
  // the append, so the attempt total can exceed the element count.
  EXPECT_GE(b.appends_won + b.appends_lost, total_enq);
  // One successful dequeue == one swap that yielded a real element.
  EXPECT_EQ(b.extracted, r.deq_ops);
  EXPECT_GE(b.closes, 1u);
  EXPECT_LE(b.occupancy_min, b.occupancy_max);
  // Close occupancies count distinct elements, so they can't exceed the
  // number enqueued.
  EXPECT_LE(b.occupancy_sum, total_enq);
  EXPECT_GE(b.occupancy_max, 1u);
  // take_or_allocate runs exactly once per enqueue call.
  EXPECT_EQ(b.node_reuses + b.fresh_allocs, total_enq);
}

}  // namespace
}  // namespace sbq::sim
