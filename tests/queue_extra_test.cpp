// Additional integration/failure-mode tests for the native queues:
// reclamation under heavy churn, empty/near-empty edge behaviour, id-space
// stress at maximum configured thread counts, and basket behaviour through
// the queue under asymmetric mixes.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "basket/sbq_basket.hpp"
#include "common/barrier.hpp"
#include "htm/cas_policy.hpp"
#include "queues/baskets_queue.hpp"
#include "queues/faa_queue.hpp"
#include "queues/ms_queue.hpp"
#include "queues/sbq.hpp"
#include "queue_test_util.hpp"

namespace sbq {
namespace {

using testutil::Element;
using SbqHtm = Queue<Element, SbqBasket<Element>, HtmCas>;

TEST(QueueChurn, SbqReclaimsUnderMixedChurn) {
  // Heavy enqueue/dequeue churn where the queue length oscillates: the
  // retired-list scheme must keep the node count bounded (no unbounded
  // growth) while dequeues race with enqueues.
  SbqHtm::Config cfg;
  cfg.max_enqueuers = 2;
  cfg.max_dequeuers = 2;
  SbqHtm q(cfg);
  constexpr int kRounds = 40;
  constexpr std::uint64_t kBurst = 300;
  std::vector<Element> storage(2 * kBurst);
  for (int round = 0; round < kRounds; ++round) {
    SpinBarrier barrier(4);
    std::atomic<std::uint64_t> remaining{2 * kBurst};
    std::vector<std::thread> threads;
    for (int p = 0; p < 2; ++p) {
      threads.emplace_back([&, p] {
        barrier.arrive_and_wait();
        for (std::uint64_t i = 0; i < kBurst; ++i) {
          q.enqueue(&storage[static_cast<std::size_t>(p) * kBurst + i], p);
        }
      });
    }
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&, c] {
        barrier.arrive_and_wait();
        while (remaining.load(std::memory_order_acquire) > 0) {
          if (q.dequeue(c) != nullptr) {
            remaining.fetch_sub(1, std::memory_order_acq_rel);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(q.dequeue(0), nullptr);
  }
  // After kRounds full drain cycles the list must be a short suffix, not
  // tens of thousands of unreclaimed nodes.
  EXPECT_LT(q.node_count(), 200u);
}

TEST(QueueChurn, FaaQueueSegmentsReclaimed) {
  // Small segments + long run: segments must be retired and freed (ASAN
  // would catch leaks/UAF); the queue stays correct throughout.
  FaaQueue<Element, 8> q(4);
  std::vector<Element> storage(4000);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 400; ++i) {
      q.enqueue(&storage[static_cast<std::size_t>(round * 400 + i) % 4000], 0);
    }
    for (int i = 0; i < 400; ++i) {
      ASSERT_NE(q.dequeue(1), nullptr);
    }
    ASSERT_EQ(q.dequeue(1), nullptr);
  }
}

TEST(QueueEdge, SbqMaxConfiguredThreadsAllActive) {
  // Exercise the full id space (max enqueuers == basket capacity == 44 as
  // in the paper, scaled down run length for test time).
  constexpr int kThreads = 44;
  SbqHtm::Config cfg;
  cfg.max_enqueuers = kThreads;
  cfg.max_dequeuers = kThreads;
  SbqHtm q(cfg);
  constexpr std::uint64_t kPer = 50;
  std::vector<Element> storage;
  auto result = testutil::run_mpmc(q, kThreads, kThreads, kPer, storage);
  testutil::verify_mpmc(result, kThreads, kPer);
}

TEST(QueueEdge, DequeueOnlyThreadsSeeConsistentEmpty) {
  SbqHtm::Config cfg;
  cfg.max_enqueuers = 1;
  cfg.max_dequeuers = 4;
  SbqHtm q(cfg);
  SpinBarrier barrier(4);
  std::atomic<int> non_null{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      barrier.arrive_and_wait();
      for (int i = 0; i < 2000; ++i) {
        if (q.dequeue(c) != nullptr) non_null.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(non_null.load(), 0);
}

TEST(QueueEdge, SingleElementPingPongAcrossAllQueues) {
  // One element bouncing between enqueue and dequeue is the hardest case
  // for empty-detection logic (the queue constantly transitions between
  // empty and size-1).
  Element e;
  {
    SbqHtm::Config cfg;
    cfg.max_enqueuers = 1;
    cfg.max_dequeuers = 1;
    SbqHtm q(cfg);
    for (int i = 0; i < 5000; ++i) {
      q.enqueue(&e, 0);
      ASSERT_EQ(q.dequeue(0), &e);
      ASSERT_EQ(q.dequeue(0), nullptr);
    }
  }
  {
    MsQueue<Element> q(2);
    for (int i = 0; i < 5000; ++i) {
      q.enqueue(&e, 0);
      ASSERT_EQ(q.dequeue(1), &e);
      ASSERT_EQ(q.dequeue(1), nullptr);
    }
  }
  {
    BasketsQueue<Element> q(2);
    for (int i = 0; i < 5000; ++i) {
      q.enqueue(&e, 0);
      ASSERT_EQ(q.dequeue(1), &e);
      ASSERT_EQ(q.dequeue(1), nullptr);
    }
  }
  {
    FaaQueue<Element, 16> q(2);
    for (int i = 0; i < 5000; ++i) {
      q.enqueue(&e, 0);
      ASSERT_EQ(q.dequeue(1), &e);
      ASSERT_EQ(q.dequeue(1), nullptr);
    }
  }
}

TEST(QueueEdge, SbqCasPolicyDelayZero) {
  // DelayedCas with zero delay must behave like plain CAS inside the queue.
  using Q = Queue<Element, SbqBasket<Element>, DelayedCas>;
  Q::Config cfg;
  cfg.max_enqueuers = 2;
  cfg.max_dequeuers = 2;
  cfg.cas = DelayedCas{.delay_iterations = 0};
  Q q(cfg);
  std::vector<Element> storage;
  auto result = testutil::run_mpmc(q, 2, 2, 2000, storage);
  testutil::verify_mpmc(result, 2, 2000);
}

TEST(QueueEdge, InterleavedProducerRolesOverTime) {
  // The same queue used in alternating producer-only / consumer-only
  // phases: protect/unprotect and node reuse must stay consistent across
  // phase boundaries.
  SbqHtm::Config cfg;
  cfg.max_enqueuers = 3;
  cfg.max_dequeuers = 3;
  SbqHtm q(cfg);
  std::vector<Element> storage(3 * 500);
  for (int phase = 0; phase < 6; ++phase) {
    SpinBarrier barrier(3);
    std::vector<std::thread> threads;
    if (phase % 2 == 0) {
      for (int p = 0; p < 3; ++p) {
        threads.emplace_back([&, p] {
          barrier.arrive_and_wait();
          for (int i = 0; i < 500; ++i) {
            q.enqueue(&storage[static_cast<std::size_t>(p) * 500 + i], p);
          }
        });
      }
    } else {
      std::atomic<int> taken{0};
      for (int c = 0; c < 3; ++c) {
        threads.emplace_back([&, c] {
          barrier.arrive_and_wait();
          while (taken.load(std::memory_order_acquire) < 1500) {
            if (q.dequeue(c) != nullptr) taken.fetch_add(1);
          }
        });
      }
      for (auto& t : threads) t.join();
      threads.clear();
      EXPECT_EQ(q.dequeue(0), nullptr);
    }
    for (auto& t : threads) t.join();
  }
}

}  // namespace
}  // namespace sbq
