// FlatMap unit tests: open-addressing semantics, tombstone hygiene,
// reference stability of non-rehashing operations, move-only values, and a
// differential fuzz against std::unordered_map.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <unordered_map>
#include <vector>

#include "sim/flat_map.hpp"

// TU-local allocation counter so the churn test can assert FlatMap's
// steady-state is allocation-free (the property the whole-machine
// sim_microbench gate depends on). Counts every global operator new in the
// test binary; tests snapshot around the window they care about.
namespace {
std::atomic<std::uint64_t> g_news{0};
void* counted_alloc(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sbq::sim {
namespace {

TEST(FlatMap, InsertFindEraseBasics) {
  FlatMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.count(7), 0u);
  m[7] = 70;
  m[8] = 80;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(7), 70);
  EXPECT_EQ(m.find(8)->second, 80);
  EXPECT_EQ(m.find(9), m.end());
  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.count(7), 0u);
  EXPECT_EQ(m.at(8), 80);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<std::uint64_t> m;
  EXPECT_EQ(m[42], 0u);
  m[42] += 5;
  EXPECT_EQ(m.at(42), 5u);
}

TEST(FlatMap, EraseByIterator) {
  FlatMap<int> m;
  for (Addr k = 1; k <= 10; ++k) m[k] = static_cast<int>(k);
  auto it = m.find(5);
  ASSERT_NE(it, m.end());
  m.erase(it);
  EXPECT_EQ(m.count(5), 0u);
  EXPECT_EQ(m.size(), 9u);
}

TEST(FlatMap, IterationVisitsEveryLiveEntryOnce) {
  FlatMap<int> m;
  std::unordered_map<Addr, int> ref;
  for (Addr k = 1; k <= 100; ++k) {
    m[k * 977] = static_cast<int>(k);
    ref[k * 977] = static_cast<int>(k);
  }
  for (Addr k = 1; k <= 100; k += 3) {
    m.erase(k * 977);
    ref.erase(k * 977);
  }
  std::unordered_map<Addr, int> seen;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(seen.count(k), 0u) << "duplicate key in iteration";
    seen[k] = v;
  }
  EXPECT_EQ(seen, ref);
}

TEST(FlatMap, ReferencesStableWithoutRehash) {
  FlatMap<int> m;
  m.reserve(64);
  m[1] = 10;
  int* p = &m.at(1);
  // Inserting within the reserved capacity must not move existing entries.
  for (Addr k = 2; k <= 60; ++k) m[k] = static_cast<int>(k);
  EXPECT_EQ(p, &m.at(1));
  EXPECT_EQ(*p, 10);
}

TEST(FlatMap, ChurnWithFreshKeysIsAllocationFree) {
  // Insert/erase churn over an unbounded fresh-key stream with a tiny live
  // set — the simulator's pending/waiter table pattern. Tombstone-run
  // cleanup in erase plus allocation-free in-place compaction must keep
  // the table at its initial capacity without ever touching the heap
  // (this is what keeps the whole-machine sim_microbench gate at zero
  // steady-state allocations).
  FlatMap<std::uint64_t> m;
  m[1] = 111;
  for (Addr k = 2; k < 1002; ++k) {  // warm-up: reach steady capacity
    m[k] = k;
    m.erase(k);
  }
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  bool all_erased = true;
  for (Addr k = 1002; k < 101002; ++k) {
    m[k] = k;
    all_erased = all_erased && m.erase(k) == 1;
  }
  EXPECT_EQ(g_news.load(std::memory_order_relaxed) - before, 0u)
      << "steady churn allocated";
  EXPECT_TRUE(all_erased);
  EXPECT_EQ(m.at(1), 111u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, MoveOnlyValues) {
  FlatMap<std::unique_ptr<int>> m;
  for (Addr k = 1; k <= 50; ++k) {
    m[k] = std::make_unique<int>(static_cast<int>(k));  // grows => rehash moves
  }
  for (Addr k = 1; k <= 50; ++k) {
    ASSERT_NE(m.at(k), nullptr);
    EXPECT_EQ(*m.at(k), static_cast<int>(k));
  }
  m.erase(25);  // erase resets the slot: the unique_ptr frees eagerly
  EXPECT_EQ(m.count(25), 0u);
  EXPECT_EQ(m.size(), 49u);
}

TEST(FlatMap, ReserveAvoidsGrowthButKeepsContents) {
  FlatMap<int> m;
  for (Addr k = 1; k <= 10; ++k) m[k] = static_cast<int>(k);
  m.reserve(1000);
  for (Addr k = 1; k <= 10; ++k) EXPECT_EQ(m.at(k), static_cast<int>(k));
  int* p = &m.at(3);
  for (Addr k = 11; k <= 1000; ++k) m[k] = static_cast<int>(k);
  EXPECT_EQ(p, &m.at(3));  // no rehash within the reserved capacity
  EXPECT_EQ(m.size(), 1000u);
}

TEST(FlatMap, DifferentialFuzzAgainstUnorderedMap) {
  FlatMap<std::uint64_t> m;
  std::unordered_map<Addr, std::uint64_t> ref;
  std::uint64_t rng = 0x243F6A8885A308D3ULL;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 200000; ++step) {
    const Addr key = 1 + next() % 512;  // dense key space => collisions
    switch (next() % 4) {
      case 0:
      case 1: {  // insert/update
        const std::uint64_t v = next();
        m[key] = v;
        ref[key] = v;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(m.erase(key), ref.erase(key));
        break;
      }
      case 3: {  // lookup
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(m.find(key), m.end());
          EXPECT_EQ(m.count(key), 0u);
        } else {
          ASSERT_NE(m.find(key), m.end());
          EXPECT_EQ(m.find(key)->second, it->second);
        }
        break;
      }
    }
    EXPECT_EQ(m.size(), ref.size());
  }
  std::unordered_map<Addr, std::uint64_t> got;
  for (const auto& [k, v] : m) got[k] = v;
  EXPECT_EQ(got, ref);
}

}  // namespace
}  // namespace sbq::sim
