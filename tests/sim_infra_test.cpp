// Unit tests for the simulator infrastructure pieces not covered by the
// protocol tests: the trace recorder, the interconnect (latency matrix,
// FIFO delivery, handler dispatch), and directory statistics.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/machine.hpp"

namespace sbq::sim {
namespace {

TEST(Trace, DisabledRecordsNothing) {
  Trace t(false);
  t.record(1, 0, "x", 1);
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, EnabledRecordsAndPrints) {
  Trace t(true);
  t.record(5, 2, "send GetM", 7, 3);
  t.record(9, 1, "abort", 8, 0);
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].time, 5u);
  EXPECT_EQ(t.events()[0].node, 2);
  EXPECT_EQ(t.events()[0].addr, 7u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("send GetM"), std::string::npos);
  EXPECT_NE(os.str().find("abort"), std::string::npos);
}

TEST(Trace, AddressFilter) {
  Trace t(true);
  t.record(1, 0, "a", 10);
  t.record(2, 0, "b", 20);
  std::ostringstream os;
  t.print(os, /*only_addr=*/20);
  EXPECT_EQ(os.str().find("addr=10"), std::string::npos);
  EXPECT_NE(os.str().find("addr=20"), std::string::npos);
}

TEST(Trace, ClearResets) {
  Trace t(true);
  t.record(1, 0, "a", 1);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, ToggleEnable) {
  Trace t(false);
  t.set_enabled(true);
  t.record(1, 0, "a", 1);
  t.set_enabled(false);
  t.record(2, 0, "b", 2);
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(Interconnect, LatencyMatrix) {
  MachineConfig cfg;
  cfg.cores = 6;
  cfg.sockets = 3;  // 2 cores per socket
  Engine e;
  Interconnect net(e, cfg, nullptr);
  EXPECT_EQ(net.socket_of(0), 0);
  EXPECT_EQ(net.socket_of(1), 0);
  EXPECT_EQ(net.socket_of(2), 1);
  EXPECT_EQ(net.socket_of(5), 2);
  EXPECT_EQ(net.socket_of(net.directory_id()), 0);  // dir homed on socket 0
  EXPECT_EQ(net.latency(0, 1), cfg.intra_latency);
  EXPECT_EQ(net.latency(0, 2), cfg.inter_latency);
  EXPECT_EQ(net.latency(4, 5), cfg.intra_latency);
  EXPECT_EQ(net.latency(2, net.directory_id()), cfg.inter_latency);
}

TEST(Interconnect, DeliversToHandlerWithLatency) {
  MachineConfig cfg;
  cfg.cores = 2;
  Engine e;
  Interconnect net(e, cfg, nullptr);
  std::vector<std::pair<Time, MsgType>> received;
  net.set_handler(1, [&](const Message& m) {
    received.emplace_back(e.now(), m.type);
  });
  net.set_handler(0, [](const Message&) {});
  Message m{MsgType::kInv, 5, 0, 0, 0, 0};
  net.send(0, 1, m);
  e.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, cfg.intra_latency);
  EXPECT_EQ(received[0].second, MsgType::kInv);
  EXPECT_EQ(net.messages_sent(), 1u);
}

TEST(Interconnect, FifoPerPair) {
  MachineConfig cfg;
  cfg.cores = 2;
  Engine e;
  Interconnect net(e, cfg, nullptr);
  std::vector<Addr> order;
  net.set_handler(1, [&](const Message& m) { order.push_back(m.addr); });
  for (Addr a = 1; a <= 5; ++a) {
    Message m{MsgType::kData, a, 0, 0, 0, 0};
    net.send(0, 1, m);
  }
  e.run();
  EXPECT_EQ(order, (std::vector<Addr>{1, 2, 3, 4, 5}));
}

TEST(Interconnect, MessageTypeNames) {
  EXPECT_STREQ(msg_type_name(MsgType::kGetS), "GetS");
  EXPECT_STREQ(msg_type_name(MsgType::kGetM), "GetM");
  EXPECT_STREQ(msg_type_name(MsgType::kFwdGetS), "Fwd-GetS");
  EXPECT_STREQ(msg_type_name(MsgType::kFwdGetM), "Fwd-GetM");
  EXPECT_STREQ(msg_type_name(MsgType::kInv), "Inv");
  EXPECT_STREQ(msg_type_name(MsgType::kInvAck), "Inv-Ack");
  EXPECT_STREQ(msg_type_name(MsgType::kData), "Data");
}

TEST(DirectoryStats, CountsProtocolActions) {
  MachineConfig cfg;
  cfg.cores = 3;
  Machine m(cfg);
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(0).load(x);        // GetS
    co_await m.core(1).load(x);        // GetS
    co_await m.core(2).store(x, 1);    // GetM + 2 Inv
    co_await m.core(0).load(x);        // GetS -> Fwd-GetS (then WB -> S)
    co_await m.core(1).store(x, 2);    // GetM on S -> invalidation shower
  }(m, x));
  m.run();
  const auto& s = m.directory().stats();
  EXPECT_EQ(s.gets, 3u);
  EXPECT_EQ(s.getm, 2u);
  EXPECT_EQ(s.fwd_gets, 1u);
  EXPECT_EQ(s.fwd_getm, 0u);       // the WB landed before the second store
  EXPECT_EQ(s.invalidations, 4u);  // 2 for the first store, 2 for the second
}

TEST(MachineAlloc, SequentialNonNullAddresses) {
  Machine m(MachineConfig{.cores = 1});
  const Addr a = m.alloc(3);
  const Addr b = m.alloc();
  EXPECT_GE(a, 1u);  // address 0 is reserved as NULL
  EXPECT_EQ(b, a + 3);
}

}  // namespace
}  // namespace sbq::sim
