// Tests for the simulated TxCAS: CAS semantics, abort paths, scalability of
// failures (the core claim of §3), the tripped-writer phenomenon and the
// §3.4.1 microarchitectural fix, and the intra-transaction delay trade-off.
#include <gtest/gtest.h>

#include <memory>

#include "sim/machine.hpp"

namespace sbq::sim {
namespace {

MachineConfig small_machine(int cores, int sockets = 1) {
  MachineConfig cfg;
  cfg.cores = cores;
  cfg.sockets = sockets;
  return cfg;
}

TxCasConfig fast_txcas() {
  TxCasConfig cfg;
  cfg.intra_txn_delay = 40;
  cfg.post_abort_delay = 50;
  return cfg;
}

TEST(SimTxCas, SucceedsUncontended) {
  Machine m(small_machine(1));
  const Addr x = m.alloc();
  m.directory().poke(x, 5);
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    EXPECT_TRUE(co_await m.core(0).txcas(x, 5, 9, fast_txcas()));
    EXPECT_EQ(co_await m.core(0).load(x), 9u);
    EXPECT_FALSE(co_await m.core(0).txcas(x, 5, 11, fast_txcas()));
    EXPECT_EQ(co_await m.core(0).load(x), 9u);
  }(m, x));
  m.run();
  EXPECT_EQ(m.core(0).stats().txcas_success, 1u);
  EXPECT_EQ(m.core(0).stats().txcas_fail, 1u);
  EXPECT_EQ(m.core(0).stats().self_aborts, 1u);
}

TEST(SimTxCas, ExactlyOneWinnerUnderContention) {
  constexpr int kCores = 8;
  constexpr int kRounds = 20;
  Machine m(small_machine(kCores));
  const Addr x = m.alloc();
  const Addr wins = m.alloc(kCores);
  auto barrier = std::make_shared<SimBarrier>(m.engine(), kCores);
  for (int c = 0; c < kCores; ++c) {
    m.spawn([](Machine& m, int c, Addr x, Addr wins,
               std::shared_ptr<SimBarrier> b) -> Task<void> {
      Value my_wins = 0;
      for (Value round = 0; round < kRounds; ++round) {
        co_await b->arrive_and_wait();
        if (co_await m.core(c).txcas(x, round, round + 1, fast_txcas())) {
          ++my_wins;
        }
        co_await b->arrive_and_wait();
      }
      co_await m.core(c).store(wins + static_cast<Addr>(c), my_wins);
    }(m, c, x, wins, barrier));
  }
  m.run();
  Value total = 0;
  m.spawn([](Machine& m, Addr wins, Value* out) -> Task<void> {
    Value sum = 0;
    for (int c = 0; c < kCores; ++c) {
      sum += co_await m.core(0).load(wins + static_cast<Addr>(c));
    }
    *out = sum;
  }(m, wins, &total));
  m.run();
  EXPECT_EQ(total, static_cast<Value>(kRounds));
  Value final = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    *out = co_await m.core(0).load(x);
  }(m, x, &final));
  m.run();
  EXPECT_EQ(final, static_cast<Value>(kRounds));
}

TEST(SimTxCas, FailuresAbortConcurrently) {
  // All cores read the word, then contend. Failed TxCASs must abort via
  // invalidations (nested aborts), not by waiting for serialized ownership.
  constexpr int kCores = 12;
  Machine m(small_machine(kCores));
  const Addr x = m.alloc();
  for (int c = 0; c < kCores; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      // Stagger the threads a little so the winner's invalidations land in
      // the losers' read/delay phase (lockstep starts would push every
      // conflict into the write phase instead).
      co_await m.core(c).think(static_cast<Time>(1 + c * 45));
      TxCasConfig tx = fast_txcas();
      tx.intra_txn_delay = 160;
      co_await m.core(c).txcas(x, 0, static_cast<Value>(c) + 1, tx);
    }(m, c, x));
  }
  m.run();
  std::uint64_t success = 0, nested = 0, fail = 0;
  for (int c = 0; c < kCores; ++c) {
    success += m.core(c).stats().txcas_success;
    nested += m.core(c).stats().nested_aborts;
    fail += m.core(c).stats().txcas_fail;
  }
  EXPECT_EQ(success, 1u);
  EXPECT_EQ(fail, static_cast<std::uint64_t>(kCores - 1));
  EXPECT_GT(nested, 0u);  // losers aborted in the read/delay phase
}

TEST(SimTxCas, FailureLatencyIsScalable) {
  // §3.3: failed-TxCAS latency stays roughly constant as contention grows,
  // in contrast to FAA (see SimProtocol.ContendedFaaLatencyGrowsLinearly).
  auto mean_txcas_latency = [](int cores) {
    Machine m(small_machine(cores));
    const Addr x = m.alloc();
    auto total = std::make_shared<double>(0.0);
    auto n = std::make_shared<std::uint64_t>(0);
    constexpr int kOps = 40;
    for (int c = 0; c < cores; ++c) {
      m.spawn([](Machine& m, int c, Addr x, std::shared_ptr<double> total,
                 std::shared_ptr<std::uint64_t> n) -> Task<void> {
        TxCasConfig cfg;  // paper-default delays
        for (int i = 0; i < kOps; ++i) {
          const Value v = co_await m.core(c).load(x);
          const Time start = m.engine().now();
          co_await m.core(c).txcas(x, v, v + 1, cfg);
          *total += static_cast<double>(m.engine().now() - start);
          ++*n;
        }
      }(m, c, x, total, n));
    }
    m.run();
    return *total / static_cast<double>(*n);
  };
  const double l4 = mean_txcas_latency(4);
  const double l16 = mean_txcas_latency(16);
  // Far from the ~4x growth of FAA; allow generous slack.
  EXPECT_LT(l16 / l4, 1.8) << "l4=" << l4 << " l16=" << l16;
}

TEST(SimTxCas, FallbackGuaranteesTermination) {
  // With max_attempts = 0 every TxCAS goes straight to the plain-CAS
  // fallback and must still be correct.
  Machine m(small_machine(4));
  const Addr x = m.alloc();
  TxCasConfig cfg;
  cfg.max_attempts = 0;
  for (int c = 0; c < 4; ++c) {
    m.spawn([](Machine& m, int c, Addr x, TxCasConfig cfg) -> Task<void> {
      for (int i = 0; i < 20; ++i) {
        Value v = co_await m.core(c).load(x);
        while (!co_await m.core(c).txcas(x, v, v + 1, cfg)) {
          v = co_await m.core(c).load(x);
        }
      }
    }(m, c, x, cfg));
  }
  m.run();
  Value final = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    *out = co_await m.core(0).load(x);
  }(m, x, &final));
  m.run();
  EXPECT_EQ(final, 80u);
  std::uint64_t fallbacks = 0;
  for (int c = 0; c < 4; ++c) fallbacks += m.core(c).stats().fallbacks;
  EXPECT_GT(fallbacks, 0u);
}

TEST(SimTxCas, TrippedWriterOccursWithReaderInterference) {
  // Figure 3: a writer mid-commit (waiting for its GetM) aborted by a
  // remote read's Fwd-GetS. We force the window with a long ack path: the
  // writer upgrades from S while many sharers exist on a remote socket, and
  // a reader issues a GetS right into the window.
  MachineConfig cfg = small_machine(10, 2);
  cfg.inter_latency = 200;  // wide commit window
  Machine m(cfg);
  const Addr x = m.alloc();
  m.directory().poke(x, 0);

  // Sharers on socket 1 (cores 5..9) read the line so invalidation acks
  // must cross sockets.
  for (int c = 5; c < 10; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      co_await m.core(c).load(x);
    }(m, c, x));
  }
  m.run();

  // Writer on core 0 TxCASes; reader on core 1 reads into the window.
  TxCasConfig tx = fast_txcas();
  tx.intra_txn_delay = 10;
  m.spawn([](Machine& m, Addr x, TxCasConfig tx) -> Task<void> {
    co_await m.core(0).load(x);
    co_await m.core(0).txcas(x, 0, 1, tx);
  }(m, x, tx));
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(1).think(250);  // arrive while the writer awaits acks
    co_await m.core(1).load(x);
  }(m, x));
  m.run();
  EXPECT_GT(m.core(0).stats().tripped_aborts, 0u)
      << "reader Fwd-GetS should have tripped the writer";
}

TEST(SimTxCas, UarchFixPreventsTrippedWriter) {
  // Same scenario as above with the §3.4.1 fix enabled: the Fwd-GetS is
  // stalled until the commit, and the writer succeeds first try.
  MachineConfig cfg = small_machine(10, 2);
  cfg.inter_latency = 200;
  cfg.uarch_fix = true;
  Machine m(cfg);
  const Addr x = m.alloc();
  for (int c = 5; c < 10; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      co_await m.core(c).load(x);
    }(m, c, x));
  }
  m.run();
  TxCasConfig tx = fast_txcas();
  tx.intra_txn_delay = 10;
  Value reader_saw = 0;
  m.spawn([](Machine& m, Addr x, TxCasConfig tx) -> Task<void> {
    co_await m.core(0).load(x);
    EXPECT_TRUE(co_await m.core(0).txcas(x, 0, 1, tx));
  }(m, x, tx));
  m.spawn([](Machine& m, Addr x, Value* saw) -> Task<void> {
    co_await m.core(1).think(250);
    *saw = co_await m.core(1).load(x);
  }(m, x, &reader_saw));
  m.run();
  EXPECT_EQ(m.core(0).stats().tripped_aborts, 0u);
  EXPECT_GT(m.core(0).stats().uarch_fix_stalls, 0u);
  // The stalled read observes the committed value.
  EXPECT_EQ(reader_saw, 1u);
}

TEST(SimTxCas, PostAbortCheckFailsFastWhenValueChanged) {
  // When the conflicting writer actually changed the value, the aborted
  // TxCAS must return false after its post-abort check, not retry forever.
  Machine m(small_machine(2));
  const Addr x = m.alloc();
  auto barrier = std::make_shared<SimBarrier>(m.engine(), 2);
  bool loser_result = true;
  m.spawn([](Machine& m, Addr x, std::shared_ptr<SimBarrier> b) -> Task<void> {
    co_await m.core(0).load(x);
    co_await b->arrive_and_wait();
    // Plain store: wins immediately, invalidating the reader mid-delay.
    co_await m.core(0).think(30);
    co_await m.core(0).store(x, 42);
  }(m, x, barrier));
  m.spawn([](Machine& m, Addr x, std::shared_ptr<SimBarrier> b,
             bool* out) -> Task<void> {
    co_await m.core(1).load(x);
    co_await b->arrive_and_wait();
    TxCasConfig tx;
    tx.intra_txn_delay = 500;  // long delay so the store lands inside it
    *out = co_await m.core(1).txcas(x, 0, 7, tx);
  }(m, x, barrier, &loser_result));
  m.run();
  EXPECT_FALSE(loser_result);
  EXPECT_GT(m.core(1).stats().nested_aborts, 0u);
  EXPECT_EQ(m.core(1).stats().txcas_attempts, 1u);
}

TEST(SimTxCas, StatsAccounting) {
  Machine m(small_machine(1));
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(0).txcas(x, 0, 1, fast_txcas());
    co_await m.core(0).txcas(x, 1, 2, fast_txcas());
    co_await m.core(0).txcas(x, 0, 3, fast_txcas());  // mismatch
  }(m, x));
  m.run();
  const CoreStats& s = m.core(0).stats();
  EXPECT_EQ(s.txcas_calls, 3u);
  EXPECT_EQ(s.txcas_success, 2u);
  EXPECT_EQ(s.txcas_fail, 1u);
  EXPECT_EQ(s.self_aborts, 1u);
  EXPECT_EQ(s.txcas_attempts, 3u);
}

}  // namespace
}  // namespace sbq::sim
