// Tests for the common infrastructure: padding, backoff, RNG, barrier,
// topology discovery, percentile edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/barrier.hpp"
#include "common/cacheline.hpp"
#include "common/padded.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/topology.hpp"

namespace sbq {
namespace {

TEST(Padded, OccupiesWholeCacheLines) {
  EXPECT_EQ(sizeof(Padded<char>) % kCacheLineSize, 0u);
  EXPECT_EQ(alignof(Padded<char>), kCacheLineSize);
  // An array of padded slots puts each slot on its own line.
  Padded<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i]);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1]);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(Padded, DereferenceOperators) {
  Padded<int> p(7);
  EXPECT_EQ(*p, 7);
  *p = 9;
  EXPECT_EQ(p.value, 9);
}

TEST(Backoff, GrowsAndSaturates) {
  // White-box via timing-free behaviour: pause() must terminate and the
  // object must be reusable after reset().
  Backoff b(1, 8);
  for (int i = 0; i < 10; ++i) b.pause();
  b.reset();
  for (int i = 0; i < 10; ++i) b.pause();
  SUCCEED();
}

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(123), b(123), c(124);
  const std::uint64_t a1 = a.next();
  EXPECT_EQ(a1, b.next());
  EXPECT_NE(a1, c.next());
}

TEST(Xoshiro256, ReproducibleSequences) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowInRange) {
  Xoshiro256 r(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 r(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, RoughUniformity) {
  Xoshiro256 r(31337);
  int buckets[10] = {};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++buckets[r.next_below(10)];
  for (int count : buckets) {
    EXPECT_GT(count, kSamples / 10 * 0.9);
    EXPECT_LT(count, kSamples / 10 * 1.1);
  }
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counter.fetch_add(1, std::memory_order_acq_rel);
        barrier.arrive_and_wait();
        // After the barrier, every thread of this phase has incremented.
        if (phase_counter.load(std::memory_order_acquire) < (p + 1) * kThreads) {
          violation.store(true, std::memory_order_relaxed);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(phase_counter.load(), kThreads * kPhases);
}

TEST(Topology, DiscoversAtLeastOneCpu) {
  const Topology topo = Topology::discover();
  EXPECT_GE(topo.cpu_count(), 1u);
  EXPECT_GE(topo.socket_count(), 1u);
  // Every CPU appears in its socket's list exactly once.
  std::set<int> seen;
  for (std::size_t s = 0; s < topo.socket_count() + 2; ++s) {
    for (int cpu : topo.socket_cpus(static_cast<int>(s))) {
      EXPECT_TRUE(seen.insert(cpu).second) << "cpu listed twice: " << cpu;
    }
  }
  EXPECT_EQ(seen.size(), topo.cpu_count());
}

TEST(Topology, PinCurrentThreadToCpu0) {
  EXPECT_TRUE(pin_current_thread(0));
}

// Summary::percentile must be total: the service-latency driver calls it on
// whatever samples a sweep cell produced, which can legitimately be nothing
// (every offered op rejected by admission control) and with p values from
// config (p999 = 99.9, but also junk). See stats.hpp for the contract.
TEST(SummaryPercentile, EmptySampleSetYieldsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
}

TEST(SummaryPercentile, OutOfRangePClamps) {
  Summary s;
  for (double v : {10.0, 20.0, 30.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(-1), 10.0);     // clamps to p0 = min
  EXPECT_DOUBLE_EQ(s.percentile(101), 30.0);    // clamps to p100 = max
  EXPECT_DOUBLE_EQ(s.percentile(1e300), 30.0);
  EXPECT_DOUBLE_EQ(
      s.percentile(-std::numeric_limits<double>::infinity()), 10.0);
}

TEST(SummaryPercentile, NanPClampsToMin) {
  Summary s;
  s.add(7.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.percentile(std::numeric_limits<double>::quiet_NaN()),
                   7.0);
}

TEST(BoundedExpDelay, LadderDoublesAndSaturates) {
  EXPECT_EQ(bounded_exp_delay(4, 0, 1024), 4u);
  EXPECT_EQ(bounded_exp_delay(4, 1, 1024), 8u);
  EXPECT_EQ(bounded_exp_delay(4, 7, 1024), 512u);
  EXPECT_EQ(bounded_exp_delay(4, 8, 1024), 1024u);  // exactly at cap
  EXPECT_EQ(bounded_exp_delay(4, 20, 1024), 1024u);  // past cap: saturates
  EXPECT_EQ(bounded_exp_delay(0, 5, 1024), 0u);      // zero base: no delay
}

TEST(BoundedExpDelay, ShiftOverflowSaturatesAtCap) {
  const std::uint64_t cap = std::numeric_limits<std::uint64_t>::max() / 2;
  EXPECT_EQ(bounded_exp_delay(3, 63, cap), cap);
  EXPECT_EQ(bounded_exp_delay(1ULL << 62, 4, cap), cap);
}

TEST(SeededBackoff, SameSeedSameStreamIsDeterministic) {
  SeededBackoff a(42, 7), b(42, 7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_delay(), b.next_delay());
}

TEST(SeededBackoff, DistinctStreamsDesynchronize) {
  SeededBackoff a(42, 0), b(42, 1);
  bool differ = false;
  for (int i = 0; i < 20; ++i) {
    if (a.next_delay() != b.next_delay()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(SeededBackoff, DelaysStayWithinHalfToFullOfLadder) {
  SeededBackoff bo(9, 3, /*base_iters=*/8, /*cap_iters=*/256);
  for (std::uint32_t level = 0; level < 12; ++level) {
    const std::uint64_t full = bounded_exp_delay(8, level, 256);
    EXPECT_EQ(bo.level(), level < 63 ? level : 63u);
    const std::uint64_t d = bo.next_delay();
    EXPECT_GE(d, full / 2);
    EXPECT_LE(d, full);
  }
}

TEST(SeededBackoff, ResetRestartsLevelButNotStream) {
  SeededBackoff a(5, 0), b(5, 0);
  a.next_delay();
  a.next_delay();
  a.reset();
  EXPECT_EQ(a.level(), 0u);
  // The stream advanced, so after reset the draw differs from a fresh
  // object's first draw with overwhelming probability (same level range).
  b.next_delay();
  b.next_delay();
  // a (reset, level 0) and b (level 2) draw the same underlying PRNG value;
  // levels differ so ranges differ — just check reset didn't rewind rng by
  // verifying determinism against a replayed twin.
  SeededBackoff c(5, 0);
  c.next_delay();
  c.next_delay();
  c.reset();
  EXPECT_EQ(a.next_delay(), c.next_delay());
}

TEST(SeededBackoff, PauseReturnsTheDelayItSpun) {
  SeededBackoff a(13, 2, 1, 64), b(13, 2, 1, 64);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.pause(), b.next_delay());
}

TEST(SummaryPercentile, TailPercentilesAreMonotone) {
  Summary s;
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    s.add(static_cast<double>(rng.next_below(100000)));
  }
  const double p50 = s.percentile(50);
  const double p99 = s.percentile(99);
  const double p999 = s.percentile(99.9);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, s.max());
}

}  // namespace
}  // namespace sbq
