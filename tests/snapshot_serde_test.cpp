// Snapshot serialization regressions (sim/serialize + SnapshotCache):
//   1. a machine forked from an encode→decode round-trip of a warmed
//      snapshot replays the measured phase byte-identically to a cold
//      start, for every evaluated queue;
//   2. truncated / corrupted / stale-version / foreign-key blobs are
//      rejected by decode, and a corrupted on-disk cache entry degrades to
//      a cold warm-up with identical results (the cache is an accelerator,
//      never a correctness dependency);
//   3. concurrent same-key writers never publish a torn blob — readers see
//      a complete old or new entry, or none.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "benchsupport/metrics_json.hpp"
#include "benchsupport/snapshot_cache.hpp"
#include "sim/machine.hpp"
#include "sim/serialize.hpp"
#include "sim_queue_bench_util.hpp"

namespace sbq::bench {
namespace {

constexpr std::uint64_t kBlobKey = 0x5eed5eed5eed5eedULL;

WorkloadSpec consumer_only_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.kind = Workload::kConsumerOnly;
  spec.producers = 3;
  spec.consumers = 3;
  spec.ops_per_thread = 40;
  spec.seed = seed;
  spec.prefill_seed = 99;
  return spec;
}

WorkloadSpec mixed_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.kind = Workload::kMixed;
  spec.producers = 2;
  spec.consumers = 2;
  spec.ops_per_thread = 40;
  spec.prefill = 40;
  spec.seed = seed;
  spec.prefill_seed = 99;
  return spec;
}

void expect_identical(const SimRunResult& a, const SimRunResult& b) {
  EXPECT_EQ(a.enq_ops, b.enq_ops);
  EXPECT_EQ(a.deq_ops, b.deq_ops);
  EXPECT_EQ(a.enq_latency_cycles, b.enq_latency_cycles);
  EXPECT_EQ(a.deq_latency_cycles, b.deq_latency_cycles);
  EXPECT_EQ(a.duration_cycles, b.duration_cycles);
  EXPECT_EQ(metrics_to_json(a.metrics).dump(), metrics_to_json(b.metrics).dump());
}

// Warm a fresh machine (queue build + prefill), serialize it together with
// the queue's host words, decode the blob, fork a machine from the decoded
// snapshot, rebuild the queue from the decoded words, and run the measured
// phase there.
SimRunResult run_via_serde(QueueKind kind, const sim::MachineConfig& mcfg,
                           const WorkloadSpec& spec) {
  sim::Machine m(mcfg);
  return with_queue(kind, m, spec, [&](auto& q, int) {
    prefill_spec(m, q, spec);
    std::vector<std::uint64_t> words;
    q.save_host_state(words);
    const std::vector<std::uint8_t> blob =
        sim::encode_snapshot_blob(m.snapshot(), words, kBlobKey);
    EXPECT_FALSE(blob.empty());
    sim::MachineSnapshot snap;
    std::vector<std::uint64_t> dwords;
    EXPECT_TRUE(sim::decode_snapshot_blob(blob, kBlobKey, snap, dwords));
    auto fork = sim::Machine::fork(snap);
    const simq::HostWords hw{dwords.data(), dwords.size()};
    return with_queue(
        kind, *fork, spec,
        [&](auto& q2, int offset) { return measure_spec(*fork, q2, spec, offset); },
        &hw);
  });
}

class SnapshotSerdeAllQueues : public ::testing::TestWithParam<QueueKind> {};

TEST_P(SnapshotSerdeAllQueues, ConsumerOnlyRoundTripMatchesColdStart) {
  const QueueKind kind = GetParam();
  sim::MachineConfig mcfg;
  mcfg.cores = 3;
  const WorkloadSpec spec = consumer_only_spec(5);
  expect_identical(run_via_serde(kind, mcfg, spec),
                   run_queue_workload(kind, mcfg, spec));
}

TEST_P(SnapshotSerdeAllQueues, MixedTwoSocketRoundTripMatchesColdStart) {
  const QueueKind kind = GetParam();
  sim::MachineConfig mcfg;
  mcfg.cores = 4;
  mcfg.sockets = 2;
  const WorkloadSpec spec = mixed_spec(11);
  expect_identical(run_via_serde(kind, mcfg, spec),
                   run_queue_workload(kind, mcfg, spec));
}

INSTANTIATE_TEST_SUITE_P(AllQueues, SnapshotSerdeAllQueues,
                         ::testing::ValuesIn(evaluated_queue_kinds()),
                         [](const auto& info) {
                           std::string name = queue_kind_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// One warmed SBQ blob, reused by every rejection case below.
std::vector<std::uint8_t> make_valid_blob(std::uint64_t key,
                                          std::uint64_t prefill_seed = 99) {
  sim::MachineConfig mcfg;
  mcfg.cores = 3;
  WorkloadSpec spec = consumer_only_spec(5);
  spec.prefill_seed = prefill_seed;
  sim::Machine m(mcfg);
  return with_queue(QueueKind::kSbqHtm, m, spec, [&](auto& q, int) {
    prefill_spec(m, q, spec);
    std::vector<std::uint64_t> words;
    q.save_host_state(words);
    return sim::encode_snapshot_blob(m.snapshot(), words, key);
  });
}

TEST(SnapshotSerdeReject, TruncatedBlobs) {
  const std::vector<std::uint8_t> blob = make_valid_blob(kBlobKey);
  ASSERT_FALSE(blob.empty());
  sim::MachineSnapshot snap;
  std::vector<std::uint64_t> words;
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{4}, blob.size() / 2, blob.size() - 1}) {
    SCOPED_TRACE("keep " + std::to_string(keep));
    std::vector<std::uint8_t> cut(blob.begin(), blob.begin() + keep);
    EXPECT_FALSE(sim::decode_snapshot_blob(cut, kBlobKey, snap, words));
  }
}

TEST(SnapshotSerdeReject, CorruptedBytes) {
  const std::vector<std::uint8_t> blob = make_valid_blob(kBlobKey);
  ASSERT_FALSE(blob.empty());
  sim::MachineSnapshot snap;
  std::vector<std::uint64_t> words;
  // A flip anywhere — magic, header, section payload, checksum — must be
  // caught (the trailing FNV checksum covers every preceding byte).
  for (std::size_t pos : {std::size_t{0}, std::size_t{9}, blob.size() / 2,
                          blob.size() - 1}) {
    SCOPED_TRACE("flip at " + std::to_string(pos));
    std::vector<std::uint8_t> bad = blob;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(sim::decode_snapshot_blob(bad, kBlobKey, snap, words));
  }
}

TEST(SnapshotSerdeReject, StaleSchemaVersion) {
  std::vector<std::uint8_t> blob = make_valid_blob(kBlobKey);
  ASSERT_GE(blob.size(), 8u);
  // Bytes [4,8) hold the little-endian schema version; a decoder from the
  // future (or the past) must refuse rather than misread.
  blob[4] ^= 0x01;
  sim::MachineSnapshot snap;
  std::vector<std::uint64_t> words;
  EXPECT_FALSE(sim::decode_snapshot_blob(blob, kBlobKey, snap, words));
}

TEST(SnapshotSerdeReject, ForeignKey) {
  const std::vector<std::uint8_t> blob = make_valid_blob(kBlobKey);
  sim::MachineSnapshot snap;
  std::vector<std::uint64_t> words;
  EXPECT_FALSE(sim::decode_snapshot_blob(blob, kBlobKey + 1, snap, words));
  EXPECT_TRUE(sim::decode_snapshot_blob(blob, kBlobKey, snap, words));
}

// Contention-policy snapshot coverage (docs/architecture.md "Contention
// policy layer"): the per-core policy State (jitter stream position +
// failure level) rides in every snapshot, so adaptive-policy forks must
// replay byte-identically; the config digest keys the policy params (stale
// cache entries can't cross policies); and a blob claiming an unknown
// policy kind is refused instead of misinterpreted.
TEST(SnapshotSerdePolicy, AdaptiveBackoffRoundTripMatchesColdStart) {
  sim::MachineConfig mcfg;
  mcfg.cores = 3;
  mcfg.cas_policy.kind = ContentionPolicyKind::kAdaptiveBackoff;
  mcfg.cas_policy.seed = 17;
  const WorkloadSpec spec = consumer_only_spec(5);
  expect_identical(run_via_serde(QueueKind::kSbqHtm, mcfg, spec),
                   run_queue_workload(QueueKind::kSbqHtm, mcfg, spec));
}

TEST(SnapshotSerdePolicy, AdaptiveFallbackRoundTripMatchesColdStart) {
  sim::MachineConfig mcfg;
  mcfg.cores = 3;
  mcfg.cas_policy.kind = ContentionPolicyKind::kAdaptiveFallback;
  const WorkloadSpec spec = consumer_only_spec(5);
  expect_identical(run_via_serde(QueueKind::kSbqHtm, mcfg, spec),
                   run_queue_workload(QueueKind::kSbqHtm, mcfg, spec));
}

TEST(SnapshotSerdePolicy, DigestKeysPolicyParams) {
  sim::MachineConfig base;
  base.cores = 3;
  const std::uint64_t d0 = sim::machine_config_digest(base);

  sim::MachineConfig kind = base;
  kind.cas_policy.kind = ContentionPolicyKind::kAdaptiveBackoff;
  EXPECT_NE(sim::machine_config_digest(kind), d0);

  sim::MachineConfig seed = kind;
  seed.cas_policy.seed = 2;
  EXPECT_NE(sim::machine_config_digest(seed), sim::machine_config_digest(kind));

  sim::MachineConfig budget = base;
  budget.cas_policy.kind = ContentionPolicyKind::kAdaptiveFallback;
  budget.cas_policy.fallback_budget = 32;
  EXPECT_NE(sim::machine_config_digest(budget), d0);
}

TEST(SnapshotSerdePolicy, UnknownPolicyKindRejected) {
  sim::MachineConfig mcfg;
  mcfg.cores = 2;
  mcfg.cas_policy.kind =
      static_cast<ContentionPolicyKind>(kContentionPolicyKindCount);
  sim::Machine m(mcfg);
  const std::vector<std::uint8_t> blob =
      sim::encode_snapshot_blob(m.snapshot(), {}, kBlobKey);
  ASSERT_FALSE(blob.empty());
  sim::MachineSnapshot snap;
  std::vector<std::uint64_t> words;
  EXPECT_FALSE(sim::decode_snapshot_blob(blob, kBlobKey, snap, words));
}

TEST(SnapshotSerdeReject, HostWordsPastEndThrow) {
  const std::uint64_t w[2] = {1, 2};
  const simq::HostWords hw{w, 2};
  EXPECT_EQ(hw.at(1), 2u);
  EXPECT_THROW(hw.at(2), std::out_of_range);
}

// Points $SBQ_SNAPSHOT_CACHE at a fresh per-test directory and restores the
// previous value (and removes the directory) on destruction, so cache tests
// can't see — or pollute — a developer's real .sbq-cache.
class ScopedCacheDir {
 public:
  ScopedCacheDir() {
    const char* old = getenv("SBQ_SNAPSHOT_CACHE");
    if (old != nullptr) old_ = old;
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("sbq-serde-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(dir_);
    setenv("SBQ_SNAPSHOT_CACHE", dir_.c_str(), 1);
  }
  ~ScopedCacheDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    if (old_.empty()) {
      unsetenv("SBQ_SNAPSHOT_CACHE");
    } else {
      setenv("SBQ_SNAPSHOT_CACHE", old_.c_str(), 1);
    }
  }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
  std::string old_;
};

TEST(SnapshotCacheIntegration, HitReplaysIdenticallyAndCorruptionFallsCold) {
  const ScopedCacheDir scoped;
  sim::MachineConfig mcfg;
  mcfg.cores = 3;
  const WorkloadSpec spec = consumer_only_spec(7);
  const SnapshotCachePolicy rw{CacheMode::kReadWrite};
  auto& stats = snapshot_cache_stats();

  // Pass 1: miss, cold warm-up, store.
  const std::uint64_t stores0 = stats.stores.load();
  const SimRunResult cold =
      run_queue_workload(QueueKind::kSbqHtm, mcfg, spec, {}, rw);
  EXPECT_EQ(stats.stores.load(), stores0 + 1);

  // Pass 2: hit — the measured phase runs on a deserialized fork, and the
  // result must be byte-identical.
  const std::uint64_t hits0 = stats.hits.load();
  expect_identical(cold,
                   run_queue_workload(QueueKind::kSbqHtm, mcfg, spec, {}, rw));
  EXPECT_EQ(stats.hits.load(), hits0 + 1);

  // Corrupt the entry on disk: the checksum rejects it, the warm-up falls
  // back to cold, and the result is still identical.
  const SnapshotCache cache(CacheMode::kReadWrite, sim::kSnapshotSchemaVersion);
  const std::string path =
      cache.path_for(snapshot_cache_key(QueueKind::kSbqHtm, mcfg, spec));
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "not a snapshot";
  }
  const std::uint64_t misses0 = stats.misses.load();
  expect_identical(cold,
                   run_queue_workload(QueueKind::kSbqHtm, mcfg, spec, {}, rw));
  EXPECT_EQ(stats.misses.load(), misses0 + 1);
}

TEST(SnapshotCacheIntegration, ReadOnlyModeNeverStores) {
  const ScopedCacheDir scoped;
  sim::MachineConfig mcfg;
  mcfg.cores = 3;
  const WorkloadSpec spec = consumer_only_spec(9);
  const SimRunResult cold = run_queue_workload(QueueKind::kWfQueue, mcfg, spec);
  expect_identical(cold, run_queue_workload(QueueKind::kWfQueue, mcfg, spec, {},
                                            {CacheMode::kReadOnly}));
  const SnapshotCache cache(CacheMode::kReadWrite, sim::kSnapshotSchemaVersion);
  EXPECT_FALSE(std::filesystem::exists(
      cache.path_for(snapshot_cache_key(QueueKind::kWfQueue, mcfg, spec))));
}

TEST(SnapshotCacheConcurrency, SameKeyWritersNeverTearAnEntry) {
  const ScopedCacheDir scoped;
  const SnapshotCache cache(CacheMode::kReadWrite, sim::kSnapshotSchemaVersion);
  // Two distinct valid blobs for the same key (different prefill seeds →
  // different machine state, same stamped key).
  const std::vector<std::uint8_t> a = make_valid_blob(kBlobKey, 99);
  const std::vector<std::uint8_t> b = make_valid_blob(kBlobKey, 123);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  ASSERT_NE(a, b);

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    sim::MachineSnapshot snap;
    std::vector<std::uint64_t> words;
    while (!done.load(std::memory_order_acquire)) {
      const auto blob = cache.load(kBlobKey);
      if (!blob) continue;  // not yet published
      // Whatever is visible must be one complete blob, bit-for-bit, and
      // must decode cleanly.
      if (*blob != a && *blob != b) {
        torn.fetch_add(1);
      } else {
        EXPECT_TRUE(sim::decode_snapshot_blob(*blob, kBlobKey, snap, words));
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(cache.store(kBlobKey, (w + i) % 2 == 0 ? a : b));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0);
  // No leftover temp files from any writer.
  int temps = 0;
  for (const auto& e : std::filesystem::directory_iterator(scoped.dir())) {
    if (e.path().filename().string().rfind(".tmp.", 0) == 0) ++temps;
  }
  EXPECT_EQ(temps, 0);
}

}  // namespace
}  // namespace sbq::bench
