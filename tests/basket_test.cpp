// Tests for the SBQ scalable basket (Algorithms 8–9): wait-free array
// basket with private insert cells, FAA-claimed extraction, and an empty
// bit. Includes the linearizability-relevant properties from §5.2.1/§5.3.1:
//   * insert may fail only non-deterministically; a successful insert's
//     element is extracted exactly once,
//   * extract returns null only when the basket is (indicated) empty,
//   * once emptiness is indicated, later extracts must fail.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "basket/basket.hpp"
#include "basket/sbq_basket.hpp"
#include "common/barrier.hpp"

namespace sbq {
namespace {

static_assert(Basket<SbqBasket<int>, int>);

TEST(SbqBasket, InsertThenExtract) {
  SbqBasket<int> b(4);
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 0));
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.extract(0), &x);
}

TEST(SbqBasket, SecondInsertOnSameCellFails) {
  SbqBasket<int> b(4);
  int x = 1, y = 2;
  EXPECT_TRUE(b.insert(&x, 2));
  EXPECT_FALSE(b.insert(&y, 2));  // cell already used by this inserter
}

TEST(SbqBasket, DistinctInsertersDistinctCells) {
  SbqBasket<int> b(4);
  int vals[4];
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.insert(&vals[i], i));
  std::set<int*> extracted;
  for (int i = 0; i < 4; ++i) {
    int* e = b.extract(0);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(extracted.insert(e).second);
  }
  EXPECT_EQ(b.extract(0), nullptr);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(extracted.count(&vals[i]), 1u);
}

TEST(SbqBasket, ExtractSkipsNeverFilledCells) {
  SbqBasket<int> b(4);
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 3));  // cells 0..2 stay INSERT
  EXPECT_EQ(b.extract(0), &x);   // must skip the empty cells and find it
  EXPECT_EQ(b.extract(0), nullptr);
}

TEST(SbqBasket, ExtractClosesUnfilledCells) {
  SbqBasket<int> b(2);
  EXPECT_EQ(b.extract(0), nullptr);  // sweeps both cells, closing them
  int x = 1;
  EXPECT_FALSE(b.insert(&x, 0));  // cell was closed by the extractor
  EXPECT_FALSE(b.insert(&x, 1));
}

TEST(SbqBasket, EmptyBitSetAfterLastIndexClaimed) {
  SbqBasket<int> b(2);
  int x = 1, y = 2;
  EXPECT_TRUE(b.insert(&x, 0));
  EXPECT_TRUE(b.insert(&y, 1));
  EXPECT_FALSE(b.empty());
  EXPECT_NE(b.extract(0), nullptr);
  EXPECT_NE(b.extract(0), nullptr);  // claims the last index -> sets empty
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.extract(0), nullptr);
}

TEST(SbqBasket, EmptyIndicationIsStable) {
  // §5.3.2 linearizability hinge: once an extract returned null (or empty()
  // returned true), every later extract must return null, even if an insert
  // CAS lands afterwards (it must fail or its element must be unreachable —
  // in this design, late inserts fail because their cells are closed).
  SbqBasket<int> b(3);
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 1));
  EXPECT_EQ(b.extract(0), &x);
  EXPECT_EQ(b.extract(0), nullptr);  // emptiness indicated
  int y = 2;
  EXPECT_FALSE(b.insert(&y, 2));     // closed
  EXPECT_EQ(b.extract(0), nullptr);  // stable
  EXPECT_TRUE(b.empty());
}

TEST(SbqBasket, LiveInsertersBoundsScan) {
  // capacity 8, but only 3 live inserters: extract must indicate emptiness
  // after sweeping 3 cells, not 8.
  SbqBasket<int> b(8, 3);
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 2));
  EXPECT_EQ(b.extract(0), &x);
  EXPECT_EQ(b.extract(0), nullptr);
  EXPECT_TRUE(b.empty());
}

TEST(SbqBasket, ResetRestoresSingleInsertion) {
  SbqBasket<int> b(4);
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 1));
  b.reset(1);
  EXPECT_FALSE(b.empty());  // empty() may be a false negative; must not be true
  int y = 2;
  EXPECT_TRUE(b.insert(&y, 1));  // cell reopened
  EXPECT_EQ(b.extract(0), &y);
}

TEST(SbqBasket, ConcurrentInsertExtractNoLossNoDup) {
  constexpr int kInserters = 8;
  constexpr int kExtractors = 4;
  constexpr int kRounds = 300;

  for (int round = 0; round < kRounds; ++round) {
    SbqBasket<int> b(kInserters);
    std::vector<int> values(kInserters);
    SpinBarrier barrier(kInserters + kExtractors);
    std::atomic<int> inserted_count{0};
    std::vector<int*> extracted[kExtractors];
    std::atomic<bool> inserted_ok[kInserters];

    std::vector<std::thread> threads;
    for (int t = 0; t < kInserters; ++t) {
      threads.emplace_back([&, t] {
        barrier.arrive_and_wait();
        const bool ok = b.insert(&values[t], t);
        inserted_ok[t].store(ok);
        if (ok) inserted_count.fetch_add(1);
      });
    }
    for (int t = 0; t < kExtractors; ++t) {
      threads.emplace_back([&, t] {
        barrier.arrive_and_wait();
        while (int* e = b.extract(t)) extracted[t].push_back(e);
      });
    }
    for (auto& th : threads) th.join();

    // Drain any remainder single-threaded.
    std::vector<int*> rest;
    while (int* e = b.extract(0)) rest.push_back(e);

    std::vector<int*> all(rest);
    for (int t = 0; t < kExtractors; ++t) {
      all.insert(all.end(), extracted[t].begin(), extracted[t].end());
    }
    std::sort(all.begin(), all.end());
    EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
        << "duplicate extraction";
    // Every successfully inserted element is extracted exactly once.
    EXPECT_EQ(static_cast<int>(all.size()), inserted_count.load());
    for (int t = 0; t < kInserters; ++t) {
      const bool found = std::binary_search(all.begin(), all.end(), &values[t]);
      EXPECT_EQ(found, inserted_ok[t].load());
    }
  }
}

TEST(SbqBasket, ConcurrentExtractorsClaimDisjointElements) {
  constexpr int kInserters = 16;
  SbqBasket<int> b(kInserters);
  std::vector<int> values(kInserters);
  for (int i = 0; i < kInserters; ++i) ASSERT_TRUE(b.insert(&values[i], i));

  constexpr int kExtractors = 8;
  SpinBarrier barrier(kExtractors);
  std::vector<std::vector<int*>> got(kExtractors);
  std::vector<std::thread> threads;
  for (int t = 0; t < kExtractors; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      while (int* e = b.extract(t)) got[t].push_back(e);
    });
  }
  for (auto& th : threads) th.join();

  std::vector<int*> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kInserters));
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  EXPECT_TRUE(b.empty());
}

// Parameterized sweep over basket sizes: invariants hold for any capacity.
class SbqBasketSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(SbqBasketSizeTest, FillDrainExactly) {
  const int n = GetParam();
  SbqBasket<int> b(static_cast<std::size_t>(n));
  std::vector<int> values(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_TRUE(b.insert(&values[static_cast<std::size_t>(i)], i));
  int extracted = 0;
  while (b.extract(0) != nullptr) ++extracted;
  EXPECT_EQ(extracted, n);
  EXPECT_TRUE(b.empty());
}

TEST_P(SbqBasketSizeTest, PartialFillDrainExactly) {
  const int n = GetParam();
  SbqBasket<int> b(static_cast<std::size_t>(n));
  std::vector<int> values(static_cast<std::size_t>(n));
  int inserted = 0;
  for (int i = 0; i < n; i += 2) {  // every other cell
    EXPECT_TRUE(b.insert(&values[static_cast<std::size_t>(i)], i));
    ++inserted;
  }
  int extracted = 0;
  while (b.extract(0) != nullptr) ++extracted;
  EXPECT_EQ(extracted, inserted);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SbqBasketSizeTest,
                         ::testing::Values(1, 2, 3, 7, 16, 44, 128));

}  // namespace
}  // namespace sbq
