// Tests for transactional lock elision. Without RTM, every elide() attempt
// aborts with a non-retryable status, so the section must always run under
// the fallback lock — semantics are identical either way, which is exactly
// what these tests verify.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "htm/elision.hpp"

namespace sbq {
namespace {

TEST(ElidableLock, BasicLockUnlock) {
  ElidableLock lock;
  EXPECT_FALSE(lock.is_locked());
  lock.lock();
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
}

TEST(ElidableLock, MutualExclusion) {
  ElidableLock lock;
  int counter = 0;  // unsynchronized on purpose: the lock must protect it
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(Elide, RunsCriticalSectionExactlyOnce) {
  ElidableLock lock;
  int runs = 0;
  elide(lock, [&] { ++runs; });
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(lock.is_locked());  // lock released after fallback
}

TEST(Elide, StatsAccountForExecutionPath) {
  ElidableLock lock;
  ElisionStats stats;
  elide(lock, [] {}, /*max_attempts=*/4, &stats);
  EXPECT_EQ(stats.transactional_commits + stats.lock_acquisitions, 1u);
  if (!htm::hardware_available()) {
    // Fallback backend: the first abort is non-retryable, straight to lock.
    EXPECT_EQ(stats.lock_acquisitions, 1u);
    EXPECT_GE(stats.aborts, 1u);
  }
}

TEST(Elide, ConcurrentSectionsAreAtomic) {
  ElidableLock lock;
  long counter = 0;
  constexpr int kThreads = 6;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        elide(lock, [&] { ++counter; });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kOps);
}

TEST(Elide, NestedStateVisibleAfterSection) {
  ElidableLock lock;
  std::vector<int> log;
  elide(lock, [&] {
    log.push_back(1);
    log.push_back(2);
  });
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(Elide, ZeroAttemptsGoesStraightToLock) {
  ElidableLock lock;
  ElisionStats stats;
  int runs = 0;
  elide(lock, [&] { ++runs; }, /*max_attempts=*/0, &stats);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(stats.lock_acquisitions, 1u);
  EXPECT_EQ(stats.aborts, 0u);
}

}  // namespace
}  // namespace sbq
