// Op-level trace record/replay (docs/replay.md):
//   * codec round-trip + the full damage-rejection surface (truncation,
//     bit flips, foreign magic, stale version, trailing garbage) mirroring
//     snapshot_serde_test.cpp;
//   * recording is schedule-invisible — for every evaluated queue, a
//     recorded sim run's metrics are byte-identical to the plain run, and
//     replaying the trace under the recording config reproduces them again
//     with zero value mismatches;
//   * recorded histories satisfy the HSV linearizability checks (sim and
//     native sources), value conservation holds, and a deliberately
//     mutated trace fails the checker.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "benchsupport/metrics_json.hpp"
#include "replay/native_record.hpp"
#include "replay/op_trace.hpp"
#include "replay/sim_replay.hpp"
#include "sim_queue_bench_util.hpp"
#include "verify/history_checker.hpp"

namespace sbq::bench {
namespace {

sim::MachineConfig small_config(int cores) {
  sim::MachineConfig mcfg;
  mcfg.cores = cores;
  mcfg.collect_stats = true;
  return mcfg;
}

WorkloadSpec mixed_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.kind = Workload::kMixed;
  spec.producers = 2;
  spec.consumers = 2;
  spec.ops_per_thread = 20;
  spec.prefill = 0;  // unique values across the whole history
  spec.seed = seed;
  return spec;
}

void expect_same_run(const SimRunResult& a, const SimRunResult& b,
                     const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.enq_ops, b.enq_ops);
  EXPECT_EQ(a.deq_ops, b.deq_ops);
  EXPECT_EQ(a.enq_latency_cycles, b.enq_latency_cycles);
  EXPECT_EQ(a.deq_latency_cycles, b.deq_latency_cycles);
  EXPECT_EQ(a.duration_cycles, b.duration_cycles);
  EXPECT_EQ(metrics_to_json(a.metrics).dump(-1),
            metrics_to_json(b.metrics).dump(-1));
}

// Record the spec's workload for `kind` into `trace` and return the
// measured-phase result (same machine construction as run_queue_workload).
SimRunResult record_run(QueueKind kind, const sim::MachineConfig& mcfg,
                        const WorkloadSpec& spec, replay::OpTrace& trace) {
  trace.source = replay::TraceSource::kSim;
  trace.queue = queue_kind_name(kind);
  trace.workload = static_cast<std::uint8_t>(spec.kind);
  trace.producers = static_cast<std::uint32_t>(spec.producers);
  trace.consumers = static_cast<std::uint32_t>(spec.consumers);
  trace.ops_per_thread = spec.ops_per_thread;
  trace.prefill = spec.prefill;
  trace.seed = spec.seed;
  trace.prefill_seed = spec.prefill_seed;
  trace.basket_capacity = static_cast<std::uint32_t>(spec.basket_capacity);
  sim::Machine m(mcfg);
  return with_queue(kind, m, spec, [&](auto& q, int offset) {
    return replay::run_recorded_workload(m, q, trace, offset);
  });
}

replay::ReplayOutcome replay_run(const sim::MachineConfig& mcfg,
                                 const replay::OpTrace& trace) {
  const QueueKind kind = queue_kind_from_name(trace.queue);
  const WorkloadSpec spec = spec_from_trace(trace);
  sim::Machine m(mcfg);
  return with_queue(kind, m, spec, [&](auto& q, int offset) {
    return replay::replay_trace(m, q, trace, offset);
  });
}

histcheck::History history_of(const std::vector<replay::OpRecord>& records) {
  histcheck::History h;
  for (const replay::OpRecord& rec : records) {
    if (rec.op == replay::kOpEnqueue) {
      h.record_enq(rec.invoke_seq, rec.response_seq, rec.value);
    } else {
      h.record_deq(rec.invoke_seq, rec.response_seq, rec.result);
    }
  }
  return h;
}

replay::OpTrace sample_trace() {
  replay::OpTrace t;
  t.source = replay::TraceSource::kSim;
  t.queue = "SBQ-HTM";
  t.workload = 2;
  t.producers = 2;
  t.consumers = 2;
  t.ops_per_thread = 3;
  t.prefill = 4;
  t.seed = 11;
  t.prefill_seed = 7;
  t.basket_capacity = 44;
  t.records = {
      {-1, replay::kOpEnqueue, 16, 1, 9, 1},
      {0, replay::kOpEnqueue, 17, 10, 20, 1},
      {2, replay::kOpDequeue, 0, 12, 25, 16},
      {3, replay::kOpDequeue, 0, 13, 30, 0},
      {1, replay::kOpEnqueue, 1 + (std::uint64_t{1} << 32), 14, 35, 1},
  };
  return t;
}

TEST(OpTraceCodec, RoundTripPreservesEverything) {
  const replay::OpTrace t = sample_trace();
  const std::vector<std::uint8_t> bytes = replay::encode_op_trace(t);
  replay::OpTrace d;
  ASSERT_TRUE(replay::decode_op_trace(bytes, d));
  EXPECT_EQ(d.source, t.source);
  EXPECT_EQ(d.queue, t.queue);
  EXPECT_EQ(d.workload, t.workload);
  EXPECT_EQ(d.producers, t.producers);
  EXPECT_EQ(d.consumers, t.consumers);
  EXPECT_EQ(d.ops_per_thread, t.ops_per_thread);
  EXPECT_EQ(d.prefill, t.prefill);
  EXPECT_EQ(d.seed, t.seed);
  EXPECT_EQ(d.prefill_seed, t.prefill_seed);
  EXPECT_EQ(d.basket_capacity, t.basket_capacity);
  ASSERT_EQ(d.records.size(), t.records.size());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(d.records[i].thread, t.records[i].thread) << i;
    EXPECT_EQ(d.records[i].op, t.records[i].op) << i;
    EXPECT_EQ(d.records[i].value, t.records[i].value) << i;
    EXPECT_EQ(d.records[i].invoke_seq, t.records[i].invoke_seq) << i;
    EXPECT_EQ(d.records[i].response_seq, t.records[i].response_seq) << i;
    EXPECT_EQ(d.records[i].result, t.records[i].result) << i;
  }
  // Re-encoding the decode is byte-identical (canonical form).
  EXPECT_EQ(replay::encode_op_trace(d), bytes);
}

TEST(OpTraceCodec, RejectsEveryTruncation) {
  const std::vector<std::uint8_t> bytes =
      replay::encode_op_trace(sample_trace());
  replay::OpTrace d;
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(n));
    EXPECT_FALSE(replay::decode_op_trace(cut, d)) << "length " << n;
  }
}

TEST(OpTraceCodec, RejectsEverySingleBitFlipByte) {
  const std::vector<std::uint8_t> bytes =
      replay::encode_op_trace(sample_trace());
  replay::OpTrace d;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_FALSE(replay::decode_op_trace(bad, d)) << "byte " << i;
  }
}

TEST(OpTraceCodec, RejectsForeignMagicStaleVersionAndTrailingGarbage) {
  const std::vector<std::uint8_t> bytes =
      replay::encode_op_trace(sample_trace());
  replay::OpTrace d;

  // Foreign magic ("SBQ1", the snapshot format) — even with a checksum
  // recomputed over the altered bytes, the magic gate must hold. The
  // single-byte-flip test already covers checksum-protected damage; here
  // the trailing checksum is re-derived the way a foreign-but-valid file
  // would carry one.
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[3] = 0x31;  // 'O' -> '1'
    // Recompute the trailing FNV-1a64 over everything before it.
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i + 8 < bad.size(); ++i) {
      h = (h ^ bad[i]) * 1099511628211ULL;
    }
    for (int i = 0; i < 8; ++i) {
      bad[bad.size() - 8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(h >> (8 * i));
    }
    EXPECT_FALSE(replay::decode_op_trace(bad, d));
  }

  // Stale version (version + 1), checksum re-derived likewise.
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[4] = static_cast<std::uint8_t>(replay::kOpTraceFormatVersion + 1);
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i + 8 < bad.size(); ++i) {
      h = (h ^ bad[i]) * 1099511628211ULL;
    }
    for (int i = 0; i < 8; ++i) {
      bad[bad.size() - 8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(h >> (8 * i));
    }
    EXPECT_FALSE(replay::decode_op_trace(bad, d));
  }

  // Trailing garbage after a perfectly valid blob.
  {
    std::vector<std::uint8_t> bad = bytes;
    bad.push_back(0);
    EXPECT_FALSE(replay::decode_op_trace(bad, d));
    EXPECT_FALSE(replay::decode_op_trace({}, d));
  }
}

TEST(SimRecordReplay, RecordingIsScheduleInvisibleAndReplayExact) {
  const sim::MachineConfig mcfg = small_config(4);
  for (QueueKind kind : evaluated_queue_kinds()) {
    const WorkloadSpec spec = mixed_spec(/*seed=*/17);
    const SimRunResult plain = run_queue_workload(kind, mcfg, spec);
    ASSERT_GT(plain.enq_ops, 0u) << queue_kind_name(kind);

    replay::OpTrace trace;
    const SimRunResult recorded = record_run(kind, mcfg, spec, trace);
    expect_same_run(plain, recorded, queue_kind_name(kind));
    // Every successful op is recorded (null dequeues add more records).
    EXPECT_GE(trace.records.size(),
              static_cast<std::size_t>(plain.enq_ops + plain.deq_ops))
        << queue_kind_name(kind);

    // Replay under the recording config reproduces the schedule exactly.
    const replay::ReplayOutcome rep = replay_run(mcfg, trace);
    expect_same_run(plain, rep.run,
                    (std::string(queue_kind_name(kind)) + " replay").c_str());
    EXPECT_EQ(rep.value_mismatches, 0u) << queue_kind_name(kind);

    // File round-trip: encode -> write -> read -> re-encode, byte-equal.
    const std::string path =
        std::string(::testing::TempDir()) + "replay_test_" +
        std::to_string(static_cast<int>(kind)) + ".ops";
    ASSERT_TRUE(replay::write_op_trace_file(path, trace));
    replay::OpTrace back;
    ASSERT_TRUE(replay::read_op_trace_file(path, back));
    EXPECT_EQ(replay::encode_op_trace(back), replay::encode_op_trace(trace));
    std::remove(path.c_str());
  }
}

TEST(SimRecordReplay, RecordedHistoriesAreLinearizable) {
  const sim::MachineConfig mcfg = small_config(4);
  for (QueueKind kind : evaluated_queue_kinds()) {
    // Mixed with no prefill: values are unique across the whole history, so
    // the HSV checks apply (see docs/replay.md for the prefill caveat).
    replay::OpTrace trace;
    record_run(kind, mcfg, mixed_spec(/*seed=*/29), trace);
    const auto violations = history_of(trace.records).check();
    EXPECT_TRUE(violations.empty())
        << queue_kind_name(kind) << ": " << violations.size()
        << " violations, first: "
        << (violations.empty() ? "" : violations.front().kind + " " +
                                          violations.front().detail);
  }
}

TEST(NativeRecord, AllQueuesLinearizableAndValueConserving) {
  replay::NativeRecordSpec spec;
  spec.threads = 4;
  spec.pairs_per_thread = 128;
  spec.seed = 3;
  for (const std::string& name : replay::native_record_queue_names()) {
    replay::OpTrace trace;
    ASSERT_TRUE(replay::record_native_queue(name, spec, trace)) << name;
    EXPECT_EQ(trace.source, replay::TraceSource::kNative) << name;
    EXPECT_EQ(trace.queue, name);

    std::uint64_t enqueues = 0, hits = 0;
    for (const replay::OpRecord& rec : trace.records) {
      if (rec.op == replay::kOpEnqueue) {
        ++enqueues;
      } else if (rec.result != 0) {
        ++hits;
      }
      EXPECT_LT(rec.invoke_seq, rec.response_seq) << name;
    }
    // The post-join drain empties the queue: conservation is exact.
    EXPECT_EQ(enqueues,
              static_cast<std::uint64_t>(spec.threads) * spec.pairs_per_thread)
        << name;
    EXPECT_EQ(enqueues, hits) << name;

    const auto violations = history_of(trace.records).check();
    EXPECT_TRUE(violations.empty())
        << name << ": " << violations.size() << " violations, first: "
        << (violations.empty() ? "" : violations.front().kind + " " +
                                          violations.front().detail);
  }
}

TEST(NativeRecord, MutatedTraceFailsTheChecker) {
  replay::NativeRecordSpec spec;
  spec.threads = 2;
  spec.pairs_per_thread = 32;
  replay::OpTrace trace;
  ASSERT_TRUE(replay::record_native_queue("MS-Queue", spec, trace));

  // Corrupt one successful dequeue to return a never-enqueued value: VFresh.
  replay::OpTrace fresh = trace;
  for (replay::OpRecord& rec : fresh.records) {
    if (rec.op == replay::kOpDequeue && rec.result != 0) {
      rec.result = 0xdeadbeefULL << 8;
      break;
    }
  }
  EXPECT_FALSE(history_of(fresh.records).check().empty());

  // Duplicate a successful dequeue's result onto another: VRepeat.
  replay::OpTrace repeat = trace;
  replay::OpRecord* first = nullptr;
  for (replay::OpRecord& rec : repeat.records) {
    if (rec.op == replay::kOpDequeue && rec.result != 0) {
      if (first == nullptr) {
        first = &rec;
      } else if (rec.result != first->result) {
        rec.result = first->result;
        break;
      }
    }
  }
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(history_of(repeat.records).check().empty());
}

TEST(NativeReplay, NativeTraceReplaysOnTheSimulatorLinearizably) {
  replay::NativeRecordSpec spec;
  spec.threads = 3;
  spec.pairs_per_thread = 24;
  replay::OpTrace trace;
  ASSERT_TRUE(replay::record_native_queue("SBQ-CAS", spec, trace));

  const std::string path =
      std::string(::testing::TempDir()) + "replay_test_native.ops";
  ASSERT_TRUE(replay::write_op_trace_file(path, trace));
  const ReplaySummary s = run_replay_file(path, small_config(2));
  std::remove(path.c_str());

  EXPECT_EQ(s.trace_records, trace.records.size());
  EXPECT_EQ(s.outcome.run.enq_ops,
            static_cast<std::uint64_t>(spec.threads) * spec.pairs_per_thread);
  // The replayed history (with the simulator's virtual timestamps) must be
  // linearizable in its own right.
  const auto violations = history_of(s.outcome.observed).check();
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty()
              ? ""
              : violations.front().kind + " " + violations.front().detail);
}

TEST(NativeReplay, ReplayIsDeterministic) {
  replay::NativeRecordSpec spec;
  spec.threads = 2;
  spec.pairs_per_thread = 16;
  replay::OpTrace trace;
  ASSERT_TRUE(replay::record_native_queue("WF-Queue", spec, trace));

  auto run_once = [&] {
    const QueueKind kind = queue_kind_from_name(trace.queue);
    const WorkloadSpec wspec = spec_from_trace(trace);
    sim::MachineConfig mcfg = small_config(replay_min_cores(wspec));
    sim::Machine m(mcfg);
    return with_queue(kind, m, wspec, [&](auto& q, int offset) {
      return replay::replay_trace(m, q, trace, offset);
    });
  };
  const replay::ReplayOutcome a = run_once();
  const replay::ReplayOutcome b = run_once();
  expect_same_run(a.run, b.run, "native replay determinism");
  ASSERT_EQ(a.observed.size(), b.observed.size());
  for (std::size_t i = 0; i < a.observed.size(); ++i) {
    EXPECT_EQ(a.observed[i].invoke_seq, b.observed[i].invoke_seq) << i;
    EXPECT_EQ(a.observed[i].response_seq, b.observed[i].response_seq) << i;
    EXPECT_EQ(a.observed[i].result, b.observed[i].result) << i;
  }
}

}  // namespace
}  // namespace sbq::bench
