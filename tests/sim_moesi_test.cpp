// Litmus tests for the Owned-state (MOESI) behaviour of the simulated
// protocol: owner-forwarded reads without write-backs, owner upgrades, and
// the ordering races between forwards and a pending upgrade.
#include <gtest/gtest.h>

#include <memory>

#include "sim/machine.hpp"

namespace sbq::sim {
namespace {

using DirState = Directory::LineState;
using CoreState = Core::LineState;

MachineConfig small_machine(int cores, int sockets = 1) {
  MachineConfig cfg;
  cfg.cores = cores;
  cfg.sockets = sockets;
  return cfg;
}

TEST(SimMoesi, WriterServesFirstReadThenWritesBack) {
  Machine m(small_machine(3));
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(0).store(x, 7);
    EXPECT_EQ(co_await m.core(1).load(x), 7u);
    // The read was owner-forwarded; the directory is transiently Owned
    // until the write-back lands.
    EXPECT_EQ(m.directory().line_owner(x), 0);
  }(m, x));
  m.run();  // drains the write-back
  EXPECT_EQ(m.directory().line_state(x), DirState::kShared);
  EXPECT_EQ(m.directory().line_owner(x), -1);
  EXPECT_EQ(m.directory().peek(x), 7u);  // LLC value fresh after WB
  // The ex-owner keeps a readable (Owned) copy; the reader shares.
  EXPECT_EQ(m.core(0).line_state(x), CoreState::kOwned);
  EXPECT_EQ(m.core(1).line_state(x), CoreState::kShared);
}

TEST(SimMoesi, FirstReadForwardedLaterReadsServedByLlc) {
  Machine m(small_machine(6));
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(0).store(x, 42);
    for (int c = 1; c < 6; ++c) {
      EXPECT_EQ(co_await m.core(c).load(x), 42u);
    }
  }(m, x));
  m.run();
  // Sequential reads: the first is owner-forwarded; its write-back lands
  // before the next read arrives, so the LLC serves the rest directly.
  EXPECT_EQ(m.directory().line_state(x), DirState::kShared);
  EXPECT_EQ(m.directory().sharer_count(x), 6u);  // 5 readers + ex-owner
  EXPECT_EQ(m.directory().stats().fwd_gets, 1u);
}

TEST(SimMoesi, OwnerUpgradeInvalidatesSharers) {
  Machine m(small_machine(4));
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(0).store(x, 1);
    co_await m.core(1).load(x);
    co_await m.core(2).load(x);
    // Owner writes again: O -> M upgrade must invalidate both sharers and
    // must NOT lose the owner's current data.
    co_await m.core(0).store(x, 2);
    EXPECT_EQ(m.core(1).line_state(x), Core::LineState::kInvalid);
    EXPECT_EQ(m.core(2).line_state(x), Core::LineState::kInvalid);
    EXPECT_EQ(co_await m.core(3).load(x), 2u);
  }(m, x));
  m.run();
}

TEST(SimMoesi, OwnerUpgradeKeepsOwnValue) {
  // Regression guard: the directory's Data response for an O->M upgrade
  // carries no payload (the LLC value is stale); the core must keep its
  // own copy.
  Machine m(small_machine(3));
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(0).store(x, 1111);
    co_await m.core(1).load(x);                  // owner -> O
    const Value old = co_await m.core(0).faa(x, 1);  // O -> M upgrade
    EXPECT_EQ(old, 1111u);
    EXPECT_EQ(co_await m.core(2).load(x), 1112u);
  }(m, x));
  m.run();
}

TEST(SimMoesi, NonOwnerWriteOverOwnedLine) {
  Machine m(small_machine(4));
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(0).store(x, 5);
    co_await m.core(1).load(x);  // 0 becomes Owned, 1 shares
    co_await m.core(2).store(x, 6);  // invalidation shower (0 and 1)
    EXPECT_EQ(m.core(0).line_state(x), Core::LineState::kInvalid);
    EXPECT_EQ(m.core(1).line_state(x), Core::LineState::kInvalid);
    EXPECT_EQ(co_await m.core(3).load(x), 6u);
  }(m, x));
  m.run();
  // Core 3's read triggered the writer's owner-forward + write-back; after
  // the WB lands the directory holds the line Shared with a fresh copy.
  EXPECT_EQ(m.directory().line_state(x), Directory::LineState::kShared);
  EXPECT_EQ(m.directory().peek(x), 6u);
}

TEST(SimMoesi, ConcurrentUpgradeRaceResolves) {
  // Owner and a sharer race to write. Whichever the directory orders first
  // wins first; both writes must apply, and the final value must reflect
  // both FAAs exactly once.
  Machine m(small_machine(3));
  const Addr x = m.alloc();
  auto barrier = std::make_shared<SimBarrier>(m.engine(), 2);
  m.spawn([](Machine& m, Addr x, std::shared_ptr<SimBarrier> b) -> Task<void> {
    co_await m.core(0).store(x, 100);  // core 0 owner
    co_await m.core(1).load(x);        // core 1 sharer
    co_await b->arrive_and_wait();
    co_await m.core(0).faa(x, 1);
  }(m, x, barrier));
  m.spawn([](Machine& m, Addr x, std::shared_ptr<SimBarrier> b) -> Task<void> {
    co_await b->arrive_and_wait();
    co_await m.core(1).faa(x, 10);
  }(m, x, barrier));
  m.run();
  Value final = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    *out = co_await m.core(2).load(x);
  }(m, x, &final));
  m.run();
  EXPECT_EQ(final, 111u);
}

TEST(SimMoesi, UpgradeStormManyOwnedWriters) {
  // Heavier version of the race: a pool of cores alternating loads (making
  // the line Owned + widely shared) and FAAs. The count must be exact.
  constexpr int kCores = 8;
  constexpr int kRounds = 30;
  Machine m(small_machine(kCores));
  const Addr x = m.alloc();
  for (int c = 0; c < kCores; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        co_await m.core(c).load(x);
        co_await m.core(c).think(static_cast<Time>(1 + (c * 13 + i) % 17));
        co_await m.core(c).faa(x, 1);
      }
    }(m, c, x));
  }
  m.run();
  Value final = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    *out = co_await m.core(0).load(x);
  }(m, x, &final));
  m.run();
  EXPECT_EQ(final, static_cast<Value>(kCores * kRounds));
}

TEST(SimMoesi, ReadHitOnOwnedLine) {
  Machine m(small_machine(2));
  const Addr x = m.alloc();
  Time hit_time = 0;
  m.spawn([](Machine& m, Addr x, Time* hit) -> Task<void> {
    co_await m.core(0).store(x, 3);
    co_await m.core(1).load(x);  // 0 -> Owned
    const Time t0 = m.engine().now();
    EXPECT_EQ(co_await m.core(0).load(x), 3u);  // read hit in O
    *hit = m.engine().now() - t0;
  }(m, x, &hit_time));
  m.run();
  EXPECT_EQ(hit_time, m.config().hit_latency);
}

TEST(SimMoesi, CrossSocketOwnershipChain) {
  // FAAs alternating across sockets: value correctness must hold even when
  // every hand-off crosses the interconnect.
  Machine m(small_machine(4, 2));
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await m.core(0).faa(x, 1);  // socket 0
      co_await m.core(2).faa(x, 1);  // socket 1
      co_await m.core(1).load(x);    // interleaved reads force O states
      co_await m.core(3).load(x);
    }
    EXPECT_EQ(co_await m.core(1).load(x), 20u);
  }(m, x));
  m.run();
}

}  // namespace
}  // namespace sbq::sim
